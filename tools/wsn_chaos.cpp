// wsn-chaos: command-line driver for the chaos-soak harness (sim/chaos_soak.h).
//
// Runs N randomized-but-replayable fault campaigns against the full physical
// stack with the distributed failure detector, checking every campaign
// against the trace oracle and the failure-detection invariants. Exit 0 when
// every campaign passes, 1 otherwise. With --out DIR, each failing
// campaign's FaultPlan JSON and JSONL trace are written there so the run is
// reproducible offline (`wsn-inspect check <trace>`); CI uploads them as
// artifacts.
//
// Usage:
//   wsn-chaos [--campaigns N] [--seed S] [--grid N] [--nodes N]
//             [--rounds N] [--budget X] [--depletion] [--out DIR] [--only K]
//             [--trace-out DIR] [--profile PATH] [--verbose]
//
// --trace-out streams every campaign's capture to DIR/campaign_<k>/ as wtr
// segments while it runs (obs/stream_sink.h) — bounded memory regardless of
// campaign length, readable with `wsn-inspect check DIR/campaign_<k>`.
//
// --profile arms the host-side SimProfiler across the whole soak and writes
// its perf snapshot (wsn-inspect perf) to PATH on exit. Profiling reads only
// the host clock, so campaign traces and verdicts are unchanged by it.
//
// --depletion switches the generator into energy-exhaustion mode: a few
// cells' leaders get finite batteries, the detector runs with proactive
// handoff, and campaigns additionally assert the depletion invariants
// (exactly-once deaths, no post-mortem frames, handoff before death).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "sim/chaos_soak.h"

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "wsn-chaos: cannot write %s\n", path.c_str());
    return;
  }
  out << content;
}

void report(const wsn::sim::ChaosCampaignResult& res, bool verbose,
            const std::string& out_dir) {
  std::printf(
      "campaign %2zu  seed=%llu  events=%zu  claims=%zu  leader_crashes=%zu  "
      "depletions=%zu  handoffs=%zu  max_latency=%.2f  %s\n",
      res.index, static_cast<unsigned long long>(res.seed), res.events,
      res.claims, res.leader_crashes, res.depletions, res.planned_handoffs,
      res.max_detection_latency, res.ok() ? "PASS" : "FAIL");
  if (verbose || !res.ok()) {
    for (const std::string& f : res.findings) {
      std::printf("  FINDING: %s\n", f.c_str());
    }
  }
  if (!res.ok() && !out_dir.empty()) {
    const std::string stem =
        out_dir + "/campaign_" + std::to_string(res.index);
    write_file(stem + ".plan.json", res.plan_json);
    write_file(stem + ".trace.jsonl", res.trace_jsonl);
    std::printf("  artifacts: %s.{plan.json,trace.jsonl}\n", stem.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  wsn::sim::ChaosSoakConfig cfg;
  std::string out_dir;
  std::string profile_path;
  long only = -1;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "wsn-chaos: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--campaigns") {
      cfg.campaigns = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--grid") {
      cfg.grid_side = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--nodes") {
      cfg.node_count = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--rounds") {
      cfg.rounds = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--budget") {
      cfg.severity_budget = std::strtod(next(), nullptr);
    } else if (arg == "--depletion") {
      cfg.depletion = true;
      cfg.trace_capacity = 1u << 20;  // longer campaigns, bigger capture
    } else if (arg == "--profile") {
      profile_path = next();
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--trace-out") {
      cfg.trace_out_dir = next();
    } else if (arg == "--only") {
      only = std::strtol(next(), nullptr, 10);
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "wsn-chaos: unknown argument %s\n"
                   "usage: wsn-chaos [--campaigns N] [--seed S] [--grid N] "
                   "[--nodes N] [--rounds N] [--budget X] [--depletion] "
                   "[--out DIR] [--only K] [--trace-out DIR] "
                   "[--profile PATH] [--verbose]\n",
                   arg.c_str());
      return 2;
    }
  }

  if (!profile_path.empty()) {
    wsn::obs::profiler().arm();
  }

  const wsn::sim::ChaosSoak soak(cfg);
  std::printf("chaos soak: grid %zux%zu, %zu nodes, %zu campaigns, seed %llu, "
              "detection bound %.1f\n",
              cfg.grid_side, cfg.grid_side, cfg.node_count, cfg.campaigns,
              static_cast<unsigned long long>(cfg.seed),
              soak.detection_bound());

  std::size_t failed = 0;
  if (only >= 0) {
    const auto res =
        soak.run_campaign(static_cast<std::size_t>(only), /*keep_trace=*/true);
    report(res, verbose, out_dir);
    if (!res.ok()) ++failed;
  } else {
    for (std::size_t k = 0; k < cfg.campaigns; ++k) {
      const auto res = soak.run_campaign(k, /*keep_trace=*/false);
      report(res, verbose, out_dir);
      if (!res.ok()) ++failed;
    }
  }
  if (!profile_path.empty()) {
    wsn::obs::profiler().disarm();
    write_file(profile_path, wsn::obs::profiler().to_json() + "\n");
    std::printf("perf profile: %s (read with wsn-inspect perf)\n",
                profile_path.c_str());
  }
  if (failed != 0) {
    std::printf("%zu campaign(s) FAILED\n", failed);
    return 1;
  }
  std::printf("all campaigns passed\n");
  return 0;
}
