// wsn-chaos: command-line driver for the chaos-soak harness (sim/chaos_soak.h).
//
// Runs N randomized-but-replayable fault campaigns against the full physical
// stack with the distributed failure detector, checking every campaign
// against the trace oracle and the failure-detection invariants. Exit 0 when
// every campaign passes, 1 otherwise. With --out DIR, each failing
// campaign's FaultPlan JSON and JSONL trace are written there so the run is
// reproducible offline (`wsn-inspect check <trace>`); CI uploads them as
// artifacts.
//
// Usage:
//   wsn-chaos [--campaigns N] [--seed S] [--grid N] [--nodes N]
//             [--rounds N] [--budget X] [--depletion] [--corruption]
//             [--membership] [--topology grid|ring|line|mesh|clique]
//             [--out DIR] [--only K] [--trace-out DIR] [--profile PATH]
//             [--verbose]
//
// --topology selects the node-placement shape (net/topology_factory.h);
// grid is the classic kOnePerCellPlus deployment, the others diversify
// cell adjacency so the detector soaks across structurally different
// networks.
//
// --corruption switches the generator into adversarial state-corruption
// mode: plans carry only state_corruption events, the detector runs its
// self-stabilization audit rounds, and every campaign must re-converge to
// one correct leader per cell within the analytic stabilization bound
// (check_stabilization + end-state agreement + zero split-brain).
//
// --membership switches the generator into self-healing membership mode:
// plans carry membership-target corruption strikes plus cell-vacancy
// scenarios (all members but one crash at once), the detector runs with
// live beliefs/rosters and orphan adoption, and every campaign must end
// with zero dark cells and inverse-consistent beliefs/rosters — adoption
// per vacancy within the stabilization bound, vacated cells re-bound to a
// live proxy. Rejected deployment seeds are counted and printed
// (soak.seeds_rejected) so determinism stays auditable.
//
// --trace-out streams every campaign's capture to DIR/campaign_<k>/ as wtr
// segments while it runs (obs/stream_sink.h) — bounded memory regardless of
// campaign length, readable with `wsn-inspect check DIR/campaign_<k>`.
//
// --profile arms the host-side SimProfiler across the whole soak and writes
// its perf snapshot (wsn-inspect perf) to PATH on exit. Profiling reads only
// the host clock, so campaign traces and verdicts are unchanged by it.
//
// --depletion switches the generator into energy-exhaustion mode: a few
// cells' leaders get finite batteries, the detector runs with proactive
// handoff, and campaigns additionally assert the depletion invariants
// (exactly-once deaths, no post-mortem frames, handoff before death).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/profiler.h"
#include "sim/chaos_soak.h"

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "wsn-chaos: cannot write %s\n", path.c_str());
    return;
  }
  out << content;
}

void report(const wsn::sim::ChaosCampaignResult& res, bool corruption,
            bool membership, bool verbose, const std::string& out_dir) {
  if (membership) {
    std::printf(
        "campaign %2zu  topo=%s  seed=%llu  events=%zu  corruptions=%zu  "
        "adoptions=%zu  binds=%zu  rejects=%llu  reconverge=%.2f  %s\n",
        res.index, res.topology.c_str(),
        static_cast<unsigned long long>(res.seed), res.events, res.corruptions,
        res.adoptions, res.adopt_binds,
        static_cast<unsigned long long>(res.seeds_rejected),
        res.max_reconverge_latency, res.ok() ? "PASS" : "FAIL");
  } else if (corruption) {
    std::printf(
        "campaign %2zu  topo=%s  seed=%llu  events=%zu  corruptions=%zu  "
        "claims=%zu  reconverge=%.2f  %s\n",
        res.index, res.topology.c_str(),
        static_cast<unsigned long long>(res.seed), res.events, res.corruptions,
        res.claims, res.max_reconverge_latency, res.ok() ? "PASS" : "FAIL");
  } else {
    std::printf(
        "campaign %2zu  topo=%s  seed=%llu  events=%zu  claims=%zu  "
        "leader_crashes=%zu  depletions=%zu  handoffs=%zu  max_latency=%.2f  "
        "%s\n",
        res.index, res.topology.c_str(),
        static_cast<unsigned long long>(res.seed), res.events, res.claims,
        res.leader_crashes, res.depletions, res.planned_handoffs,
        res.max_detection_latency, res.ok() ? "PASS" : "FAIL");
  }
  if (verbose || !res.ok()) {
    for (const std::string& f : res.findings) {
      std::printf("  FINDING: %s\n", f.c_str());
    }
  }
  if (!res.ok() && !out_dir.empty()) {
    const std::string stem =
        out_dir + "/campaign_" + std::to_string(res.index);
    write_file(stem + ".plan.json", res.plan_json);
    write_file(stem + ".trace.jsonl", res.trace_jsonl);
    std::printf("  artifacts: %s.{plan.json,trace.jsonl}\n", stem.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  wsn::sim::ChaosSoakConfig cfg;
  std::string out_dir;
  std::string profile_path;
  long only = -1;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "wsn-chaos: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--campaigns") {
      cfg.campaigns = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--grid") {
      cfg.grid_side = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--nodes") {
      cfg.node_count = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--rounds") {
      cfg.rounds = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--budget") {
      cfg.severity_budget = std::strtod(next(), nullptr);
    } else if (arg == "--depletion") {
      cfg.depletion = true;
      cfg.trace_capacity = 1u << 20;  // longer campaigns, bigger capture
    } else if (arg == "--corruption") {
      cfg.corruption = true;
    } else if (arg == "--membership") {
      cfg.membership = true;
    } else if (arg == "--topology") {
      const char* name = next();
      if (!wsn::net::parse_topology(name, cfg.topology)) {
        std::fprintf(stderr,
                     "wsn-chaos: unknown topology %s "
                     "(want grid|ring|line|mesh|clique)\n",
                     name);
        return 2;
      }
    } else if (arg == "--profile") {
      profile_path = next();
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--trace-out") {
      cfg.trace_out_dir = next();
    } else if (arg == "--only") {
      only = std::strtol(next(), nullptr, 10);
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "wsn-chaos: unknown argument %s\n"
                   "usage: wsn-chaos [--campaigns N] [--seed S] [--grid N] "
                   "[--nodes N] [--rounds N] [--budget X] [--depletion] "
                   "[--corruption] [--membership] "
                   "[--topology grid|ring|line|mesh|clique] "
                   "[--out DIR] [--only K] [--trace-out DIR] "
                   "[--profile PATH] [--verbose]\n",
                   arg.c_str());
      return 2;
    }
  }

  if (!profile_path.empty()) {
    wsn::obs::profiler().arm();
  }

  const wsn::sim::ChaosSoak soak(cfg);
  std::printf("chaos soak: topology %s, grid %zux%zu, %zu nodes, "
              "%zu campaigns, seed %llu, detection bound %.1f%s\n",
              wsn::net::to_string(cfg.topology), cfg.grid_side, cfg.grid_side,
              cfg.node_count, cfg.campaigns,
              static_cast<unsigned long long>(cfg.seed),
              soak.detection_bound(),
              cfg.membership   ? " (membership mode)"
              : cfg.corruption ? " (corruption mode)"
                               : "");

  // Per-campaign worst latencies, for the percentile summary: detection
  // latency normally, re-convergence latency in corruption/membership mode.
  const double hist_hi = 4.0 * soak.detection_bound();
  wsn::obs::Histogram latencies(0.0, hist_hi, 64);
  std::size_t failed = 0;
  std::size_t adoptions = 0;
  std::size_t adopt_binds = 0;
  unsigned long long seeds_rejected = 0;
  const auto take = [&](const wsn::sim::ChaosCampaignResult& res) {
    report(res, cfg.corruption, cfg.membership, verbose, out_dir);
    if (!res.ok()) ++failed;
    adoptions += res.adoptions;
    adopt_binds += res.adopt_binds;
    seeds_rejected += res.seeds_rejected;
    const double lat = cfg.corruption || cfg.membership
                           ? res.max_reconverge_latency
                           : res.max_detection_latency;
    if (lat > 0.0) latencies.add(lat);
  };
  if (only >= 0) {
    take(soak.run_campaign(static_cast<std::size_t>(only),
                           /*keep_trace=*/true));
  } else {
    for (std::size_t k = 0; k < cfg.campaigns; ++k) {
      take(soak.run_campaign(k, /*keep_trace=*/false));
    }
  }
  if (latencies.count() > 0) {
    std::printf("%s latency over %llu campaign(s): p50=%.2f p90=%.2f "
                "p99=%.2f max=%.2f\n",
                cfg.corruption || cfg.membership ? "reconverge" : "detection",
                static_cast<unsigned long long>(latencies.count()),
                latencies.p50(), latencies.p90(), latencies.p99(),
                latencies.max());
  }
  if (cfg.membership) {
    std::printf("membership: %zu adoption(s), %zu proxy bind(s), "
                "%llu seed(s) rejected\n",
                adoptions, adopt_binds, seeds_rejected);
  }
  if (!profile_path.empty()) {
    wsn::obs::profiler().disarm();
    write_file(profile_path, wsn::obs::profiler().to_json() + "\n");
    std::printf("perf profile: %s (read with wsn-inspect perf)\n",
                profile_path.c_str());
  }
  if (failed != 0) {
    std::printf("%zu campaign(s) FAILED\n", failed);
    return 1;
  }
  std::printf("all campaigns passed\n");
  return 0;
}
