#!/usr/bin/env bash
# Regenerates BENCH_BASELINE.json: one JSONL row per bench table row, in a
# fixed bench order so diffs stay readable. Run after an intentional
# performance or algorithm change, then commit the result:
#
#   tools/refresh_baseline.sh build
#   git add BENCH_BASELINE.json
#
# CI gates every push with
#   wsn-inspect bench-compare --baseline BENCH_BASELINE.json \
#       --current <fresh run> --tolerance 10%
# so an uncommitted drift in any simulated quantity (energy, latency,
# message counts, ...) fails the build. Wall-clock fields (*_ms/*_ns/
# *_per_sec) are skipped by the default gate; the perf-smoke job compares
# bench_kernel's one-sided at a generous --wallclock-tolerance. All benches listed here are seeded and deterministic;
# bench_micro_kernels is excluded (google-benchmark has its own JSON
# format and measures wall clock only).
set -euo pipefail

build_dir=${1:-build}
out=${2:-BENCH_BASELINE.json}

benches=(
  bench_convergence
  bench_detection_latency
  bench_dnc_vs_centralized
  bench_fanout_ablation
  bench_fault_recovery
  bench_fig3_mapping
  bench_fig4_program
  bench_group_comm
  bench_incremental
  bench_kernel
  bench_lifetime
  bench_maintenance
  bench_mapping_ablation
  bench_membership
  bench_message_size
  bench_step_complexity
  bench_stored_queries
  bench_trace
  bench_tree_topology
)

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
for b in "${benches[@]}"; do
  exe="$build_dir/bench/$b"
  if [[ ! -x "$exe" ]]; then
    echo "refresh_baseline: $exe not built" >&2
    exit 2
  fi
  rows=$(mktemp)
  "$exe" --json "$rows" > /dev/null
  cat "$rows" >> "$tmp"
  rm -f "$rows"
  echo "refresh_baseline: $b" >&2
done
mv "$tmp" "$out"
echo "refresh_baseline: wrote $(wc -l < "$out") rows to $out" >&2
