// wsn-inspect: offline analysis of trace/metrics/bench captures.
// All logic lives in wsn_analyze (obs/analyze/cli.h) so tests can drive the
// subcommands in-process; this is only the argv shim.
#include <iostream>
#include <string>
#include <vector>

#include "obs/analyze/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return wsn::obs::analyze::run_inspect(args, std::cout, std::cerr);
}
