// Closed-form performance estimation on the virtual architecture - the
// "rapid first-order performance estimation of algorithms" that Section 2
// names as the first duty of a virtual architecture.
//
// All formulas assume the paper's setting: sqrt(N) x sqrt(N) oriented grid,
// shortest-path (manhattan) routing, north-west-corner leaders, and
// fixed-size messages. Experiment E9 checks these predictions against both
// the executable virtual layer and the emulated physical layer.
#pragma once

#include <cstdint>

#include "core/cost_model.h"

namespace wsn::analysis {

/// Predicted cost of one quad-tree aggregation round (Figure 2 algorithm).
struct QuadTreePrediction {
  std::uint64_t messages = 0;    // network messages (self-sends excluded)
  std::uint64_t total_hops = 0;  // sum of per-message hop counts
  double comm_energy = 0.0;      // tx+rx over all hops
  double compute_energy = 0.0;   // sense + merge ops
  double total_energy = 0.0;
  double latency = 0.0;          // critical path to exfiltration

  /// Steps in the paper's O(sqrt N) sense: per level, the transfer distance
  /// plus one merge round.
  std::uint64_t steps = 0;
};

/// Predicts one round on an m x m grid (m a power of two) with per-message
/// size `message_units`, `sense_ops` per leaf and `merge_ops` per folded
/// contribution.
///
/// Derivation (level l in 1..L, L = log2 m): each of the (m/2^l)^2 blocks
/// receives 3 remote child messages at hop distances 2^(l-1), 2^(l-1) and
/// 2^l, so hops per block = 2^(l+1); the critical path adds the diagonal
/// transfer 2^l plus one merge per level, giving latency = sense +
/// (2m - 2) * u/B + L * merge/R.
QuadTreePrediction predict_quadtree(std::size_t grid_side,
                                    const core::CostModel& cost,
                                    double message_units = 1.0,
                                    double sense_ops = 1.0,
                                    double merge_ops = 1.0);

/// Predicted cost of the centralized baseline: every node ships one status
/// message to the sink at (0,0); the sink then labels the whole field.
struct CentralizedPrediction {
  std::uint64_t messages = 0;
  std::uint64_t total_hops = 0;  // sum of manhattan distances to the sink
  double comm_energy = 0.0;
  double compute_energy = 0.0;
  double total_energy = 0.0;
  double latency = 0.0;  // farthest transfer + sink labeling
};

CentralizedPrediction predict_centralized(std::size_t grid_side,
                                          const core::CostModel& cost,
                                          double status_units = 1.0,
                                          double ops_per_cell = 1.0);

/// Predicted hop distance from the farthest follower to its level-k leader
/// under a given block side (for E6): with NW placement the maximum is
/// 2 * (2^k - 1) hops and the mean over the block is 2^k - 1.
struct GroupCommPrediction {
  std::uint32_t max_hops = 0;
  double mean_hops = 0.0;
};

GroupCommPrediction predict_group_comm(std::uint32_t level);

/// Generalized fan-out prediction: the divide-and-conquer tree splits each
/// square block into 4^j sub-blocks per level (j = 1 is the paper's
/// quad-tree). The design-flow text speaks of general "k-ary" task trees;
/// this closed-form lets the designer sweep the fan-out before mapping.
/// `split_exponent` = j; requires log2(grid side) divisible by j.
QuadTreePrediction predict_fanout(std::size_t grid_side,
                                  std::uint32_t split_exponent,
                                  const core::CostModel& cost,
                                  double message_units = 1.0,
                                  double sense_ops = 1.0,
                                  double merge_ops = 1.0);

}  // namespace wsn::analysis
