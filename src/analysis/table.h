// Fixed-width table rendering for bench output: every experiment prints the
// rows/series the paper's evaluation would contain.
#pragma once

#include <concepts>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace wsn::analysis {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Formats a double with `precision` digits after the point.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  /// Formats any integer exactly.
  template <typename T>
    requires std::integral<T>
  static std::string num(T v) {
    return std::to_string(v);
  }

  /// Percent-error string between measured and predicted.
  static std::string pct_err(double measured, double predicted) {
    if (predicted == 0.0) return measured == 0.0 ? "0.0%" : "inf";
    std::ostringstream os;
    os << std::fixed << std::setprecision(1)
       << (measured - predicted) / predicted * 100.0 << '%';
    return os.str();
  }

  std::string str() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      widths[i] = headers_[i].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], r[i].size());
      }
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < widths.size(); ++i) {
        os << std::setw(static_cast<int>(widths[i]) + 2)
           << (i < cells.size() ? cells[i] : "");
      }
      os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& r : rows_) emit(r);
    return os.str();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wsn::analysis
