// Performance metrics derived from the cost model (Section 2): "total
// energy, energy balance, total latency of a set of operations, system
// lifetime, etc., are various performance metrics that can be calculated
// from the cost model, but which of these to use will depend on the
// algorithm designer's objective."
#pragma once

#include <cstdint>
#include <string>

#include "net/energy.h"
#include "sim/trace.h"

namespace wsn::analysis {

/// Snapshot of the energy state of a network (virtual or physical).
struct EnergyReport {
  double total = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double cv = 0.0;        // stddev/mean: the energy-balance indicator
  double max = 0.0;       // hottest node
  double min = 0.0;
  double tx = 0.0;
  double rx = 0.0;
  double compute = 0.0;
};

inline EnergyReport energy_report(const net::EnergyLedger& ledger) {
  EnergyReport r;
  const sim::Summary s = ledger.distribution();
  r.total = s.sum();
  r.mean = s.mean();
  r.stddev = s.stddev();
  r.cv = s.cv();
  r.max = s.max();
  r.min = s.min();
  r.tx = ledger.total(net::EnergyUse::kTx);
  r.rx = ledger.total(net::EnergyUse::kRx);
  r.compute = ledger.total(net::EnergyUse::kCompute);
  return r;
}

/// Rounds until the hottest node exhausts `budget` units of energy, if each
/// round costs what the ledger currently shows (steady-state workload).
inline double projected_lifetime_rounds(const net::EnergyLedger& ledger,
                                        double budget) {
  const double per_round = ledger.distribution().max();
  if (per_round <= 0.0) return 0.0;
  return budget / per_round;
}

}  // namespace wsn::analysis
