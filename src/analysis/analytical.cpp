#include "analysis/analytical.h"

#include <stdexcept>

namespace wsn::analysis {

QuadTreePrediction predict_quadtree(std::size_t grid_side,
                                    const core::CostModel& cost,
                                    double message_units, double sense_ops,
                                    double merge_ops) {
  if (!core::GridTopology::is_power_of_two(grid_side)) {
    throw std::invalid_argument("predict_quadtree: side must be a power of two");
  }
  const auto m = static_cast<std::uint64_t>(grid_side);
  std::uint32_t levels = 0;
  for (std::uint64_t s = m; s > 1; s >>= 1) ++levels;

  QuadTreePrediction p;
  for (std::uint32_t l = 1; l <= levels; ++l) {
    const std::uint64_t blocks = (m >> l) * (m >> l);
    p.messages += 3 * blocks;
    p.total_hops += blocks * (1ULL << (l + 1));  // 2^(l-1)+2^(l-1)+2^l
    p.steps += (1ULL << (l - 1)) + 1;
  }
  p.comm_energy = static_cast<double>(p.total_hops) *
                  (cost.tx_energy(message_units) + cost.rx_energy(message_units));
  const double interior = static_cast<double>((m * m - 1) / 3);
  p.compute_energy =
      cost.compute_energy(sense_ops) * static_cast<double>(m * m) +
      cost.compute_energy(merge_ops) * 4.0 * interior;
  p.total_energy = p.comm_energy + p.compute_energy;
  // Critical path: sense, then per level the diagonal-sibling transfer plus
  // the merge it triggers.
  p.latency = cost.compute_latency(sense_ops);
  for (std::uint32_t l = 1; l <= levels; ++l) {
    p.latency += cost.hop_latency(message_units) *
                     static_cast<double>(1ULL << l) +
                 cost.compute_latency(merge_ops);
  }
  return p;
}

CentralizedPrediction predict_centralized(std::size_t grid_side,
                                          const core::CostModel& cost,
                                          double status_units,
                                          double ops_per_cell) {
  const auto m = static_cast<std::uint64_t>(grid_side);
  CentralizedPrediction p;
  p.messages = m * m - 1;
  // Sum over the grid of manhattan distance to (0,0): sum(r) + sum(c) over
  // all cells = m * m(m-1)/2 * 2.
  p.total_hops = m * m * (m - 1);
  p.comm_energy = static_cast<double>(p.total_hops) *
                  (cost.tx_energy(status_units) + cost.rx_energy(status_units));
  p.compute_energy =
      cost.compute_energy(ops_per_cell) * static_cast<double>(m * m);
  p.total_energy = p.comm_energy + p.compute_energy;
  p.latency = cost.hop_latency(status_units) *
                  static_cast<double>(2 * (m - 1)) +
              cost.compute_latency(ops_per_cell * static_cast<double>(m * m));
  return p;
}

QuadTreePrediction predict_fanout(std::size_t grid_side,
                                  std::uint32_t split_exponent,
                                  const core::CostModel& cost,
                                  double message_units, double sense_ops,
                                  double merge_ops) {
  if (!core::GridTopology::is_power_of_two(grid_side)) {
    throw std::invalid_argument("predict_fanout: side must be a power of two");
  }
  std::uint32_t p = 0;
  for (std::size_t s = grid_side; s > 1; s >>= 1) ++p;
  if (split_exponent == 0 || p % split_exponent != 0) {
    throw std::invalid_argument(
        "predict_fanout: log2(side) must be divisible by the split exponent");
  }
  const std::uint32_t levels = p / split_exponent;
  const std::uint64_t sqrt_f = 1ULL << split_exponent;  // sub-blocks per axis
  const std::uint64_t fanout = sqrt_f * sqrt_f;
  const auto m = static_cast<std::uint64_t>(grid_side);

  QuadTreePrediction out;
  out.latency = cost.compute_latency(sense_ops);
  for (std::uint32_t l = 1; l <= levels; ++l) {
    const std::uint64_t block_side = 1ULL << (split_exponent * l);
    const std::uint64_t sub_side = block_side / sqrt_f;
    const std::uint64_t blocks = (m / block_side) * (m / block_side);
    out.messages += blocks * (fanout - 1);
    // Child leaders sit at (a,b)*sub_side for a,b in [0,sqrt_f): hops sum
    // = sub_side * sum(a+b) = sub_side * fanout * (sqrt_f - 1).
    out.total_hops += blocks * sub_side * fanout * (sqrt_f - 1);
    out.steps += sub_side * 2 * (sqrt_f - 1) + 1;
    // Critical path: the diagonal child at 2*(sqrt_f-1)*sub_side hops, then
    // the merge its arrival triggers.
    out.latency += cost.hop_latency(message_units) *
                       static_cast<double>(2 * (sqrt_f - 1) * sub_side) +
                   cost.compute_latency(merge_ops);
  }
  out.comm_energy = static_cast<double>(out.total_hops) *
                    (cost.tx_energy(message_units) +
                     cost.rx_energy(message_units));
  const double interior =
      static_cast<double>((m * m - 1)) / static_cast<double>(fanout - 1);
  out.compute_energy =
      cost.compute_energy(sense_ops) * static_cast<double>(m * m) +
      cost.compute_energy(merge_ops) * static_cast<double>(fanout) * interior;
  out.total_energy = out.comm_energy + out.compute_energy;
  return out;
}

GroupCommPrediction predict_group_comm(std::uint32_t level) {
  const std::uint32_t side = 1u << level;
  GroupCommPrediction p;
  p.max_hops = 2 * (side - 1);
  p.mean_hops = static_cast<double>(side - 1);
  return p;
}

}  // namespace wsn::analysis
