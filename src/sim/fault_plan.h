// Deterministic fault campaigns: a replayable schedule of timed failures.
//
// Section 5.1 motivates periodic protocol re-execution with nodes that
// "leave or fail"; the robustness layer needs those failures to be *the
// same* across two runs so that recovery behaviour is testable and every
// bench row is reproducible. A FaultPlan is a list of timed fault events —
// node crash, node recovery, loss-burst windows, regional outage over a
// rectangle of grid cells — loadable from a small JSON spec so tests,
// benches, and examples replay identical campaigns. The FaultInjector
// schedules the plan on the simulator's own event queue against either the
// physical LinkLayer (optionally with a CellMapper to resolve cell-scoped
// events) or the virtual-layer VirtualNetwork.
//
// All timing comes from the plan and all randomness from the simulator's
// seeded RNG, so seed + plan fully determine the run (the campaign
// determinism tests assert byte-identical traces).
//
// JSON shape:
//   {"events": [
//     {"at": 5.0, "kind": "crash",   "node": 12},
//     {"at": 6.0, "kind": "crash",   "cell": {"row": 0, "col": 4}},
//     {"at": 9.0, "kind": "recover", "node": 12},
//     {"at": 3.0, "kind": "loss_burst", "loss": 0.2, "duration": 4.0},
//     {"at": 7.0, "kind": "region_outage",
//      "row0": 0, "col0": 0, "row1": 1, "col1": 1, "duration": 5.0},
//     {"at": 2.0, "kind": "set_budget", "node": 7, "budget": 40.0},
//     {"at": 2.0, "kind": "set_budget", "cell": {"row": 1, "col": 2},
//      "headroom": 25.0},
//     {"at": 8.0, "kind": "state_corruption", "node": 4, "target": "epoch"},
//     {"at": 9.0, "kind": "state_corruption",
//      "cell": {"row": 2, "col": 3}, "target": "leader"}
//   ]}
// A "cell"-targeted crash, set_budget, or state_corruption resolves to the
// cell's currently bound leader at fire time (see
// FaultInjector::set_leader_lookup), so plans stay independent of the
// seeded deployment's node ids.
//
// state_corruption scrambles a live node's *soft* protocol state (nothing
// physical goes down): "target" selects the victim state — "epoch" (binding
// epoch regressed or jumped), "leader" (believed-leader pointer repointed),
// "routes" (overlay route-table entries scrambled), "leases"
// (failure-detector lease / suspicion state poisoned), or "membership"
// (cell belief defected to a neighboring cell, or a leader's member roster
// scrambled — see emulation::MembershipView). The concrete
// scrambled values are drawn from the simulator's seeded RNG at fire time,
// so a plan + seed fully determine the corrupted state (the self-
// stabilization soak replays byte-identically). Corrupting a down node is
// a no-op that bumps the "fault.corrupt_down" counter.
//
// set_budget gives the target a finite battery (EnergyLedger::set_budget):
// "budget" is absolute; "headroom" resolves at fire time to the node's
// cumulative spend + headroom, guaranteeing the node has exactly that much
// energy left no matter how much setup traffic preceded the campaign —
// which is what makes depletion campaigns portable across stack seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/grid_topology.h"
#include "net/deployment.h"
#include "obs/metrics_registry.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace wsn::core {
class VirtualNetwork;
}
namespace wsn::net {
class LinkLayer;
}
namespace wsn::emulation {
class CellMapper;
}

namespace wsn::sim {

enum class FaultKind : std::uint8_t {
  kCrash,            // one node goes down (permanently, unless recovered)
  kRecover,          // one node comes back up
  kLossBurst,        // flat link-loss probability raised for a window
  kRegionOutage,     // every node in a rectangle of grid cells down for a window
  kSetBudget,        // one node's battery becomes finite (depletion fault)
  kStateCorruption,  // one live node's soft protocol state is scrambled
};

/// Which slice of a node's soft state a state_corruption event scrambles.
enum class CorruptionTarget : std::uint8_t {
  kEpoch,       // binding epoch regressed or jumped
  kLeader,      // believed-leader pointer repointed
  kRoutes,      // overlay route-table entries scrambled
  kLeases,      // failure-detector lease / suspicion state poisoned
  kMembership,  // cell belief defected / leader member roster scrambled
};

/// Stable name used in plan JSON and trace attributes
/// ("epoch" / "leader" / "routes" / "leases" / "membership"). Inline so
/// protocol layers (emulation::FailureDetector) can name targets without
/// linking the fault library.
inline const char* to_string(CorruptionTarget target) {
  switch (target) {
    case CorruptionTarget::kEpoch:
      return "epoch";
    case CorruptionTarget::kLeader:
      return "leader";
    case CorruptionTarget::kRoutes:
      return "routes";
    case CorruptionTarget::kLeases:
      return "leases";
    case CorruptionTarget::kMembership:
      return "membership";
  }
  return "unknown";
}

/// Parses a corruption-target name; returns false on an unknown name.
inline bool parse_corruption_target(const std::string& name,
                                    CorruptionTarget& out) {
  if (name == "epoch") {
    out = CorruptionTarget::kEpoch;
  } else if (name == "leader") {
    out = CorruptionTarget::kLeader;
  } else if (name == "routes") {
    out = CorruptionTarget::kRoutes;
  } else if (name == "leases") {
    out = CorruptionTarget::kLeases;
  } else if (name == "membership") {
    out = CorruptionTarget::kMembership;
  } else {
    return false;
  }
  return true;
}

struct FaultEvent {
  /// Offset from the campaign start (arm() time), not an absolute sim time:
  /// plans stay portable across setups that consume different amounts of
  /// simulated time before the campaign begins.
  Time at = 0.0;
  FaultKind kind = FaultKind::kCrash;
  /// Target of crash/recover/set_budget, by physical node id / virtual
  /// grid index...
  net::NodeId node = net::kNoNode;
  /// ...or by grid cell: resolved to the cell's bound leader at fire time.
  /// Valid when row/col >= 0.
  core::GridCoord cell{-1, -1};
  /// kLossBurst: flat loss probability during the window.
  double loss = 0.0;
  /// kLossBurst / kRegionOutage: window length.
  Time duration = 0.0;
  /// kRegionOutage: inclusive rectangle of grid cells.
  std::int32_t row0 = 0, col0 = 0, row1 = 0, col1 = 0;
  /// kSetBudget: exactly one of these is >= 0. `budget` is an absolute
  /// battery; `headroom` resolves to spend-at-fire-time + headroom.
  double budget = -1.0;
  double headroom = -1.0;
  /// kStateCorruption: which slice of soft state gets scrambled.
  CorruptionTarget target = CorruptionTarget::kEpoch;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Parses the JSON spec above; throws std::runtime_error on malformed
  /// input. Error messages name the source line and event index of the
  /// offending entry ("fault plan line 7, event #2: ..."). Rejected beyond
  /// shape errors: unknown kinds, negative times or durations, out-of-range
  /// loss, empty region rectangles, and a node-targeted crash scheduled
  /// while the same node is already down (crash-without-recover overlap).
  static FaultPlan from_json(const std::string& text);

  /// Serializes back to the JSON spec (round-trips through from_json);
  /// chaos campaigns persist failing plans with this for replay.
  std::string to_json() const;

  /// Latest time (campaign-relative) at which any plan-driven outage ends:
  /// recover events and region-outage windows contribute their end, a crash
  /// with no later recover contributes its own time (it never ends, but the
  /// protocol's detection starts there), and a set_budget contributes its
  /// own time (the depletion death lands at some later, drain-dependent
  /// tick). Loss bursts are excluded — links stay up during them. Harness
  /// code uses this to place the post-recovery round of a campaign.
  Time down_horizon() const;
};

/// Applies a FaultPlan to a live network at simulation time. Construct
/// against the target, arm() once before running the simulator; every fault
/// application emits a Category::kReliability "fault.*" TraceEvent and
/// bumps a "fault.*" counter.
class FaultInjector {
 public:
  /// Physical target. `mapper` is required only for cell-scoped events
  /// (cell-targeted crash, region outage).
  FaultInjector(Simulator& sim, net::LinkLayer& link,
                const emulation::CellMapper* mapper = nullptr);
  /// Virtual target: crashes suppress the virtual node's process; loss
  /// bursts are skipped (the virtual layer is lossless by construction).
  FaultInjector(Simulator& sim, core::VirtualNetwork& vnet);

  /// Resolves cell-targeted crashes to the cell's current bound leader at
  /// fire time (e.g. [&overlay](c) { return overlay.bound_node(c); }).
  void set_leader_lookup(
      std::function<net::NodeId(const core::GridCoord&)> fn) {
    leader_lookup_ = std::move(fn);
  }

  /// Receives state_corruption events at fire time (e.g. bound to
  /// FailureDetector::inject_corruption). Returns true if any state was
  /// actually scrambled. Without an applier, corruption events count as
  /// unapplied ("fault.corrupt_unwired").
  void set_corruption_applier(
      std::function<bool(net::NodeId, CorruptionTarget)> fn) {
    corruption_applier_ = std::move(fn);
  }

  /// Schedules every event of `plan` on the simulator, `at` seconds from
  /// now. Negative offsets fire immediately.
  void arm(const FaultPlan& plan);

  CounterSet& counters() { return counters_; }

  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "fault") const;

 private:
  void fire(const FaultEvent& ev);
  void apply_down(net::NodeId node, bool down, const char* trace_name);
  bool is_node_down(net::NodeId node) const;

  Simulator& sim_;
  net::LinkLayer* link_ = nullptr;
  core::VirtualNetwork* vnet_ = nullptr;
  const emulation::CellMapper* mapper_ = nullptr;
  std::function<net::NodeId(const core::GridCoord&)> leader_lookup_;
  std::function<bool(net::NodeId, CorruptionTarget)> corruption_applier_;
  CounterSet counters_;
};

}  // namespace wsn::sim
