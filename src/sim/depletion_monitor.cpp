#include "sim/depletion_monitor.h"

#include <algorithm>
#include <cmath>

#include "net/link_layer.h"
#include "obs/trace.h"

namespace wsn::sim {

DepletionMonitor::DepletionMonitor(Simulator& sim, net::LinkLayer& link)
    : sim_(sim), link_(link) {}

DepletionMonitor::~DepletionMonitor() {
  if (armed_) link_.ledger().set_on_depleted({});
}

void DepletionMonitor::arm() {
  if (armed_) return;
  armed_ = true;
  link_.ledger().set_on_depleted(
      [this](net::NodeId node) { on_crossing(node); });
  // Nodes that crossed before the hook existed latched their flag without
  // firing; record their deaths now so no depletion is ever unreported.
  const net::EnergyLedger& ledger = link_.ledger();
  for (std::size_t i = 0; i < ledger.node_count(); ++i) {
    const auto node = static_cast<net::NodeId>(i);
    if (ledger.depleted(node)) on_crossing(node);
  }
}

void DepletionMonitor::on_crossing(net::NodeId node) {
  for (const DepletionRecord& d : deaths_) {
    if (d.node == node) return;  // already recorded by the arm() sweep
  }
  const net::EnergyLedger& ledger = link_.ledger();
  DepletionRecord rec;
  rec.node = node;
  rec.at = sim_.now();
  rec.budget = ledger.budget(node);
  rec.spent = ledger.spent(node);
  deaths_.push_back(rec);
  counters_.add("energy.depleted");
  auto& tr = obs::tracer();
  if (tr.enabled(obs::Category::kReliability)) {
    tr.emit({sim_.now(), static_cast<std::int64_t>(node),
             obs::Category::kReliability, 'i', "energy.depleted", 0,
             {{"budget", rec.budget}, {"spent", rec.spent}}});
  }
  // The death itself: from this tick on the node neither transmits nor
  // receives, and every existing detection/degradation path takes over.
  link_.set_down(node, true);
}

std::size_t DepletionMonitor::alive_count() const {
  const net::EnergyLedger& ledger = link_.ledger();
  std::size_t n = 0;
  for (std::size_t i = 0; i < ledger.node_count(); ++i) {
    const auto node = static_cast<net::NodeId>(i);
    if (!link_.is_down(node) && !ledger.depleted(node)) ++n;
  }
  return n;
}

obs::Histogram DepletionMonitor::residual_histogram(
    std::size_t buckets) const {
  const net::EnergyLedger& ledger = link_.ledger();
  double hi = 0.0;
  for (std::size_t i = 0; i < ledger.node_count(); ++i) {
    const double b = ledger.budget(static_cast<net::NodeId>(i));
    if (std::isfinite(b)) hi = std::max(hi, b);
  }
  obs::Histogram h(0.0, hi > 0.0 ? hi : 1.0, buckets);
  for (std::size_t i = 0; i < ledger.node_count(); ++i) {
    const auto node = static_cast<net::NodeId>(i);
    if (!std::isfinite(ledger.budget(node))) continue;
    h.add(ledger.remaining(node));
  }
  return h;
}

void DepletionMonitor::register_metrics(obs::MetricsRegistry& registry,
                                        const std::string& prefix) const {
  registry.add_counters(prefix + ".counters", &counters_);
  registry.add_gauge(prefix + ".depleted_nodes", [this] {
    return static_cast<double>(deaths_.size());
  });
  registry.add_gauge(prefix + ".alive_nodes", [this] {
    return static_cast<double>(alive_count());
  });
  registry.add_histogram(prefix + ".residual",
                         [this] { return residual_histogram(); });
}

}  // namespace wsn::sim
