// Energy exhaustion as a first-class fault source.
//
// The paper's uniform cost model exists so designers can reason about
// energy balance and network lifetime, but the robustness stack only ever
// killed nodes when a FaultPlan said so: LinkLayer silently mutes depleted
// senders, and nothing upstream noticed the death. The DepletionMonitor
// closes that gap deterministically: it hooks the EnergyLedger's
// exactly-once budget-crossing callback and, synchronously at the crossing
// tick (inside the very charge that crossed),
//
//   * emits one Category::kReliability "energy.depleted" TraceEvent
//     carrying the node's budget and cumulative spend,
//   * bumps the "energy.depleted" counter, and
//   * calls LinkLayer::set_down(node, true),
//
// so a depletion death flows through exactly the same detection machinery
// as a crash: ARQ give-ups raise suspicion, leases expire, the failure
// detector elects a successor, and deadline collectives degrade gracefully.
// The dying transmission itself still goes out (the link layer charges tx
// before fanning out deliveries), so the last frame of a depleted sender
// shares its timestamp with the "energy.depleted" event — the analyzer's
// check_depletion treats that equal-time frame as legitimate and flags
// anything later.
//
// Determinism: crossings are a pure function of the charge sequence, which
// is a pure function of seed + plan; deaths land on the same tick in every
// replay (the depletion chaos campaigns assert byte-identical traces).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/deployment.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace wsn::net {
class LinkLayer;
}

namespace wsn::sim {

/// One depletion death, in crossing order.
struct DepletionRecord {
  net::NodeId node = net::kNoNode;
  Time at = 0.0;      // simulation time of the budget crossing
  double budget = 0.0;
  double spent = 0.0;  // cumulative spend at the crossing (>= budget)
};

class DepletionMonitor {
 public:
  /// Watches `link`'s ledger. Call arm() once budgets are (or may become)
  /// finite; budgets set later through FaultPlan set_budget events are
  /// picked up automatically. The monitor must outlive the run (or be
  /// destroyed before the link, which detaches the ledger hook).
  DepletionMonitor(Simulator& sim, net::LinkLayer& link);
  ~DepletionMonitor();

  DepletionMonitor(const DepletionMonitor&) = delete;
  DepletionMonitor& operator=(const DepletionMonitor&) = delete;

  /// Installs the ledger hook and sweeps for nodes already past their
  /// budget (their deaths are recorded at the current simulation time).
  void arm();
  bool armed() const { return armed_; }

  /// Every depletion death so far, in crossing order.
  const std::vector<DepletionRecord>& deaths() const { return deaths_; }

  /// Nodes neither down nor depleted right now.
  std::size_t alive_count() const;

  /// Residual-energy distribution over the nodes with finite budgets
  /// (vacuously empty when every budget is infinite). Bucket range is
  /// [0, max finite budget].
  obs::Histogram residual_histogram(std::size_t buckets = 16) const;

  CounterSet& counters() { return counters_; }

  /// Registers "<prefix>.depleted_nodes" / "<prefix>.alive_nodes" gauges,
  /// the "<prefix>.residual" polled histogram, and the monitor's counters.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "energy") const;

 private:
  void on_crossing(net::NodeId node);

  Simulator& sim_;
  net::LinkLayer& link_;
  bool armed_ = false;
  std::vector<DepletionRecord> deaths_;
  CounterSet counters_;
};

}  // namespace wsn::sim
