#include "sim/chaos_soak.h"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/grid_topology.h"
#include "core/primitives.h"
#include "emulation/cell_mapper.h"
#include "emulation/emulation_protocol.h"
#include "emulation/leader_binding.h"
#include "emulation/overlay_network.h"
#include "net/deployment.h"
#include "net/link_layer.h"
#include "net/network_graph.h"
#include "net/topology_factory.h"
#include "net/reliable_link.h"
#include "obs/analyze/check.h"
#include "obs/analyze/json_reader.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/sinks.h"
#include "obs/stream_sink.h"
#include "obs/trace.h"
#include "sim/depletion_monitor.h"
#include "sim/fault_plan.h"
#include "sim/rng.h"

namespace wsn::sim {

namespace {

// The full physical stack a campaign runs against. Mirrors the benches'
// PhysicalStack (bench_common.h is not visible from src/), but owned here
// so campaigns can rebuild from scratch deterministically.
struct Stack {
  Stack(net::TopologyKind topology, std::size_t grid_side, std::size_t nodes,
        double range, std::uint64_t seed)
      : sim(seed) {
    const net::Rect terrain =
        net::square_terrain(static_cast<double>(grid_side));
    auto positions =
        net::deploy_topology(topology, grid_side, nodes, terrain, sim.rng());
    graph = std::make_unique<net::NetworkGraph>(std::move(positions), range);
    mapper =
        std::make_unique<emulation::CellMapper>(*graph, terrain, grid_side);
    ledger = std::make_unique<net::EnergyLedger>(graph->node_count());
    link = std::make_unique<net::LinkLayer>(
        sim, *graph, net::RadioModel{range, 1.0, 1.0, 1.0}, net::CpuModel{},
        *ledger);
    emulation_result = emulation::run_topology_emulation(*link, *mapper, 0.0);
    binding_result = emulation::run_leader_binding(*link, *mapper);
    overlay = std::make_unique<emulation::OverlayNetwork>(
        *link, *mapper, emulation_result, binding_result);
  }

  /// The paper-precondition precheck for a fresh draw. Membership mode
  /// relaxes occupancy — adoption restores coverage of vacant cells, so an
  /// unoccupied cell is a scenario rather than a bad draw — but the
  /// collector cell (0,0) must stay occupied: it is the aggregation root
  /// and has no parent to proxy-adopt it.
  bool healthy(bool relax_occupancy) const {
    const bool occupancy =
        relax_occupancy ? !mapper->members(core::GridCoord{0, 0}).empty()
                        : mapper->all_cells_occupied();
    return occupancy && mapper->all_cells_connected() &&
           binding_result.unique_leaders;
  }

  Simulator sim;
  std::unique_ptr<net::NetworkGraph> graph;
  std::unique_ptr<emulation::CellMapper> mapper;
  std::unique_ptr<net::EnergyLedger> ledger;
  std::unique_ptr<net::LinkLayer> link;
  emulation::EmulationResult emulation_result;
  emulation::BindingResult binding_result;
  std::unique_ptr<emulation::OverlayNetwork> overlay;
  std::unique_ptr<net::ReliableChannel> arq;
};

/// A generated leader crash the invariant pass must account for.
struct TrackedCrash {
  core::GridCoord cell{-1, -1};
  net::NodeId node = net::kNoNode;
  Time at = 0.0;  // plan-relative
};

/// True iff the cell's member set stays BFS-connected (over physical radio
/// edges) after `removed` is taken out — the generator's guard for the
/// paper's all_cells_connected precondition.
bool connected_without(const net::NetworkGraph& graph,
                       std::span<const net::NodeId> members,
                       net::NodeId removed) {
  std::vector<net::NodeId> alive;
  for (const net::NodeId m : members) {
    if (m != removed) alive.push_back(m);
  }
  if (alive.empty()) return false;
  std::vector<net::NodeId> frontier{alive.front()};
  std::vector<bool> seen(graph.node_count(), false);
  seen[alive.front()] = true;
  std::size_t reached = 1;
  auto is_alive = [&](net::NodeId v) {
    return std::find(alive.begin(), alive.end(), v) != alive.end();
  };
  while (!frontier.empty()) {
    const net::NodeId u = frontier.back();
    frontier.pop_back();
    for (const net::NodeId v : graph.neighbors(u)) {
      if (seen[v] || !is_alive(v)) continue;
      seen[v] = true;
      ++reached;
      frontier.push_back(v);
    }
  }
  return reached == alive.size();
}

struct GeneratedPlan {
  FaultPlan plan;
  std::vector<TrackedCrash> leader_crashes;
  /// Leaders given a finite battery (depletion mode); `at` is the
  /// set_budget time, the death lands wherever the drain takes it.
  std::vector<TrackedCrash> depletions;
  /// Vacated cells (membership mode): `node` is the planned lone survivor,
  /// `at` the instant every other member crashes. The oracle demands the
  /// survivor adopts into a neighboring cell within the stabilization
  /// bound and the cell ends re-bound to a live proxy.
  std::vector<TrackedCrash> vacancies;
};

}  // namespace

Time ChaosSoak::detection_bound() const {
  const emulation::FailureDetectorConfig& d = cfg_.detector;
  // Worst case: the crash lands right after a lease renewal (full
  // lease_duration until expiry, and the very first lease is granted at
  // 1.5x), the watchdog defers once for an open election (one more lease),
  // then the staggered election close runs to its 1.25x ceiling; the rest
  // is flood/claim propagation slack.
  return 1.5 * d.lease_duration + d.lease_duration +
         1.5 * d.election_timeout + 10.0;
}

ChaosSoakSummary ChaosSoak::run() const {
  ChaosSoakSummary summary;
  summary.campaigns = cfg_.campaigns;
  for (std::size_t k = 0; k < cfg_.campaigns; ++k) {
    ChaosCampaignResult res = run_campaign(k, /*keep_trace=*/false);
    if (!res.ok()) ++summary.failed;
    summary.results.push_back(std::move(res));
  }
  return summary;
}

ChaosCampaignResult ChaosSoak::run_campaign(std::size_t index,
                                            bool keep_trace) const {
  ChaosCampaignResult res;
  res.index = index;
  res.seed = cfg_.seed + index;
  res.topology = net::to_string(cfg_.topology);

  obs::RingBufferSink sink(cfg_.trace_capacity);
  std::unique_ptr<obs::StreamingFileSink> stream;
  std::unique_ptr<obs::TeeSink> tee;
  // Destructor order matters: `capture` restores the outer tracer before
  // the tee/stream it may point at are torn down.
  obs::ScopedTrace capture(sink, obs::kAllCategories);
  // A streaming sink cannot clear() like the ring, so the seed-retry loop
  // recreates it (wiping the directory) whenever a stack draw is discarded.
  const std::string campaign_dir =
      cfg_.trace_out_dir.empty()
          ? std::string()
          : cfg_.trace_out_dir + "/campaign_" + std::to_string(index);
  const auto install_capture = [&] {
    if (campaign_dir.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(campaign_dir, ec);
    obs::StreamSinkConfig scfg;
    scfg.directory = campaign_dir;
    scfg.format = obs::TraceFormat::kWtr;
    tee.reset();
    stream = std::make_unique<obs::StreamingFileSink>(scfg);
    tee = std::make_unique<obs::TeeSink>(sink, *stream);
    obs::tracer().set_sink(tee.get());
  };

  // Deterministic seed-retry: kOnePerCellPlus deployments are almost always
  // healthy, but a pathological draw (an unconnected cell) would void the
  // paper's preconditions — bump the stack seed until healthy, wiping the
  // partial capture so the surviving trace covers exactly one stack.
  std::unique_ptr<Stack> stack;
  for (std::uint64_t retry = 0;; ++retry) {
    sink.clear();
    install_capture();
    obs::tracer().reset_flows(0);
    stack = std::make_unique<Stack>(cfg_.topology, cfg_.grid_side,
                                    cfg_.node_count, cfg_.range,
                                    res.seed + 1000003 * retry);
    if (stack->healthy(cfg_.membership)) break;
    ++res.seeds_rejected;
    if (retry > 16) {
      res.findings.push_back("no healthy deployment after 16 seed retries");
      return res;
    }
  }

  stack->arq = std::make_unique<net::ReliableChannel>(*stack->link,
                                                      net::ReliableConfig{});
  stack->overlay->attach_arq(*stack->arq);
  emulation::FailureDetectorConfig dcfg = cfg_.detector;
  if (cfg_.depletion && dcfg.handoff_low_water <= 0.0) {
    // Retire with 60% of the headroom still in the tank. The reserve must
    // cover the succession itself, not just time: the kElect flood storm
    // costs the initiator ~20 units, the residual check only runs once per
    // heartbeat, and a busy leader burns 1.5-2.5 units/s until the claim
    // commits — so handoff-precedes-death needs most of the headroom left
    // when the probe goes out.
    dcfg.handoff_low_water = cfg_.depletion_headroom * 0.6;
  }
  if (cfg_.corruption && dcfg.audit_period <= 0.0) {
    // Self-stabilization needs the periodic reconciliation rounds: without
    // audits a corrupted self-believed leader never hears a view to defer
    // to and the soak could not meet its re-convergence bound.
    dcfg.audit_period = cfg_.corruption_audit_period;
  }
  if (cfg_.membership) {
    // Live beliefs/rosters plus adoption; the roster-repair bound needs
    // audit rounds carrying digests, so the audit default applies here too.
    dcfg.membership = true;
    if (dcfg.audit_period <= 0.0) {
      dcfg.audit_period = cfg_.membership_audit_period;
    }
  }
  emulation::FailureDetector detector(*stack->overlay, dcfg);

  obs::MetricsRegistry registry;
  stack->link->register_metrics(registry);
  stack->overlay->register_metrics(registry);
  emulation::register_metrics(registry, stack->emulation_result);
  emulation::register_metrics(registry, stack->binding_result);
  stack->arq->register_metrics(registry);
  detector.register_metrics(registry);
  registry.add_gauge("soak.seeds_rejected", [&res] {
    return static_cast<double>(res.seeds_rejected);
  });

  // ---- Plan generation (campaign RNG, independent of the stack's) -------
  Rng rng(res.seed * 0x9e3779b97f4a7c15ULL + 0x1234567);
  const core::GridTopology& grid = stack->overlay->grid();
  const Time horizon =
      static_cast<double>(cfg_.rounds) * (cfg_.deadline + 10.0);
  GeneratedPlan gen;
  std::vector<bool> hit(grid.node_count(), false);
  hit[grid.index_of({0, 0})] = true;  // never target the collector cell
  double budget = cfg_.severity_budget;
  if (cfg_.corruption) {
    // Corruption-only plans: the soft state of a seeded victim (half the
    // strikes the cell's bound leader, half a random member) is scrambled
    // at fire time along a seeded target profile. Victims are resolved to
    // node ids now so the plan replays without a live binding; the
    // collector cell stays clear so reduce rounds keep closing.
    for (int attempt = 0;
         attempt < 64 && gen.plan.events.size() < cfg_.corruption_events;
         ++attempt) {
      const std::size_t ci = rng.below(grid.node_count());
      const core::GridCoord cell = grid.coord_of(ci);
      if (cell.row == 0 && cell.col == 0) continue;  // the collector cell
      const auto members = stack->mapper->members(cell);
      if (members.empty()) continue;
      const net::NodeId leader = stack->overlay->bound_node(cell);
      net::NodeId victim =
          members[static_cast<std::size_t>(rng.below(members.size()))];
      if (rng.chance(0.5) && leader != net::kNoNode) victim = leader;
      FaultEvent ev;
      ev.at = 5.0 + rng.uniform() * horizon * 0.4;
      ev.kind = FaultKind::kStateCorruption;
      ev.node = victim;
      ev.target = static_cast<CorruptionTarget>(rng.below(4));
      gen.plan.events.push_back(ev);
    }
  }
  if (cfg_.membership) {
    // Vacancy scenarios: every member of a victim cell except one follower
    // crashes at the same instant. The survivor's lease runs out over a
    // silent cell, its election finds nobody, and the adoption path must
    // move it into the nearest reachable neighboring cell and re-bind the
    // vacated cell to a proxy — tracked so the invariant pass demands
    // exactly that. The survivor is never the bound leader (a surviving
    // leader just keeps serving a cell of one) and must hold a cross-cell
    // radio edge into an untargeted cell, or adoption has nobody to reach;
    // that refuge cell is marked hit so a later vacancy cannot empty it.
    for (int attempt = 0;
         attempt < 64 && gen.vacancies.size() < cfg_.membership_vacancies;
         ++attempt) {
      const std::size_t ci = rng.below(grid.node_count());
      const core::GridCoord cell = grid.coord_of(ci);
      if (hit[ci] || (cell.row == 0 && cell.col == 0)) continue;
      const auto members = stack->mapper->members(cell);
      const net::NodeId leader = stack->overlay->bound_node(cell);
      if (leader == net::kNoNode || members.size() < 2) continue;
      net::NodeId survivor = net::kNoNode;
      std::size_t refuge = 0;
      for (const net::NodeId m : members) {
        if (m == leader) continue;
        for (const net::NodeId v : stack->graph->neighbors(m)) {
          const core::GridCoord vc = stack->mapper->cell_of(v);
          if (vc == cell || hit[grid.index_of(vc)]) continue;
          survivor = m;
          refuge = grid.index_of(vc);
          break;
        }
        if (survivor != net::kNoNode) break;
      }
      if (survivor == net::kNoNode) continue;
      hit[ci] = true;
      hit[refuge] = true;
      const Time at = 5.0 + rng.uniform() * horizon * 0.3;
      for (const net::NodeId m : members) {
        if (m == survivor) continue;
        FaultEvent crash;
        crash.at = at;
        crash.kind = FaultKind::kCrash;
        crash.node = m;
        gen.plan.events.push_back(crash);
      }
      gen.vacancies.push_back({cell, survivor, at});
    }
    // Membership strikes: a seeded victim's cell belief is defected to an
    // adjacent cell or its leader's roster is scrambled at fire time
    // (CorruptionTarget::kMembership). Reconciliation — self-heal from
    // position knowledge plus the audit digest round — must pull every one
    // back within the extended stabilization bound. Cells already staged
    // for a vacancy (or sheltering its survivor) stay clear so the
    // adoption oracle is not confounded.
    std::size_t strikes = 0;
    for (int attempt = 0;
         attempt < 64 && strikes < cfg_.membership_events; ++attempt) {
      const std::size_t ci = rng.below(grid.node_count());
      const core::GridCoord cell = grid.coord_of(ci);
      if (hit[ci] || (cell.row == 0 && cell.col == 0)) continue;
      const auto members = stack->mapper->members(cell);
      if (members.empty()) continue;
      const net::NodeId leader = stack->overlay->bound_node(cell);
      net::NodeId victim =
          members[static_cast<std::size_t>(rng.below(members.size()))];
      if (rng.chance(0.5) && leader != net::kNoNode) victim = leader;
      FaultEvent ev;
      ev.at = 5.0 + rng.uniform() * horizon * 0.4;
      ev.kind = FaultKind::kStateCorruption;
      ev.node = victim;
      ev.target = CorruptionTarget::kMembership;
      gen.plan.events.push_back(ev);
      ++strikes;
    }
  }
  for (int attempt = 0; !cfg_.corruption && !cfg_.membership &&
                        attempt < 64 && budget > 0.0 &&
                        gen.plan.events.size() < cfg_.max_plan_events;
       ++attempt) {
    const double draw = rng.uniform();
    if (draw < 0.45) {
      // Crash a cell's bound leader (resolved now, so the plan is
      // node-targeted and replayable without a live binding).
      const std::size_t ci = rng.below(grid.node_count());
      const core::GridCoord cell = grid.coord_of(ci);
      if (hit[ci]) continue;
      const net::NodeId leader = stack->overlay->bound_node(cell);
      const auto members = stack->mapper->members(cell);
      if (leader == net::kNoNode || members.size() < 2) continue;
      if (!connected_without(*stack->graph, members, leader)) continue;
      hit[ci] = true;
      FaultEvent crash;
      crash.at = 5.0 + rng.uniform() * horizon * 0.4;
      crash.kind = FaultKind::kCrash;
      crash.node = leader;
      gen.plan.events.push_back(crash);
      gen.leader_crashes.push_back({cell, leader, crash.at});
      if (rng.chance(0.5)) {
        // Recover well past the detection bound so the claim invariant is
        // unconditional, then let the rejoin/demote path run too.
        FaultEvent rec;
        rec.at = crash.at + detection_bound() + 10.0 + rng.uniform() * 20.0;
        rec.kind = FaultKind::kRecover;
        rec.node = leader;
        gen.plan.events.push_back(rec);
      }
      budget -= 1.5;
    } else if (draw < 0.65) {
      // Crash a non-leader member: churn that must NOT depose a leader.
      const std::size_t ci = rng.below(grid.node_count());
      const core::GridCoord cell = grid.coord_of(ci);
      if (hit[ci]) continue;
      const net::NodeId leader = stack->overlay->bound_node(cell);
      const auto members = stack->mapper->members(cell);
      if (members.size() < 3) continue;
      const net::NodeId victim =
          members[static_cast<std::size_t>(rng.below(members.size()))];
      if (victim == leader) continue;
      if (!connected_without(*stack->graph, members, victim)) continue;
      hit[ci] = true;
      FaultEvent crash;
      crash.at = 5.0 + rng.uniform() * horizon * 0.4;
      crash.kind = FaultKind::kCrash;
      crash.node = victim;
      gen.plan.events.push_back(crash);
      if (rng.chance(0.6)) {
        FaultEvent rec;
        rec.at = crash.at + 20.0 + rng.uniform() * 40.0;
        rec.kind = FaultKind::kRecover;
        rec.node = victim;
        gen.plan.events.push_back(rec);
      }
      budget -= 0.75;
    } else if (draw < 0.85) {
      FaultEvent burst;
      burst.at = rng.uniform() * horizon * 0.5;
      burst.kind = FaultKind::kLossBurst;
      burst.loss = 0.03 + rng.uniform() * 0.09;
      burst.duration = 20.0 + rng.uniform() * 40.0;
      gen.plan.events.push_back(burst);
      budget -= burst.loss * burst.duration / 5.0;
    } else {
      // Region outage: whole cells go dark atomically. An empty cell
      // elects nobody (no split-brain risk); the hierarchy suspects and
      // later resumes it. Keep it clear of the collector and of cells
      // already targeted.
      if (budget < 2.0 || grid.side() < 3) continue;
      const auto side = static_cast<std::int32_t>(grid.side());
      const std::int32_t r0 = 1 + static_cast<std::int32_t>(rng.below(
                                      static_cast<std::uint64_t>(side - 1)));
      const std::int32_t c0 = static_cast<std::int32_t>(
          rng.below(static_cast<std::uint64_t>(side)));
      const std::int32_t r1 = std::min<std::int32_t>(r0 + 1, side - 1);
      const std::int32_t c1 = std::min<std::int32_t>(c0 + 1, side - 1);
      bool clear = true;
      for (std::int32_t r = r0; r <= r1 && clear; ++r) {
        for (std::int32_t c = c0; c <= c1 && clear; ++c) {
          clear = !hit[grid.index_of({r, c})];
        }
      }
      if (!clear) continue;
      std::size_t cells = 0;
      for (std::int32_t r = r0; r <= r1; ++r) {
        for (std::int32_t c = c0; c <= c1; ++c) {
          hit[grid.index_of({r, c})] = true;
          ++cells;
        }
      }
      FaultEvent outage;
      outage.at = rng.uniform() * horizon * 0.3;
      outage.kind = FaultKind::kRegionOutage;
      outage.row0 = r0;
      outage.col0 = c0;
      outage.row1 = r1;
      outage.col1 = c1;
      outage.duration = 30.0 + rng.uniform() * 30.0;
      gen.plan.events.push_back(outage);
      budget -= static_cast<double>(cells) * 0.75;
    }
  }
  if (cfg_.depletion) {
    // Give a few untouched cells' leaders a finite battery. Resolved to
    // node ids now (like crashes) so the plan replays without a live
    // binding; "headroom" still resolves against fire-time spend, so the
    // leader has exactly depletion_headroom energy left when the event
    // lands regardless of setup traffic.
    for (int attempt = 0;
         attempt < 64 && gen.depletions.size() < cfg_.depletion_targets;
         ++attempt) {
      const std::size_t ci = rng.below(grid.node_count());
      const core::GridCoord cell = grid.coord_of(ci);
      if (hit[ci]) continue;
      const net::NodeId leader = stack->overlay->bound_node(cell);
      const auto members = stack->mapper->members(cell);
      if (leader == net::kNoNode || members.size() < 2) continue;
      if (!connected_without(*stack->graph, members, leader)) continue;
      hit[ci] = true;
      FaultEvent ev;
      ev.at = 2.0 + rng.uniform() * 6.0;
      ev.kind = FaultKind::kSetBudget;
      ev.node = leader;
      ev.headroom = cfg_.depletion_headroom;
      gen.plan.events.push_back(ev);
      gen.depletions.push_back({cell, leader, ev.at});
    }
  }
  res.plan_json = gen.plan.to_json();
  res.leader_crashes = gen.leader_crashes.size();
  for (const FaultEvent& ev : gen.plan.events) {
    if (ev.kind == FaultKind::kStateCorruption) ++res.corruptions;
  }

  // ---- Run: arm faults, start the detector, push rounds through ---------
  FaultInjector injector(stack->sim, *stack->link, stack->mapper.get());
  injector.set_leader_lookup(
      [&overlay = *stack->overlay](const core::GridCoord& c) {
        return overlay.bound_node(c);
      });
  injector.set_corruption_applier(
      [&detector](net::NodeId node, CorruptionTarget target) {
        return detector.inject_corruption(node, target);
      });
  injector.register_metrics(registry);
  DepletionMonitor monitor(stack->sim, *stack->link);
  if (cfg_.depletion) {
    monitor.arm();
    monitor.register_metrics(registry);
  }
  const Time arm_time = stack->sim.now();
  injector.arm(gen.plan);
  detector.start();

  const std::vector<core::GridCoord> all_cells = grid.all_coords();
  const std::vector<double> values(all_cells.size(), 1.0);
  auto partials = std::make_shared<std::vector<core::PartialResult>>();
  for (std::size_t r = 0; r < cfg_.rounds; ++r) {
    const Time round_start = stack->sim.now();
    core::group_reduce_deadline(
        *stack->overlay, all_cells, {0, 0}, values, core::ReduceOp::kSum, 1.0,
        cfg_.deadline,
        [partials](const core::PartialResult& p) { partials->push_back(p); });
    stack->sim.run_until(round_start + cfg_.deadline + 5.0);
  }

  // Let the detector settle past the last outage (down_horizon), plus the
  // detection bound and one uplease so suspected cells resume, then stop
  // and drain everything still in flight so the capture is not truncated.
  const Time settle =
      std::max(stack->sim.now(), arm_time + gen.plan.down_horizon()) +
      detection_bound() + cfg_.detector.uplease_duration +
      (cfg_.depletion ? cfg_.depletion_grace : 0.0) +
      (cfg_.corruption || cfg_.membership ? detector.stabilization_bound()
                                          : 0.0) +
      // Proxy re-binding of a vacated cell can ride the parent path: two
      // consecutive silent uplease windows before the parent adopts it.
      (cfg_.membership ? 2.0 * dcfg.uplease_duration : 0.0);
  stack->sim.run_until(settle);
  const std::vector<core::GridCoord> split = detector.split_brains();
  const std::vector<core::GridCoord> unconverged =
      cfg_.corruption || cfg_.membership ? detector.unconverged_cells()
                                         : std::vector<core::GridCoord>{};
  const std::vector<core::GridCoord> member_violations =
      detector.membership_violations();
  const std::vector<emulation::ClaimRecord> claims = detector.claims();
  detector.stop();
  stack->sim.run();

  // ---- Invariants --------------------------------------------------------
  auto finding = [&res](std::string msg) {
    res.findings.push_back(std::move(msg));
  };
  if (sink.dropped() != 0) {
    finding("trace capture overflow: " + std::to_string(sink.dropped()) +
            " events lost");
  }
  if (stream) {
    if (!stream->close()) {
      finding("streaming trace capture failed: " + stream->error());
    } else if (stream->events() != sink.size() + sink.dropped()) {
      finding("streaming capture saw " + std::to_string(stream->events()) +
              " events, ring saw " +
              std::to_string(sink.size() + sink.dropped()));
    }
  }
  const std::vector<obs::TraceEvent> events = sink.events();
  res.events = events.size();

  std::ostringstream snap;
  registry.write_json(snap);
  const obs::analyze::JsonValue snapshot =
      obs::analyze::parse_json(snap.str());
  const auto merge = [&](const char* what,
                         const obs::analyze::CheckReport& report) {
    for (const std::string& issue : report.issues) {
      finding(std::string(what) + ": " + issue);
    }
  };
  merge("check_trace", obs::analyze::check_trace(events));
  merge("check_energy", obs::analyze::check_energy(events, snapshot));
  merge("check_reliability",
        obs::analyze::check_reliability(events, &snapshot));
  merge("check_failure_detection",
        obs::analyze::check_failure_detection(events));
  merge("check_depletion", obs::analyze::check_depletion(events));
  if (cfg_.corruption || cfg_.membership) {
    // Re-convergence within the analytic bound: no leadership churn after
    // the last disturbance plus the stabilization window. Strictly
    // increasing claim epochs per cell are already check_failure_detection
    // territory; split-brain and end-state agreement are asserted below.
    merge("check_stabilization", obs::analyze::check_stabilization(events));
    for (const core::GridCoord& c : unconverged) {
      finding("cell (" + std::to_string(c.row) + "," + std::to_string(c.col) +
              ") never re-converged: live members disagree on (leader, "
              "epoch) or the agreed leader is not serving");
    }
    // Worst corruption-to-quiet latency, for reporting and the convergence
    // bench: the last churn event each strike provoked within its window.
    // Membership mode counts belief/roster repair and adoption traffic as
    // churn too — a strike is only "quiet" once the views stop moving.
    std::vector<double> corrupt_times;
    std::vector<double> churn_times;
    for (const obs::TraceEvent& ev : events) {
      if (ev.category != obs::Category::kReliability) continue;
      if (ev.name == "fd.corrupt") {
        corrupt_times.push_back(ev.time);
      } else if (ev.name == "fd.elect" || ev.name == "fd.claim" ||
                 ev.name == "fd.audit_conflict" ||
                 ev.name == "fd.audit_heal" ||
                 ev.name == "fd.epoch_regress" ||
                 ev.name == "fd.lease_expire" ||
                 (cfg_.membership &&
                  (ev.name == "fd.member_heal" ||
                   ev.name == "fd.roster_heal" ||
                   ev.name == "fd.roster_conflict" ||
                   ev.name == "fd.adopt" || ev.name == "fd.adopt_bind"))) {
        churn_times.push_back(ev.time);
      }
    }
    const Time stab = detector.stabilization_bound();
    for (const double t : corrupt_times) {
      double last = t;
      for (const double c : churn_times) {
        if (c > t && c <= t + stab) last = std::max(last, c);
      }
      res.max_reconverge_latency =
          std::max(res.max_reconverge_latency, last - t);
    }
  }
  if (cfg_.membership) {
    // Trace-level membership oracle: quiescence after the reconciliation
    // deadline, every adoption accepted, every vacated cell re-bound.
    merge("check_membership", obs::analyze::check_membership(events));
    res.adoptions = detector.adoptions().size();
    res.adopt_binds = static_cast<std::size_t>(detector.adopt_binds());
    // Zero dark cells, beliefs and rosters inverse-consistent: the
    // protocol-restored all_cells_occupied invariant, checked end-state.
    for (const core::GridCoord& c : member_violations) {
      finding("membership violation in cell (" + std::to_string(c.row) +
              "," + std::to_string(c.col) +
              "): dark cell or belief/roster disagreement after settle");
    }
    // Each planned vacancy must have played out: the survivor adopted into
    // a neighboring cell within the stabilization bound, and the vacated
    // cell ended re-bound to a live proxy leader.
    const Time stab = detector.stabilization_bound();
    for (const TrackedCrash& tv : gen.vacancies) {
      const Time vacated_abs = arm_time + tv.at;
      const std::string tag =
          "vacated cell (" + std::to_string(tv.cell.row) + "," +
          std::to_string(tv.cell.col) + ") survivor " +
          std::to_string(tv.node);
      const emulation::AdoptionRecord* adoption = nullptr;
      for (const emulation::AdoptionRecord& a : detector.adoptions()) {
        if (a.node == tv.node && a.from == tv.cell && a.at >= vacated_abs) {
          adoption = &a;
          break;
        }
      }
      if (adoption == nullptr) {
        finding(tag + ": never adopted into a neighboring cell");
      } else {
        const Time latency = adoption->at - vacated_abs;
        if (latency > stab) {
          finding(tag + ": adoption latency " + std::to_string(latency) +
                  " exceeds stabilization bound " + std::to_string(stab));
        }
        res.max_adoption_latency =
            std::max(res.max_adoption_latency, latency);
      }
      const net::NodeId proxy = stack->overlay->bound_node(tv.cell);
      if (proxy == net::kNoNode || stack->link->is_down(proxy)) {
        finding(tag + ": cell left dark (no live proxy binding)");
      }
    }
  }

  res.split_brains = split.size();
  for (const core::GridCoord& c : split) {
    finding("split-brain in cell (" + std::to_string(c.row) + "," +
            std::to_string(c.col) +
            "): two live self-believed leaders at one epoch");
  }

  res.claims = claims.size();
  const Time bound = detection_bound();
  for (const TrackedCrash& tc : gen.leader_crashes) {
    const Time crash_abs = arm_time + tc.at;
    std::size_t count = 0;
    Time first = 0.0;
    for (const emulation::ClaimRecord& cl : claims) {
      if (cl.cell.row != tc.cell.row || cl.cell.col != tc.cell.col) continue;
      if (count == 0) first = cl.at;
      ++count;
    }
    const std::string tag =
        "leader crash in cell (" + std::to_string(tc.cell.row) + "," +
        std::to_string(tc.cell.col) + ") at t=" + std::to_string(crash_abs);
    if (count == 0) {
      finding(tag + ": no leadership claim followed");
      continue;
    }
    if (count > 1) {
      finding(tag + ": " + std::to_string(count) +
              " claims for the cell (expected exactly one election)");
    }
    const Time latency = first - crash_abs;
    if (latency < 0.0) {
      finding(tag + ": claim precedes the crash (spurious election)");
    } else if (latency > bound) {
      finding(tag + ": detection latency " + std::to_string(latency) +
              " exceeds bound " + std::to_string(bound));
    }
    res.max_detection_latency = std::max(res.max_detection_latency, latency);
  }

  res.depletions = monitor.deaths().size();
  for (const emulation::ClaimRecord& cl : claims) {
    if (cl.planned) ++res.planned_handoffs;
  }
  for (const TrackedCrash& td : gen.depletions) {
    const std::string tag = "budgeted leader " + std::to_string(td.node) +
                            " in cell (" + std::to_string(td.cell.row) + "," +
                            std::to_string(td.cell.col) + ")";
    const DepletionRecord* death = nullptr;
    for (const DepletionRecord& d : monitor.deaths()) {
      if (d.node == td.node) death = &d;
    }
    if (death == nullptr) {
      finding(tag + ": battery never ran out (campaign proves nothing; "
                    "raise depletion_grace or cut depletion_headroom)");
      continue;
    }
    // The tentpole invariant: with half the headroom reserved below the
    // low-water mark, the succession must commit while the retiring leader
    // is still alive — a planned claim deposing it strictly before its
    // depletion tick.
    bool planned_before_death = false;
    for (const emulation::ClaimRecord& cl : claims) {
      if (cl.cell.row != td.cell.row || cl.cell.col != td.cell.col) continue;
      if (cl.planned && cl.old_leader == td.node && cl.at < death->at) {
        planned_before_death = true;
      }
    }
    if (!planned_before_death) {
      finding(tag + ": no planned handoff preceded its depletion at t=" +
              std::to_string(death->at));
    }
  }

  if (partials->size() != cfg_.rounds) {
    finding("only " + std::to_string(partials->size()) + " of " +
            std::to_string(cfg_.rounds) + " reduce rounds closed");
  }
  for (const core::PartialResult& p : *partials) {
    res.stale_rejected += p.stale_rejected;
  }

  if (keep_trace || !res.findings.empty()) {
    std::ostringstream out;
    obs::write_jsonl(events, out);
    res.trace_jsonl = out.str();
  }
  return res;
}

}  // namespace wsn::sim
