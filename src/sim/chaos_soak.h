// Chaos-soak harness: randomized-but-replayable fault campaigns over the
// full physical stack, each checked against the trace oracle and the
// failure-detection invariants.
//
// Each campaign builds a fresh PhysicalStack-equivalent (seeded deployment,
// emulation, leader binding, overlay, ARQ, distributed FailureDetector),
// generates a FaultPlan from the campaign's own seeded RNG under a severity
// budget, runs deadline-bounded reduce rounds through the faults, lets the
// detector settle, and then asserts:
//   * every analyzer check over the captured trace (check_trace,
//     check_energy vs. a metrics snapshot, check_reliability,
//     check_failure_detection) is clean;
//   * no split-brain: at campaign end no two live nodes of one cell both
//     believe they lead it at the same epoch;
//   * every unrecovered leader crash with surviving members produced
//     exactly one leadership claim for that cell, within the detection
//     bound (lease + election + slack);
//   * the trace capture did not overflow (a truncated capture would make
//     the other checks vacuous).
//
// The plan generator is constrained to keep the paper's preconditions
// intact — it never removes a node whose loss would disconnect or empty its
// cell's member set (all_cells_occupied / all_cells_connected), except via
// region outages which take entire cells down atomically (an empty cell
// elects nobody; its parent suspects it and resumes it on recovery).
//
// Determinism: campaign k is fully determined by (config, base seed, k) —
// running it twice yields byte-identical JSONL traces (the replay test
// asserts this), and a failing campaign's plan JSON is enough to reproduce
// it offline with wsn-chaos / wsn-inspect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "emulation/failure_detector.h"
#include "net/topology_factory.h"
#include "sim/simulator.h"

namespace wsn::sim {

struct ChaosSoakConfig {
  // Stack shape (small enough that 25 campaigns stay cheap under ASan).
  std::size_t grid_side = 4;
  std::size_t node_count = 60;
  double range = 1.3;
  /// Base seed; campaign k derives everything from `seed + k`.
  std::uint64_t seed = 20260805;
  std::size_t campaigns = 25;
  /// Deadline-bounded reduce rounds run while faults fire.
  std::size_t rounds = 2;
  Time deadline = 120.0;
  /// Plan-generator spending cap: leader crash 1.5, member crash 0.75,
  /// loss burst ~ loss*duration/5, region outage 0.75/cell.
  double severity_budget = 4.0;
  std::size_t max_plan_events = 10;
  /// Ring capacity for the per-campaign capture; overflow is a finding.
  std::size_t trace_capacity = 1u << 19;
  /// When non-empty, each campaign additionally streams its capture to
  /// `<trace_out_dir>/campaign_<index>` as wtr segments (obs/stream_sink.h)
  /// through a TeeSink — the scale-capture path exercised under chaos. A
  /// sink failure is a campaign finding.
  std::string trace_out_dir;
  emulation::FailureDetectorConfig detector;

  /// Depletion mode: the generator additionally gives a few cells' bound
  /// leaders finite batteries (kSetBudget with `depletion_headroom` energy
  /// left), a DepletionMonitor turns the crossings into deaths, and the
  /// detector runs with proactive handoff at 60% of the headroom. The
  /// invariant pass then also asserts check_depletion, that every budgeted
  /// leader hands off (planned claim, old_leader == it) strictly before its
  /// battery dies, and that its cell never split-brains.
  bool depletion = false;
  std::size_t depletion_targets = 2;
  /// Energy left at the set_budget tick. A busy leader burns 1.5-2.5
  /// units/s (beats, flood forwards, ARQ acks, routed reduce traffic) and
  /// the handoff's own kElect flood storm costs it ~20 units more, so the
  /// reserve below the low-water mark must absorb both; see the low-water
  /// derivation in chaos_soak.cpp.
  double depletion_headroom = 80.0;
  /// Extra settle time so budgeted leaders actually drain to zero.
  Time depletion_grace = 400.0;

  /// Node-placement shape (net/topology_factory.h). kGrid reproduces the
  /// classic kOnePerCellPlus deployment byte-for-byte; ring/line/mesh/
  /// clique diversify cell adjacency and flood fan-out so the detector's
  /// invariants are soaked across structurally different networks.
  net::TopologyKind topology = net::TopologyKind::kGrid;

  /// Corruption mode: the generator emits *only* state_corruption events
  /// (seeded victim, seeded target profile), the detector runs with
  /// self-stabilization audits on (audit_period below, applied when the
  /// detector config leaves it 0), settle extends by the stabilization
  /// bound, and the oracle additionally asserts check_stabilization, full
  /// per-cell end-state agreement (unconverged_cells), and strictly
  /// increasing claim epochs per cell.
  bool corruption = false;
  std::size_t corruption_events = 3;
  double corruption_audit_period = 15.0;

  /// Membership mode: cell beliefs and leader rosters become live protocol
  /// state (detector.membership, audits on). The generator emits
  /// membership-target state_corruption strikes (defected beliefs,
  /// scrambled rosters) plus *vacancy* scenarios — every member of a
  /// victim cell except one non-leader follower crashes at the same
  /// instant, so the survivor orphans over a silent cell, must be adopted
  /// by the nearest reachable neighboring cell, and the vacated cell must
  /// be re-bound to a live proxy leader. The oracle then additionally
  /// asserts check_stabilization, per-cell end-state agreement, zero
  /// membership violations at settle (no dark cells, beliefs and rosters
  /// inverse-consistent), and one adoption per planned vacancy within the
  /// extended stabilization bound. The healthy-deployment precheck keeps
  /// all_cells_connected, unique_leaders, and an occupied collector cell
  /// but stops rejecting unoccupied cells — adoption is expected to
  /// restore coverage, so vacancy-at-start is a scenario, not a bad draw.
  bool membership = false;
  std::size_t membership_events = 3;     // membership corruption strikes
  std::size_t membership_vacancies = 1;  // cells vacated to force adoption
  double membership_audit_period = 15.0;
};

struct ChaosCampaignResult {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  std::string plan_json;              // FaultPlan::to_json of the campaign
  std::vector<std::string> findings;  // empty == campaign passed
  std::string trace_jsonl;  // captured events; filled only when requested
  // Stats for reporting / the detection-latency bench.
  std::size_t events = 0;
  std::size_t claims = 0;
  std::size_t leader_crashes = 0;
  std::size_t split_brains = 0;
  std::size_t depletions = 0;        // nodes whose battery ran out
  std::size_t planned_handoffs = 0;  // claims committed via proactive handoff
  std::uint64_t stale_rejected = 0;
  double max_detection_latency = 0.0;  // over tracked leader crashes; 0 if none
  std::string topology;                // deployment shape the campaign ran on
  std::size_t corruptions = 0;         // state_corruption events planned
  /// Worst corruption-to-last-churn latency (corruption mode): for each
  /// fd.corrupt at t, the last fd churn event in (t, t+bound]; 0 when a
  /// strike caused no churn at all (a benign scramble).
  double max_reconverge_latency = 0.0;
  /// Unhealthy stack draws discarded by the seed-retry loop before this
  /// campaign's deployment stuck (also surfaced as the soak.seeds_rejected
  /// gauge, so soak determinism stays auditable).
  std::uint64_t seeds_rejected = 0;
  std::size_t adoptions = 0;    // orphan adoptions committed (membership)
  std::size_t adopt_binds = 0;  // vacated cells re-bound to a proxy leader
  /// Worst vacancy-to-adoption latency over planned vacancies (membership
  /// mode); 0 when the plan carried none.
  double max_adoption_latency = 0.0;

  bool ok() const { return findings.empty(); }
};

struct ChaosSoakSummary {
  std::size_t campaigns = 0;
  std::size_t failed = 0;
  std::vector<ChaosCampaignResult> results;  // one per campaign, in order

  bool ok() const { return failed == 0; }
};

class ChaosSoak {
 public:
  explicit ChaosSoak(ChaosSoakConfig cfg = {}) : cfg_(cfg) {}

  const ChaosSoakConfig& config() const { return cfg_; }

  /// Upper bound on crash -> fd.claim latency asserted per campaign:
  /// worst-case remaining lease, the electing-grace re-arm, the staggered
  /// election close, plus propagation slack.
  Time detection_bound() const;

  /// Runs campaign `index` from scratch (fresh stack, fresh capture).
  /// `keep_trace` fills ChaosCampaignResult::trace_jsonl even on success
  /// (the replay determinism test diffs two runs byte-for-byte).
  ChaosCampaignResult run_campaign(std::size_t index,
                                   bool keep_trace = false) const;

  /// Runs every campaign; traces are retained only for failing campaigns.
  ChaosSoakSummary run() const;

 private:
  ChaosSoakConfig cfg_;
};

}  // namespace wsn::sim
