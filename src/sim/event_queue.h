// Time-ordered event queue for the discrete-event simulation kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

namespace wsn::sim {

/// Simulation time. One unit corresponds to one "unit of latency" of the
/// paper's uniform cost model (the time to transmit B units of data or
/// complete R computations).
using Time = double;

/// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

/// Min-heap of timestamped callbacks with FIFO tie-breaking.
///
/// Ties are broken by insertion order so that simulations are deterministic:
/// two events scheduled for the same instant fire in the order they were
/// scheduled.
///
/// Introspection accessors (live(), tombstones(), total_scheduled(),
/// peak_size(), cancelled_skips(), fired_clears()) exist for the kernel
/// telemetry gauges (obs/profiler, Simulator::register_metrics) and cost
/// nothing on the scheduling hot path beyond one max() per schedule.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(Time at, Callback fn) {
    const EventId id = next_id_++;
    heap_.push(Entry{at, id, std::move(fn)});
    ++live_;
    if (heap_.size() > peak_size_) peak_size_ = heap_.size();
    return id;
  }

  /// Marks the event as cancelled; it will be skipped when reached.
  /// Returns true if the event was live (issued, not yet fired or cancelled).
  bool cancel(EventId id) {
    if (id >= next_id_ || fired_.contains(id) || cancelled_.contains(id)) {
      return false;
    }
    cancelled_.insert(id);
    --live_;
    return true;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Live (scheduled, not yet fired or cancelled) events — size() under its
  /// telemetry name.
  std::size_t live() const { return live_; }

  /// Cancelled entries still physically in the heap, awaiting a lazy skip.
  /// Heap memory is live() + tombstones() entries; a high tombstone count
  /// means cancel-heavy traffic (ARQ timers) is bloating the kernel.
  std::size_t tombstones() const { return cancelled_.size(); }

  /// Events ever scheduled (== the next EventId to be issued).
  std::uint64_t total_scheduled() const { return next_id_; }

  /// High-water mark of the physical heap (live + tombstoned entries).
  std::size_t peak_size() const { return peak_size_; }

  /// Tombstoned entries lazily dropped while popping/peeking — the hidden
  /// per-pop overhead a calendar-queue rewrite must also beat.
  std::uint64_t cancelled_skips() const { return cancelled_skips_; }

  /// Times the fired-id set hit its bound and was cleared (see
  /// remember_fired). Nonzero means cancel(id) of a long-fired id may have
  /// returned true again.
  std::uint64_t fired_clears() const { return fired_clears_; }

  /// Time of the next live event. Requires !empty().
  Time next_time() {
    drop_cancelled();
    return heap_.top().at;
  }

  /// Pops and returns the next live event. Requires !empty().
  std::pair<Time, Callback> pop() {
    drop_cancelled();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    remember_fired(top.id);
    return {top.at, std::move(top.fn)};
  }

 private:
  struct Entry {
    Time at;
    EventId id;
    Callback fn;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  void drop_cancelled() {
    while (!heap_.empty() && cancelled_.contains(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      ++cancelled_skips_;
      heap_.pop();
    }
  }

  // The fired set exists only to make double-cancel well defined: cancel()
  // must return false for an id that already fired, and the only record
  // that it fired is this set. Long simulations would grow it without
  // bound, so it is cleared once it passes 2^20 ids. The trade-off is a
  // rare visible edge: after a clear, cancelling an id that fired *before*
  // the clear no longer hits the fired check, and — because live_ is
  // decremented and a tombstone inserted for an id that is not in the heap
  // — the queue under-counts until that tombstone is garbage-collected by
  // a later pop at the same heap position (in practice: never). The
  // fired_clears() counter makes the heuristic observable instead of
  // mysterious; callers that cancel very stale ids can check it.
  void remember_fired(EventId id) {
    if (fired_.size() > kFiredClearThreshold) {
      fired_.clear();
      ++fired_clears_;
    }
    fired_.insert(id);
  }

  static constexpr std::size_t kFiredClearThreshold = 1u << 20;

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> fired_;
  EventId next_id_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_size_ = 0;
  std::uint64_t cancelled_skips_ = 0;
  std::uint64_t fired_clears_ = 0;
};

}  // namespace wsn::sim
