// Time-ordered event queue for the discrete-event simulation kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

namespace wsn::sim {

/// Simulation time. One unit corresponds to one "unit of latency" of the
/// paper's uniform cost model (the time to transmit B units of data or
/// complete R computations).
using Time = double;

/// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

/// Min-heap of timestamped callbacks with FIFO tie-breaking.
///
/// Ties are broken by insertion order so that simulations are deterministic:
/// two events scheduled for the same instant fire in the order they were
/// scheduled.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(Time at, Callback fn) {
    const EventId id = next_id_++;
    heap_.push(Entry{at, id, std::move(fn)});
    ++live_;
    return id;
  }

  /// Marks the event as cancelled; it will be skipped when reached.
  /// Returns true if the event was live (issued, not yet fired or cancelled).
  bool cancel(EventId id) {
    if (id >= next_id_ || fired_.contains(id) || cancelled_.contains(id)) {
      return false;
    }
    cancelled_.insert(id);
    --live_;
    return true;
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Time of the next live event. Requires !empty().
  Time next_time() {
    drop_cancelled();
    return heap_.top().at;
  }

  /// Pops and returns the next live event. Requires !empty().
  std::pair<Time, Callback> pop() {
    drop_cancelled();
    Entry top = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    --live_;
    remember_fired(top.id);
    return {top.at, std::move(top.fn)};
  }

 private:
  struct Entry {
    Time at;
    EventId id;
    Callback fn;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  void drop_cancelled() {
    while (!heap_.empty() && cancelled_.contains(heap_.top().id)) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
  }

  void remember_fired(EventId id) {
    // The fired set exists only to make double-cancel well defined; keep it
    // from growing without bound in long simulations.
    if (fired_.size() > 1u << 20) fired_.clear();
    fired_.insert(id);
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> fired_;
  EventId next_id_ = 0;
  std::size_t live_ = 0;
};

}  // namespace wsn::sim
