#include "sim/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/virtual_network.h"
#include "emulation/cell_mapper.h"
#include "net/link_layer.h"
#include "obs/analyze/json_reader.h"
#include "obs/trace.h"

namespace wsn::sim {

namespace {

using obs::analyze::JsonValue;

double num_field(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v == nullptr ? fallback : v->number();
}

// The parsed JsonValue tree carries no source positions, so error messages
// recover them with a second, purely lexical pass: walk the raw text
// tracking line number, string/escape state, and brace depth, and record the
// line on which each object element of the top-level "events" array opens.
// Returns one line per '{' element, in order; callers index by event number
// and fall back to "line unknown" on any mismatch.
std::vector<std::size_t> event_start_lines(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t line = 1;
  bool in_string = false;
  bool escape = false;
  std::string current;      // content of the string literal being scanned
  std::string last_string;  // most recently completed string literal
  int depth = 0;
  int events_depth = -1;  // depth of elements inside the events array
  bool events_key_pending = false;  // saw `"events"` `:`, awaiting '['
  bool expecting_element = false;
  for (const char ch : text) {
    if (ch == '\n') ++line;
    if (in_string) {
      if (escape) {
        escape = false;
      } else if (ch == '\\') {
        escape = true;
      } else if (ch == '"') {
        in_string = false;
        last_string = current;
      } else {
        current.push_back(ch);
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_string = true;
        current.clear();
        events_key_pending = false;
        break;
      case ':':
        if (depth == 1 && last_string == "events" && events_depth < 0) {
          events_key_pending = true;
        }
        break;
      case '[':
        if (events_key_pending) {
          events_depth = depth + 1;
          expecting_element = true;
          events_key_pending = false;
        }
        ++depth;
        break;
      case '{':
        if (depth == events_depth && expecting_element) {
          out.push_back(line);
          expecting_element = false;
        }
        events_key_pending = false;
        ++depth;
        break;
      case ']':
        --depth;
        if (events_depth >= 0 && depth < events_depth) {
          events_depth = -1;  // left the events array; don't re-enter
        }
        break;
      case '}':
        --depth;
        break;
      case ',':
        if (depth == events_depth) expecting_element = true;
        break;
      default:
        if (!std::isspace(static_cast<unsigned char>(ch))) {
          events_key_pending = false;
        }
        break;
    }
  }
  return out;
}

[[noreturn]] void fail_event(std::size_t line, std::size_t index,
                             const std::string& msg) {
  std::string where = "fault plan";
  if (line > 0) where += " line " + std::to_string(line);
  // 1-based for humans: "event #1" is the first element of "events".
  where += ", event #" + std::to_string(index + 1);
  throw std::runtime_error(where + ": " + msg);
}

void append_number(std::string& out, double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

void trace_fault(Simulator& sim, const char* name, std::int64_t node,
                 std::vector<obs::Attr> attrs) {
  auto& tr = obs::tracer();
  if (!tr.enabled(obs::Category::kReliability)) return;
  tr.emit({sim.now(), node, obs::Category::kReliability, 'i', name, 0,
           std::move(attrs)});
}

}  // namespace

FaultPlan FaultPlan::from_json(const std::string& text) {
  const JsonValue doc = obs::analyze::parse_json(text);
  const JsonValue* events = doc.find("events");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error("fault plan: missing \"events\" array");
  }
  const std::vector<std::size_t> lines = event_start_lines(text);
  const auto line_of = [&](std::size_t i) {
    return i < lines.size() ? lines[i] : std::size_t{0};
  };
  FaultPlan plan;
  for (std::size_t i = 0; i < events->array().size(); ++i) {
    const JsonValue& e = events->array()[i];
    const std::size_t line = line_of(i);
    const JsonValue* kind = e.find("kind");
    if (kind == nullptr || !kind->is_string()) {
      fail_event(line, i, "event without a \"kind\"");
    }
    FaultEvent ev;
    ev.at = num_field(e, "at", 0.0);
    if (ev.at < 0.0) {
      fail_event(line, i, "negative time " + std::to_string(ev.at));
    }
    const std::string& k = kind->string();
    if (k == "crash" || k == "recover") {
      ev.kind = k == "crash" ? FaultKind::kCrash : FaultKind::kRecover;
      if (const JsonValue* cell = e.find("cell")) {
        ev.cell = {static_cast<std::int32_t>(num_field(*cell, "row", -1.0)),
                   static_cast<std::int32_t>(num_field(*cell, "col", -1.0))};
        if (ev.cell.row < 0 || ev.cell.col < 0) {
          fail_event(line, i, "cell needs row and col >= 0");
        }
      } else {
        const double node = num_field(e, "node", -1.0);
        if (node < 0) {
          fail_event(line, i, k + " needs \"node\" or \"cell\"");
        }
        ev.node = static_cast<net::NodeId>(node);
      }
    } else if (k == "loss_burst") {
      ev.kind = FaultKind::kLossBurst;
      ev.loss = num_field(e, "loss", 0.0);
      ev.duration = num_field(e, "duration", 0.0);
      if (ev.loss < 0.0 || ev.loss > 1.0) {
        fail_event(line, i, "loss must be in [0, 1]");
      }
      if (ev.duration < 0.0) {
        fail_event(line, i,
                   "negative duration " + std::to_string(ev.duration));
      }
    } else if (k == "region_outage") {
      ev.kind = FaultKind::kRegionOutage;
      ev.duration = num_field(e, "duration", 0.0);
      ev.row0 = static_cast<std::int32_t>(num_field(e, "row0", 0.0));
      ev.col0 = static_cast<std::int32_t>(num_field(e, "col0", 0.0));
      ev.row1 = static_cast<std::int32_t>(num_field(e, "row1", 0.0));
      ev.col1 = static_cast<std::int32_t>(num_field(e, "col1", 0.0));
      if (ev.row1 < ev.row0 || ev.col1 < ev.col0) {
        fail_event(line, i, "empty region rectangle");
      }
      if (ev.duration < 0.0) {
        fail_event(line, i,
                   "negative duration " + std::to_string(ev.duration));
      }
    } else if (k == "set_budget") {
      ev.kind = FaultKind::kSetBudget;
      if (const JsonValue* cell = e.find("cell")) {
        ev.cell = {static_cast<std::int32_t>(num_field(*cell, "row", -1.0)),
                   static_cast<std::int32_t>(num_field(*cell, "col", -1.0))};
        if (ev.cell.row < 0 || ev.cell.col < 0) {
          fail_event(line, i, "cell needs row and col >= 0");
        }
      } else {
        const double node = num_field(e, "node", -1.0);
        if (node < 0) {
          fail_event(line, i, "set_budget needs \"node\" or \"cell\"");
        }
        ev.node = static_cast<net::NodeId>(node);
      }
      const bool has_budget = e.find("budget") != nullptr;
      const bool has_headroom = e.find("headroom") != nullptr;
      if (has_budget == has_headroom) {
        fail_event(line, i,
                   "set_budget needs exactly one of \"budget\" or "
                   "\"headroom\"");
      }
      if (has_budget) {
        ev.budget = num_field(e, "budget", -1.0);
        if (ev.budget < 0.0) {
          fail_event(line, i,
                     "negative budget " + std::to_string(ev.budget));
        }
      } else {
        ev.headroom = num_field(e, "headroom", -1.0);
        if (ev.headroom < 0.0) {
          fail_event(line, i,
                     "negative headroom " + std::to_string(ev.headroom));
        }
      }
    } else if (k == "state_corruption") {
      ev.kind = FaultKind::kStateCorruption;
      if (const JsonValue* cell = e.find("cell")) {
        ev.cell = {static_cast<std::int32_t>(num_field(*cell, "row", -1.0)),
                   static_cast<std::int32_t>(num_field(*cell, "col", -1.0))};
        if (ev.cell.row < 0 || ev.cell.col < 0) {
          fail_event(line, i, "cell needs row and col >= 0");
        }
      } else {
        const double node = num_field(e, "node", -1.0);
        if (node < 0) {
          fail_event(line, i, "state_corruption needs \"node\" or \"cell\"");
        }
        ev.node = static_cast<net::NodeId>(node);
      }
      const JsonValue* target = e.find("target");
      if (target == nullptr || !target->is_string()) {
        fail_event(line, i, "state_corruption needs a \"target\" string");
      }
      if (!parse_corruption_target(target->string(), ev.target)) {
        fail_event(line, i,
                   "unknown corruption target \"" + target->string() +
                       "\" (want epoch/leader/routes/leases/membership)");
      }
    } else {
      fail_event(line, i, "unknown kind \"" + k + "\"");
    }
    plan.events.push_back(ev);
  }
  // Reject a node-targeted crash scheduled while that node is already down
  // from an earlier crash with no recover in between: the second crash would
  // silently no-op at runtime, which always means the plan author got the
  // overlap wrong. Cell-targeted and region events resolve their node sets
  // at fire time, so they can't be checked statically and are skipped here.
  std::vector<std::size_t> order(plan.events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return plan.events[a].at < plan.events[b].at;
  });
  std::map<net::NodeId, bool> down;
  for (const std::size_t i : order) {
    const FaultEvent& ev = plan.events[i];
    if (ev.node == net::kNoNode) continue;
    if (ev.kind == FaultKind::kCrash) {
      if (down[ev.node]) {
        fail_event(line_of(i), i,
                   "crash of node " + std::to_string(ev.node) + " at t=" +
                       std::to_string(ev.at) +
                       " overlaps an earlier crash with no recover between");
      }
      down[ev.node] = true;
    } else if (ev.kind == FaultKind::kRecover) {
      down[ev.node] = false;
    }
  }
  return plan;
}

std::string FaultPlan::to_json() const {
  std::string out = "{\"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"at\": ";
    append_number(out, ev.at);
    switch (ev.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        out += ev.kind == FaultKind::kCrash ? ", \"kind\": \"crash\""
                                            : ", \"kind\": \"recover\"";
        if (ev.node != net::kNoNode) {
          out += ", \"node\": " + std::to_string(ev.node);
        } else {
          out += ", \"cell\": {\"row\": " + std::to_string(ev.cell.row) +
                 ", \"col\": " + std::to_string(ev.cell.col) + "}";
        }
        break;
      case FaultKind::kLossBurst:
        out += ", \"kind\": \"loss_burst\", \"loss\": ";
        append_number(out, ev.loss);
        out += ", \"duration\": ";
        append_number(out, ev.duration);
        break;
      case FaultKind::kRegionOutage:
        out += ", \"kind\": \"region_outage\"";
        out += ", \"row0\": " + std::to_string(ev.row0);
        out += ", \"col0\": " + std::to_string(ev.col0);
        out += ", \"row1\": " + std::to_string(ev.row1);
        out += ", \"col1\": " + std::to_string(ev.col1);
        out += ", \"duration\": ";
        append_number(out, ev.duration);
        break;
      case FaultKind::kSetBudget:
        out += ", \"kind\": \"set_budget\"";
        if (ev.node != net::kNoNode) {
          out += ", \"node\": " + std::to_string(ev.node);
        } else {
          out += ", \"cell\": {\"row\": " + std::to_string(ev.cell.row) +
                 ", \"col\": " + std::to_string(ev.cell.col) + "}";
        }
        if (ev.budget >= 0.0) {
          out += ", \"budget\": ";
          append_number(out, ev.budget);
        } else {
          out += ", \"headroom\": ";
          append_number(out, ev.headroom);
        }
        break;
      case FaultKind::kStateCorruption:
        out += ", \"kind\": \"state_corruption\"";
        if (ev.node != net::kNoNode) {
          out += ", \"node\": " + std::to_string(ev.node);
        } else {
          out += ", \"cell\": {\"row\": " + std::to_string(ev.cell.row) +
                 ", \"col\": " + std::to_string(ev.cell.col) + "}";
        }
        out += ", \"target\": \"";
        out += to_string(ev.target);
        out += "\"";
        break;
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Time FaultPlan::down_horizon() const {
  Time horizon = 0.0;
  for (const FaultEvent& ev : events) {
    switch (ev.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
      case FaultKind::kSetBudget:
      case FaultKind::kStateCorruption:
        horizon = std::max(horizon, ev.at);
        break;
      case FaultKind::kRegionOutage:
        horizon = std::max(horizon, ev.at + ev.duration);
        break;
      case FaultKind::kLossBurst:
        break;  // links stay up; no outage to wait out
    }
  }
  return horizon;
}

FaultInjector::FaultInjector(Simulator& sim, net::LinkLayer& link,
                             const emulation::CellMapper* mapper)
    : sim_(sim), link_(&link), mapper_(mapper) {}

FaultInjector::FaultInjector(Simulator& sim, core::VirtualNetwork& vnet)
    : sim_(sim), vnet_(&vnet) {}

void FaultInjector::register_metrics(obs::MetricsRegistry& registry,
                                     const std::string& prefix) const {
  registry.add_counters(prefix + ".counters", &counters_);
}

bool FaultInjector::is_node_down(net::NodeId node) const {
  if (link_ != nullptr) return link_->is_down(node);
  return vnet_->is_down(vnet_->grid().coord_of(node));
}

void FaultInjector::apply_down(net::NodeId node, bool down,
                               const char* trace_name) {
  if (link_ != nullptr) {
    link_->set_down(node, down);
  } else {
    vnet_->set_down(vnet_->grid().coord_of(node), down);
  }
  counters_.add(down ? "fault.crash" : "fault.recover");
  trace_fault(sim_, trace_name, static_cast<std::int64_t>(node), {});
}

void FaultInjector::fire(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kCrash:
    case FaultKind::kRecover: {
      net::NodeId target = ev.node;
      if (target == net::kNoNode) {
        if (!leader_lookup_) {
          throw std::runtime_error(
              "FaultInjector: cell-targeted event without a leader lookup");
        }
        target = leader_lookup_(ev.cell);
        if (target == net::kNoNode) {
          counters_.add("fault.unresolved");
          return;  // cell has no bound leader right now; nothing to crash
        }
      }
      apply_down(target, ev.kind == FaultKind::kCrash,
                 ev.kind == FaultKind::kCrash ? "fault.crash"
                                              : "fault.recover");
      return;
    }
    case FaultKind::kSetBudget: {
      net::NodeId target = ev.node;
      if (target == net::kNoNode) {
        if (!leader_lookup_) {
          throw std::runtime_error(
              "FaultInjector: cell-targeted event without a leader lookup");
        }
        target = leader_lookup_(ev.cell);
        if (target == net::kNoNode) {
          counters_.add("fault.unresolved");
          return;  // cell has no bound leader right now; nothing to budget
        }
      }
      net::EnergyLedger& ledger =
          link_ != nullptr ? link_->ledger() : vnet_->ledger();
      // "headroom" resolves against the target's spend at this very tick:
      // the node gets exactly that much energy left, however much setup
      // and protocol traffic it already paid for.
      const double budget = ev.budget >= 0.0
                                ? ev.budget
                                : ledger.spent(target) + ev.headroom;
      counters_.add("fault.set_budget");
      trace_fault(sim_, "fault.set_budget",
                  static_cast<std::int64_t>(target),
                  {{"budget", budget}, {"spent", ledger.spent(target)}});
      ledger.set_budget(target, budget);
      return;
    }
    case FaultKind::kStateCorruption: {
      net::NodeId target = ev.node;
      if (target == net::kNoNode) {
        if (!leader_lookup_) {
          throw std::runtime_error(
              "FaultInjector: cell-targeted event without a leader lookup");
        }
        target = leader_lookup_(ev.cell);
        if (target == net::kNoNode) {
          counters_.add("fault.unresolved");
          return;  // cell has no bound leader right now; nothing to corrupt
        }
      }
      // Corruption scrambles *soft* state on a live node; a down node has
      // no live state to scramble, and its rejoin path resynchronizes from
      // the network anyway.
      if (is_node_down(target)) {
        counters_.add("fault.corrupt_down");
        return;
      }
      if (!corruption_applier_) {
        counters_.add("fault.corrupt_unwired");
        return;
      }
      counters_.add("fault.corrupt");
      trace_fault(sim_, "fault.corrupt", static_cast<std::int64_t>(target),
                  {{"target", std::string(to_string(ev.target))}});
      corruption_applier_(target, ev.target);
      return;
    }
    case FaultKind::kLossBurst: {
      if (link_ == nullptr) {
        counters_.add("fault.skipped");  // virtual layer is lossless
        return;
      }
      counters_.add("fault.burst");
      const double prev = link_->loss_probability();
      link_->set_loss_probability(ev.loss);
      trace_fault(sim_, "fault.burst_begin", -1,
                  {{"loss", ev.loss}, {"duration", ev.duration}});
      net::LinkLayer* link = link_;
      Simulator* sim = &sim_;
      sim_.schedule_in(ev.duration, [link, sim, prev]() {
        link->set_loss_probability(prev);
        trace_fault(*sim, "fault.burst_end", -1, {{"loss", prev}});
      });
      return;
    }
    case FaultKind::kRegionOutage: {
      counters_.add("fault.outage");
      trace_fault(sim_, "fault.outage_begin", -1,
                  {{"row0", static_cast<std::int64_t>(ev.row0)},
                   {"col0", static_cast<std::int64_t>(ev.col0)},
                   {"row1", static_cast<std::int64_t>(ev.row1)},
                   {"col1", static_cast<std::int64_t>(ev.col1)},
                   {"duration", ev.duration}});
      // Expand to per-node crash/recover so downstream invariants (no
      // delivery inside a crash window) see uniform fault.crash events.
      auto affected = std::make_shared<std::vector<net::NodeId>>();
      auto in_region = [&](const core::GridCoord& c) {
        return c.row >= ev.row0 && c.row <= ev.row1 && c.col >= ev.col0 &&
               c.col <= ev.col1;
      };
      if (link_ != nullptr) {
        if (mapper_ == nullptr) {
          throw std::runtime_error(
              "FaultInjector: region outage needs a CellMapper");
        }
        for (net::NodeId i = 0; i < link_->graph().node_count(); ++i) {
          if (!link_->is_down(i) && in_region(mapper_->cell_of(i))) {
            affected->push_back(i);
          }
        }
      } else {
        for (std::size_t i = 0; i < vnet_->grid().node_count(); ++i) {
          const core::GridCoord c = vnet_->grid().coord_of(i);
          if (!vnet_->is_down(c) && in_region(c)) {
            affected->push_back(static_cast<net::NodeId>(i));
          }
        }
      }
      for (net::NodeId n : *affected) apply_down(n, true, "fault.crash");
      sim_.schedule_in(ev.duration, [this, affected]() {
        for (net::NodeId n : *affected) apply_down(n, false, "fault.recover");
        trace_fault(sim_, "fault.outage_end", -1, {});
      });
      return;
    }
  }
}

void FaultInjector::arm(const FaultPlan& plan) {
  // `at` is an offset from the campaign start (arm time): plans are written
  // without knowing how much simulated time stack setup consumed.
  for (const FaultEvent& ev : plan.events) {
    sim_.schedule_in(std::max(ev.at, 0.0), [this, ev]() { fire(ev); });
  }
}

}  // namespace wsn::sim
