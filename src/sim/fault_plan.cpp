#include "sim/fault_plan.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/virtual_network.h"
#include "emulation/cell_mapper.h"
#include "net/link_layer.h"
#include "obs/analyze/json_reader.h"
#include "obs/trace.h"

namespace wsn::sim {

namespace {

using obs::analyze::JsonValue;

double num_field(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v == nullptr ? fallback : v->number();
}

void trace_fault(Simulator& sim, const char* name, std::int64_t node,
                 std::vector<obs::Attr> attrs) {
  auto& tr = obs::tracer();
  if (!tr.enabled(obs::Category::kReliability)) return;
  tr.emit({sim.now(), node, obs::Category::kReliability, 'i', name, 0,
           std::move(attrs)});
}

}  // namespace

FaultPlan FaultPlan::from_json(const std::string& text) {
  const JsonValue doc = obs::analyze::parse_json(text);
  const JsonValue* events = doc.find("events");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error("fault plan: missing \"events\" array");
  }
  FaultPlan plan;
  for (const JsonValue& e : events->array()) {
    const JsonValue* kind = e.find("kind");
    if (kind == nullptr || !kind->is_string()) {
      throw std::runtime_error("fault plan: event without a \"kind\"");
    }
    FaultEvent ev;
    ev.at = num_field(e, "at", 0.0);
    const std::string& k = kind->string();
    if (k == "crash" || k == "recover") {
      ev.kind = k == "crash" ? FaultKind::kCrash : FaultKind::kRecover;
      if (const JsonValue* cell = e.find("cell")) {
        ev.cell = {static_cast<std::int32_t>(num_field(*cell, "row", -1.0)),
                   static_cast<std::int32_t>(num_field(*cell, "col", -1.0))};
        if (ev.cell.row < 0 || ev.cell.col < 0) {
          throw std::runtime_error("fault plan: cell needs row and col >= 0");
        }
      } else {
        const double node = num_field(e, "node", -1.0);
        if (node < 0) {
          throw std::runtime_error("fault plan: " + k +
                                   " needs \"node\" or \"cell\"");
        }
        ev.node = static_cast<net::NodeId>(node);
      }
    } else if (k == "loss_burst") {
      ev.kind = FaultKind::kLossBurst;
      ev.loss = num_field(e, "loss", 0.0);
      ev.duration = num_field(e, "duration", 0.0);
      if (ev.loss < 0.0 || ev.loss > 1.0) {
        throw std::runtime_error("fault plan: loss must be in [0, 1]");
      }
    } else if (k == "region_outage") {
      ev.kind = FaultKind::kRegionOutage;
      ev.duration = num_field(e, "duration", 0.0);
      ev.row0 = static_cast<std::int32_t>(num_field(e, "row0", 0.0));
      ev.col0 = static_cast<std::int32_t>(num_field(e, "col0", 0.0));
      ev.row1 = static_cast<std::int32_t>(num_field(e, "row1", 0.0));
      ev.col1 = static_cast<std::int32_t>(num_field(e, "col1", 0.0));
      if (ev.row1 < ev.row0 || ev.col1 < ev.col0) {
        throw std::runtime_error("fault plan: empty region rectangle");
      }
    } else {
      throw std::runtime_error("fault plan: unknown kind \"" + k + "\"");
    }
    plan.events.push_back(ev);
  }
  return plan;
}

FaultInjector::FaultInjector(Simulator& sim, net::LinkLayer& link,
                             const emulation::CellMapper* mapper)
    : sim_(sim), link_(&link), mapper_(mapper) {}

FaultInjector::FaultInjector(Simulator& sim, core::VirtualNetwork& vnet)
    : sim_(sim), vnet_(&vnet) {}

void FaultInjector::register_metrics(obs::MetricsRegistry& registry,
                                     const std::string& prefix) const {
  registry.add_counters(prefix + ".counters", &counters_);
}

bool FaultInjector::is_node_down(net::NodeId node) const {
  if (link_ != nullptr) return link_->is_down(node);
  return vnet_->is_down(vnet_->grid().coord_of(node));
}

void FaultInjector::apply_down(net::NodeId node, bool down,
                               const char* trace_name) {
  if (link_ != nullptr) {
    link_->set_down(node, down);
  } else {
    vnet_->set_down(vnet_->grid().coord_of(node), down);
  }
  counters_.add(down ? "fault.crash" : "fault.recover");
  trace_fault(sim_, trace_name, static_cast<std::int64_t>(node), {});
}

void FaultInjector::fire(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kCrash:
    case FaultKind::kRecover: {
      net::NodeId target = ev.node;
      if (target == net::kNoNode) {
        if (!leader_lookup_) {
          throw std::runtime_error(
              "FaultInjector: cell-targeted event without a leader lookup");
        }
        target = leader_lookup_(ev.cell);
        if (target == net::kNoNode) {
          counters_.add("fault.unresolved");
          return;  // cell has no bound leader right now; nothing to crash
        }
      }
      apply_down(target, ev.kind == FaultKind::kCrash,
                 ev.kind == FaultKind::kCrash ? "fault.crash"
                                              : "fault.recover");
      return;
    }
    case FaultKind::kLossBurst: {
      if (link_ == nullptr) {
        counters_.add("fault.skipped");  // virtual layer is lossless
        return;
      }
      counters_.add("fault.burst");
      const double prev = link_->loss_probability();
      link_->set_loss_probability(ev.loss);
      trace_fault(sim_, "fault.burst_begin", -1,
                  {{"loss", ev.loss}, {"duration", ev.duration}});
      net::LinkLayer* link = link_;
      Simulator* sim = &sim_;
      sim_.schedule_in(ev.duration, [link, sim, prev]() {
        link->set_loss_probability(prev);
        trace_fault(*sim, "fault.burst_end", -1, {{"loss", prev}});
      });
      return;
    }
    case FaultKind::kRegionOutage: {
      counters_.add("fault.outage");
      trace_fault(sim_, "fault.outage_begin", -1,
                  {{"row0", static_cast<std::int64_t>(ev.row0)},
                   {"col0", static_cast<std::int64_t>(ev.col0)},
                   {"row1", static_cast<std::int64_t>(ev.row1)},
                   {"col1", static_cast<std::int64_t>(ev.col1)},
                   {"duration", ev.duration}});
      // Expand to per-node crash/recover so downstream invariants (no
      // delivery inside a crash window) see uniform fault.crash events.
      auto affected = std::make_shared<std::vector<net::NodeId>>();
      auto in_region = [&](const core::GridCoord& c) {
        return c.row >= ev.row0 && c.row <= ev.row1 && c.col >= ev.col0 &&
               c.col <= ev.col1;
      };
      if (link_ != nullptr) {
        if (mapper_ == nullptr) {
          throw std::runtime_error(
              "FaultInjector: region outage needs a CellMapper");
        }
        for (net::NodeId i = 0; i < link_->graph().node_count(); ++i) {
          if (!link_->is_down(i) && in_region(mapper_->cell_of(i))) {
            affected->push_back(i);
          }
        }
      } else {
        for (std::size_t i = 0; i < vnet_->grid().node_count(); ++i) {
          const core::GridCoord c = vnet_->grid().coord_of(i);
          if (!vnet_->is_down(c) && in_region(c)) {
            affected->push_back(static_cast<net::NodeId>(i));
          }
        }
      }
      for (net::NodeId n : *affected) apply_down(n, true, "fault.crash");
      sim_.schedule_in(ev.duration, [this, affected]() {
        for (net::NodeId n : *affected) apply_down(n, false, "fault.recover");
        trace_fault(sim_, "fault.outage_end", -1, {});
      });
      return;
    }
  }
}

void FaultInjector::arm(const FaultPlan& plan) {
  // `at` is an offset from the campaign start (arm time): plans are written
  // without knowing how much simulated time stack setup consumed.
  for (const FaultEvent& ev : plan.events) {
    sim_.schedule_in(std::max(ev.at, 0.0), [this, ev]() { fire(ev); });
  }
}

}  // namespace wsn::sim
