// Deterministic pseudo-random number generation for simulations.
//
// All randomness in the library flows through `Rng` so that every experiment
// is bit-reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded via SplitMix64, which is the recommended seeding
// procedure for the xoshiro family.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace wsn::sim {

/// Deterministic 64-bit PRNG (xoshiro256**, SplitMix64-seeded).
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can also be
/// used with <random> distributions, although the convenience members below
/// cover every need of this library.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire stream is determined by `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from `seed`, restarting the stream.
  void reseed(std::uint64_t seed) {
    // SplitMix64: guarantees a well-mixed, non-zero xoshiro state even for
    // adversarial seeds such as 0.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) {
    std::uint64_t x = operator()();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = operator()();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (no trig, deterministic).
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derives an independent child stream; useful for giving each node its
  /// own generator while preserving whole-simulation determinism.
  Rng split() { return Rng(operator()() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace wsn::sim
