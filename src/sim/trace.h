// Lightweight counters and statistics used across protocols and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace wsn::sim {

/// Named monotonic counters, e.g. "msg.broadcast", "msg.suppressed".
/// Backed by a hash map — add() on the hot path costs one hash, not a
/// red-black-tree walk; use sorted() where deterministic order matters.
class CounterSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }

  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void reset() { counters_.clear(); }

  /// Merges another set into this one (e.g. aggregating per-node counter
  /// sets) without re-hashing keys already present.
  CounterSet& operator+=(const CounterSet& other) {
    for (const auto& [name, value] : other.counters_) {
      counters_[name] += value;
    }
    return *this;
  }

  const std::unordered_map<std::string, std::uint64_t>& all() const {
    return counters_;
  }

  /// Key-sorted copy for deterministic iteration (exports, table output).
  std::vector<std::pair<std::string, std::uint64_t>> sorted() const {
    std::vector<std::pair<std::string, std::uint64_t>> out(counters_.begin(),
                                                           counters_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_map<std::string, std::uint64_t> counters_;
};

/// Streaming summary statistics (Welford) plus min/max.
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double range() const { return n_ == 0 ? 0.0 : max_ - min_; }

  /// Coefficient of variation; the paper's "energy balance" concern is
  /// captured by this dimensionless spread measure.
  double cv() const { return mean() == 0.0 ? 0.0 : stddev() / mean(); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Computes a least-squares linear fit y = a + b*x; used by benches to check
/// scaling claims (e.g. steps linear in sqrt(N)).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};

inline LinearFit fit_line(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  LinearFit f;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return f;
  double sx = 0;
  double sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0;
  double sxy = 0;
  double syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0) return f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r2 = syy == 0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return f;
}

}  // namespace wsn::sim
