// Discrete-event simulator: the execution substrate for both the virtual
// architecture layer and the physical network layer.
//
// This stands in for the ns-3/OMNeT++-class simulator the reproduction bands
// call for: a single-threaded event loop with a virtual clock, deterministic
// tie-breaking, and a seeded RNG, sufficient to measure the latency and
// energy quantities the paper's cost model defines.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace wsn::sim {

/// Single-threaded discrete-event simulator.
///
/// Usage:
///   Simulator sim(seed);
///   sim.post([&]{ ... });                 // at current time
///   sim.schedule_in(2.5, [&]{ ... });     // relative delay
///   sim.run();                            // until the queue drains
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Time now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, EventQueue::Callback fn) {
    if (at < now_) {
      throw std::invalid_argument("Simulator: cannot schedule in the past");
    }
    return queue_.schedule(at, std::move(fn));
  }

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_in(Time delay, EventQueue::Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at the current time (after already-pending events at
  /// this instant, preserving FIFO order).
  EventId post(EventQueue::Callback fn) {
    return queue_.schedule(now_, std::move(fn));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Read-only kernel introspection (depth, tombstones, peak, skip counts)
  /// for the telemetry gauges.
  const EventQueue& queue() const { return queue_; }

  /// Runs one event. Returns false if the queue was empty.
  bool step() {
    if (queue_.empty()) return false;
    // The profiler span covers the whole dispatch — pop (heap sift +
    // tombstone skips) plus the callback — which is exactly the unit the
    // events/sec gate and the kernel-overhaul ROADMAP item measure. One
    // branch when the profiler is disarmed; see obs/profiler.h.
    obs::ProfSpan span(obs::ProfCat::kDispatch);
    auto [at, fn] = queue_.pop();
    now_ = at;
    ++processed_;
    fn();
    return true;
  }

  /// Runs until the queue drains. `max_events` guards against runaway
  /// protocols; exceeding it throws.
  void run(std::uint64_t max_events = kDefaultEventBudget) {
    std::uint64_t n = 0;
    while (step()) {
      if (++n > max_events) {
        throw std::runtime_error("Simulator: event budget exceeded");
      }
    }
  }

  /// Runs events with timestamp <= `until`, then sets the clock to `until`.
  void run_until(Time until, std::uint64_t max_events = kDefaultEventBudget) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.next_time() <= until) {
      step();
      if (++n > max_events) {
        throw std::runtime_error("Simulator: event budget exceeded");
      }
    }
    if (until > now_) now_ = until;
  }

  /// Registers the kernel telemetry gauges — queue depth, tombstones,
  /// lifetime scheduled count, peak heap size, lazy-skip and fired-clear
  /// counts, events processed — under `prefix` in the unified registry.
  /// The obs::SimProfiler adds the host-time side (prof.events_per_sec);
  /// these gauges are pure simulated-kernel state and poll at snapshot
  /// time.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "kernel") const {
    registry.add_gauge(prefix + ".queue_depth", [this] {
      return static_cast<double>(queue_.live());
    });
    registry.add_gauge(prefix + ".tombstones", [this] {
      return static_cast<double>(queue_.tombstones());
    });
    registry.add_gauge(prefix + ".total_scheduled", [this] {
      return static_cast<double>(queue_.total_scheduled());
    });
    registry.add_gauge(prefix + ".peak_depth", [this] {
      return static_cast<double>(queue_.peak_size());
    });
    registry.add_gauge(prefix + ".cancelled_skips", [this] {
      return static_cast<double>(queue_.cancelled_skips());
    });
    registry.add_gauge(prefix + ".fired_clears", [this] {
      return static_cast<double>(queue_.fired_clears());
    });
    registry.add_gauge(prefix + ".events_processed", [this] {
      return static_cast<double>(processed_);
    });
  }

  static constexpr std::uint64_t kDefaultEventBudget = 500'000'000;

 private:
  EventQueue queue_;
  Rng rng_;
  Time now_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace wsn::sim
