// Trace exporters and the JSONL re-importer.
//
// Two formats:
//   * JSONL — one self-describing JSON object per event, the grep/jq-able
//     archival format. parse_jsonl() reads it back losslessly (integer vs
//     double attribute kinds survive the round trip), which is what lets
//     tests and offline tools reconstruct message provenance from a file.
//   * Chrome trace_event JSON — loadable in about://tracing or
//     https://ui.perfetto.dev. Simulation time is mapped 1 cost-model unit
//     = 1 ms (ts is microseconds), nodes become "threads" so per-node
//     timelines line up visually.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace wsn::obs {

class SimProfiler;

/// Appends one event as a single-line JSON object (no trailing newline).
/// The allocation-free capture path: with a warmed, reused `out` buffer the
/// steady state performs zero heap allocations per event
/// (bench_micro_kernels carries the canary).
void append_jsonl(const TraceEvent& ev, std::string& out);

/// One event as a single-line JSON object (no trailing newline).
std::string to_jsonl(const TraceEvent& ev);

/// Writes one JSON object per line (append_jsonl through a reused buffer).
void write_jsonl(const std::vector<TraceEvent>& events, std::ostream& out);

/// Parses one JSONL line into an event. Throws std::runtime_error with the
/// byte offset on malformed input; callers that know the line number prefix
/// it (parse_jsonl, TraceReader).
TraceEvent parse_jsonl_line(const std::string& line);

/// Parses a JSONL stream produced by write_jsonl. Throws std::runtime_error
/// ("line N: ..." with the 1-based line number) on malformed input; blank
/// lines are skipped but still counted.
std::vector<TraceEvent> parse_jsonl(std::istream& in);

/// Writes a Chrome trace_event file ({"traceEvents":[...]}).
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& out);

/// Same, plus a host-time track: when `profiler` is non-null and carries a
/// span log (SimProfiler::set_span_log_capacity), its spans are appended as
/// 'X' complete events on pid 1 ("host (profiler)"), ts/dur in host
/// microseconds since arm(). The two tracks share one file, so Perfetto
/// shows simulated time (pid 0, 1 cost unit = 1 ms) and where the host
/// actually spent its wall clock (pid 1) side by side.
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& out, const SimProfiler* profiler);

}  // namespace wsn::obs
