// Host-side self-profiling for the simulator.
//
// Everything else in obs/ observes the *simulated* network; this observes
// the *simulator*: where host wall-clock time goes (per-layer spans with
// self-time attribution), how healthy the kernel's event queue is (depth,
// tombstones, events/sec), and how much allocation pressure a phase
// generates (global new/delete hooks). It exists so the kernel overhaul the
// ROADMAP calls for (calendar queue, then PDES) is measured, not guessed:
// bench_kernel and `wsn-inspect perf` read these numbers, and CI gates an
// events/sec baseline on them.
//
// Design constraints, in order:
//
//   1. Non-perturbing. The profiler reads a monotonic host clock and writes
//      host-side aggregates. It never touches the simulator clock, the RNG,
//      the event queue, or the tracer's flow counter, so simulated-time
//      traces are byte-identical with the profiler armed or not
//      (test_profiler asserts this on a full campaign).
//   2. Near-zero cost when disarmed. A ProfSpan on a disarmed profiler is
//      one call + one predictable branch (the same budget as the tracer's
//      `enabled()` guard); bench_micro_kernels carries the canary proving a
//      disarmed profiler records nothing on the dispatch hot path.
//      Compiling with -DWSN_PROFILER_DISABLED removes even that: ProfSpan
//      becomes an empty object and every hook is a no-op.
//   3. Cheap when armed. Categories are a fixed enum indexing a flat array
//      of buckets — no hashing, no allocation per span. The only per-span
//      work is two steady_clock reads and a handful of integer ops.
//
// Self-time accounting: spans nest on an explicit frame stack (the
// simulation is single-threaded). When a span closes, its elapsed time goes
// to its category's `total_ns`, its elapsed minus its children's elapsed
// goes to `self_ns`, and its elapsed is charged to the parent frame's child
// accumulator. Summing `self_ns` over all categories therefore never
// double-counts nested work, which is what makes the `wsn-inspect perf`
// top-N table trustworthy.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wsn::obs {

class MetricsRegistry;

/// Fixed profiling categories — one per instrumented layer/hot path.
enum class ProfCat : std::uint8_t {
  kDispatch = 0,   // sim: one EventQueue pop + callback dispatch
  kLinkTx = 1,     // net: LinkLayer::broadcast / unicast
  kLinkRx = 2,     // net: scheduled LinkLayer delivery (rx charge + handler)
  kArq = 3,        // net: ReliableChannel send / frame handling
  kDetector = 4,   // emulation: FailureDetector beats/watchdogs/control
  kBinding = 5,    // emulation: leader (re)binding and overlay rebinds
  kTraceEmit = 6,  // obs: Tracer::emit fan-out
  kSink = 7,       // obs: trace sink accept (ring buffer write)
  kPhase = 8,      // user-defined phases (quickstart setup/query/campaign)
};
inline constexpr std::size_t kProfCatCount = 9;

/// Stable short name used in exports ("dispatch", "link_tx", ...).
const char* prof_cat_name(ProfCat c);
/// Inverse of prof_cat_name; returns false if `name` is unknown.
bool prof_cat_from_name(const std::string& name, ProfCat& out);

/// Aggregated host time of one category.
struct ProfBucket {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // wall time inside spans of this category
  std::uint64_t self_ns = 0;   // total minus time inside nested spans
  std::uint64_t min_ns = 0;    // fastest single span (0 when count == 0)
  std::uint64_t max_ns = 0;    // slowest single span
};

/// Global allocation pressure (operator new hook): monotonic process-wide
/// totals; the profiler reports deltas between arm() and now.
struct AllocStats {
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

/// Process-wide totals since program start. Always counted (two relaxed
/// atomic adds per allocation — far below malloc's own cost) so arming the
/// profiler cannot change allocator behavior mid-run.
AllocStats global_alloc_stats();

/// One completed span kept in the bounded span log, for the host-time
/// Chrome track. Times are ns since arm().
struct HostSpan {
  ProfCat cat = ProfCat::kDispatch;
  std::uint32_t depth = 0;  // nesting depth at begin (0 = top level)
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::string label;  // non-empty only for kPhase spans
};

/// A named profiling phase: wall-clock window plus the allocation delta it
/// generated. Phases partition the armed window in call order.
struct ProfPhase {
  std::string name;
  std::uint64_t start_ns = 0;  // since arm()
  std::uint64_t end_ns = 0;    // 0 while the phase is still open
  AllocStats alloc;            // allocations during the phase
};

class SimProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  /// The hot-path guard: true between arm() and disarm().
  bool armed() const { return armed_; }

  /// Starts (or restarts) a profiling window: clears all buckets, phases,
  /// and the span log; records the host-time and allocation baselines.
  /// Arm only when no ProfSpan is open.
  void arm();

  /// Freezes the window: elapsed_ns() stops advancing, spans stop
  /// recording. Aggregates stay readable until the next arm().
  void disarm();

  /// Host ns since arm() (frozen at disarm()).
  std::uint64_t elapsed_ns() const;

  const ProfBucket& bucket(ProfCat c) const {
    return buckets_[static_cast<std::size_t>(c)];
  }

  /// Allocation delta since arm() (frozen at disarm()).
  AllocStats allocs() const;

  /// Closes the open phase (if any) and opens a named one. No-op when
  /// disarmed.
  void begin_phase(std::string name);
  /// Closes the open phase without starting another.
  void end_phase();
  const std::vector<ProfPhase>& phases() const { return phases_; }

  /// Caps the span log (0 disables logging; default 0). Spans beyond the
  /// cap are counted in span_log_dropped(), oldest kept — the log is a
  /// prefix of the run, which is what the Chrome track wants.
  void set_span_log_capacity(std::size_t capacity);
  const std::vector<HostSpan>& span_log() const { return span_log_; }
  std::uint64_t span_log_dropped() const { return span_log_dropped_; }

  /// Simulated-time context for the host-vs-sim ratio and events/sec;
  /// callers set it just before to_json()/register_metrics() snapshots.
  /// `sim_time` is in cost-model units, `sim_events` the kernel's processed
  /// count over the armed window.
  void note_sim(double sim_time, std::uint64_t sim_events) {
    sim_time_ = sim_time;
    sim_events_ = sim_events;
  }
  double sim_time() const { return sim_time_; }
  std::uint64_t sim_events() const { return sim_events_; }

  /// Kernel events dispatched per host second over the armed window, from
  /// note_sim() (falling back to the dispatch bucket count). 0 before any
  /// time has elapsed.
  double events_per_sec() const;

  /// One JSON object with everything above — the perf snapshot format that
  /// `wsn-inspect perf` consumes:
  ///   {"prof":{"host_ns":..,"sim_time":..,"sim_events":..,
  ///            "events_per_sec":..,
  ///            "spans":{"dispatch":{"count":..,"total_ns":..,"self_ns":..,
  ///                                 "min_ns":..,"max_ns":..},...},
  ///            "alloc":{"count":..,"bytes":..},
  ///            "phases":[{"name":..,"start_ns":..,"end_ns":..,
  ///                       "alloc_count":..,"alloc_bytes":..},...]}}
  std::string to_json() const;

  /// Registers prof.* gauges (per-category count/total/self ns, host_ms,
  /// events_per_sec, alloc counters) in the unified registry. The registry
  /// borrows this profiler; keep it alive.
  void register_metrics(MetricsRegistry& registry,
                        const std::string& prefix = "prof") const;

  // --- span machinery (called by ProfSpan; not user API) ---
  void push_frame(ProfCat cat, const char* label);
  void pop_frame();

 private:
  struct Frame {
    ProfCat cat;
    std::uint64_t start_ns;
    std::uint64_t child_ns;
    const char* label;  // borrowed; only kPhase spans carry one
  };

  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0_)
            .count());
  }

  bool armed_ = false;
  Clock::time_point t0_{};
  std::uint64_t frozen_ns_ = 0;
  ProfBucket buckets_[kProfCatCount] = {};
  std::vector<Frame> frames_;
  std::vector<HostSpan> span_log_;
  std::size_t span_log_capacity_ = 0;
  std::uint64_t span_log_dropped_ = 0;
  std::vector<ProfPhase> phases_;
  AllocStats alloc_at_arm_;
  AllocStats alloc_frozen_;
  double sim_time_ = 0.0;
  std::uint64_t sim_events_ = 0;
};

/// The process-global profiler all instrumentation sites consult (same
/// idiom as obs::tracer()).
SimProfiler& profiler();

#ifndef WSN_PROFILER_DISABLED

/// RAII span: records into `profiler()` iff armed at construction. The
/// disarmed cost is the profiler() call plus one branch.
class ProfSpan {
 public:
  explicit ProfSpan(ProfCat cat, const char* label = nullptr) {
    SimProfiler& p = profiler();
    if (p.armed()) {
      prof_ = &p;
      p.push_frame(cat, label);
    }
  }
  ~ProfSpan() {
    if (prof_ != nullptr) prof_->pop_frame();
  }
  ProfSpan(const ProfSpan&) = delete;
  ProfSpan& operator=(const ProfSpan&) = delete;

 private:
  SimProfiler* prof_ = nullptr;
};

#else  // WSN_PROFILER_DISABLED: compile instrumentation out entirely.

class ProfSpan {
 public:
  explicit ProfSpan(ProfCat, const char* = nullptr) {}
};

#endif  // WSN_PROFILER_DISABLED

}  // namespace wsn::obs
