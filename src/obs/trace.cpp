#include "obs/trace.h"

namespace wsn::obs {

const char* category_name(Category c) {
  switch (c) {
    case Category::kVirtual: return "vnet";
    case Category::kLink: return "link";
    case Category::kOverlay: return "overlay";
    case Category::kProtocol: return "protocol";
    case Category::kCollective: return "collective";
    case Category::kBench: return "bench";
    case Category::kApp: return "app";
    case Category::kReliability: return "rel";
  }
  return "app";
}

bool category_from_name(const std::string& name, Category& out) {
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    const auto c = static_cast<Category>(i);
    if (name == category_name(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace wsn::obs
