#include "obs/analyze/flows.h"

#include <unordered_map>

namespace wsn::obs::analyze {

namespace {

const AttrValue* find_attr(const TraceEvent& ev, const char* key) {
  for (const Attr& a : ev.attrs) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

double attr_num(const TraceEvent& ev, const char* key, double fallback = 0.0) {
  const AttrValue* v = find_attr(ev, key);
  if (v == nullptr) return fallback;
  if (const auto* d = std::get_if<double>(v)) return *d;
  if (const auto* u = std::get_if<std::uint64_t>(v)) {
    return static_cast<double>(*u);
  }
  if (const auto* i = std::get_if<std::int64_t>(v)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

}  // namespace

double Flow::total_wait() const {
  double w = 0.0;
  for (const Hop& h : hops) w += h.wait;
  return w;
}

double Flow::total_transmit() const {
  double t = 0.0;
  for (const Hop& h : hops) t += h.transmit();
  return t;
}

std::vector<Flow> reconstruct_flows(const std::vector<TraceEvent>& events) {
  std::vector<Flow> flows;
  std::unordered_map<std::uint64_t, std::size_t> index;
  auto flow_of = [&](std::uint64_t id) -> Flow& {
    auto [it, fresh] = index.try_emplace(id, flows.size());
    if (fresh) {
      flows.emplace_back();
      flows.back().id = id;
    }
    return flows[it->second];
  };

  for (const TraceEvent& ev : events) {
    if (ev.flow == 0 || ev.category == Category::kCollective) continue;
    Flow& f = flow_of(ev.flow);
    switch (ev.category) {
      case Category::kVirtual:
      case Category::kOverlay:
        if (ev.name == "send" || ev.name == "self_send") {
          f.has_send = true;
          f.layer = ev.category;
          f.src_node = ev.node;
          f.send_time = ev.time;
          f.self_send = ev.name == "self_send";
          f.size = attr_num(ev, "size", 1.0);
          f.expected_hops = static_cast<std::uint64_t>(
              attr_num(ev, ev.category == Category::kOverlay ? "vhops" : "hops"));
          f.dst_index = static_cast<std::int64_t>(attr_num(ev, "dst", -1.0));
        } else if (ev.name == "deliver") {
          f.delivered = true;
          f.dst_node = ev.node;
          f.deliver_time = ev.time;
          if (f.layer == Category::kVirtual && ev.category == Category::kOverlay) {
            f.layer = Category::kOverlay;  // deliver seen before its send
          }
        } else if (ev.name == "hop") {
          f.hops.push_back({ev.node,
                            static_cast<std::int64_t>(attr_num(ev, "next", -1.0)),
                            ev.time, attr_num(ev, "depart"),
                            attr_num(ev, "wait")});
        } else if (ev.name == "drop") {
          f.dropped = true;
        }
        break;
      case Category::kLink:
        // Physical transmissions serving an overlay send become its hops.
        if (ev.name == "unicast") {
          f.hops.push_back({ev.node,
                            static_cast<std::int64_t>(attr_num(ev, "to", -1.0)),
                            ev.time, attr_num(ev, "arrive", ev.time), 0.0});
        } else if (ev.name == "broadcast") {
          f.hops.push_back({ev.node, -1, ev.time,
                            attr_num(ev, "arrive", ev.time), 0.0});
        }
        else if (ev.name == "drop") {
          f.dropped = true;
        }
        // "deliver" confirms a hop already recorded at its unicast; skip.
        break;
      case Category::kReliability:
        if (ev.name == "rel.give_up") {
          f.gave_up = true;
        } else if (ev.name == "rel.retransmit") {
          ++f.retransmits;
        }
        break;
      default:
        break;  // protocol/bench/app events carry no flow structure
    }
  }
  return flows;
}

std::vector<CollectiveSpan> reconstruct_collectives(
    const std::vector<TraceEvent>& events) {
  std::vector<CollectiveSpan> spans;
  std::unordered_map<std::uint64_t, std::size_t> index;
  for (const TraceEvent& ev : events) {
    if (ev.category != Category::kCollective || ev.flow == 0) continue;
    if (ev.phase == 'B') {
      index[ev.flow] = spans.size();
      CollectiveSpan s;
      s.id = ev.flow;
      s.name = ev.name;
      s.leader = ev.node;
      s.begin = ev.time;
      s.members = static_cast<std::uint64_t>(attr_num(ev, "members"));
      spans.push_back(std::move(s));
    } else if (ev.phase == 'E') {
      auto it = index.find(ev.flow);
      if (it == index.end()) continue;  // orphan end (truncated capture)
      CollectiveSpan& s = spans[it->second];
      s.end = ev.time;
      s.closed = true;
      s.messages = static_cast<std::uint64_t>(attr_num(ev, "messages"));
    }
  }
  return spans;
}

namespace {

CriticalPathReport walk_critical_path(const std::vector<const Flow*>& pool) {
  CriticalPathReport report;
  const Flow* last = nullptr;
  for (const Flow* f : pool) {
    if (last == nullptr || f->deliver_time > last->deliver_time) last = f;
  }
  if (last == nullptr) return report;

  // Backward walk: the predecessor of a flow is the pool flow that last
  // delivered to its source node no later than it was sent. Delivery times
  // strictly decrease along the walk, so it terminates; the size cap is a
  // belt-and-braces guard against degenerate traces.
  std::vector<const Flow*> reversed{last};
  const Flow* cur = last;
  while (reversed.size() <= pool.size()) {
    const Flow* pred = nullptr;
    for (const Flow* g : pool) {
      if (g == cur || g->dst_node != cur->src_node) continue;
      if (g->deliver_time > cur->send_time) continue;
      if (pred == nullptr || g->deliver_time > pred->deliver_time) pred = g;
    }
    if (pred == nullptr) break;
    reversed.push_back(pred);
    cur = pred;
  }

  report.chain.reserve(reversed.size());
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    ChainLink link;
    link.flow = *it;
    if (!report.chain.empty()) {
      link.gap_before = link.flow->send_time -
                        report.chain.back().flow->deliver_time;
    }
    report.chain.push_back(link);
  }
  report.start_time = report.chain.front().flow->send_time;
  report.end_time = report.chain.back().flow->deliver_time;
  for (const ChainLink& link : report.chain) {
    const Flow& f = *link.flow;
    report.message_wait += f.total_wait();
    report.message_transmit +=
        f.hops.empty() ? f.latency() : f.total_transmit();
    report.node_gaps += link.gap_before;
  }
  return report;
}

}  // namespace

CriticalPathReport critical_path(const std::vector<Flow>& flows) {
  std::vector<const Flow*> pool;
  pool.reserve(flows.size());
  for (const Flow& f : flows) {
    if (f.delivered) pool.push_back(&f);
  }
  return walk_critical_path(pool);
}

CriticalPathReport critical_path_in(const std::vector<Flow>& flows, double t0,
                                    double t1) {
  std::vector<const Flow*> pool;
  for (const Flow& f : flows) {
    if (f.delivered && f.send_time >= t0 && f.deliver_time <= t1) {
      pool.push_back(&f);
    }
  }
  return walk_critical_path(pool);
}

}  // namespace wsn::obs::analyze
