#include "obs/analyze/flows.h"

#include <unordered_map>

#include "obs/analyze/incremental.h"

namespace wsn::obs::analyze {

namespace {

const AttrValue* find_attr(const TraceEvent& ev, const char* key) {
  for (const Attr& a : ev.attrs) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

double attr_num(const TraceEvent& ev, const char* key, double fallback = 0.0) {
  const AttrValue* v = find_attr(ev, key);
  if (v == nullptr) return fallback;
  if (const auto* d = std::get_if<double>(v)) return *d;
  if (const auto* u = std::get_if<std::uint64_t>(v)) {
    return static_cast<double>(*u);
  }
  if (const auto* i = std::get_if<std::int64_t>(v)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

}  // namespace

double Flow::total_wait() const {
  double w = 0.0;
  for (const Hop& h : hops) w += h.wait;
  return w;
}

double Flow::total_transmit() const {
  double t = 0.0;
  for (const Hop& h : hops) t += h.transmit();
  return t;
}

std::vector<Flow> reconstruct_flows(const std::vector<TraceEvent>& events) {
  // The batch path is the streaming collector with retirement disabled:
  // finish() drains in creation order, which is exactly the order the old
  // materialize-everything loop produced.
  std::vector<Flow> flows;
  FlowCollector collector([&flows](Flow& f) { flows.push_back(std::move(f)); });
  for (const TraceEvent& ev : events) collector.feed(ev);
  collector.finish();
  return flows;
}

std::vector<CollectiveSpan> reconstruct_collectives(
    const std::vector<TraceEvent>& events) {
  std::vector<CollectiveSpan> spans;
  std::unordered_map<std::uint64_t, std::size_t> index;
  for (const TraceEvent& ev : events) {
    if (ev.category != Category::kCollective || ev.flow == 0) continue;
    if (ev.phase == 'B') {
      index[ev.flow] = spans.size();
      CollectiveSpan s;
      s.id = ev.flow;
      s.name = ev.name;
      s.leader = ev.node;
      s.begin = ev.time;
      s.members = static_cast<std::uint64_t>(attr_num(ev, "members"));
      spans.push_back(std::move(s));
    } else if (ev.phase == 'E') {
      auto it = index.find(ev.flow);
      if (it == index.end()) continue;  // orphan end (truncated capture)
      CollectiveSpan& s = spans[it->second];
      s.end = ev.time;
      s.closed = true;
      s.messages = static_cast<std::uint64_t>(attr_num(ev, "messages"));
    }
  }
  return spans;
}

namespace {

CriticalPathReport walk_critical_path(const std::vector<const Flow*>& pool) {
  CriticalPathReport report;
  const Flow* last = nullptr;
  for (const Flow* f : pool) {
    if (last == nullptr || f->deliver_time > last->deliver_time) last = f;
  }
  if (last == nullptr) return report;

  // Backward walk: the predecessor of a flow is the pool flow that last
  // delivered to its source node no later than it was sent. Delivery times
  // strictly decrease along the walk, so it terminates; the size cap is a
  // belt-and-braces guard against degenerate traces.
  std::vector<const Flow*> reversed{last};
  const Flow* cur = last;
  while (reversed.size() <= pool.size()) {
    const Flow* pred = nullptr;
    for (const Flow* g : pool) {
      if (g == cur || g->dst_node != cur->src_node) continue;
      if (g->deliver_time > cur->send_time) continue;
      if (pred == nullptr || g->deliver_time > pred->deliver_time) pred = g;
    }
    if (pred == nullptr) break;
    reversed.push_back(pred);
    cur = pred;
  }

  report.chain.reserve(reversed.size());
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    ChainLink link;
    link.flow = *it;
    if (!report.chain.empty()) {
      link.gap_before = link.flow->send_time -
                        report.chain.back().flow->deliver_time;
    }
    report.chain.push_back(link);
  }
  report.start_time = report.chain.front().flow->send_time;
  report.end_time = report.chain.back().flow->deliver_time;
  for (const ChainLink& link : report.chain) {
    const Flow& f = *link.flow;
    report.message_wait += f.total_wait();
    report.message_transmit +=
        f.hops.empty() ? f.latency() : f.total_transmit();
    report.node_gaps += link.gap_before;
  }
  return report;
}

}  // namespace

CriticalPathReport critical_path(const std::vector<Flow>& flows) {
  std::vector<const Flow*> pool;
  pool.reserve(flows.size());
  for (const Flow& f : flows) {
    if (f.delivered) pool.push_back(&f);
  }
  return walk_critical_path(pool);
}

CriticalPathReport critical_path_in(const std::vector<Flow>& flows, double t0,
                                    double t1) {
  std::vector<const Flow*> pool;
  for (const Flow& f : flows) {
    if (f.delivered && f.send_time >= t0 && f.deliver_time <= t1) {
      pool.push_back(&f);
    }
  }
  return walk_critical_path(pool);
}

}  // namespace wsn::obs::analyze
