#include "obs/analyze/bench_compare.h"

#include <cmath>
#include <map>
#include <sstream>

#include "obs/analyze/json_reader.h"

namespace wsn::obs::analyze {

namespace {

/// Rows grouped by "bench" id, in first-appearance order.
struct RowGroups {
  std::vector<std::string> order;
  std::map<std::string, std::vector<JsonObject>> by_bench;
};

RowGroups parse_rows(const std::string& jsonl, const char* which) {
  RowGroups groups;
  std::istringstream in(jsonl);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = parse_json(line);
    } catch (const std::runtime_error& e) {
      throw std::runtime_error(std::string(which) + " line " +
                               std::to_string(lineno) + ": " + e.what());
    }
    const JsonValue* bench = v.find("bench");
    if (bench == nullptr || !bench->is_string()) {
      throw std::runtime_error(std::string(which) + " line " +
                               std::to_string(lineno) +
                               ": row has no \"bench\" id");
    }
    auto [it, fresh] = groups.by_bench.try_emplace(bench->string());
    if (fresh) groups.order.push_back(bench->string());
    it->second.push_back(v.object());
  }
  return groups;
}

bool ends_with(const std::string& name, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return name.size() >= n &&
         name.compare(name.size() - n, n, suffix) == 0;
}

/// Host-time measurements and rates derived from them; see header.
bool wall_clock_field(const std::string& name) {
  return ends_with(name, "_ms") || ends_with(name, "_ns") ||
         ends_with(name, "_per_sec");
}

/// For wall-clock fields: which drift direction means "slower"?
bool higher_is_better(const std::string& name) {
  return ends_with(name, "_per_sec");
}

const JsonValue* find_in(const JsonObject& row, const std::string& key) {
  for (const auto& [k, v] : row) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace

double FieldDelta::rel_change() const {
  return (current - baseline) / std::max(std::abs(baseline), 1.0);
}

CompareReport compare_bench(const std::string& baseline_jsonl,
                            const std::string& current_jsonl,
                            const CompareOptions& options) {
  const RowGroups base = parse_rows(baseline_jsonl, "baseline");
  const RowGroups cur = parse_rows(current_jsonl, "current");
  CompareReport report;

  for (const std::string& bench : base.order) {
    if (!options.bench_filter.empty() && bench != options.bench_filter) {
      continue;
    }
    const auto& base_rows = base.by_bench.at(bench);
    const auto cur_it = cur.by_bench.find(bench);
    if (cur_it == cur.by_bench.end()) {
      report.mismatches.push_back("bench '" + bench +
                                  "' missing from current output");
      continue;
    }
    const auto& cur_rows = cur_it->second;
    if (cur_rows.size() != base_rows.size()) {
      report.mismatches.push_back(
          "bench '" + bench + "': baseline has " +
          std::to_string(base_rows.size()) + " rows, current has " +
          std::to_string(cur_rows.size()));
      continue;
    }
    for (std::size_t i = 0; i < base_rows.size(); ++i) {
      ++report.rows_compared;
      for (const auto& [key, base_val] : base_rows[i]) {
        if (key == "bench") continue;
        const JsonValue* cur_val = find_in(cur_rows[i], key);
        if (cur_val == nullptr) {
          report.mismatches.push_back("bench '" + bench + "' row " +
                                      std::to_string(i) + ": field '" + key +
                                      "' missing from current");
          continue;
        }
        if (base_val.is_string()) {
          if (!cur_val->is_string() ||
              cur_val->string() != base_val.string()) {
            report.mismatches.push_back("bench '" + bench + "' row " +
                                        std::to_string(i) + ": field '" +
                                        key + "' changed identity");
          }
          continue;
        }
        if (!base_val.is_number()) continue;
        const bool wall = wall_clock_field(key);
        if (wall && options.wallclock_tolerance < 0) continue;  // skipped
        if (!cur_val->is_number()) {
          report.mismatches.push_back("bench '" + bench + "' row " +
                                      std::to_string(i) + ": field '" + key +
                                      "' is no longer numeric");
          continue;
        }
        ++report.fields_compared;
        FieldDelta delta{bench, i, key, base_val.number(), cur_val->number()};
        const double rc = delta.rel_change();
        const bool worse =
            wall ? (higher_is_better(key)
                        ? rc < -options.wallclock_tolerance
                        : rc > options.wallclock_tolerance)
                 : std::abs(rc) > options.tolerance;
        if (worse) report.regressions.push_back(std::move(delta));
      }
      for (const auto& [key, val] : cur_rows[i]) {
        (void)val;
        if (find_in(base_rows[i], key) == nullptr) {
          report.notes.push_back("bench '" + bench + "' row " +
                                 std::to_string(i) + ": new field '" + key +
                                 "' (not in baseline)");
        }
      }
    }
  }
  for (const std::string& bench : cur.order) {
    if (!options.bench_filter.empty() && bench != options.bench_filter) {
      continue;
    }
    if (base.by_bench.find(bench) == base.by_bench.end()) {
      report.notes.push_back("bench '" + bench +
                             "' is new (not in baseline)");
    }
  }
  if (!options.bench_filter.empty() &&
      base.by_bench.find(options.bench_filter) == base.by_bench.end() &&
      cur.by_bench.find(options.bench_filter) == cur.by_bench.end()) {
    report.mismatches.push_back("bench '" + options.bench_filter +
                                "' (--bench filter) found on neither side");
  }
  return report;
}

CompareReport compare_bench(const std::string& baseline_jsonl,
                            const std::string& current_jsonl,
                            double tolerance) {
  CompareOptions options;
  options.tolerance = tolerance;
  return compare_bench(baseline_jsonl, current_jsonl, options);
}

}  // namespace wsn::obs::analyze
