#include "obs/analyze/json_reader.h"

#include <cctype>
#include <cstdlib>

namespace wsn::obs::analyze {

double JsonValue::number() const {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    return static_cast<double>(*u);
  }
  throw std::runtime_error("json: value is not a number");
}

const std::string& JsonValue::string() const {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  throw std::runtime_error("json: value is not a string");
}

const JsonArray& JsonValue::array() const {
  if (const auto* a = std::get_if<JsonArray>(&v)) return *a;
  throw std::runtime_error("json: value is not an array");
}

const JsonObject& JsonValue::object() const {
  if (const auto* o = std::get_if<JsonObject>(&v)) return *o;
  throw std::runtime_error("json: value is not an object");
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, val] : object()) {
    if (k == key) return &val;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return {parse_string()};
      case 't': expect_word("true"); return {true};
      case 'f': expect_word("false"); return {false};
      case 'n': expect_word("null"); return {nullptr};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return {std::move(obj)};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return {std::move(obj)};
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return {std::move(arr)};
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return {std::move(arr)};
    }
  }

  /// Same typing rule as the trace-line parser: '.'/'e' => double,
  /// leading '-' => int64, else uint64.
  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      if (s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E') {
        is_double = true;
      }
      ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("expected a value");
    if (is_double) return {std::strtod(tok.c_str(), nullptr)};
    if (tok[0] == '-') {
      return {static_cast<std::int64_t>(std::strtoll(tok.c_str(), nullptr, 10))};
    }
    return {static_cast<std::uint64_t>(std::strtoull(tok.c_str(), nullptr, 10))};
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            out += static_cast<char>(
                std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    ++pos_;  // closing quote
    return out;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void expect_word(const char* w) {
    for (const char* p = w; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace wsn::obs::analyze
