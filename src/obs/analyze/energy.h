// Trace-derived energy attribution.
//
// Replays the energy-charging rules of the live layers over a captured
// trace, event by event: a virtual-layer send charges the sender's radio,
// every relay hop charges rx+tx at the relay, every delivery charges the
// receiver; on the physical link layer broadcast/unicast charge the
// transmitter and each link delivery charges its receiver. The result is a
// per-node tx/rx map that — on a complete capture — must equal what the
// EnergyLedger accumulated live (compute energy is not traced, so the
// comparison covers radio energy only; see check.h).
//
// On top of the raw map, hotspot_report() folds per-node energy through the
// group hierarchy to quantify the leader/follower imbalance the paper's
// energy-balance discussion predicts: leaders aggregate traffic, so mean
// leader spend grows with level while follower spend stays flat.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace.h"

namespace wsn::obs::analyze {

/// Per-unit radio energy rates, mirroring CostModel (virtual layer) and
/// RadioModel (link layer). Defaults are the paper's uniform cost model.
struct EnergyRates {
  double vnet_tx = 1.0;
  double vnet_rx = 1.0;
  double link_tx = 1.0;
  double link_rx = 1.0;
};

struct NodeEnergy {
  double tx = 0.0;
  double rx = 0.0;

  double total() const { return tx + rx; }
};

/// Energy attributed to one layer, indexed by that layer's node id space
/// (grid indices for the virtual layer, physical NodeIds for the link
/// layer — the two spaces are unrelated and kept apart).
struct LayerEnergy {
  std::vector<NodeEnergy> nodes;
  double tx = 0.0;
  double rx = 0.0;

  double total() const { return tx + rx; }
  bool empty() const { return nodes.empty(); }

  /// Node slot, growing the map as needed. Negative ids (unbound context)
  /// are folded into slot 0 so no charge is silently dropped.
  NodeEnergy& at(std::int64_t node);
};

struct EnergyMap {
  LayerEnergy vnet;
  LayerEnergy link;

  double total() const { return vnet.total() + link.total(); }
};

/// Replays the charging rules over `events`. Self-sends are free (no radio),
/// matching VirtualNetwork; lost or dead-receiver packets emit no deliver
/// event and therefore — correctly — attract no rx charge.
EnergyMap attribute_energy(const std::vector<TraceEvent>& events,
                           const EnergyRates& rates = {});

/// Streaming form: folds one event's radio charges into `map`.
/// attribute_energy is exactly a loop over this, and wsn-inspect energy-map
/// uses it to process captures larger than memory one event at a time.
void accumulate_energy(EnergyMap& map, const TraceEvent& ev,
                       const EnergyRates& rates = {});

/// Mean radio energy of level-k leaders vs. everyone else.
struct LevelEnergy {
  std::uint32_t level = 0;
  std::size_t leader_count = 0;
  double leader_mean = 0.0;
  double follower_mean = 0.0;

  /// Leader/follower imbalance; 0 when followers spent nothing.
  double imbalance() const {
    return follower_mean > 0.0 ? leader_mean / follower_mean : 0.0;
  }
};

struct HotspotReport {
  std::size_t side = 0;            // inferred (or given) grid side
  std::int64_t hottest_node = -1;
  double hottest_energy = 0.0;
  double mean_energy = 0.0;
  /// Per-hierarchy-level imbalance, levels 1..max. Empty when the node
  /// count does not form a power-of-two grid (no hierarchy to fold over).
  std::vector<LevelEnergy> levels;

  /// Hottest-node spend relative to the mean: the concentration factor.
  double hotspot_factor() const {
    return mean_energy > 0.0 ? hottest_energy / mean_energy : 0.0;
  }
};

/// Folds a virtual-layer energy map through the group hierarchy. `side` of 0
/// infers the smallest square grid covering the highest charged node id.
HotspotReport hotspot_report(const LayerEnergy& vnet, std::size_t side = 0);

}  // namespace wsn::obs::analyze
