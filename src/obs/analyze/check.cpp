#include "obs/analyze/check.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "obs/analyze/energy.h"
#include "obs/analyze/flows.h"

namespace wsn::obs::analyze {

namespace {

std::string flow_tag(const Flow& f) {
  return "flow " + std::to_string(f.id);
}

bool close_rel(double a, double b, double rel) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= rel * std::max(scale, 1.0);
}

double attr_num(const TraceEvent& ev, const char* key, double fallback = 0.0) {
  for (const Attr& a : ev.attrs) {
    if (a.key != key) continue;
    if (const auto* d = std::get_if<double>(&a.value)) return *d;
    if (const auto* u = std::get_if<std::uint64_t>(&a.value)) {
      return static_cast<double>(*u);
    }
    if (const auto* i = std::get_if<std::int64_t>(&a.value)) {
      return static_cast<double>(*i);
    }
  }
  return fallback;
}

}  // namespace

void append_flow_issues(const Flow& f, std::vector<std::string>& issues) {
  if (f.delivered && !f.has_send) {
    issues.push_back(flow_tag(f) + ": delivery without a send");
    return;
  }
  if (f.has_send && !f.delivered && !f.gave_up && !f.dropped &&
      !(f.layer == Category::kVirtual && f.self_send)) {
    // A give-up or recorded drop explains the missing delivery; anything
    // else is a black hole.
    issues.push_back(flow_tag(f) + ": sent but never delivered");
    return;
  }
  if (!f.has_send) {
    // Hop/tx records with neither send nor deliver: truncated capture.
    issues.push_back(flow_tag(f) + ": fragments without send");
    return;
  }
  if (f.delivered && f.deliver_time < f.send_time) {
    issues.push_back(flow_tag(f) + ": delivered before sent");
  }
  for (const Hop& h : f.hops) {
    if (h.wait < 0.0 || h.transmit() < 0.0 || h.depart < h.start) {
      issues.push_back(flow_tag(f) + ": acausal hop at node " +
                       std::to_string(h.node));
      break;
    }
  }
  if (f.layer == Category::kVirtual && !f.self_send) {
    if (f.hops.size() != f.expected_hops) {
      issues.push_back(flow_tag(f) + ": announced " +
                       std::to_string(f.expected_hops) + " hops, traced " +
                       std::to_string(f.hops.size()));
    } else if (f.delivered) {
      // Exact decomposition: end-to-end latency == sum of hop spans, in
      // both congestion modes (serialized hops chain depart -> start).
      double span_sum = 0.0;
      for (const Hop& h : f.hops) span_sum += h.depart - h.start;
      if (!close_rel(f.latency(), span_sum, 1e-9)) {
        issues.push_back(flow_tag(f) +
                         ": latency does not decompose into hops");
      }
    }
  }
}

CheckReport check_trace(const std::vector<TraceEvent>& events) {
  CheckReport report;
  report.events_seen = events.size();

  const std::vector<Flow> flows = reconstruct_flows(events);
  for (const Flow& f : flows) {
    ++report.flows_checked;
    append_flow_issues(f, report.issues);
  }

  // Physical-layer receive/transmit pairing for correlated flows. (Flow 0
  // is uncorrelated background traffic and cannot be paired.)
  std::unordered_map<std::uint64_t, std::size_t> link_tx;
  std::unordered_map<std::uint64_t, std::size_t> link_rx;
  for (const TraceEvent& ev : events) {
    if (ev.category != Category::kLink || ev.flow == 0) continue;
    if (ev.name == "broadcast" || ev.name == "unicast") ++link_tx[ev.flow];
    if (ev.name == "deliver") ++link_rx[ev.flow];
  }
  for (const auto& [flow, receives] : link_rx) {
    if (link_tx.find(flow) == link_tx.end()) {
      report.issues.push_back("flow " + std::to_string(flow) +
                              ": link receive without any transmission");
    }
  }

  for (const CollectiveSpan& c : reconstruct_collectives(events)) {
    ++report.collectives_checked;
    if (!c.closed) {
      report.issues.push_back("collective " + std::to_string(c.id) + " (" +
                              c.name + "): never completed");
    } else if (c.end < c.begin) {
      report.issues.push_back("collective " + std::to_string(c.id) + " (" +
                              c.name + "): ends before it begins");
    }
  }
  // Orphan 'E' events (end without begin) slip past reconstruction; count
  // them directly.
  std::unordered_map<std::uint64_t, bool> began;
  for (const TraceEvent& ev : events) {
    if (ev.category != Category::kCollective || ev.flow == 0) continue;
    if (ev.phase == 'B') began[ev.flow] = true;
    if (ev.phase == 'E' && !began[ev.flow]) {
      report.issues.push_back("collective " + std::to_string(ev.flow) +
                              ": completion without a start");
    }
  }
  return report;
}

CheckReport check_energy(const std::vector<TraceEvent>& events,
                         const JsonValue& metrics_snapshot,
                         double rel_tolerance) {
  CheckReport report;
  report.events_seen = events.size();
  const EnergyMap derived = attribute_energy(events);

  auto compare = [&](const char* section, const LayerEnergy& layer) {
    const JsonValue* sec = metrics_snapshot.find(section);
    if (sec == nullptr) return;  // layer not registered in this run
    for (const char* field : {"tx", "rx"}) {
      const JsonValue* v = sec->find(field);
      if (v == nullptr) continue;
      const double live = v->number();
      const double traced =
          std::string(field) == "tx" ? layer.tx : layer.rx;
      if (!close_rel(live, traced, rel_tolerance)) {
        report.issues.push_back(std::string(section) + "." + field +
                                ": ledger " + std::to_string(live) +
                                " != trace-derived " + std::to_string(traced));
      }
    }
  };
  compare("vnet.energy", derived.vnet);
  compare("link.energy", derived.link);
  return report;
}

CheckReport check_reliability(const std::vector<TraceEvent>& events,
                              const JsonValue* metrics_snapshot) {
  CheckReport report;
  report.events_seen = events.size();

  auto rel_key = [](const TraceEvent& ev) {
    return std::to_string(static_cast<std::uint64_t>(attr_num(ev, "src"))) +
           ">" +
           std::to_string(static_cast<std::uint64_t>(attr_num(ev, "dst"))) +
           "#" + std::to_string(static_cast<std::uint64_t>(attr_num(ev, "seq")));
  };

  // Single in-order pass: ARQ pairing state and live crash windows evolve
  // together, exactly as they did in the simulation.
  std::unordered_set<std::string> sent;
  std::unordered_set<std::int64_t> crashed;
  std::uint64_t give_ups = 0;
  for (const TraceEvent& ev : events) {
    if (ev.category == Category::kReliability) {
      if (ev.name == "rel.send") {
        sent.insert(rel_key(ev));
      } else if (ev.name == "rel.retransmit" || ev.name == "rel.give_up" ||
                 ev.name == "rel.ack" || ev.name == "rel.dup") {
        if (sent.find(rel_key(ev)) == sent.end()) {
          report.issues.push_back(std::string(ev.name) + " " + rel_key(ev) +
                                  ": no matching rel.send");
        }
        if (ev.name == "rel.give_up") ++give_ups;
      } else if (ev.name == "fault.crash" && ev.node >= 0) {
        crashed.insert(ev.node);
      } else if (ev.name == "fault.recover" && ev.node >= 0) {
        crashed.erase(ev.node);
      }
      continue;
    }
    // Deliveries (either layer) must not land inside a crash window.
    if ((ev.category == Category::kLink || ev.category == Category::kVirtual) &&
        ev.name == "deliver" && crashed.count(ev.node) != 0) {
      report.issues.push_back("node " + std::to_string(ev.node) +
                              ": delivery at t=" + std::to_string(ev.time) +
                              " inside its crash window");
    }
  }

  if (metrics_snapshot != nullptr) {
    if (const JsonValue* sec = metrics_snapshot->find("arq.counters")) {
      const JsonValue* v = sec->find("arq.give_up");
      const auto counted =
          static_cast<std::uint64_t>(v != nullptr ? v->number() : 0.0);
      if (counted != give_ups) {
        report.issues.push_back(
            "arq.give_up counter " + std::to_string(counted) +
            " != " + std::to_string(give_ups) + " rel.give_up trace events");
      }
    }
  }
  return report;
}

CheckReport check_failure_detection(const std::vector<TraceEvent>& events) {
  CheckReport report;
  report.events_seen = events.size();

  auto cell_epoch = [](const TraceEvent& ev) {
    const auto row = static_cast<std::int64_t>(attr_num(ev, "row", -1.0));
    const auto col = static_cast<std::int64_t>(attr_num(ev, "col", -1.0));
    const auto epoch = static_cast<std::uint64_t>(attr_num(ev, "epoch"));
    return std::to_string(row) + "," + std::to_string(col) + "@" +
           std::to_string(epoch);
  };
  auto cell_key = [](const TraceEvent& ev) {
    const auto row = static_cast<std::int64_t>(attr_num(ev, "row", -1.0));
    const auto col = static_cast<std::int64_t>(attr_num(ev, "col", -1.0));
    return std::to_string(row) + "," + std::to_string(col);
  };

  std::unordered_set<std::string> elections;    // (cell, epoch) with fd.elect
  std::unordered_set<std::string> claimed;      // (cell, epoch) with fd.claim
  std::unordered_map<std::string, std::uint64_t> last_claim_epoch;
  for (const TraceEvent& ev : events) {
    if (ev.category != Category::kReliability) continue;
    if (ev.name == "fd.elect" || ev.name == "fd.handoff") {
      elections.insert(cell_epoch(ev));
    } else if (ev.name == "fd.claim") {
      ++report.collectives_checked;  // claims checked
      const std::string key = cell_epoch(ev);
      if (!claimed.insert(key).second) {
        report.issues.push_back("fd.claim " + key +
                                ": duplicate claim for this cell and epoch "
                                "(split-brain)");
      }
      if (elections.find(key) == elections.end()) {
        report.issues.push_back("fd.claim " + key +
                                ": no preceding fd.elect for this epoch");
      }
      const std::string cell = cell_key(ev);
      const auto epoch = static_cast<std::uint64_t>(attr_num(ev, "epoch"));
      const auto it = last_claim_epoch.find(cell);
      if (it != last_claim_epoch.end() && epoch <= it->second) {
        report.issues.push_back(
            "fd.claim " + key + ": epoch not above the cell's last claim (" +
            std::to_string(it->second) + ")");
      }
      last_claim_epoch[cell] = epoch;
    }
  }
  return report;
}

CheckReport check_depletion(const std::vector<TraceEvent>& events) {
  CheckReport report;
  report.events_seen = events.size();

  // node -> time of its (first) energy.depleted event. A single in-order
  // pass mirrors the simulation: once a node is in the map, later-stamped
  // link activity at it is a dead node talking.
  std::unordered_map<std::int64_t, double> depleted_at;
  for (const TraceEvent& ev : events) {
    if (ev.category == Category::kReliability &&
        ev.name == "energy.depleted") {
      const double budget = attr_num(ev, "budget", -1.0);
      const double spent = attr_num(ev, "spent", -1.0);
      if (!depleted_at.emplace(ev.node, ev.time).second) {
        report.issues.push_back("node " + std::to_string(ev.node) +
                                ": duplicate energy.depleted at t=" +
                                std::to_string(ev.time));
      } else {
        ++report.flows_checked;  // depletions checked
      }
      if (spent + 1e-9 < budget) {
        report.issues.push_back(
            "node " + std::to_string(ev.node) + ": energy.depleted with spent " +
            std::to_string(spent) + " below budget " + std::to_string(budget));
      }
      continue;
    }
    if (ev.category != Category::kLink) continue;
    const auto it = depleted_at.find(ev.node);
    if (it == depleted_at.end() || ev.time <= it->second) continue;
    if (ev.name == "broadcast" || ev.name == "unicast") {
      report.issues.push_back(
          "node " + std::to_string(ev.node) + ": link transmission at t=" +
          std::to_string(ev.time) + " after depletion at t=" +
          std::to_string(it->second));
    } else if (ev.name == "deliver") {
      report.issues.push_back(
          "node " + std::to_string(ev.node) + ": delivery at t=" +
          std::to_string(ev.time) + " after depletion at t=" +
          std::to_string(it->second));
    }
  }
  return report;
}

CheckReport check_stabilization(const std::vector<TraceEvent>& events) {
  CheckReport report;
  report.events_seen = events.size();

  // Pass 1: the corruption strikes set the bound; the latest disturbance of
  // any kind (each can legitimately cause churn of its own) anchors the
  // quiescence deadline.
  double bound = 0.0;
  std::size_t corruptions = 0;
  for (const TraceEvent& ev : events) {
    if (ev.category == Category::kReliability && ev.name == "fd.corrupt") {
      bound = std::max(bound, attr_num(ev, "bound"));
      ++corruptions;
    }
  }
  if (corruptions == 0) return report;  // vacuous without corruption faults
  report.flows_checked = corruptions;
  double deadline = 0.0;
  for (const TraceEvent& ev : events) {
    if (ev.category != Category::kReliability) continue;
    if (ev.name == "fd.corrupt" || ev.name == "fault.crash" ||
        ev.name == "fault.recover" || ev.name == "fault.outage_end" ||
        ev.name == "fault.burst_end" || ev.name == "energy.depleted") {
      deadline = std::max(deadline, ev.time + bound);
    }
  }

  // Pass 2: any leadership churn after the deadline is a failure to
  // self-stabilize. Planned handoff claims are energy-driven succession,
  // not instability.
  for (const TraceEvent& ev : events) {
    if (ev.category != Category::kReliability || ev.time <= deadline) continue;
    const bool churn =
        ev.name == "fd.elect" || ev.name == "fd.lease_expire" ||
        ev.name == "fd.audit_conflict" || ev.name == "fd.epoch_regress" ||
        (ev.name == "fd.claim" && attr_num(ev, "planned") == 0.0);
    if (churn) {
      report.issues.push_back(
          std::string(ev.name) + " at t=" + std::to_string(ev.time) +
          " (node " + std::to_string(ev.node) +
          "): leadership churn after the stabilization deadline t=" +
          std::to_string(deadline));
    }
  }
  return report;
}

void MembershipLedger::feed(const TraceEvent& ev) {
  if (ev.category != Category::kReliability) return;
  if (ev.name == "fd.defect" || ev.name == "fd.roster_corrupt") {
    bound = std::max(bound, attr_num(ev, "bound"));
    last_disturbance = std::max(last_disturbance, ev.time);
    ++strikes;
  } else if (ev.name == "fd.adopt") {
    // An adoption is itself a reconfiguration: the join, accept, bind and
    // roster repair it provokes are legitimate within one more bound.
    bound = std::max(bound, attr_num(ev, "bound"));
    last_disturbance = std::max(last_disturbance, ev.time);
    adoptions.push_back(
        {ev.node, static_cast<std::int64_t>(attr_num(ev, "row", -1.0)),
         static_cast<std::int64_t>(attr_num(ev, "col", -1.0)),
         static_cast<std::int64_t>(attr_num(ev, "from_row", -1.0)),
         static_cast<std::int64_t>(attr_num(ev, "from_col", -1.0)),
         attr_num(ev, "last") != 0.0, ev.time});
  } else if (ev.name == "fd.adopt_accept") {
    accepts.push_back(
        {static_cast<std::int64_t>(attr_num(ev, "node", -1.0)),
         static_cast<std::int64_t>(attr_num(ev, "row", -1.0)),
         static_cast<std::int64_t>(attr_num(ev, "col", -1.0)), ev.time});
    churn.push_back({ev.name, ev.node, ev.time});
  } else if (ev.name == "fd.adopt_bind") {
    binds.push_back({static_cast<std::int64_t>(attr_num(ev, "row", -1.0)),
                     static_cast<std::int64_t>(attr_num(ev, "col", -1.0)),
                     ev.time});
    churn.push_back({ev.name, ev.node, ev.time});
  } else if (ev.name == "fd.member_heal" || ev.name == "fd.roster_heal" ||
             ev.name == "fd.roster_conflict" || ev.name == "fd.stranded") {
    churn.push_back({ev.name, ev.node, ev.time});
  } else if (ev.name == "fault.crash" || ev.name == "fault.recover" ||
             ev.name == "fault.outage_end" || ev.name == "fault.burst_end" ||
             ev.name == "energy.depleted") {
    last_disturbance = std::max(last_disturbance, ev.time);
  }
}

std::size_t MembershipLedger::resolve(std::vector<std::string>& issues) const {
  if (strikes == 0 && adoptions.empty()) return 0;  // vacuous

  const double deadline = last_disturbance + bound;
  for (const Churn& c : churn) {
    if (c.time <= deadline) continue;
    issues.push_back(c.name + " at t=" + std::to_string(c.time) + " (node " +
                     std::to_string(c.node) +
                     "): membership churn after the reconciliation deadline "
                     "t=" + std::to_string(deadline));
  }

  // Adoption pairing: each accept consumes the earliest unmatched adoption
  // of the same orphan into the same cell inside its window.
  std::vector<bool> accepted(adoptions.size(), false);
  for (const Accept& ac : accepts) {
    for (std::size_t i = 0; i < adoptions.size(); ++i) {
      const Adoption& a = adoptions[i];
      if (accepted[i] || a.node != ac.node || a.row != ac.row ||
          a.col != ac.col) {
        continue;
      }
      if (ac.time + 1e-9 < a.time || ac.time > a.time + bound) continue;
      accepted[i] = true;
      break;
    }
  }
  for (std::size_t i = 0; i < adoptions.size(); ++i) {
    const Adoption& a = adoptions[i];
    const std::string tag =
        "fd.adopt node " + std::to_string(a.node) + " into cell (" +
        std::to_string(a.row) + "," + std::to_string(a.col) + ") at t=" +
        std::to_string(a.time);
    if (!accepted[i]) {
      issues.push_back(tag + ": no fd.adopt_accept from the adopter cell "
                             "within bound " + std::to_string(bound));
    }
    if (!a.last) continue;
    bool rebound = false;
    for (const Bind& b : binds) {
      if (b.row == a.from_row && b.col == a.from_col &&
          b.time <= a.time + bound) {
        rebound = true;
        break;
      }
    }
    if (!rebound) {
      issues.push_back(tag + ": vacated cell (" + std::to_string(a.from_row) +
                       "," + std::to_string(a.from_col) +
                       ") never re-bound to a proxy leader (dark cell)");
    }
  }
  return strikes + adoptions.size();
}

CheckReport check_membership(const std::vector<TraceEvent>& events) {
  CheckReport report;
  report.events_seen = events.size();
  MembershipLedger ledger;
  for (const TraceEvent& ev : events) ledger.feed(ev);
  ledger.resolve(report.issues);
  report.flows_checked = ledger.strikes;
  report.collectives_checked = ledger.adoptions.size();
  return report;
}

CheckReport check_capture(const JsonValue& metrics_snapshot) {
  CheckReport report;
  const JsonValue* dropped = metrics_snapshot.find("trace.dropped");
  if (dropped == nullptr || !dropped->is_number()) return report;
  if (dropped->number() > 0.0) {
    const JsonValue* captured = metrics_snapshot.find("trace.captured");
    std::string issue =
        "capture: trace sink dropped " +
        std::to_string(static_cast<std::uint64_t>(dropped->number())) +
        " event(s)";
    if (captured != nullptr && captured->is_number()) {
      issue += " (holding " +
               std::to_string(static_cast<std::uint64_t>(captured->number())) +
               ")";
    }
    issue += "; the trace is a suffix of the run, not the whole run";
    report.issues.push_back(std::move(issue));
  }
  return report;
}

}  // namespace wsn::obs::analyze
