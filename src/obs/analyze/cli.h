// Implementation of the `wsn-inspect` command-line tool.
//
// The logic lives in the library (not in tools/wsn_inspect.cpp) so tests can
// drive every subcommand in-process against string streams; the binary is a
// thin main() over run_inspect().
//
//   wsn-inspect flows TRACE [--limit N]
//   wsn-inspect perf FILE [--top N] [--json PATH]
//   wsn-inspect critical-path TRACE
//   wsn-inspect energy-map TRACE [--side N] [--top N]
//   wsn-inspect histogram TRACE [--buckets N]
//   wsn-inspect check TRACE [--metrics FILE]
//   wsn-inspect convert TRACE --out PATH [--format jsonl|wtr]
//   wsn-inspect info TRACE
//
// TRACE is a JSONL file, a wtr file, or a streamed segment directory
// (obs/stream_sink.h); the flow-based analyses accept --retire-lag T to
// bound live-flow memory (default 1024 time units).
//   wsn-inspect bench-compare --baseline FILE --current FILE [--tolerance 10%]
//                [--wallclock-tolerance P] [--bench ID]
//
// Exit codes: 0 ok, 1 findings (failed check / regression), 2 usage or I/O
// error.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace wsn::obs::analyze {

int run_inspect(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);

}  // namespace wsn::obs::analyze
