#include "obs/analyze/cli.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "analysis/table.h"
#include "obs/analyze/bench_compare.h"
#include "obs/analyze/check.h"
#include "obs/analyze/energy.h"
#include "obs/analyze/flows.h"
#include "obs/analyze/incremental.h"
#include "obs/analyze/json_reader.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/stream_sink.h"
#include "obs/trace_reader.h"

namespace wsn::obs::analyze {

namespace {

using analysis::Table;

constexpr int kOk = 0;
constexpr int kFindings = 1;
constexpr int kUsage = 2;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Materializes a capture (JSONL file, wtr file, or segment directory)
/// for the analyses that genuinely need all events at once. Truncation
/// findings land in `findings` when given.
std::vector<TraceEvent> load_events(const std::string& path,
                                    std::vector<std::string>* findings) {
  TraceReader reader(path);
  std::vector<TraceEvent> events;
  TraceEvent ev;
  while (reader.next(ev)) events.push_back(std::move(ev));
  if (findings != nullptr) *findings = reader.findings();
  return events;
}

void print_warnings(const std::vector<std::string>& findings,
                    std::ostream& out) {
  for (const std::string& f : findings) out << "warning: " << f << "\n";
}

/// Default idle window (trace time units) after which streaming analyses
/// retire a flow. Large enough that every protocol exchange in the suite
/// completes well inside it; bounded so memory tracks live flows.
constexpr double kDefaultRetireLag = 1024.0;

/// "10%" => 0.10, "0.1" => 0.1. Throws on junk or negatives.
double parse_tolerance(const std::string& s) {
  std::size_t used = 0;
  double v = std::stod(s, &used);
  if (used < s.size()) {
    if (s.substr(used) != "%") {
      throw std::runtime_error("bad tolerance: " + s);
    }
    v /= 100.0;
  }
  if (v < 0.0) throw std::runtime_error("tolerance must be >= 0");
  return v;
}

/// Simple flag scanner: positional args in order, `--name value` pairs by
/// lookup. Unknown flags are an error to keep the CLI honest.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  const std::string* flag(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return &v;
    }
    return nullptr;
  }
};

Args scan_args(const std::vector<std::string>& argv, std::size_t start,
               const std::vector<std::string>& known_flags) {
  Args out;
  for (std::size_t i = start; i < argv.size(); ++i) {
    const std::string& a = argv[i];
    if (a.rfind("--", 0) == 0) {
      bool known = false;
      for (const std::string& k : known_flags) known = known || k == a;
      if (!known) throw std::runtime_error("unknown flag: " + a);
      if (i + 1 >= argv.size()) {
        throw std::runtime_error(a + " needs a value");
      }
      out.flags.emplace_back(a, argv[++i]);
    } else {
      out.positional.push_back(a);
    }
  }
  return out;
}

double flag_double(const Args& args, const char* name, double fallback) {
  const std::string* v = args.flag(name);
  return v != nullptr ? std::stod(*v) : fallback;
}

const char* layer_name(Category c) {
  return c == Category::kOverlay ? "overlay" : "virtual";
}

int cmd_flows(const Args& args, std::ostream& out) {
  if (args.positional.size() != 1) {
    throw std::runtime_error("flows: expected exactly one trace file");
  }
  std::size_t limit = static_cast<std::size_t>(-1);
  if (const std::string* v = args.flag("--limit")) {
    limit = static_cast<std::size_t>(std::stoull(*v));
  }
  // Single streaming pass: flows retire in creation order, so the first
  // `limit` retired flows are exactly the first `limit` rows the batch
  // path printed. Peak memory is live flows + the shown rows.
  TraceReader reader(args.positional[0]);
  Table t({"flow", "layer", "src", "dst", "hops", "send", "deliver",
           "latency", "wait", "transmit"});
  std::size_t shown = 0;
  FlowCollector collector(
      [&](Flow& f) {
        if (shown >= limit) return;
        ++shown;
        t.row({Table::num(f.id), layer_name(f.layer), Table::num(f.src_node),
               Table::num(f.dst_node), Table::num(f.hops.size()),
               Table::num(f.send_time, 3),
               f.delivered ? Table::num(f.deliver_time, 3) : "-",
               f.delivered ? Table::num(f.latency(), 3) : "-",
               Table::num(f.total_wait(), 3),
               Table::num(f.total_transmit(), 3)});
      },
      {flag_double(args, "--retire-lag", kDefaultRetireLag)});
  TraceEvent ev;
  while (reader.next(ev)) collector.feed(ev);
  collector.finish();
  out << t.str();
  out << shown << " of " << collector.flows_seen() << " flows\n";
  print_warnings(reader.findings(), out);
  return kOk;
}

int cmd_critical_path(const Args& args, std::ostream& out) {
  if (args.positional.size() != 1) {
    throw std::runtime_error("critical-path: expected exactly one trace file");
  }
  // The backward walk needs random access over all flows (though not over
  // all events): stream events through the collector, keep only the flows.
  std::vector<Flow> flows;
  std::vector<std::string> warnings;
  {
    TraceReader reader(args.positional[0]);
    FlowCollector collector(
        [&flows](Flow& f) { flows.push_back(std::move(f)); });
    TraceEvent ev;
    while (reader.next(ev)) collector.feed(ev);
    collector.finish();
    warnings = reader.findings();
  }
  print_warnings(warnings, out);
  const CriticalPathReport report = critical_path(flows);
  if (report.chain.empty()) {
    out << "no delivered flows in trace\n";
    return kOk;
  }
  Table t({"flow", "layer", "src", "dst", "send", "deliver", "gap_before",
           "wait", "transmit"});
  for (const ChainLink& link : report.chain) {
    const Flow& f = *link.flow;
    t.row({Table::num(f.id), layer_name(f.layer), Table::num(f.src_node),
           Table::num(f.dst_node), Table::num(f.send_time, 3),
           Table::num(f.deliver_time, 3), Table::num(link.gap_before, 3),
           Table::num(f.total_wait(), 3), Table::num(f.total_transmit(), 3)});
  }
  out << t.str();
  out << "critical path: " << report.chain.size() << " messages, "
      << Table::num(report.total(), 3) << " time units ["
      << Table::num(report.start_time, 3) << ", "
      << Table::num(report.end_time, 3) << "]\n";
  out << "  queueing  " << Table::num(report.message_wait, 3) << "\n"
      << "  transmit  " << Table::num(report.message_transmit, 3) << "\n"
      << "  node gaps " << Table::num(report.node_gaps, 3) << "\n";
  return kOk;
}

int cmd_energy_map(const Args& args, std::ostream& out) {
  if (args.positional.size() != 1) {
    throw std::runtime_error("energy-map: expected exactly one trace file");
  }
  // Incremental accumulation: memory is one NodeEnergy slot per node, flat
  // in the trace length.
  EnergyMap map;
  {
    TraceReader reader(args.positional[0]);
    TraceEvent ev;
    while (reader.next(ev)) accumulate_energy(map, ev);
    print_warnings(reader.findings(), out);
  }
  std::size_t side = 0;
  if (const std::string* v = args.flag("--side")) {
    side = static_cast<std::size_t>(std::stoull(*v));
  }
  std::size_t top = 5;
  if (const std::string* v = args.flag("--top")) {
    top = static_cast<std::size_t>(std::stoull(*v));
  }

  for (const auto& [label, layer] :
       {std::pair<const char*, const LayerEnergy&>{"virtual", map.vnet},
        std::pair<const char*, const LayerEnergy&>{"link", map.link}}) {
    if (layer.empty()) continue;
    out << label << " layer: tx " << Table::num(layer.tx, 3) << ", rx "
        << Table::num(layer.rx, 3) << ", total "
        << Table::num(layer.total(), 3) << " across " << layer.nodes.size()
        << " nodes\n";
    // Top spenders.
    std::vector<std::size_t> idx(layer.nodes.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return layer.nodes[a].total() > layer.nodes[b].total();
    });
    Table t({"node", "tx", "rx", "total"});
    for (std::size_t i = 0; i < idx.size() && i < top; ++i) {
      const NodeEnergy& n = layer.nodes[idx[i]];
      t.row({Table::num(idx[i]), Table::num(n.tx, 3), Table::num(n.rx, 3),
             Table::num(n.total(), 3)});
    }
    out << t.str();
  }

  if (!map.vnet.empty()) {
    const HotspotReport hs = hotspot_report(map.vnet, side);
    out << "hotspot: node " << hs.hottest_node << " spent "
        << Table::num(hs.hottest_energy, 3) << " ("
        << Table::num(hs.hotspot_factor(), 2) << "x the grid mean, side "
        << hs.side << ")\n";
    if (!hs.levels.empty()) {
      Table t({"level", "leaders", "leader_mean", "follower_mean",
               "imbalance"});
      for (const LevelEnergy& le : hs.levels) {
        t.row({Table::num(le.level), Table::num(le.leader_count),
               Table::num(le.leader_mean, 3), Table::num(le.follower_mean, 3),
               Table::num(le.imbalance(), 2)});
      }
      out << t.str();
    }
  }
  if (map.vnet.empty() && map.link.empty()) {
    out << "no radio events in trace\n";
  }

  // Residual view: against a uniform battery budget, who is closest to
  // dying? Lists the `top` lowest-residual link-layer nodes and the count
  // already at or below zero.
  if (const std::string* v = args.flag("--budget")) {
    const double budget = std::stod(*v);
    if (map.link.empty()) {
      out << "residual: no link-layer events in trace\n";
      return kOk;
    }
    std::vector<std::size_t> idx(map.link.nodes.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return map.link.nodes[a].total() > map.link.nodes[b].total();
    });
    std::size_t depleted = 0;
    for (const NodeEnergy& n : map.link.nodes) {
      if (n.total() >= budget) ++depleted;
    }
    Table t({"node", "spent", "residual"});
    for (std::size_t i = 0; i < idx.size() && i < top; ++i) {
      const NodeEnergy& n = map.link.nodes[idx[i]];
      t.row({Table::num(idx[i]), Table::num(n.total(), 3),
             Table::num(std::max(budget - n.total(), 0.0), 3)});
    }
    out << "residual vs budget " << Table::num(budget, 3) << ": " << depleted
        << " of " << map.link.nodes.size() << " nodes depleted\n";
    out << t.str();
  }
  return kOk;
}

int cmd_histogram(const Args& args, std::ostream& out) {
  if (args.positional.size() != 1) {
    throw std::runtime_error("histogram: expected exactly one trace file");
  }
  std::size_t buckets = 32;
  if (const std::string* v = args.flag("--buckets")) {
    buckets = static_cast<std::size_t>(std::stoull(*v));
  }
  const std::string& path = args.positional[0];
  const double lag = flag_double(args, "--retire-lag", kDefaultRetireLag);

  // Two streaming passes instead of one materialized flow list: pass 1
  // finds each metric's extent (histogram bounds), pass 2 fills the
  // buckets. Memory stays at live-flows + buckets either way.
  auto latency_of = [](const Flow& f) { return f.latency(); };
  auto latency_in = [](const Flow& f) { return f.delivered && !f.self_send; };
  auto size_of = [](const Flow& f) { return f.size; };
  auto size_in = [](const Flow& f) { return f.has_send; };

  struct Extent {
    double lo = 0.0, hi = 0.0;
    std::size_t n = 0;
    void add(double v) {
      if (n == 0) lo = hi = v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      ++n;
    }
  };
  Extent latency_ext, size_ext;
  std::vector<std::string> warnings;
  {
    TraceReader reader(path);
    FlowCollector collector(
        [&](Flow& f) {
          if (latency_in(f)) latency_ext.add(latency_of(f));
          if (size_in(f)) size_ext.add(size_of(f));
        },
        {lag});
    TraceEvent ev;
    while (reader.next(ev)) collector.feed(ev);
    collector.finish();
    warnings = reader.findings();
  }

  std::optional<Histogram> latency_h, size_h;
  if (latency_ext.n > 0) {
    latency_h.emplace(latency_ext.lo,
                      latency_ext.hi > latency_ext.lo ? latency_ext.hi
                                                      : latency_ext.lo + 1.0,
                      buckets);
  }
  if (size_ext.n > 0) {
    size_h.emplace(size_ext.lo,
                   size_ext.hi > size_ext.lo ? size_ext.hi : size_ext.lo + 1.0,
                   buckets);
  }
  if (latency_h.has_value() || size_h.has_value()) {
    TraceReader reader(path);
    FlowCollector collector(
        [&](Flow& f) {
          if (latency_h.has_value() && latency_in(f)) {
            latency_h->add(latency_of(f));
          }
          if (size_h.has_value() && size_in(f)) size_h->add(size_of(f));
        },
        {lag});
    TraceEvent ev;
    while (reader.next(ev)) collector.feed(ev);
    collector.finish();
  }

  auto summarize = [&](const char* what, const std::optional<Histogram>& h) {
    if (!h.has_value()) {
      out << what << ": no samples\n";
      return;
    }
    out << what << ": n " << h->count() << ", mean "
        << Table::num(h->mean(), 3) << ", p50 " << Table::num(h->p50(), 3)
        << ", p90 " << Table::num(h->p90(), 3) << ", p95 "
        << Table::num(h->p95(), 3) << ", p99 " << Table::num(h->p99(), 3)
        << ", max " << Table::num(h->max(), 3) << "\n";
  };
  summarize("latency", latency_h);
  summarize("size", size_h);
  print_warnings(warnings, out);
  return kOk;
}

int cmd_check(const Args& args, std::ostream& out) {
  if (args.positional.size() != 1) {
    throw std::runtime_error("check: expected exactly one trace file");
  }
  // Single-pass streaming check: every invariant family (structural,
  // energy, reliability, fd, depletion, self-stabilization) folds in as
  // events arrive, and a flow's state is dropped once it retires — peak
  // RSS tracks live flows, not capture size.
  std::optional<JsonValue> snapshot;
  if (const std::string* metrics = args.flag("--metrics")) {
    snapshot = parse_json(read_file(*metrics));
  }
  StreamCheckOptions options;
  options.retire_lag = flag_double(args, "--retire-lag", kDefaultRetireLag);
  StreamingChecker checker(options);
  TraceReader reader(args.positional[0]);
  TraceEvent ev;
  while (reader.next(ev)) checker.feed(ev);
  CheckReport report =
      checker.finish(snapshot.has_value() ? &*snapshot : nullptr);
  // A truncated capture explains most downstream violations; surface the
  // reader's findings first.
  report.issues.insert(report.issues.begin(), reader.findings().begin(),
                       reader.findings().end());
  out << report.events_seen << " events, " << report.flows_checked
      << " flows, " << report.collectives_checked << " collectives\n";
  if (report.ok()) {
    out << "all invariants hold\n";
    return kOk;
  }
  for (const std::string& issue : report.issues) out << "FAIL " << issue << "\n";
  out << report.issues.size() << " invariant violation(s)\n";
  return kFindings;
}

int cmd_convert(const Args& args, std::ostream& out) {
  if (args.positional.size() != 1) {
    throw std::runtime_error("convert: expected exactly one trace input");
  }
  const std::string* out_path = args.flag("--out");
  if (out_path == nullptr) {
    throw std::runtime_error("convert: needs --out PATH");
  }
  std::string format = "jsonl";
  if (const std::string* v = args.flag("--format")) format = *v;

  TraceReader reader(args.positional[0]);
  if (format == "jsonl") {
    // Streaming re-encode through one reused buffer; the bytes are
    // identical to a direct write_jsonl export of the same events.
    std::ofstream o(*out_path, std::ios::binary);
    if (!o) throw std::runtime_error("cannot write " + *out_path);
    std::string line;
    TraceEvent ev;
    while (reader.next(ev)) {
      line.clear();
      append_jsonl(ev, line);
      line += '\n';
      o.write(line.data(), static_cast<std::streamsize>(line.size()));
    }
    if (!o) throw std::runtime_error("cannot write " + *out_path);
  } else if (format == "wtr") {
    StreamSinkConfig config;
    config.directory = *out_path;
    config.format = TraceFormat::kWtr;
    if (const std::string* v = args.flag("--segment-bytes")) {
      config.segment_bytes = std::stoull(*v);
    }
    StreamingFileSink sink(config);
    TraceEvent ev;
    while (reader.next(ev)) sink.accept(ev);
    if (!sink.close()) {
      throw std::runtime_error("convert: " + sink.error());
    }
  } else {
    throw std::runtime_error("convert: unknown --format " + format +
                             " (jsonl or wtr)");
  }
  out << reader.events_read() << " events (" << reader.format() << " -> "
      << format << ") -> " << *out_path << "\n";
  print_warnings(reader.findings(), out);
  return reader.findings().empty() ? kOk : kFindings;
}

int cmd_info(const Args& args, std::ostream& out) {
  if (args.positional.size() != 1) {
    throw std::runtime_error("info: expected exactly one trace input");
  }
  TraceReader reader(args.positional[0]);
  TraceEvent ev;
  bool any = false;
  double t_lo = 0.0, t_hi = 0.0;
  while (reader.next(ev)) {
    if (!any) t_lo = t_hi = ev.time;
    t_lo = std::min(t_lo, ev.time);
    t_hi = std::max(t_hi, ev.time);
    any = true;
  }
  out << "format    : " << reader.format() << "\n";
  out << "segments  : " << reader.segments().size() << "\n";
  out << "events    : " << reader.events_read() << "\n";
  if (any) {
    out << "time range: [" << Table::num(t_lo, 3) << ", "
        << Table::num(t_hi, 3) << "]\n";
  } else {
    out << "time range: (empty)\n";
  }
  Table t({"segment", "events", "bytes", "complete"});
  for (const TraceReader::SegmentSummary& s : reader.segments()) {
    t.row({s.path, Table::num(s.events), Table::num(s.bytes),
           s.complete ? "yes" : "NO"});
  }
  out << t.str();
  print_warnings(reader.findings(), out);
  return reader.findings().empty() ? kOk : kFindings;
}

int cmd_bench_compare(const Args& args, std::ostream& out) {
  const std::string* baseline = args.flag("--baseline");
  const std::string* current = args.flag("--current");
  if (baseline == nullptr || current == nullptr || !args.positional.empty()) {
    throw std::runtime_error(
        "bench-compare: needs --baseline FILE and --current FILE");
  }
  CompareOptions options;
  if (const std::string* v = args.flag("--tolerance")) {
    options.tolerance = parse_tolerance(*v);
  }
  if (const std::string* v = args.flag("--wallclock-tolerance")) {
    options.wallclock_tolerance = parse_tolerance(*v);
  }
  if (const std::string* v = args.flag("--bench")) {
    options.bench_filter = *v;
  }
  const CompareReport report =
      compare_bench(read_file(*baseline), read_file(*current), options);
  out << report.rows_compared << " rows, " << report.fields_compared
      << " fields compared (tolerance "
      << Table::num(options.tolerance * 100.0, 1) << "%";
  if (options.wallclock_tolerance >= 0) {
    out << ", wall clock one-sided "
        << Table::num(options.wallclock_tolerance * 100.0, 1) << "%";
  }
  if (!options.bench_filter.empty()) {
    out << ", bench '" << options.bench_filter << "' only";
  }
  out << ")\n";
  for (const std::string& note : report.notes) out << "note: " << note << "\n";
  for (const std::string& m : report.mismatches) {
    out << "MISMATCH " << m << "\n";
  }
  if (!report.regressions.empty()) {
    Table t({"bench", "row", "field", "baseline", "current", "change"});
    for (const FieldDelta& d : report.regressions) {
      t.row({d.bench, Table::num(d.row), d.field, Table::num(d.baseline, 4),
             Table::num(d.current, 4),
             Table::num(d.rel_change() * 100.0, 2) + "%"});
    }
    out << t.str();
  }
  if (report.ok()) {
    out << "no regressions\n";
    return kOk;
  }
  out << report.regressions.size() << " regression(s), "
      << report.mismatches.size() << " mismatch(es)\n";
  return kFindings;
}

int cmd_perf(const Args& args, std::ostream& out) {
  if (args.positional.size() != 1) {
    throw std::runtime_error("perf: expected exactly one perf JSON file");
  }
  std::size_t top = 10;
  if (const std::string* v = args.flag("--top")) {
    top = static_cast<std::size_t>(std::stoull(*v));
  }
  const JsonValue doc = parse_json(read_file(args.positional[0]));
  const JsonValue* prof = doc.find("prof");
  if (prof == nullptr || !prof->is_object()) {
    throw std::runtime_error("perf: no \"prof\" object in " +
                             args.positional[0]);
  }
  auto num = [&](const char* key) {
    const JsonValue* v = prof->find(key);
    return v != nullptr && v->is_number() ? v->number() : 0.0;
  };
  const double host_ns = num("host_ns");
  const double host_ms = host_ns / 1e6;
  const double sim_time = num("sim_time");
  const double sim_events = num("sim_events");
  const double events_per_sec = num("events_per_sec");

  out << "host time     " << Table::num(host_ms, 3) << " ms\n";
  out << "sim time      " << Table::num(sim_time, 3) << " units\n";
  out << "sim events    " << Table::num(sim_events, 0) << "\n";
  out << "events/sec    " << Table::num(events_per_sec, 0) << "\n";
  if (sim_time > 0.0) {
    // The Chrome export maps 1 cost-model unit to 1 ms, so this ratio reads
    // as "host milliseconds burned per simulated millisecond".
    out << "host/sim      " << Table::num(host_ms / sim_time, 4)
        << " host ms per sim unit\n";
  }

  // Top-N self time. self_ns never double-counts nested spans, so the
  // column sums to at most host_ns and ranks layers honestly.
  struct CatRow {
    std::string name;
    double count, total_ns, self_ns, min_ns, max_ns;
  };
  std::vector<CatRow> cats;
  if (const JsonValue* spans = prof->find("spans");
      spans != nullptr && spans->is_object()) {
    for (const auto& [name, b] : spans->object()) {
      if (!b.is_object()) continue;
      auto f = [&](const char* key) {
        const JsonValue* v = b.find(key);
        return v != nullptr && v->is_number() ? v->number() : 0.0;
      };
      cats.push_back({name, f("count"), f("total_ns"), f("self_ns"),
                      f("min_ns"), f("max_ns")});
    }
  }
  std::sort(cats.begin(), cats.end(), [](const CatRow& a, const CatRow& b) {
    return a.self_ns > b.self_ns;
  });
  double accounted_ns = 0.0;
  for (const CatRow& c : cats) accounted_ns += c.self_ns;
  if (!cats.empty()) {
    Table t({"category", "count", "self_ms", "total_ms", "self_%", "mean_ns",
             "max_ns"});
    for (std::size_t i = 0; i < cats.size() && i < top; ++i) {
      const CatRow& c = cats[i];
      t.row({c.name, Table::num(c.count, 0), Table::num(c.self_ns / 1e6, 3),
             Table::num(c.total_ns / 1e6, 3),
             Table::num(host_ns > 0 ? c.self_ns / host_ns * 100.0 : 0.0, 1),
             Table::num(c.count > 0 ? c.total_ns / c.count : 0.0, 0),
             Table::num(c.max_ns, 0)});
    }
    out << t.str();
    out << "spans account for "
        << Table::num(host_ns > 0 ? accounted_ns / host_ns * 100.0 : 0.0, 1)
        << "% of host time (rest is uninstrumented)\n";
  } else {
    out << "no span samples (profiler never armed?)\n";
  }

  // Allocation hotspots: totals, then phases ranked by bytes.
  const double alloc_count =
      prof->find("alloc") != nullptr && prof->find("alloc")->is_object()
          ? (prof->find("alloc")->find("count") != nullptr
                 ? prof->find("alloc")->find("count")->number()
                 : 0.0)
          : 0.0;
  const double alloc_bytes =
      prof->find("alloc") != nullptr && prof->find("alloc")->is_object()
          ? (prof->find("alloc")->find("bytes") != nullptr
                 ? prof->find("alloc")->find("bytes")->number()
                 : 0.0)
          : 0.0;
  out << "allocations   " << Table::num(alloc_count, 0) << " ("
      << Table::num(alloc_bytes, 0) << " bytes)\n";
  if (const JsonValue* phases = prof->find("phases");
      phases != nullptr && phases->is_array() && !phases->array().empty()) {
    struct PhaseRow {
      std::string name;
      double ms, alloc_count, alloc_bytes;
    };
    std::vector<PhaseRow> rows;
    for (const JsonValue& ph : phases->array()) {
      if (!ph.is_object()) continue;
      auto f = [&](const char* key) {
        const JsonValue* v = ph.find(key);
        return v != nullptr && v->is_number() ? v->number() : 0.0;
      };
      const JsonValue* name = ph.find("name");
      rows.push_back({name != nullptr && name->is_string() ? name->string()
                                                           : "(unnamed)",
                      (f("end_ns") - f("start_ns")) / 1e6, f("alloc_count"),
                      f("alloc_bytes")});
    }
    std::sort(rows.begin(), rows.end(),
              [](const PhaseRow& a, const PhaseRow& b) {
                return a.alloc_bytes > b.alloc_bytes;
              });
    Table t({"phase", "ms", "allocs", "bytes"});
    for (std::size_t i = 0; i < rows.size() && i < top; ++i) {
      t.row({rows[i].name, Table::num(rows[i].ms, 3),
             Table::num(rows[i].alloc_count, 0),
             Table::num(rows[i].alloc_bytes, 0)});
    }
    out << t.str();
  }

  if (const std::string* path = args.flag("--json")) {
    std::ofstream o(*path, std::ios::binary);
    if (!o) throw std::runtime_error("cannot write " + *path);
    std::string line = "{\"bench\":\"perf\",\"host_ms\":";
    json_append_double(line, host_ms);
    line += ",\"events_per_sec\":";
    json_append_double(line, events_per_sec);
    line += ",\"sim_time\":";
    json_append_double(line, sim_time);
    line += ",\"sim_events\":";
    json_append_double(line, sim_events);
    line += ",\"alloc_count\":";
    json_append_double(line, alloc_count);
    line += ",\"alloc_bytes\":";
    json_append_double(line, alloc_bytes);
    for (const CatRow& c : cats) {
      line += ',';
      json_append_string(line, c.name + "_self_ns");
      line += ':';
      json_append_double(line, c.self_ns);
    }
    line += "}\n";
    o << line;
  }
  return kOk;
}

void usage(std::ostream& err) {
  err << "usage: wsn-inspect <command> [args]\n"
         "  (TRACE is a JSONL file, a wtr file, or a streamed segment dir;\n"
         "   analyses run single-pass with memory bounded by live flows —\n"
         "   --retire-lag T tunes the idle window, default 1024)\n"
         "  flows TRACE [--limit N] [--retire-lag T]\n"
         "                                     reconstructed message flows\n"
         "  perf FILE [--top N] [--json PATH]  profiler snapshot: top self-\n"
         "                                     time, events/sec, host/sim\n"
         "                                     ratio, allocation hotspots\n"
         "  critical-path TRACE                slowest dependency chain\n"
         "  energy-map TRACE [--side N] [--top N] [--budget B]\n"
         "                                     per-node/per-level energy;\n"
         "                                     --budget adds a residual view\n"
         "  histogram TRACE [--buckets N] [--retire-lag T]\n"
         "                                     latency/size distributions\n"
         "  check TRACE [--metrics FILE] [--retire-lag T]\n"
         "                                     trace invariant checker\n"
         "                                     (incl. ARQ/fault reliability,\n"
         "                                     fd, depletion, and self-\n"
         "                                     stabilization invariants)\n"
         "  convert TRACE --out PATH [--format jsonl|wtr] [--segment-bytes N]\n"
         "                                     re-encode a capture (jsonl\n"
         "                                     round-trips byte-identically)\n"
         "  info TRACE                         header/segment/count summary\n"
         "  bench-compare --baseline FILE --current FILE [--tolerance 10%]\n"
         "                [--wallclock-tolerance P] [--bench ID]\n"
         "                                     bench regression gate; wall-\n"
         "                                     clock fields (_ms/_ns/_per_sec)\n"
         "                                     skipped unless P given (then\n"
         "                                     one-sided: slower only)\n";
}

}  // namespace

int run_inspect(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    usage(err);
    return args.empty() ? kUsage : kOk;
  }
  const std::string& cmd = args[0];
  try {
    if (cmd == "flows") {
      return cmd_flows(scan_args(args, 1, {"--limit", "--retire-lag"}), out);
    }
    if (cmd == "critical-path") {
      return cmd_critical_path(scan_args(args, 1, {}), out);
    }
    if (cmd == "energy-map") {
      return cmd_energy_map(
          scan_args(args, 1, {"--side", "--top", "--budget"}), out);
    }
    if (cmd == "histogram") {
      return cmd_histogram(scan_args(args, 1, {"--buckets", "--retire-lag"}),
                           out);
    }
    if (cmd == "check") {
      return cmd_check(scan_args(args, 1, {"--metrics", "--retire-lag"}), out);
    }
    if (cmd == "convert") {
      return cmd_convert(
          scan_args(args, 1, {"--out", "--format", "--segment-bytes"}), out);
    }
    if (cmd == "info") {
      return cmd_info(scan_args(args, 1, {}), out);
    }
    if (cmd == "bench-compare") {
      return cmd_bench_compare(
          scan_args(args, 1,
                    {"--baseline", "--current", "--tolerance",
                     "--wallclock-tolerance", "--bench"}),
          out);
    }
    if (cmd == "perf") {
      return cmd_perf(scan_args(args, 1, {"--top", "--json"}), out);
    }
    err << "unknown command: " << cmd << "\n";
    usage(err);
    return kUsage;
  } catch (const std::exception& e) {
    err << "wsn-inspect " << cmd << ": " << e.what() << "\n";
    return kUsage;
  }
}

}  // namespace wsn::obs::analyze
