// Bench regression baselines.
//
// Every bench emits machine-readable JSONL rows via --json (bench::JsonWriter):
// one object per configuration with a "bench" id and numeric result fields.
// The simulated quantities in those rows — latency, energy, message counts —
// are deterministic functions of the cost model, so a committed baseline can
// be compared tightly: any drift beyond tolerance is either an intended
// behavior change (refresh the baseline, explain in the PR) or a regression.
// Wall-clock fields are the exception; by repo convention they end in
// "_ms", "_ns", or "_per_sec" (host-time measurements and rates derived
// from them). They are skipped by default, but a caller can opt into a
// one-sided comparison at a separate, generous tolerance: only the *slower*
// direction regresses (time fields growing, rate fields shrinking), so a
// machine that happens to be fast never fails the gate. The CI perf-smoke
// job uses this to gate bench_kernel's events/sec rows.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wsn::obs::analyze {

/// One field whose value drifted beyond tolerance.
struct FieldDelta {
  std::string bench;       // "bench" id of the row
  std::size_t row = 0;     // ordinal of the row within its bench
  std::string field;
  double baseline = 0.0;
  double current = 0.0;

  /// Relative change, scaled to max(|baseline|, 1) so near-zero baselines
  /// do not explode.
  double rel_change() const;
};

struct CompareReport {
  std::vector<FieldDelta> regressions;   // numeric drift beyond tolerance
  std::vector<std::string> mismatches;   // structural: missing rows/fields,
                                         // changed string fields
  std::vector<std::string> notes;        // informational: new benches/fields
  std::size_t fields_compared = 0;
  std::size_t rows_compared = 0;

  bool ok() const { return regressions.empty() && mismatches.empty(); }
};

struct CompareOptions {
  /// Allowed relative change per deterministic numeric field (0.10 = 10%).
  double tolerance = 0.10;
  /// Tolerance for wall-clock-class fields (suffix "_ms"/"_ns"/"_per_sec").
  /// Negative (the default) skips them entirely; >= 0 compares them
  /// one-sided — only the slower direction counts as a regression.
  double wallclock_tolerance = -1.0;
  /// When non-empty, only rows whose "bench" id equals this are compared;
  /// benches present on one side only are ignored rather than mismatched.
  std::string bench_filter;
};

/// Compares two bench JSONL captures under `options`. Throws
/// std::runtime_error on malformed input.
CompareReport compare_bench(const std::string& baseline_jsonl,
                            const std::string& current_jsonl,
                            const CompareOptions& options);

/// Convenience overload: deterministic tolerance only, wall clock skipped.
CompareReport compare_bench(const std::string& baseline_jsonl,
                            const std::string& current_jsonl,
                            double tolerance);

}  // namespace wsn::obs::analyze
