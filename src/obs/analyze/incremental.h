// Incremental (single-pass, bounded-memory) trace analysis.
//
// The batch analyzers (flows.h, check.h) materialize the whole trace and
// every reconstructed flow at once — fine for ring-buffer captures, fatal
// for the multi-GB streamed captures the StreamingFileSink produces.
// FlowCollector folds events into live Flow records and *retires* each
// flow to a callback once it has been idle for `retire_lag` time units, so
// peak memory tracks the number of concurrently-live flows instead of the
// trace length. StreamingChecker runs every check.h invariant on top of
// that collector the same way. Both assume events arrive in emission order
// with nondecreasing timestamps — which is how every sink writes them.
//
// Retirement is strictly in flow-creation order (only the front of the
// creation queue retires), so downstream output — wsn-inspect flows rows,
// issue lists — is byte-identical to the batch path's.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/analyze/check.h"
#include "obs/analyze/energy.h"
#include "obs/analyze/flows.h"
#include "obs/analyze/json_reader.h"
#include "obs/trace.h"

namespace wsn::obs::analyze {

struct FlowCollectorOptions {
  /// A flow retires once untouched for this many time units behind the
  /// stream's watermark. Negative: never retire early — finish() then
  /// yields exactly reconstruct_flows(), in the same order.
  double retire_lag = -1.0;
};

class FlowCollector {
 public:
  using RetireFn = std::function<void(Flow&)>;
  // Namespace-scope (not nested): GCC rejects a `= {}` default argument
  // naming a nested aggregate whose NSDMIs aren't parsed yet.
  using Options = FlowCollectorOptions;

  explicit FlowCollector(RetireFn on_retire, Options options = {})
      : on_retire_(std::move(on_retire)), options_(options) {}

  /// Folds one event into its flow (collective and flow-0 events are
  /// ignored, as in reconstruct_flows) and retires flows that fell behind
  /// the watermark.
  void feed(const TraceEvent& ev);

  /// Retires every still-live flow, in creation order.
  void finish();

  std::uint64_t flows_seen() const { return flows_seen_; }
  std::size_t live() const { return queue_.size(); }

 private:
  struct LiveFlow {
    Flow flow;
    double last_touch = 0.0;
  };

  RetireFn on_retire_;
  Options options_;
  // deque gives stable element addresses under push_back/pop_front, so the
  // id index can hold plain pointers into it.
  std::deque<LiveFlow> queue_;
  std::unordered_map<std::uint64_t, LiveFlow*> index_;
  std::uint64_t flows_seen_ = 0;
};

struct StreamCheckOptions {
  /// Flow/ARQ state older than this (in trace time units) is retired; a
  /// larger lag tolerates more interleaving between long-lived flows at
  /// the cost of more live state.
  double retire_lag = 1024.0;
  EnergyRates rates;
};

/// All check.h invariants as one single-pass consumer. feed() every event
/// in order, then finish() — with the run's metrics snapshot, if captured,
/// for the energy-conservation / ARQ-counter / capture-health checks —
/// to obtain the combined CheckReport. Peak memory is bounded by live
/// flows + nodes + collectives, never by trace length.
class StreamingChecker {
 public:
  explicit StreamingChecker(StreamCheckOptions options = {});

  void feed(const TraceEvent& ev);
  CheckReport finish(const JsonValue* metrics_snapshot = nullptr);

  /// Trace-derived energy accumulated so far (finalized after finish()).
  const EnergyMap& energy() const { return energy_; }

 private:
  void retire(Flow& f);
  void feed_collective(const TraceEvent& ev);
  void feed_reliability(const TraceEvent& ev);
  void feed_depletion_link(const TraceEvent& ev);
  void expire_rel_state(double watermark);

  StreamCheckOptions options_;
  CheckReport report_;
  FlowCollector flows_;
  EnergyMap energy_;

  // Collectives. Open spans are keyed by id; `began_` mirrors the batch
  // checker's orphan-'E' detection (collective ids are handed out per
  // operation, not per event, so this stays small).
  struct OpenCollective {
    std::string name;
    double begin = 0.0;
  };
  std::unordered_map<std::uint64_t, OpenCollective> open_collectives_;
  std::unordered_set<std::uint64_t> began_;

  // Reliability (ARQ pairing + crash windows). `sent_` maps the
  // (src,dst,seq) key to its last-touch time and is expired lazily through
  // `sent_queue_` so per-hop ARQ traffic doesn't accumulate forever.
  std::unordered_map<std::string, double> sent_;
  std::deque<std::pair<std::string, double>> sent_queue_;
  std::unordered_set<std::int64_t> crashed_;
  std::uint64_t give_ups_ = 0;

  // Failure detection (bounded by cells x epochs actually contested).
  std::unordered_set<std::string> elections_;
  std::unordered_set<std::string> claimed_;
  std::unordered_map<std::string, std::uint64_t> last_claim_epoch_;

  // Depletion (bounded by node count).
  std::unordered_map<std::int64_t, double> depleted_at_;

  // Self-stabilization (check_stabilization). Churn candidates must be
  // buffered until finish(): a later disturbance can extend the quiescence
  // deadline and legitimize churn that looked late when it streamed past.
  // Bounded by elections/claims in the trace, not by trace length.
  struct ChurnEvent {
    std::string name;
    std::int64_t node = 0;
    double time = 0.0;
  };
  std::vector<ChurnEvent> stab_churn_;
  double stab_bound_ = 0.0;
  double stab_disturb_ = 0.0;
  std::size_t stab_corruptions_ = 0;

  // Self-healing membership (check_membership). Same buffer-until-finish
  // reasoning; the fold and the findings live in MembershipLedger, shared
  // with the batch path so wording cannot drift. Bounded by membership
  // activity in the trace.
  MembershipLedger membership_;
};

}  // namespace wsn::obs::analyze
