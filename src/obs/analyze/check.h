// Trace invariant checker — the test oracle over captured runs.
//
// A structurally sound trace satisfies, independent of workload:
//   * every delivery belongs to a flow that was sent (no orphan receives);
//   * every non-self send terminates in a delivery (flows terminate; the
//     virtual layer is lossless, and overlay sends resolve to a leader);
//   * a virtual flow crosses exactly the hop count its send announced, and
//     each hop's timeline is causal (non-negative wait and transmit time);
//   * the end-to-end latency decomposes exactly into the per-hop spans;
//   * every physical-layer receive in a correlated flow follows a
//     transmission of that flow;
//   * collective 'B'/'E' spans pair up and close forward in time.
//
// check_energy() additionally replays the charging rules (energy.h) and
// compares the result against a live MetricsRegistry snapshot: trace-derived
// radio energy must equal the ledger's tx/rx totals exactly (compute energy
// is not traced and is excluded). Together the two checks make any captured
// run a self-validating artifact, usable as a ctest oracle and as the CI
// gate over the quickstart capture.
#pragma once

#include <string>
#include <vector>

#include "obs/analyze/json_reader.h"
#include "obs/trace.h"

namespace wsn::obs::analyze {

struct CheckReport {
  std::vector<std::string> issues;
  std::size_t flows_checked = 0;
  std::size_t collectives_checked = 0;
  std::size_t events_seen = 0;

  bool ok() const { return issues.empty(); }
};

/// Structural invariants over a captured event stream.
CheckReport check_trace(const std::vector<TraceEvent>& events);

/// The per-flow slice of check_trace: appends every invariant violation of
/// one reconstructed flow to `issues`, exact same wording. Shared by the
/// batch checker and the streaming checker (incremental.h) so the two can
/// never drift apart.
void append_flow_issues(const struct Flow& flow,
                        std::vector<std::string>& issues);

/// Conservation check: trace-derived radio energy vs. a MetricsRegistry
/// snapshot (the JSON written by `--metrics`). Only sections present in the
/// snapshot are compared ("vnet.energy", "link.energy"); `rel_tolerance`
/// absorbs decimal round-tripping.
CheckReport check_energy(const std::vector<TraceEvent>& events,
                         const JsonValue& metrics_snapshot,
                         double rel_tolerance = 1e-9);

/// Reliability invariants over the kReliability event stream:
///   * every "rel.retransmit" / "rel.give_up" / "rel.ack" pairs with a
///     preceding "rel.send" of the same (src, dst, seq);
///   * no link-layer delivery lands on a node inside a crash window
///     (between its "fault.crash" and "fault.recover" events);
///   * with a metrics snapshot, the traced give-up count equals the
///     "arq.counters" section's "arq.give_up" (the on_give_up invocations).
/// Pass nullptr for `metrics_snapshot` when no snapshot was captured.
CheckReport check_reliability(const std::vector<TraceEvent>& events,
                              const JsonValue* metrics_snapshot = nullptr);

/// Failure-detection invariants over the kReliability "fd.*" event stream
/// (emitted by emulation::FailureDetector):
///   * leadership claims are unique per (cell, epoch) — two "fd.claim"
///     events with the same cell and epoch mean split-brain;
///   * per cell, claim epochs are strictly increasing in trace order;
///   * every "fd.claim" is preceded by an "fd.elect" of the same cell and
///     epoch (nobody claims leadership without an election round).
/// A trace with no fd events passes vacuously.
CheckReport check_failure_detection(const std::vector<TraceEvent>& events);

/// Depletion invariants over the trace (emitted by sim::DepletionMonitor):
///   * "energy.depleted" fires exactly once per node — a duplicate means the
///     exactly-once crossing latch broke;
///   * each depletion records spent >= budget (the crossing really crossed);
///   * after a node's depletion no link-layer transmission or delivery at
///     that node carries a strictly later timestamp. Equal timestamps are
///     legal: the LinkLayer charges the dying frame *before* emitting its tx
///     event, so the budget-crossing frame's own trace lands at the same
///     tick as (and after, in stream order) the depletion event.
/// A trace with no depletion events passes vacuously.
CheckReport check_depletion(const std::vector<TraceEvent>& events);

/// Self-stabilization invariant over the kReliability stream: after every
/// disturbance has had its stabilization window, the detector must be
/// quiescent. Each "fd.corrupt" event (emitted by
/// FailureDetector::inject_corruption) carries the analytic `bound`
/// attribute; the quiescence deadline is the latest disturbance in the
/// trace (fd.corrupt, fault.crash/recover, fault.outage_end,
/// fault.burst_end, energy.depleted) plus the largest such bound. Any
/// leadership churn after that deadline — fd.elect, fd.lease_expire,
/// fd.audit_conflict, fd.epoch_regress, or an unplanned fd.claim — means
/// the network failed to re-converge from the corrupted state. Planned
/// handoff claims are exempt (energy-driven succession is progress, not
/// instability). Passes vacuously when the trace has no fd.corrupt events.
/// `flows_checked` reports the number of corruption strikes covered.
CheckReport check_stabilization(const std::vector<TraceEvent>& events);

/// Bounded membership-state bookkeeping shared by check_membership and the
/// StreamingChecker (incremental.h), so the batch and streaming paths emit
/// byte-identical findings. feed() every kReliability event in order;
/// resolve() appends the violations once the stream is complete (the
/// quiescence deadline and adoption bound are only final then). State is
/// bounded by membership activity in the trace, never by trace length.
struct MembershipLedger {
  struct Adoption {
    std::int64_t node = -1;
    std::int64_t row = -1, col = -1;            // the adopter cell joined
    std::int64_t from_row = -1, from_col = -1;  // the cell abandoned
    bool last = false;  // orphan was the cell's last reachable member
    double time = 0.0;
  };
  struct Accept {
    std::int64_t node = -1;  // the orphan accepted
    std::int64_t row = -1, col = -1;
    double time = 0.0;
  };
  struct Bind {
    std::int64_t row = -1, col = -1;  // the vacated cell re-bound
    double time = 0.0;
  };
  struct Churn {
    std::string name;
    std::int64_t node = 0;
    double time = 0.0;
  };

  double bound = 0.0;             // largest analytic bound attr seen
  double last_disturbance = 0.0;  // anchors the quiescence deadline
  std::size_t strikes = 0;        // fd.defect + fd.roster_corrupt events
  std::vector<Adoption> adoptions;
  std::vector<Accept> accepts;
  std::vector<Bind> binds;
  std::vector<Churn> churn;

  void feed(const TraceEvent& ev);
  /// Appends every membership invariant violation to `issues`. Returns the
  /// number of disturbances covered (0 == the check was vacuous).
  std::size_t resolve(std::vector<std::string>& issues) const;
};

/// Self-healing membership invariants over the kReliability "fd.*" stream
/// (emulation::FailureDetector with membership mode on):
///   * quiescence — after the last membership disturbance (fd.defect /
///     fd.roster_corrupt strike, crash/recover/outage/depletion, or an
///     adoption, each of which may legitimately provoke repair) plus the
///     largest analytic `bound` attribute in the trace, no membership
///     repair churn remains (fd.member_heal, fd.roster_heal,
///     fd.roster_conflict, fd.adopt_accept, fd.adopt_bind, fd.stranded);
///   * adoption closes — every fd.adopt (orphan N joining cell C) is
///     answered by C's leader with an fd.adopt_accept for N within the
///     bound (the kJoin reached a live adopter);
///   * zero dark cells — every adoption that vacated its origin cell
///     (fd.adopt with last=1) sees an fd.adopt_bind re-binding that cell
///     to a proxy leader by adoption time + bound.
/// Passes vacuously when the trace carries no membership activity.
/// `flows_checked` reports corruption strikes, `collectives_checked` the
/// adoptions covered.
CheckReport check_membership(const std::vector<TraceEvent>& events);

/// Capture-health check over a metrics snapshot: a nonzero "trace.dropped"
/// gauge (RingBufferSink::register_metrics) means the companion trace file
/// is a *suffix* of the run — the sink overwrote its oldest events — so
/// flow reconstruction and energy replay over it are unsound. Flagging it
/// here turns a silently-partial capture into an explicit finding. Passes
/// vacuously when the snapshot has no "trace.dropped" gauge (no ring sink
/// was registered).
CheckReport check_capture(const JsonValue& metrics_snapshot);

}  // namespace wsn::obs::analyze
