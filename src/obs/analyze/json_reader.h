// Generic JSON reader for the offline analysis toolkit.
//
// The trace JSONL re-importer (obs/export.cpp) parses exactly the shape its
// writer emits; the analysis side also has to consume documents it did not
// write line-by-line — MetricsRegistry snapshots (nested objects + arrays),
// bench --json rows with bench-specific fields, and whole Chrome trace
// files (the exporter-validation test re-parses its own output). This is a
// small recursive-descent parser over a general value type for those.
//
// Number typing follows the repo-wide convention: '.'/exponent => double,
// leading '-' => int64, otherwise uint64 — so numeric fields round-trip
// through json_append_value/json_append_double losslessly.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace wsn::obs::analyze {

struct JsonValue;

/// Object members in document order (bench rows and snapshots are written
/// in a deterministic order; preserving it keeps diffs stable).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, JsonArray, JsonObject>
      v = nullptr;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v); }
  bool is_bool() const { return std::holds_alternative<bool>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_number() const {
    return std::holds_alternative<std::int64_t>(v) ||
           std::holds_alternative<std::uint64_t>(v) ||
           std::holds_alternative<double>(v);
  }

  /// Numeric value as double. Throws std::runtime_error if not a number.
  double number() const;
  /// String value. Throws std::runtime_error if not a string.
  const std::string& string() const;
  /// Array value. Throws std::runtime_error if not an array.
  const JsonArray& array() const;
  /// Object value. Throws std::runtime_error if not an object.
  const JsonObject& object() const;

  /// First member named `key`, or nullptr. Requires an object.
  const JsonValue* find(const std::string& key) const;
};

/// Parses one complete JSON document; throws std::runtime_error on malformed
/// input or trailing garbage.
JsonValue parse_json(const std::string& text);

}  // namespace wsn::obs::analyze
