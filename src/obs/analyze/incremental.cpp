#include "obs/analyze/incremental.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace wsn::obs::analyze {

namespace {

const AttrValue* find_attr(const TraceEvent& ev, const char* key) {
  for (const Attr& a : ev.attrs) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

double attr_num(const TraceEvent& ev, const char* key, double fallback = 0.0) {
  const AttrValue* v = find_attr(ev, key);
  if (v == nullptr) return fallback;
  if (const auto* d = std::get_if<double>(v)) return *d;
  if (const auto* u = std::get_if<std::uint64_t>(v)) {
    return static_cast<double>(*u);
  }
  if (const auto* i = std::get_if<std::int64_t>(v)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

bool close_rel(double a, double b, double rel) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= rel * std::max(scale, 1.0);
}

/// The event-into-flow fold — the one place that knows how raw events map
/// onto Flow fields. reconstruct_flows (flows.cpp) and the streaming path
/// both run through here.
void fold_event(Flow& f, const TraceEvent& ev) {
  switch (ev.category) {
    case Category::kVirtual:
    case Category::kOverlay:
      if (ev.name == "send" || ev.name == "self_send") {
        f.has_send = true;
        f.layer = ev.category;
        f.src_node = ev.node;
        f.send_time = ev.time;
        f.self_send = ev.name == "self_send";
        f.size = attr_num(ev, "size", 1.0);
        f.expected_hops = static_cast<std::uint64_t>(attr_num(
            ev, ev.category == Category::kOverlay ? "vhops" : "hops"));
        f.dst_index = static_cast<std::int64_t>(attr_num(ev, "dst", -1.0));
      } else if (ev.name == "deliver") {
        f.delivered = true;
        f.dst_node = ev.node;
        f.deliver_time = ev.time;
        if (f.layer == Category::kVirtual &&
            ev.category == Category::kOverlay) {
          f.layer = Category::kOverlay;  // deliver seen before its send
        }
      } else if (ev.name == "hop") {
        f.hops.push_back({ev.node,
                          static_cast<std::int64_t>(attr_num(ev, "next", -1.0)),
                          ev.time, attr_num(ev, "depart"),
                          attr_num(ev, "wait")});
      } else if (ev.name == "drop") {
        f.dropped = true;
      }
      break;
    case Category::kLink:
      // Physical transmissions serving an overlay send become its hops.
      if (ev.name == "unicast") {
        ++f.link_tx;
        f.hops.push_back({ev.node,
                          static_cast<std::int64_t>(attr_num(ev, "to", -1.0)),
                          ev.time, attr_num(ev, "arrive", ev.time), 0.0});
      } else if (ev.name == "broadcast") {
        ++f.link_tx;
        f.hops.push_back({ev.node, -1, ev.time,
                          attr_num(ev, "arrive", ev.time), 0.0});
      } else if (ev.name == "deliver") {
        // The hop was recorded at its unicast; only count the receive so
        // rx/tx pairing can be checked per flow.
        ++f.link_rx;
      } else if (ev.name == "drop") {
        f.dropped = true;
      }
      break;
    case Category::kReliability:
      if (ev.name == "rel.give_up") {
        f.gave_up = true;
      } else if (ev.name == "rel.retransmit") {
        ++f.retransmits;
      }
      break;
    default:
      break;  // protocol/bench/app events carry no flow structure
  }
}

}  // namespace

void FlowCollector::feed(const TraceEvent& ev) {
  if (ev.flow != 0 && ev.category != Category::kCollective) {
    LiveFlow* lf;
    const auto it = index_.find(ev.flow);
    if (it == index_.end()) {
      queue_.emplace_back();
      lf = &queue_.back();
      lf->flow.id = ev.flow;
      index_.emplace(ev.flow, lf);
      ++flows_seen_;
    } else {
      lf = it->second;
    }
    fold_event(lf->flow, ev);
    lf->last_touch = ev.time;
  }
  // Only the front of the creation queue retires, so retirement order ==
  // creation order regardless of how flows interleave. A long-lived front
  // flow delays those behind it — that trades a little memory for output
  // that is byte-identical to the batch path.
  if (options_.retire_lag >= 0.0) {
    while (!queue_.empty() &&
           queue_.front().last_touch + options_.retire_lag < ev.time) {
      LiveFlow& front = queue_.front();
      index_.erase(front.flow.id);
      on_retire_(front.flow);
      queue_.pop_front();
    }
  }
}

void FlowCollector::finish() {
  while (!queue_.empty()) {
    LiveFlow& front = queue_.front();
    index_.erase(front.flow.id);
    on_retire_(front.flow);
    queue_.pop_front();
  }
}

StreamingChecker::StreamingChecker(StreamCheckOptions options)
    : options_(options),
      flows_([this](Flow& f) { retire(f); },
             FlowCollector::Options{options.retire_lag}) {}

void StreamingChecker::retire(Flow& f) {
  ++report_.flows_checked;
  append_flow_issues(f, report_.issues);
  if (f.link_rx > 0 && f.link_tx == 0) {
    report_.issues.push_back("flow " + std::to_string(f.id) +
                             ": link receive without any transmission");
  }
}

void StreamingChecker::feed(const TraceEvent& ev) {
  ++report_.events_seen;
  accumulate_energy(energy_, ev, options_.rates);
  flows_.feed(ev);
  switch (ev.category) {
    case Category::kCollective:
      feed_collective(ev);
      break;
    case Category::kReliability:
      feed_reliability(ev);
      expire_rel_state(ev.time);
      break;
    case Category::kLink:
    case Category::kVirtual:
      feed_depletion_link(ev);
      expire_rel_state(ev.time);
      break;
    default:
      break;
  }
}

void StreamingChecker::feed_collective(const TraceEvent& ev) {
  if (ev.flow == 0) return;
  if (ev.phase == 'B') {
    ++report_.collectives_checked;
    began_.insert(ev.flow);
    const auto [it, fresh] = open_collectives_.try_emplace(ev.flow);
    if (!fresh) {
      // A reused id buries the earlier span unclosed, exactly as the batch
      // reconstruction reports it.
      report_.issues.push_back("collective " + std::to_string(ev.flow) +
                               " (" + it->second.name + "): never completed");
    }
    it->second = {ev.name, ev.time};
  } else if (ev.phase == 'E') {
    const auto it = open_collectives_.find(ev.flow);
    if (it == open_collectives_.end()) {
      if (began_.count(ev.flow) == 0) {
        report_.issues.push_back("collective " + std::to_string(ev.flow) +
                                 ": completion without a start");
      }
      return;
    }
    if (ev.time < it->second.begin) {
      report_.issues.push_back("collective " + std::to_string(ev.flow) +
                               " (" + it->second.name +
                               "): ends before it begins");
    }
    open_collectives_.erase(it);
  }
}

void StreamingChecker::feed_reliability(const TraceEvent& ev) {
  auto rel_key = [](const TraceEvent& e) {
    return std::to_string(static_cast<std::uint64_t>(attr_num(e, "src"))) +
           ">" +
           std::to_string(static_cast<std::uint64_t>(attr_num(e, "dst"))) +
           "#" + std::to_string(static_cast<std::uint64_t>(attr_num(e, "seq")));
  };
  auto cell_epoch = [](const TraceEvent& e) {
    const auto row = static_cast<std::int64_t>(attr_num(e, "row", -1.0));
    const auto col = static_cast<std::int64_t>(attr_num(e, "col", -1.0));
    const auto epoch = static_cast<std::uint64_t>(attr_num(e, "epoch"));
    return std::to_string(row) + "," + std::to_string(col) + "@" +
           std::to_string(epoch);
  };

  // Self-stabilization bookkeeping (check_stabilization): disturbances
  // extend the quiescence deadline; churn candidates must be buffered —
  // only the deadline known at finish() separates legitimate reaction
  // from failure to re-converge. fd.corrupt itself is folded in the main
  // chain below.
  if (ev.name == "fault.crash" || ev.name == "fault.recover" ||
      ev.name == "fault.outage_end" || ev.name == "fault.burst_end" ||
      ev.name == "energy.depleted") {
    stab_disturb_ = std::max(stab_disturb_, ev.time);
  } else if (ev.name == "fd.elect" || ev.name == "fd.lease_expire" ||
             ev.name == "fd.audit_conflict" ||
             ev.name == "fd.epoch_regress" ||
             (ev.name == "fd.claim" && attr_num(ev, "planned") == 0.0)) {
    stab_churn_.push_back({ev.name, ev.node, ev.time});
  }

  // Self-healing membership bookkeeping (check_membership): the shared
  // ledger buffers strikes/adoptions/repair churn until finish(), when the
  // reconciliation deadline is final.
  membership_.feed(ev);

  if (ev.name == "rel.send") {
    sent_[rel_key(ev)] = ev.time;
    sent_queue_.emplace_back(rel_key(ev), ev.time);
  } else if (ev.name == "rel.retransmit" || ev.name == "rel.give_up" ||
             ev.name == "rel.ack" || ev.name == "rel.dup") {
    const std::string key = rel_key(ev);
    const auto it = sent_.find(key);
    if (it == sent_.end()) {
      report_.issues.push_back(std::string(ev.name) + " " + key +
                               ": no matching rel.send");
    } else {
      // Keep the exchange alive while the ARQ is still talking about it.
      it->second = ev.time;
      sent_queue_.emplace_back(key, ev.time);
    }
    if (ev.name == "rel.give_up") ++give_ups_;
  } else if (ev.name == "fault.crash" && ev.node >= 0) {
    crashed_.insert(ev.node);
  } else if (ev.name == "fault.recover" && ev.node >= 0) {
    crashed_.erase(ev.node);
  } else if (ev.name == "fd.elect" || ev.name == "fd.handoff") {
    elections_.insert(cell_epoch(ev));
  } else if (ev.name == "fd.claim") {
    const std::string key = cell_epoch(ev);
    if (!claimed_.insert(key).second) {
      report_.issues.push_back("fd.claim " + key +
                               ": duplicate claim for this cell and epoch "
                               "(split-brain)");
    }
    if (elections_.find(key) == elections_.end()) {
      report_.issues.push_back("fd.claim " + key +
                               ": no preceding fd.elect for this epoch");
    }
    const auto row = static_cast<std::int64_t>(attr_num(ev, "row", -1.0));
    const auto col = static_cast<std::int64_t>(attr_num(ev, "col", -1.0));
    const std::string cell =
        std::to_string(row) + "," + std::to_string(col);
    const auto epoch = static_cast<std::uint64_t>(attr_num(ev, "epoch"));
    const auto it = last_claim_epoch_.find(cell);
    if (it != last_claim_epoch_.end() && epoch <= it->second) {
      report_.issues.push_back(
          "fd.claim " + key + ": epoch not above the cell's last claim (" +
          std::to_string(it->second) + ")");
    }
    last_claim_epoch_[cell] = epoch;
  } else if (ev.name == "fd.corrupt") {
    ++stab_corruptions_;
    stab_bound_ = std::max(stab_bound_, attr_num(ev, "bound"));
    stab_disturb_ = std::max(stab_disturb_, ev.time);
  } else if (ev.name == "energy.depleted") {
    const double budget = attr_num(ev, "budget", -1.0);
    const double spent = attr_num(ev, "spent", -1.0);
    if (!depleted_at_.emplace(ev.node, ev.time).second) {
      report_.issues.push_back("node " + std::to_string(ev.node) +
                               ": duplicate energy.depleted at t=" +
                               std::to_string(ev.time));
    }
    if (spent + 1e-9 < budget) {
      report_.issues.push_back(
          "node " + std::to_string(ev.node) + ": energy.depleted with spent " +
          std::to_string(spent) + " below budget " + std::to_string(budget));
    }
  }
}

void StreamingChecker::feed_depletion_link(const TraceEvent& ev) {
  if (ev.name == "deliver" && crashed_.count(ev.node) != 0) {
    report_.issues.push_back("node " + std::to_string(ev.node) +
                             ": delivery at t=" + std::to_string(ev.time) +
                             " inside its crash window");
  }
  if (ev.category != Category::kLink) return;
  const auto it = depleted_at_.find(ev.node);
  if (it == depleted_at_.end() || ev.time <= it->second) return;
  if (ev.name == "broadcast" || ev.name == "unicast") {
    report_.issues.push_back(
        "node " + std::to_string(ev.node) + ": link transmission at t=" +
        std::to_string(ev.time) + " after depletion at t=" +
        std::to_string(it->second));
  } else if (ev.name == "deliver") {
    report_.issues.push_back(
        "node " + std::to_string(ev.node) + ": delivery at t=" +
        std::to_string(ev.time) + " after depletion at t=" +
        std::to_string(it->second));
  }
}

void StreamingChecker::expire_rel_state(double watermark) {
  while (!sent_queue_.empty() &&
         sent_queue_.front().second + options_.retire_lag < watermark) {
    const auto& [key, touch] = sent_queue_.front();
    const auto it = sent_.find(key);
    // Erase only if no later touch re-enqueued the key.
    if (it != sent_.end() && it->second <= touch) sent_.erase(it);
    sent_queue_.pop_front();
  }
}

CheckReport StreamingChecker::finish(const JsonValue* metrics_snapshot) {
  flows_.finish();

  // Deterministic order for the still-open collectives: begin time, id.
  std::vector<std::pair<std::uint64_t, const OpenCollective*>> open;
  open.reserve(open_collectives_.size());
  for (const auto& [id, oc] : open_collectives_) open.emplace_back(id, &oc);
  std::sort(open.begin(), open.end(), [](const auto& a, const auto& b) {
    return a.second->begin != b.second->begin
               ? a.second->begin < b.second->begin
               : a.first < b.first;
  });
  for (const auto& [id, oc] : open) {
    report_.issues.push_back("collective " + std::to_string(id) + " (" +
                             oc->name + "): never completed");
  }

  // Self-stabilization: with the final quiescence deadline known, re-filter
  // the buffered churn. Wording matches check_stabilization exactly.
  if (stab_corruptions_ > 0) {
    const double deadline = stab_disturb_ + stab_bound_;
    for (const ChurnEvent& ce : stab_churn_) {
      if (ce.time <= deadline) continue;
      report_.issues.push_back(
          ce.name + " at t=" + std::to_string(ce.time) + " (node " +
          std::to_string(ce.node) +
          "): leadership churn after the stabilization deadline t=" +
          std::to_string(deadline));
    }
  }

  // Self-healing membership: the ledger resolves with its final deadline
  // and bound, emitting findings byte-identical to check_membership's.
  membership_.resolve(report_.issues);

  if (metrics_snapshot != nullptr) {
    // Energy conservation against the ledger snapshot (check_energy's
    // comparison over the incrementally accumulated map).
    auto compare = [&](const char* section, const LayerEnergy& layer) {
      const JsonValue* sec = metrics_snapshot->find(section);
      if (sec == nullptr) return;
      for (const char* field : {"tx", "rx"}) {
        const JsonValue* v = sec->find(field);
        if (v == nullptr) continue;
        const double live = v->number();
        const double traced =
            std::string(field) == "tx" ? layer.tx : layer.rx;
        if (!close_rel(live, traced, 1e-9)) {
          report_.issues.push_back(
              std::string(section) + "." + field + ": ledger " +
              std::to_string(live) + " != trace-derived " +
              std::to_string(traced));
        }
      }
    };
    compare("vnet.energy", energy_.vnet);
    compare("link.energy", energy_.link);

    if (const JsonValue* sec = metrics_snapshot->find("arq.counters")) {
      const JsonValue* v = sec->find("arq.give_up");
      const auto counted =
          static_cast<std::uint64_t>(v != nullptr ? v->number() : 0.0);
      if (counted != give_ups_) {
        report_.issues.push_back(
            "arq.give_up counter " + std::to_string(counted) + " != " +
            std::to_string(give_ups_) + " rel.give_up trace events");
      }
    }

    const CheckReport cap = check_capture(*metrics_snapshot);
    report_.issues.insert(report_.issues.end(), cap.issues.begin(),
                          cap.issues.end());
  }
  return report_;
}

}  // namespace wsn::obs::analyze
