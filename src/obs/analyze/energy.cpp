#include "obs/analyze/energy.h"

#include <cmath>

#include "core/groups.h"
#include "core/grid_topology.h"

namespace wsn::obs::analyze {

namespace {

double num_attr(const TraceEvent& ev, const char* key, double fallback) {
  for (const Attr& a : ev.attrs) {
    if (a.key != key) continue;
    if (const auto* d = std::get_if<double>(&a.value)) return *d;
    if (const auto* u = std::get_if<std::uint64_t>(&a.value)) {
      return static_cast<double>(*u);
    }
    if (const auto* i = std::get_if<std::int64_t>(&a.value)) {
      return static_cast<double>(*i);
    }
    return fallback;
  }
  return fallback;
}

}  // namespace

NodeEnergy& LayerEnergy::at(std::int64_t node) {
  const std::size_t slot = node < 0 ? 0 : static_cast<std::size_t>(node);
  if (slot >= nodes.size()) nodes.resize(slot + 1);
  return nodes[slot];
}

void accumulate_energy(EnergyMap& map, const TraceEvent& ev,
                       const EnergyRates& rates) {
  const double size = num_attr(ev, "size", 1.0);
  switch (ev.category) {
    case Category::kVirtual:
      if (ev.name == "send") {
        const double e = rates.vnet_tx * size;
        map.vnet.at(ev.node).tx += e;
        map.vnet.tx += e;
      } else if (ev.name == "hop") {
        // Hop 0 is the sender (already charged at the send); every later
        // hop is a relay paying both sides of the crossing.
        if (num_attr(ev, "hop", 0.0) >= 1.0) {
          const double rx = rates.vnet_rx * size;
          const double tx = rates.vnet_tx * size;
          NodeEnergy& n = map.vnet.at(ev.node);
          n.rx += rx;
          n.tx += tx;
          map.vnet.rx += rx;
          map.vnet.tx += tx;
        }
      } else if (ev.name == "deliver") {
        const double e = rates.vnet_rx * size;
        map.vnet.at(ev.node).rx += e;
        map.vnet.rx += e;
      }
      break;
    case Category::kLink:
      if (ev.name == "broadcast" || ev.name == "unicast") {
        const double e = rates.link_tx * size;
        map.link.at(ev.node).tx += e;
        map.link.tx += e;
      } else if (ev.name == "deliver") {
        const double e = rates.link_rx * size;
        map.link.at(ev.node).rx += e;
        map.link.rx += e;
      }
      break;
    default:
      break;  // overlay sends ride on link transmissions; no double count
  }
}

EnergyMap attribute_energy(const std::vector<TraceEvent>& events,
                           const EnergyRates& rates) {
  EnergyMap map;
  for (const TraceEvent& ev : events) accumulate_energy(map, ev, rates);
  // The virtual-layer hop chain misses no relay: hop events are emitted in
  // both congestion modes at send time, so the map is complete per flow.
  return map;
}

HotspotReport hotspot_report(const LayerEnergy& vnet, std::size_t side) {
  HotspotReport report;
  const std::size_t count = vnet.nodes.size();
  if (count == 0) return report;

  if (side == 0) {
    side = 1;
    while (side * side < count) ++side;
  }
  report.side = side;

  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double e = vnet.nodes[i].total();
    sum += e;
    if (e > report.hottest_energy) {
      report.hottest_energy = e;
      report.hottest_node = static_cast<std::int64_t>(i);
    }
  }
  report.mean_energy = sum / static_cast<double>(side * side);

  if (!core::GridTopology::is_power_of_two(side)) return report;

  const core::GridTopology grid(side);
  const core::GroupHierarchy groups(grid);
  auto energy_of = [&](const core::GridCoord& c) {
    const std::size_t idx = grid.index_of(c);
    return idx < count ? vnet.nodes[idx].total() : 0.0;
  };
  for (std::uint32_t level = 1; level <= groups.max_level(); ++level) {
    LevelEnergy le;
    le.level = level;
    double leader_sum = 0.0;
    for (const core::GridCoord& c : groups.leaders(level)) {
      leader_sum += energy_of(c);
      ++le.leader_count;
    }
    const std::size_t follower_count = grid.node_count() - le.leader_count;
    le.leader_mean = le.leader_count > 0
                         ? leader_sum / static_cast<double>(le.leader_count)
                         : 0.0;
    le.follower_mean =
        follower_count > 0
            ? (sum - leader_sum) / static_cast<double>(follower_count)
            : 0.0;
    report.levels.push_back(le);
  }
  return report;
}

}  // namespace wsn::obs::analyze
