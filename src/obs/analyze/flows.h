// Flow reconstruction and critical-path extraction over captured traces.
//
// A flow is every TraceEvent sharing one correlation id: the send, the
// per-relay hop records, and the delivery of one logical message — on the
// virtual layer, or an overlay send with the physical link transmissions
// beneath it. Reconstruction folds that event soup back into structured
// records; the critical-path walk then answers the question the telemetry
// was built for: *which chain of messages, and which hop of which message,
// made this operation slow* — split into queueing vs. transmission time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace wsn::obs::analyze {

/// One relay crossing inside a flow. On the virtual layer `wait` is the
/// recorded queueing delay behind the relay's transmitter and
/// transmit() the pure store-and-forward hop latency; on the physical link
/// layer the trace does not split queueing from airtime, so the whole
/// span lands in transmit() and `wait` stays 0.
struct Hop {
  std::int64_t node = -1;   // relay that transmitted
  std::int64_t next = -1;   // intended receiver (-1: local broadcast)
  double start = 0.0;       // packet reached the relay / tx was requested
  double depart = 0.0;      // transmission completed (arrival at `next`)
  double wait = 0.0;        // queueing delay behind the transmitter

  double transmit() const { return depart - start - wait; }

  bool operator==(const Hop&) const = default;
};

/// One logical message reassembled from its events.
struct Flow {
  std::uint64_t id = 0;
  Category layer = Category::kVirtual;  // kVirtual or kOverlay
  std::int64_t src_node = -1;           // emitting node of the send event
  std::int64_t dst_node = -1;           // node of the deliver event
  std::int64_t dst_index = -1;          // "dst" attr of the send (grid index)
  double send_time = 0.0;
  double deliver_time = 0.0;
  bool has_send = false;
  bool delivered = false;
  bool self_send = false;
  /// The ARQ exhausted its retry budget on a hop of this flow
  /// (kReliability "rel.give_up"): non-delivery is explained, not a bug.
  bool gave_up = false;
  /// A layer recorded an explicit drop for this flow (loss, dead endpoint).
  bool dropped = false;
  /// ARQ retransmissions performed for hops of this flow.
  std::uint32_t retransmits = 0;
  double size = 1.0;
  std::uint64_t expected_hops = 0;  // "hops" (virtual) / "vhops" (overlay)
  /// Physical-layer transmissions / deliveries correlated to this flow
  /// (counted so the streaming checker can pair rx with tx per flow
  /// without a whole-trace side table).
  std::uint32_t link_tx = 0;
  std::uint32_t link_rx = 0;
  std::vector<Hop> hops;

  double latency() const { return delivered ? deliver_time - send_time : 0.0; }
  double total_wait() const;
  double total_transmit() const;

  bool operator==(const Flow&) const = default;
};

/// Groups events by flow id and folds each group into a Flow. Collective
/// 'B'/'E' spans and flowless (id 0) events are ignored here; see
/// reconstruct_collectives. Events must be in emission order (as captured).
std::vector<Flow> reconstruct_flows(const std::vector<TraceEvent>& events);

/// One collective operation ('B'/'E' span pair, category kCollective).
struct CollectiveSpan {
  std::uint64_t id = 0;
  std::string name;        // "reduce", "broadcast", "barrier", ...
  std::int64_t leader = -1;
  double begin = 0.0;
  double end = 0.0;
  bool closed = false;     // matching 'E' seen
  std::uint64_t members = 0;
  std::uint64_t messages = 0;

  double duration() const { return end - begin; }
};

std::vector<CollectiveSpan> reconstruct_collectives(
    const std::vector<TraceEvent>& events);

/// One link of a reconstructed dependency chain: `gap_before` is the time
/// the chain sat at a node between the previous delivery and this send
/// (merge compute, scheduling) — latency that belongs to no message.
struct ChainLink {
  const Flow* flow = nullptr;
  double gap_before = 0.0;
};

/// Critical path through a set of flows: the dependency chain that ends at
/// the latest delivery, walked backward (a flow's predecessor is the flow
/// that last delivered *to its source node* before it was sent).
struct CriticalPathReport {
  std::vector<ChainLink> chain;  // in time order, first link has gap 0
  double start_time = 0.0;       // send of the first chain link
  double end_time = 0.0;         // delivery of the last chain link
  double message_wait = 0.0;     // queueing inside chain messages
  double message_transmit = 0.0; // store-and-forward time inside them
  double node_gaps = 0.0;        // inter-message time at chain nodes

  double total() const { return end_time - start_time; }
};

/// Extracts the critical path over all delivered flows. Empty chain when
/// nothing was delivered.
CriticalPathReport critical_path(const std::vector<Flow>& flows);

/// Restricts the walk to flows sent at/after `t0` and delivered at/before
/// `t1` — e.g. a CollectiveSpan's [begin, end] window.
CriticalPathReport critical_path_in(const std::vector<Flow>& flows, double t0,
                                    double t1);

}  // namespace wsn::obs::analyze
