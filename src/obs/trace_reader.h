// TraceReader: pull-based iteration over a capture, one event at a time.
//
// Accepts every shape the pipeline produces behind one interface:
//   * a StreamingFileSink directory (trace.wtr.NNN or trace.jsonl.NNN
//     segments, iterated in index order),
//   * a single wtr segment file (sniffed by magic), or
//   * a plain JSONL file (write_jsonl / quickstart --trace output).
//
// Memory is bounded by one record regardless of capture size — this is
// what lets wsn-inspect analyze multi-GB captures with flat RSS. A
// truncated tail (crash, unflushed buffer) is reported as a structured
// finding via findings() after iteration, not an exception; exceptions are
// reserved for structural errors (missing path, bad magic, unsupported
// version, malformed JSONL in the middle of a file).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/wtr.h"

namespace wsn::obs {

class TraceReader {
 public:
  /// Per-segment (or per-file) accounting, complete once next() has
  /// returned false. `complete` is false for a truncated/corrupt tail.
  struct SegmentSummary {
    std::string path;
    std::uint64_t events = 0;
    std::uint64_t bytes = 0;
    bool complete = true;
  };

  /// Throws std::runtime_error if `path` does not exist, holds no trace
  /// segments, mixes formats, or fails wtr header validation.
  explicit TraceReader(const std::string& path);

  /// Fills `ev` with the next event; false once the capture is exhausted.
  bool next(TraceEvent& ev);

  /// Truncation/corruption findings gathered so far (all of them once
  /// next() has returned false). Each is prefixed with the segment path.
  const std::vector<std::string>& findings() const { return findings_; }

  std::uint64_t events_read() const { return events_read_; }
  const char* format() const { return wtr_ ? "wtr" : "jsonl"; }
  const std::vector<SegmentSummary>& segments() const { return summaries_; }

 private:
  bool next_wtr(TraceEvent& ev);
  bool next_jsonl(TraceEvent& ev);
  bool open_wtr(const std::string& path);   // false: truncated-at-birth
  void open_jsonl(const std::string& path);
  void finish_segment();

  std::vector<std::string> paths_;
  std::size_t path_index_ = 0;  // next path to open
  bool wtr_ = false;

  std::unique_ptr<wtr::SegmentReader> seg_;  // open wtr segment

  std::ifstream in_;  // open jsonl file
  std::string line_;
  std::uint64_t lineno_ = 0;
  std::uint64_t file_events_ = 0;
  bool file_complete_ = true;

  std::vector<std::string> findings_;
  std::vector<SegmentSummary> summaries_;
  std::uint64_t events_read_ = 0;
};

}  // namespace wsn::obs
