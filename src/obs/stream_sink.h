// StreamingFileSink: capture straight to disk with bounded memory.
//
// The RingBufferSink keeps the most recent N events; at production scale
// (multi-GB captures, ROADMAP items 2-3) that either truncates the run or
// doesn't fit. This sink instead encodes each event into a reusable append
// buffer (JSONL via append_jsonl, or the compact wtr binary format) and
// flushes the buffer to a segment file when it passes a threshold — the
// steady-state accept path performs no per-event allocation. Segments
// rotate at a configurable byte size (`trace.wtr.000`, `.001`, ...); each
// wtr segment gets its own string table and a footer (event count + CRC),
// so a crash costs at most the unflushed tail of the last segment and
// wsn-inspect can report that truncation as a finding.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "obs/wtr.h"

namespace wsn::obs {

enum class TraceFormat {
  kJsonl,  // one JSON object per line; grep/jq-able, ~3-4x larger
  kWtr,    // string-interned varint binary; see obs/wtr.h
};

struct StreamSinkConfig {
  std::string directory;                        // created if missing
  TraceFormat format = TraceFormat::kWtr;
  std::uint64_t segment_bytes = 64ull << 20;    // rotate past this size
  std::size_t flush_bytes = 1u << 16;           // buffer high-water mark
  bool fsync_on_rotate = false;                 // durability at rotation
};

class StreamingFileSink final : public TraceSink {
 public:
  explicit StreamingFileSink(StreamSinkConfig config);
  ~StreamingFileSink() override;
  StreamingFileSink(const StreamingFileSink&) = delete;
  StreamingFileSink& operator=(const StreamingFileSink&) = delete;

  void accept(TraceEvent ev) override;

  /// Flushes the buffer, writes the wtr footer, and closes the current
  /// segment. Idempotent. Returns ok() — false means events were lost and
  /// error() says why.
  bool close();

  bool ok() const { return !failed_; }
  const std::string& error() const { return error_; }

  std::uint64_t events() const { return events_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  /// Segments started so far (>= 1 once the sink opened its first file).
  std::uint64_t segments() const { return segment_index_ + (opened_ ? 1 : 0); }
  std::uint64_t flushes() const { return flushes_; }
  const std::string& directory() const { return config_.directory; }

  /// Capture-health gauges mirroring RingBufferSink::register_metrics:
  /// "<prefix>.events", ".bytes_written", ".segments", ".flushes".
  void register_metrics(MetricsRegistry& registry,
                        const std::string& prefix = "trace") const;

  /// "trace.wtr.000"-style name for segment `index` in `format`.
  static std::string segment_name(TraceFormat format, std::uint64_t index);

 private:
  void open_segment();
  void flush_buffer();
  void rotate();
  void fail(const std::string& why);

  StreamSinkConfig config_;
  std::FILE* file_ = nullptr;
  std::string buf_;  // pending encoded bytes, reused forever
  wtr::SegmentEncoder encoder_;
  wtr::Crc32 crc_;             // covers flushed bytes of the open segment
  bool opened_ = false;
  bool closed_ = false;
  bool failed_ = false;
  std::string error_;
  std::uint64_t segment_index_ = 0;      // index of the open segment
  std::uint64_t segment_written_ = 0;    // bytes flushed to the open segment
  std::uint64_t events_in_segment_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t flushes_ = 0;
};

}  // namespace wsn::obs
