#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/json.h"
#include "obs/profiler.h"

namespace wsn::obs {

void append_jsonl(const TraceEvent& ev, std::string& out) {
  out += "{\"t\":";
  json_append_double(out, ev.time);
  out += ",\"node\":";
  json_append_int(out, ev.node);
  out += ",\"cat\":";
  json_append_string(out, category_name(ev.category));
  out += ",\"ph\":\"";
  // Phases are single ASCII chars ('i'/'B'/'E') and never need escaping.
  out += ev.phase;
  out += "\",\"name\":";
  json_append_string(out, ev.name);
  out += ",\"flow\":";
  json_append_uint(out, ev.flow);
  out += ",\"args\":{";
  bool first = true;
  for (const Attr& a : ev.attrs) {
    if (!first) out += ',';
    first = false;
    json_append_string(out, a.key);
    out += ':';
    json_append_value(out, a.value);
  }
  out += "}}";
}

std::string to_jsonl(const TraceEvent& ev) {
  std::string out;
  append_jsonl(ev, out);
  return out;
}

void write_jsonl(const std::vector<TraceEvent>& events, std::ostream& out) {
  std::string line;
  for (const TraceEvent& ev : events) {
    line.clear();
    append_jsonl(ev, line);
    line += '\n';
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
}

namespace {

/// Hand-rolled parser for exactly the JSON subset to_jsonl emits: flat
/// objects with string keys and string/number values, one level of nesting
/// for "args". Kept beside the writer so the formats cannot drift apart.
class JsonlParser {
 public:
  explicit JsonlParser(const std::string& line) : s_(line) {}

  TraceEvent parse() {
    TraceEvent ev;
    expect('{');
    bool first = true;
    while (peek() != '}') {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "t") {
        ev.time = as_double(parse_number());
      } else if (key == "node") {
        ev.node = as_int(parse_number());
      } else if (key == "cat") {
        const std::string name = parse_string();
        if (!category_from_name(name, ev.category)) {
          fail("unknown category: " + name);
        }
      } else if (key == "ph") {
        const std::string ph = parse_string();
        if (ph.size() != 1) fail("phase must be one char");
        ev.phase = ph[0];
      } else if (key == "name") {
        ev.name = parse_string();
      } else if (key == "flow") {
        ev.flow = static_cast<std::uint64_t>(as_int(parse_number()));
      } else if (key == "args") {
        parse_args(ev);
      } else {
        fail("unknown key: " + key);
      }
    }
    expect('}');
    if (pos_ != s_.size()) fail("trailing garbage after event object");
    return ev;
  }

 private:
  void parse_args(TraceEvent& ev) {
    expect('{');
    bool first = true;
    while (peek() != '}') {
      if (!first) expect(',');
      first = false;
      Attr a;
      a.key = parse_string();
      expect(':');
      if (peek() == '"') {
        a.value = parse_string();
      } else {
        a.value = parse_number();
      }
      ev.attrs.push_back(std::move(a));
    }
    expect('}');
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of line");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            out += static_cast<char>(
                std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    ++pos_;  // closing quote
    return out;
  }

  /// Number typing mirrors the writer: a '.' or exponent means double,
  /// a leading '-' means int64, anything else uint64.
  AttrValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      if (s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E') {
        is_double = true;
      }
      ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    if (tok.empty()) fail("expected number");
    if (is_double) return std::strtod(tok.c_str(), nullptr);
    if (tok[0] == '-') {
      return static_cast<std::int64_t>(std::strtoll(tok.c_str(), nullptr, 10));
    }
    return static_cast<std::uint64_t>(std::strtoull(tok.c_str(), nullptr, 10));
  }

  static std::int64_t as_int(const AttrValue& v) {
    if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
    if (const auto* u = std::get_if<std::uint64_t>(&v)) {
      return static_cast<std::int64_t>(*u);
    }
    throw std::runtime_error("parse_jsonl: expected integer field");
  }

  /// Tolerant double read: our writer always marks doubles with '.'/'e',
  /// but hand-edited traces may carry "t":5 — accept any numeric kind
  /// rather than surfacing std::bad_variant_access.
  static double as_double(const AttrValue& v) {
    if (const auto* d = std::get_if<double>(&v)) return *d;
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      return static_cast<double>(*i);
    }
    if (const auto* u = std::get_if<std::uint64_t>(&v)) {
      return static_cast<double>(*u);
    }
    throw std::runtime_error("parse_jsonl: expected numeric field");
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("parse_jsonl: " + why + " at offset " +
                             std::to_string(pos_) + " in: " + s_);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

TraceEvent parse_jsonl_line(const std::string& line) {
  return JsonlParser(line).parse();
}

std::vector<TraceEvent> parse_jsonl(std::istream& in) {
  std::vector<TraceEvent> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      out.push_back(parse_jsonl_line(line));
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("line " + std::to_string(lineno) + ": " +
                               e.what());
    }
  }
  return out;
}

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& out) {
  write_chrome_trace(events, out, nullptr);
}

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& out, const SimProfiler* profiler) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  // Thread-name metadata ('M' phase) for every node that appears, so the
  // per-node rows in about://tracing / Perfetto carry readable labels
  // instead of bare tids. Sorted + deduped for byte-stable output.
  std::vector<std::int64_t> nodes;
  nodes.reserve(events.size());
  for (const TraceEvent& ev : events) nodes.push_back(ev.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (std::int64_t node : nodes) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << node
        << ",\"args\":{\"name\":\""
        << (node < 0 ? std::string("(unbound)")
                     : "node " + std::to_string(node))
        << "\"}}";
  }
  // One reused line buffer for the whole export: the hot loop below runs
  // once per event and must not allocate per event.
  std::string line;
  for (const TraceEvent& ev : events) {
    line.clear();
    if (!first) line += ",\n";
    first = false;
    line += "{\"name\":";
    json_append_string(line, ev.name);
    line += ",\"cat\":";
    json_append_string(line, category_name(ev.category));
    line += ",\"ph\":\"";
    line += ev.phase;
    line += '"';
    if (ev.phase == 'i') line += ",\"s\":\"t\"";
    // 1 cost-model time unit = 1 ms; ts is in microseconds.
    line += ",\"ts\":";
    json_append_double(line, ev.time * 1000.0);
    line += ",\"pid\":0,\"tid\":";
    json_append_int(line, ev.node);
    line += ",\"args\":{";
    bool first_attr = true;
    if (ev.flow != 0) {
      line += "\"flow\":";
      json_append_uint(line, ev.flow);
      first_attr = false;
    }
    for (const Attr& a : ev.attrs) {
      if (!first_attr) line += ',';
      first_attr = false;
      json_append_string(line, a.key);
      line += ':';
      json_append_value(line, a.value);
    }
    line += "}}";
    out << line;
  }
  // Host-time track (pid 1): the profiler's span log as 'X' complete
  // events. Host ns map to trace-event microseconds directly; spans nest by
  // construction (RAII stack), so a single tid renders as a flame graph.
  if (profiler != nullptr && !profiler->span_log().empty()) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"name\":\"host (profiler)\"}}";
    for (const HostSpan& span : profiler->span_log()) {
      line = ",\n{\"name\":";
      json_append_string(line, span.label.empty() ? prof_cat_name(span.cat)
                                                  : span.label);
      line += ",\"cat\":\"prof\",\"ph\":\"X\",\"ts\":";
      json_append_double(line, static_cast<double>(span.start_ns) / 1000.0);
      line += ",\"dur\":";
      json_append_double(line, static_cast<double>(span.dur_ns) / 1000.0);
      line += ",\"pid\":1,\"tid\":0,\"args\":{\"depth\":";
      json_append_int(line, span.depth);
      line += "}}";
      out << line;
    }
  }
  out << "\n]}\n";
}

}  // namespace wsn::obs
