#include "obs/wtr.h"

#include <array>
#include <cstdio>
#include <stdexcept>

namespace wsn::obs::wtr {

namespace {

/// CRC-32 lookup table, built once (thread-safe since C++11 magic statics).
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// Bounds-checked cursor over one record payload. Decode errors throw; the
/// SegmentReader catches them and classifies the record as corrupt.
struct Cursor {
  const std::string& buf;
  std::size_t pos = 0;

  std::uint8_t u8() {
    if (pos >= buf.size()) throw std::runtime_error("record payload overrun");
    return static_cast<std::uint8_t>(buf[pos++]);
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    throw std::runtime_error("varint too long");
  }

  double f64() {
    if (pos + 8 > buf.size()) throw std::runtime_error("record payload overrun");
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(buf[pos + static_cast<std::size_t>(i)]))
              << (8 * i);
    }
    pos += 8;
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string bytes(std::size_t n) {
    if (pos + n > buf.size()) throw std::runtime_error("record payload overrun");
    std::string s = buf.substr(pos, n);
    pos += n;
    return s;
  }

  std::string rest() { return bytes(buf.size() - pos); }
  bool at_end() const { return pos == buf.size(); }
};

}  // namespace

void Crc32::update(const char* data, std::size_t n) {
  const auto& table = crc_table();
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ static_cast<std::uint8_t>(data[i])) & 0xff] ^ (c >> 8);
  }
  state_ = c;
}

void SegmentEncoder::begin_segment(std::string& out,
                                   std::uint64_t segment_index) {
  out.append(kMagic, sizeof kMagic);
  out += static_cast<char>(kVersion & 0xff);
  out += static_cast<char>((kVersion >> 8) & 0xff);
  out += '\0';  // reserved
  out += '\0';
  append_varint(out, segment_index);
}

std::uint64_t SegmentEncoder::intern(const std::string& s, std::string& out) {
  const auto it = table_.find(s);
  if (it != table_.end()) return it->second;
  const std::uint64_t id = next_id_++;
  table_.emplace(s, id);
  // Stage in a dedicated buffer: append_event calls intern() while an event
  // record is half-built in payload_.
  intern_scratch_.clear();
  intern_scratch_ += static_cast<char>(kTagIntern);
  append_varint(intern_scratch_, id);
  intern_scratch_ += s;
  append_varint(out, intern_scratch_.size());
  out += intern_scratch_;
  return id;
}

void SegmentEncoder::append_event(const TraceEvent& ev, std::string& out) {
  // Intern records must precede the event record that references them.
  const std::uint64_t name_id = intern(ev.name, out);
  // Attr key ids are at most a handful per event; resolve them up front into
  // a small stack array so the event payload is built in one pass.
  payload_.clear();
  payload_ += static_cast<char>(kTagEvent);
  append_f64le(payload_, ev.time);
  append_varint(payload_, zigzag(ev.node));
  payload_ += static_cast<char>(static_cast<std::uint8_t>(ev.category));
  payload_ += ev.phase;
  append_varint(payload_, name_id);
  append_varint(payload_, ev.flow);
  append_varint(payload_, ev.attrs.size());
  for (const Attr& a : ev.attrs) {
    // intern() appends to `out`, never to payload_, so staging stays intact.
    append_varint(payload_, intern(a.key, out));
    if (const auto* i = std::get_if<std::int64_t>(&a.value)) {
      payload_ += static_cast<char>(kAttrInt);
      append_varint(payload_, zigzag(*i));
    } else if (const auto* u = std::get_if<std::uint64_t>(&a.value)) {
      payload_ += static_cast<char>(kAttrUint);
      append_varint(payload_, *u);
    } else if (const auto* d = std::get_if<double>(&a.value)) {
      payload_ += static_cast<char>(kAttrDouble);
      append_f64le(payload_, *d);
    } else {
      const std::string& s = std::get<std::string>(a.value);
      payload_ += static_cast<char>(kAttrString);
      append_varint(payload_, s.size());
      payload_ += s;
    }
  }
  append_varint(out, payload_.size());
  out += payload_;
}

void SegmentEncoder::append_footer(std::string& out, std::uint64_t event_count,
                                   std::uint32_t crc) {
  std::string payload;
  payload += static_cast<char>(kTagFooter);
  append_varint(payload, event_count);
  for (int i = 0; i < 4; ++i) {
    payload += static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  append_varint(out, payload.size());
  out += payload;
}

SegmentReader::SegmentReader(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open " + path_);
  }
  char fixed[kHeaderFixedBytes];
  if (!read_exact(fixed, sizeof fixed)) {
    // A segment cut before its header even landed: truncation, not a format
    // error — the rest of the capture is still worth reading.
    truncated("segment shorter than its header");
    return;
  }
  if (std::memcmp(fixed, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error(path_ + ": not a wtr trace (bad magic)");
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(fixed[4])) |
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(fixed[5])) << 8;
  if (version != kVersion) {
    throw std::runtime_error(path_ + ": unsupported wtr version " +
                             std::to_string(version) + " (reader supports " +
                             std::to_string(kVersion) + ")");
  }
  crc_.update(fixed, sizeof fixed);
  // Header tail: varint segment index.
  std::uint64_t idx = 0;
  for (int shift = 0;; shift += 7) {
    char b;
    if (shift >= 64 || !read_exact(&b, 1)) {
      truncated("segment header truncated");
      return;
    }
    crc_.update(&b, 1);
    idx |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(b) & 0x7f)
           << shift;
    if ((static_cast<std::uint8_t>(b) & 0x80) == 0) break;
  }
  segment_index_ = idx;
}

SegmentReader::~SegmentReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool SegmentReader::read_exact(char* dst, std::size_t n) {
  const std::size_t got = std::fread(dst, 1, n, file_);
  bytes_read_ += got;
  return got == n;
}

void SegmentReader::truncated(const std::string& why) {
  end_ = SegmentEnd::kTruncated;
  finding_ = path_ + ": truncated after " + std::to_string(events_read_) +
             " event(s): " + why;
  done_ = true;
}

void SegmentReader::corrupt(const std::string& why) {
  end_ = SegmentEnd::kCorrupt;
  finding_ = path_ + ": corrupt after " + std::to_string(events_read_) +
             " event(s): " + why;
  done_ = true;
}

bool SegmentReader::read_record() {
  // Length prefix, byte by byte (it feeds the CRC only for non-footer
  // records, so stage it).
  char prefix[10];
  std::size_t prefix_len = 0;
  std::uint64_t len = 0;
  for (int shift = 0;; shift += 7) {
    char b;
    if (!read_exact(&b, 1)) {
      if (prefix_len == 0) {
        truncated("segment ends without a footer");
      } else {
        truncated("unexpected end of file inside a record length");
      }
      return false;
    }
    prefix[prefix_len++] = b;
    if (shift >= 64 || prefix_len > sizeof prefix) {
      corrupt("record length varint too long");
      return false;
    }
    len |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(b) & 0x7f)
           << shift;
    if ((static_cast<std::uint8_t>(b) & 0x80) == 0) break;
  }
  if (len == 0 || len > (1u << 28)) {
    corrupt("implausible record length " + std::to_string(len));
    return false;
  }
  payload_.resize(static_cast<std::size_t>(len));
  if (!read_exact(payload_.data(), payload_.size())) {
    truncated("unexpected end of file inside a record");
    return false;
  }
  const auto tag = static_cast<std::uint8_t>(payload_[0]);
  if (tag != kTagFooter) {
    // The footer's CRC covers everything before the footer record itself.
    crc_.update(prefix, prefix_len);
    crc_.update(payload_);
  }
  return true;
}

bool SegmentReader::next(TraceEvent& ev) {
  while (!done_) {
    const std::uint32_t crc_before_record = crc_.value();
    if (!read_record()) return false;
    try {
      Cursor c{payload_};
      const std::uint8_t tag = c.u8();
      if (tag == kTagIntern) {
        const std::uint64_t id = c.varint();
        if (id != table_.size()) {
          corrupt("intern id " + std::to_string(id) + " out of order");
          return false;
        }
        table_.push_back(c.rest());
        continue;
      }
      if (tag == kTagEvent) {
        ev.time = c.f64();
        ev.node = unzigzag(c.varint());
        const std::uint8_t cat = c.u8();
        if (cat >= kCategoryCount) {
          corrupt("bad category " + std::to_string(cat));
          return false;
        }
        ev.category = static_cast<Category>(cat);
        ev.phase = static_cast<char>(c.u8());
        const std::uint64_t name_id = c.varint();
        if (name_id >= table_.size()) {
          corrupt("name id " + std::to_string(name_id) + " not interned");
          return false;
        }
        ev.name = table_[static_cast<std::size_t>(name_id)];
        ev.flow = c.varint();
        const std::uint64_t nattrs = c.varint();
        ev.attrs.clear();
        for (std::uint64_t i = 0; i < nattrs; ++i) {
          const std::uint64_t key_id = c.varint();
          if (key_id >= table_.size()) {
            corrupt("attr key id " + std::to_string(key_id) + " not interned");
            return false;
          }
          Attr a;
          a.key = table_[static_cast<std::size_t>(key_id)];
          switch (c.u8()) {
            case kAttrInt: a.value = unzigzag(c.varint()); break;
            case kAttrUint: a.value = c.varint(); break;
            case kAttrDouble: a.value = c.f64(); break;
            case kAttrString: {
              const std::uint64_t n = c.varint();
              a.value = c.bytes(static_cast<std::size_t>(n));
              break;
            }
            default:
              corrupt("bad attr kind");
              return false;
          }
          ev.attrs.push_back(std::move(a));
        }
        if (!c.at_end()) {
          corrupt("trailing bytes in event record");
          return false;
        }
        ++events_read_;
        return true;
      }
      if (tag == kTagFooter) {
        const std::uint64_t count = c.varint();
        std::uint32_t stored = 0;
        for (int i = 0; i < 4; ++i) {
          stored |= static_cast<std::uint32_t>(c.u8()) << (8 * i);
        }
        if (count != events_read_) {
          corrupt("footer counts " + std::to_string(count) + " event(s), " +
                  std::to_string(events_read_) + " decoded");
          return false;
        }
        if (stored != crc_before_record) {
          corrupt("footer crc mismatch");
          return false;
        }
        char extra;
        if (read_exact(&extra, 1)) {
          corrupt("trailing data after the footer");
          return false;
        }
        done_ = true;
        return false;
      }
      corrupt("unknown record tag " + std::to_string(tag));
      return false;
    } catch (const std::runtime_error& e) {
      corrupt(e.what());
      return false;
    }
  }
  return false;
}

}  // namespace wsn::obs::wtr
