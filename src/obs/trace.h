// Structured event tracing for the simulation stack.
//
// The paper's methodology rests on latency/energy being *predictable* from
// the uniform cost model; when a measured number diverges from the
// analytical one, this layer answers *why*: every virtual send, physical
// transmission, protocol round, and collective phase can emit a
// TraceEvent carrying the simulation time, the node involved, and typed
// attributes. Events flow into a pluggable TraceSink (bounded ring buffer
// by default) and can be exported as JSONL or as a Chrome trace_event file
// loadable in about://tracing / Perfetto (see obs/export.h).
//
// Tracing is zero-cost when disabled: emission sites guard on
// `tracer().enabled(category)` — one pointer load, one mask test — before
// constructing any event or attribute, so the hot paths (VirtualNetwork::
// send, LinkLayer::unicast) pay a single predictable branch.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "obs/profiler.h"

namespace wsn::obs {

/// Event categories, maskable individually on the Tracer. One bit each.
enum class Category : std::uint8_t {
  kVirtual = 0,     // VirtualNetwork sends/hops/deliveries
  kLink = 1,        // LinkLayer transmissions and receptions
  kOverlay = 2,     // OverlayNetwork (Section 5 runtime) provenance
  kProtocol = 3,    // topology emulation + leader binding rounds
  kCollective = 4,  // group_reduce / broadcast / barrier / sort / rank
  kBench = 5,       // bench harness phases
  kApp = 6,         // application-level events
  kReliability = 7, // ARQ retransmits/acks/give-ups and fault injections
};
inline constexpr std::size_t kCategoryCount = 8;
inline constexpr std::uint32_t kAllCategories = (1u << kCategoryCount) - 1;

/// Stable short name used in exports ("vnet", "link", ...).
const char* category_name(Category c);
/// Inverse of category_name; returns false if `name` is unknown.
bool category_from_name(const std::string& name, Category& out);

/// Typed attribute value. Integer kinds are kept distinct so exports
/// round-trip exactly (see obs/export.h).
using AttrValue = std::variant<std::int64_t, std::uint64_t, double, std::string>;

struct Attr {
  std::string key;
  AttrValue value;

  bool operator==(const Attr&) const = default;
};

/// One structured trace event.
///
/// `flow` correlates the events of one logical message across layers: a
/// VirtualNetwork or OverlayNetwork send allocates a flow id and every
/// relay/delivery event of that message — including the physical LinkLayer
/// hops beneath an overlay send — carries it, so the full path and
/// per-hop queueing delay of a message can be reconstructed from a trace.
struct TraceEvent {
  double time = 0.0;           // simulation time (cost-model units)
  std::int64_t node = -1;      // node id / grid index; -1 = not node-bound
  Category category = Category::kApp;
  char phase = 'i';            // Chrome phase: 'i' instant, 'B'/'E' span
  std::string name;            // e.g. "send", "hop", "deliver"
  std::uint64_t flow = 0;      // correlation id; 0 = none
  std::vector<Attr> attrs;

  bool operator==(const TraceEvent&) const = default;
};

/// Destination of emitted events.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void accept(TraceEvent ev) = 0;
};

/// Process-wide trace dispatcher. Disabled (null sink, empty mask) by
/// default; tests and tools install a sink via ScopedTrace.
class Tracer {
 public:
  /// The hot-path guard: true iff a sink is installed and `c` is enabled.
  bool enabled(Category c) const {
    return sink_ != nullptr &&
           (mask_ & (1u << static_cast<unsigned>(c))) != 0;
  }

  /// Forwards `ev` to the sink. Callers must pre-check enabled(category);
  /// emitting with no sink is a silent no-op.
  void emit(TraceEvent ev) {
    if (sink_ != nullptr) {
      ProfSpan span(ProfCat::kTraceEmit);
      sink_->accept(std::move(ev));
    }
  }

  void set_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }
  void set_mask(std::uint32_t mask) { mask_ = mask; }
  std::uint32_t mask() const { return mask_; }
  void enable(Category c) { mask_ |= 1u << static_cast<unsigned>(c); }

  /// Allocates a fresh correlation id (monotonic, never 0).
  std::uint64_t next_flow() { return ++flow_; }

  /// Rewinds the flow counter. Only for determinism harnesses that compare
  /// two captures byte-for-byte within one process; flows allocated after a
  /// reset collide with earlier ones, so never mix resets with a live sink
  /// that spans the reset.
  void reset_flows(std::uint64_t value = 0) { flow_ = value; }

 private:
  TraceSink* sink_ = nullptr;
  std::uint32_t mask_ = 0;
  std::uint64_t flow_ = 0;
};

/// The process-global tracer all emission sites consult.
Tracer& tracer();

/// RAII installer: routes the global tracer into `sink` with `mask` for the
/// current scope, restoring the previous sink/mask on destruction. Keeps
/// tests and tools from leaking trace state into each other.
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceSink& sink, std::uint32_t mask = kAllCategories)
      : prev_sink_(tracer().sink()), prev_mask_(tracer().mask()) {
    tracer().set_sink(&sink);
    tracer().set_mask(mask);
  }
  ~ScopedTrace() {
    tracer().set_sink(prev_sink_);
    tracer().set_mask(prev_mask_);
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceSink* prev_sink_;
  std::uint32_t prev_mask_;
};

}  // namespace wsn::obs
