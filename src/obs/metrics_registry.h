// Unified metrics registry.
//
// Before this layer, each component kept its own numbers in its own shape:
// sim::CounterSet strings on VirtualNetwork/LinkLayer, net::EnergyLedger
// totals, ad-hoc uint64 gauges on OverlayNetwork, protocol audit counts on
// EmulationResult/BindingResult. The registry consolidates all of them
// behind one object with one JSON snapshot exporter, so an experiment can
// dump its complete measurement state in a single machine-readable blob.
//
// The registry borrows (never owns) the instruments: registered pointers
// must outlive it or be removed first. Snapshot order is registration
// order; counter keys are sorted, so output is byte-stable across runs.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/energy.h"
#include "obs/histogram.h"
#include "sim/trace.h"

namespace wsn::obs {

/// Materialized view of one registered EnergyLedger. Field-for-field the
/// same quantities (computed the same way) as analysis::EnergyReport, so
/// registry snapshots agree exactly with analysis::energy_report.
struct LedgerSnapshot {
  double total = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double cv = 0.0;
  double max = 0.0;
  double min = 0.0;
  double tx = 0.0;
  double rx = 0.0;
  double compute = 0.0;
};

class MetricsRegistry {
 public:
  /// Registers a named counter set; keys appear as "<name>.<counter>".
  void add_counters(std::string name, const sim::CounterSet* counters);

  /// Registers a per-node energy ledger, snapshotted as a LedgerSnapshot.
  void add_ledger(std::string name, const net::EnergyLedger* ledger);

  /// Registers a live scalar, polled at snapshot time.
  void add_gauge(std::string name, std::function<double()> fn);

  /// Registers a streaming summary, polled at snapshot time; exported as
  /// {count, mean, stddev, min, max}.
  void add_summary(std::string name, std::function<sim::Summary()> fn);

  /// Registers a fixed-bucket histogram, exported as
  /// {count, lo, hi, min, max, mean, p50, p95, p99, underflow, overflow,
  ///  buckets:[...]}. Borrowed like every other instrument.
  void add_histogram(std::string name, const Histogram* histogram);

  /// Registers a histogram rebuilt from live state at snapshot time (e.g.
  /// the residual-energy distribution, which has no long-lived instrument
  /// to borrow). Exported in the same JSON shape as add_histogram.
  void add_histogram(std::string name, std::function<Histogram()> fn);

  /// Polls the named borrowed histogram now. Throws std::out_of_range if
  /// unknown; polled (function-backed) histograms use histogram_snapshot.
  const Histogram& histogram(const std::string& name) const;

  /// Materializes the named histogram (borrowed or function-backed) now.
  /// Throws std::out_of_range if unknown.
  Histogram histogram_snapshot(const std::string& name) const;

  /// Polls the named ledger now. Throws std::out_of_range if unknown.
  LedgerSnapshot ledger_snapshot(const std::string& name) const;

  /// Polls the named gauge now. Throws std::out_of_range if unknown.
  double gauge(const std::string& name) const;

  /// Current value of "<counters-name>.<key>", 0 if absent.
  std::uint64_t counter(const std::string& name, const std::string& key) const;

  /// One JSON object capturing every registered instrument, e.g.
  /// {"vnet.counters":{"vnet.send":12,...},
  ///  "vnet.energy":{"total":96.0,"tx":48.0,...},
  ///  "overlay.physical_hops":130.0}
  std::string to_json() const;
  void write_json(std::ostream& out) const;

 private:
  struct CounterEntry { std::string name; const sim::CounterSet* counters; };
  struct LedgerEntry { std::string name; const net::EnergyLedger* ledger; };
  struct GaugeEntry { std::string name; std::function<double()> fn; };
  struct SummaryEntry { std::string name; std::function<sim::Summary()> fn; };
  struct HistogramEntry { std::string name; const Histogram* histogram; };
  struct HistogramFnEntry { std::string name; std::function<Histogram()> fn; };

  std::vector<CounterEntry> counters_;
  std::vector<LedgerEntry> ledgers_;
  std::vector<GaugeEntry> gauges_;
  std::vector<SummaryEntry> summaries_;
  std::vector<HistogramEntry> histograms_;
  std::vector<HistogramFnEntry> histogram_fns_;
};

}  // namespace wsn::obs
