#include "obs/trace_reader.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "obs/export.h"

namespace wsn::obs {

namespace fs = std::filesystem;

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

TraceReader::TraceReader(const std::string& path) {
  std::error_code ec;
  const fs::file_status st = fs::status(path, ec);
  if (ec || !fs::exists(st)) {
    throw std::runtime_error("cannot open " + path);
  }
  if (fs::is_directory(st)) {
    std::vector<std::string> wtr_names;
    std::vector<std::string> jsonl_names;
    for (const fs::directory_entry& entry : fs::directory_iterator(path)) {
      const std::string name = entry.path().filename().string();
      if (starts_with(name, "trace.wtr.")) wtr_names.push_back(name);
      if (starts_with(name, "trace.jsonl.")) jsonl_names.push_back(name);
    }
    if (!wtr_names.empty() && !jsonl_names.empty()) {
      throw std::runtime_error(path +
                               ": holds both wtr and jsonl segments; "
                               "point at one capture");
    }
    wtr_ = !wtr_names.empty();
    std::vector<std::string>& names = wtr_ ? wtr_names : jsonl_names;
    if (names.empty()) {
      throw std::runtime_error("no trace segments in " + path);
    }
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      paths_.push_back(path + "/" + name);
    }
  } else {
    // A bare file: sniff the wtr magic, otherwise treat it as JSONL.
    std::ifstream probe(path, std::ios::binary);
    char magic[4] = {};
    probe.read(magic, sizeof magic);
    wtr_ = probe.gcount() == sizeof magic &&
           std::memcmp(magic, wtr::kMagic, sizeof magic) == 0;
    paths_.push_back(path);
  }
}

bool TraceReader::next(TraceEvent& ev) {
  return wtr_ ? next_wtr(ev) : next_jsonl(ev);
}

bool TraceReader::open_wtr(const std::string& path) {
  seg_ = std::make_unique<wtr::SegmentReader>(path);
  return true;
}

void TraceReader::finish_segment() {
  SegmentSummary s;
  s.path = seg_->path();
  s.events = seg_->events_read();
  s.bytes = seg_->bytes_read();
  s.complete = seg_->end() == wtr::SegmentEnd::kClean;
  if (!s.complete) {
    findings_.push_back(seg_->finding());
  } else if (paths_.size() > 1 &&
             seg_->segment_index() != path_index_ - 1) {
    // Header indices are written sequentially, so a mismatch means a
    // renamed or missing segment file.
    s.complete = false;
    findings_.push_back(s.path + ": header says segment " +
                        std::to_string(seg_->segment_index()) +
                        ", expected segment " +
                        std::to_string(path_index_ - 1));
  }
  summaries_.push_back(std::move(s));
  seg_.reset();
}

bool TraceReader::next_wtr(TraceEvent& ev) {
  while (true) {
    if (seg_ == nullptr) {
      if (path_index_ >= paths_.size()) return false;
      open_wtr(paths_[path_index_++]);
    }
    if (seg_->next(ev)) {
      ++events_read_;
      return true;
    }
    finish_segment();
  }
}

void TraceReader::open_jsonl(const std::string& path) {
  in_.open(path, std::ios::binary);
  if (!in_.is_open()) {
    throw std::runtime_error("cannot open " + path);
  }
  lineno_ = 0;
  file_events_ = 0;
  file_complete_ = true;
}

bool TraceReader::next_jsonl(TraceEvent& ev) {
  while (true) {
    if (!in_.is_open()) {
      if (path_index_ >= paths_.size()) return false;
      open_jsonl(paths_[path_index_++]);
    }
    const std::string& path = paths_[path_index_ - 1];
    while (file_complete_ && std::getline(in_, line_)) {
      ++lineno_;
      if (line_.empty()) continue;
      try {
        ev = parse_jsonl_line(line_);
      } catch (const std::runtime_error& e) {
        if (in_.peek() == std::ifstream::traits_type::eof()) {
          // A bad final line is an unflushed tail, not a malformed trace:
          // everything before it is still a valid capture prefix.
          file_complete_ = false;
          findings_.push_back(path + ": truncated final record at line " +
                              std::to_string(lineno_));
          break;
        }
        throw std::runtime_error(path + " line " + std::to_string(lineno_) +
                                 ": " + e.what());
      }
      ++file_events_;
      ++events_read_;
      return true;
    }
    SegmentSummary s;
    s.path = path;
    s.events = file_events_;
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    s.bytes = ec ? 0 : static_cast<std::uint64_t>(size);
    s.complete = file_complete_;
    summaries_.push_back(std::move(s));
    in_.close();
    in_.clear();
  }
}

}  // namespace wsn::obs
