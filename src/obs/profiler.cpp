#include "obs/profiler.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>

#include "obs/json.h"
#include "obs/metrics_registry.h"

// ---------------------------------------------------------------------------
// Global allocation hooks.
//
// Replacing the global operator new/delete lets the profiler report the
// allocation pressure of a phase without touching a single call site. The
// hooks count unconditionally (two relaxed atomic adds, dwarfed by malloc
// itself) so arming the profiler can never change allocator behavior
// mid-run; SimProfiler reports deltas against its arm() baseline. The
// replacements forward to malloc/free, which keeps them compatible with
// ASan/UBSan (the sanitizers intercept malloc underneath). Over-aligned
// allocations fall through to the default aligned operators and are simply
// not counted — a coverage gap, not a correctness issue.

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wsn::obs {

AllocStats global_alloc_stats() {
  return {g_alloc_count.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed)};
}

const char* prof_cat_name(ProfCat c) {
  switch (c) {
    case ProfCat::kDispatch: return "dispatch";
    case ProfCat::kLinkTx: return "link_tx";
    case ProfCat::kLinkRx: return "link_rx";
    case ProfCat::kArq: return "arq";
    case ProfCat::kDetector: return "fd";
    case ProfCat::kBinding: return "binding";
    case ProfCat::kTraceEmit: return "trace_emit";
    case ProfCat::kSink: return "sink";
    case ProfCat::kPhase: return "phase";
  }
  return "phase";
}

bool prof_cat_from_name(const std::string& name, ProfCat& out) {
  for (std::size_t i = 0; i < kProfCatCount; ++i) {
    const auto c = static_cast<ProfCat>(i);
    if (name == prof_cat_name(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

SimProfiler& profiler() {
  static SimProfiler instance;
  return instance;
}

void SimProfiler::arm() {
  armed_ = true;
  t0_ = Clock::now();
  frozen_ns_ = 0;
  for (ProfBucket& b : buckets_) b = ProfBucket{};
  frames_.clear();
  span_log_.clear();
  span_log_dropped_ = 0;
  phases_.clear();
  alloc_at_arm_ = global_alloc_stats();
  alloc_frozen_ = AllocStats{};
  sim_time_ = 0.0;
  sim_events_ = 0;
}

void SimProfiler::disarm() {
  if (!armed_) return;
  end_phase();
  frozen_ns_ = now_ns();
  const AllocStats now = global_alloc_stats();
  alloc_frozen_ = {now.count - alloc_at_arm_.count,
                   now.bytes - alloc_at_arm_.bytes};
  armed_ = false;
  frames_.clear();  // spans still open lose their sample; see header
}

std::uint64_t SimProfiler::elapsed_ns() const {
  return armed_ ? now_ns() : frozen_ns_;
}

AllocStats SimProfiler::allocs() const {
  if (!armed_) return alloc_frozen_;
  const AllocStats now = global_alloc_stats();
  return {now.count - alloc_at_arm_.count, now.bytes - alloc_at_arm_.bytes};
}

void SimProfiler::begin_phase(std::string name) {
  if (!armed_) return;
  end_phase();
  ProfPhase phase;
  phase.name = std::move(name);
  phase.start_ns = now_ns();
  phase.alloc = allocs();  // snapshot; end_phase converts to a delta
  phases_.push_back(std::move(phase));
}

void SimProfiler::end_phase() {
  if (!armed_ || phases_.empty() || phases_.back().end_ns != 0) return;
  ProfPhase& phase = phases_.back();
  phase.end_ns = now_ns();
  const AllocStats now = allocs();
  phase.alloc = {now.count - phase.alloc.count, now.bytes - phase.alloc.bytes};
}

void SimProfiler::set_span_log_capacity(std::size_t capacity) {
  span_log_capacity_ = capacity;
  if (span_log_.size() > capacity) span_log_.resize(capacity);
  span_log_.reserve(capacity);
}

void SimProfiler::push_frame(ProfCat cat, const char* label) {
  frames_.push_back(Frame{cat, now_ns(), 0, label});
}

void SimProfiler::pop_frame() {
  // Disarm-while-open drops the in-flight sample: the frame stack was
  // cleared, so the matching pop must not touch a fresh window's frames.
  if (frames_.empty()) return;
  const Frame frame = frames_.back();
  frames_.pop_back();
  const std::uint64_t end = now_ns();
  const std::uint64_t dur = end - frame.start_ns;
  ProfBucket& b = buckets_[static_cast<std::size_t>(frame.cat)];
  if (b.count == 0 || dur < b.min_ns) b.min_ns = dur;
  if (dur > b.max_ns) b.max_ns = dur;
  ++b.count;
  b.total_ns += dur;
  b.self_ns += dur - frame.child_ns;
  if (!frames_.empty()) frames_.back().child_ns += dur;
  if (span_log_.size() < span_log_capacity_) {
    HostSpan span;
    span.cat = frame.cat;
    span.depth = static_cast<std::uint32_t>(frames_.size());
    span.start_ns = frame.start_ns;
    span.dur_ns = dur;
    if (frame.label != nullptr) span.label = frame.label;
    span_log_.push_back(std::move(span));
  } else if (span_log_capacity_ > 0) {
    ++span_log_dropped_;
  }
}

double SimProfiler::events_per_sec() const {
  const std::uint64_t ns = elapsed_ns();
  if (ns == 0) return 0.0;
  const std::uint64_t events =
      sim_events_ != 0 ? sim_events_ : bucket(ProfCat::kDispatch).count;
  return static_cast<double>(events) * 1e9 / static_cast<double>(ns);
}

std::string SimProfiler::to_json() const {
  std::string out = "{\"prof\":{\"host_ns\":";
  out += std::to_string(elapsed_ns());
  out += ",\"sim_time\":";
  json_append_double(out, sim_time_);
  out += ",\"sim_events\":";
  out += std::to_string(sim_events_);
  out += ",\"events_per_sec\":";
  json_append_double(out, events_per_sec());
  out += ",\"spans\":{";
  bool first = true;
  for (std::size_t i = 0; i < kProfCatCount; ++i) {
    const ProfBucket& b = buckets_[i];
    if (b.count == 0) continue;
    if (!first) out += ',';
    first = false;
    json_append_string(out, prof_cat_name(static_cast<ProfCat>(i)));
    out += ":{\"count\":";
    out += std::to_string(b.count);
    out += ",\"total_ns\":";
    out += std::to_string(b.total_ns);
    out += ",\"self_ns\":";
    out += std::to_string(b.self_ns);
    out += ",\"min_ns\":";
    out += std::to_string(b.min_ns);
    out += ",\"max_ns\":";
    out += std::to_string(b.max_ns);
    out += '}';
  }
  out += "},\"alloc\":{\"count\":";
  const AllocStats alloc = allocs();
  out += std::to_string(alloc.count);
  out += ",\"bytes\":";
  out += std::to_string(alloc.bytes);
  out += "},\"phases\":[";
  first = true;
  for (const ProfPhase& phase : phases_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    json_append_string(out, phase.name);
    out += ",\"start_ns\":";
    out += std::to_string(phase.start_ns);
    out += ",\"end_ns\":";
    out += std::to_string(phase.end_ns);
    out += ",\"alloc_count\":";
    out += std::to_string(phase.alloc.count);
    out += ",\"alloc_bytes\":";
    out += std::to_string(phase.alloc.bytes);
    out += '}';
  }
  out += "]}}";
  return out;
}

void SimProfiler::register_metrics(MetricsRegistry& registry,
                                   const std::string& prefix) const {
  for (std::size_t i = 0; i < kProfCatCount; ++i) {
    const auto c = static_cast<ProfCat>(i);
    const std::string base = prefix + "." + prof_cat_name(c);
    registry.add_gauge(base + ".count", [this, c] {
      return static_cast<double>(bucket(c).count);
    });
    registry.add_gauge(base + ".total_ns", [this, c] {
      return static_cast<double>(bucket(c).total_ns);
    });
    registry.add_gauge(base + ".self_ns", [this, c] {
      return static_cast<double>(bucket(c).self_ns);
    });
  }
  registry.add_gauge(prefix + ".host_ms", [this] {
    return static_cast<double>(elapsed_ns()) / 1e6;
  });
  registry.add_gauge(prefix + ".events_per_sec",
                     [this] { return events_per_sec(); });
  registry.add_gauge(prefix + ".alloc_count", [this] {
    return static_cast<double>(allocs().count);
  });
  registry.add_gauge(prefix + ".alloc_bytes", [this] {
    return static_cast<double>(allocs().bytes);
  });
}

}  // namespace wsn::obs
