// Minimal JSON writing helpers shared by the trace exporters, the metrics
// registry, and the bench --json emitter. Writing only — parsing of the
// JSONL trace subset lives in obs/export.cpp next to its writer so the two
// stay in lockstep.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/trace.h"

namespace wsn::obs {

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
inline void json_append_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Appends `v` so that it parses back to the same double: %.17g, forced to
/// contain '.' or an exponent so readers can distinguish it from integers.
/// Works on the stack buffer directly — no temporary std::string — so the
/// reuse path (append_jsonl into a retained buffer) stays allocation-free.
inline void json_append_double(std::string& out, double v) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", v);
  bool integral_form = true;
  bool special = false;  // inf/nan
  for (int i = 0; i < n; ++i) {
    if (buf[i] == '.' || buf[i] == 'e') integral_form = false;
    if (buf[i] == 'i' || buf[i] == 'n') special = true;
  }
  // JSON has no inf/nan literals; clamp to null (exporters never emit these
  // in practice, but a metric could be inf e.g. an empty Summary's min).
  if (special) {
    out += "null";
    return;
  }
  out.append(buf, static_cast<std::size_t>(n));
  if (integral_form) out += ".0";
}

/// Decimal integer appenders mirroring std::to_string's output, minus its
/// temporary allocation.
inline void json_append_int(std::string& out, std::int64_t v) {
  char buf[24];
  const int n =
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

inline void json_append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n =
      std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

inline void json_append_value(std::string& out, const AttrValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    json_append_int(out, *i);
  } else if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    json_append_uint(out, *u);
  } else if (const auto* d = std::get_if<double>(&v)) {
    json_append_double(out, *d);
  } else {
    json_append_string(out, std::get<std::string>(v));
  }
}

}  // namespace wsn::obs
