// Minimal JSON writing helpers shared by the trace exporters, the metrics
// registry, and the bench --json emitter. Writing only — parsing of the
// JSONL trace subset lives in obs/export.cpp next to its writer so the two
// stay in lockstep.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/trace.h"

namespace wsn::obs {

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
inline void json_append_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Appends `v` so that it parses back to the same double: %.17g, forced to
/// contain '.' or an exponent so readers can distinguish it from integers.
inline void json_append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  std::string s(buf);
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  // JSON has no inf/nan literals; clamp to null (exporters never emit these
  // in practice, but a metric could be inf e.g. an empty Summary's min).
  if (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos) {
    s = "null";
  }
  out += s;
}

inline void json_append_value(std::string& out, const AttrValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    out += std::to_string(*i);
  } else if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    out += std::to_string(*u);
  } else if (const auto* d = std::get_if<double>(&v)) {
    json_append_double(out, *d);
  } else {
    json_append_string(out, std::get<std::string>(v));
  }
}

}  // namespace wsn::obs
