// Wall-clock phase timer for sim-phase profiling.
//
// The simulator's virtual clock measures cost-model time; this measures
// how long the host actually took to execute a phase (setup, protocol
// convergence, a query round), which is what the bench --json rows report
// alongside the simulated quantities.
#pragma once

#include <chrono>
#include <functional>
#include <utility>

namespace wsn::obs {

class ScopedTimer {
 public:
  using Clock = std::chrono::steady_clock;

  /// On destruction, stores elapsed milliseconds into `*out_ms`.
  explicit ScopedTimer(double* out_ms)
      : out_(out_ms), start_(Clock::now()) {}

  /// On destruction, invokes `on_done(elapsed_ms)`.
  explicit ScopedTimer(std::function<void(double)> on_done)
      : on_done_(std::move(on_done)), start_(Clock::now()) {}

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  ~ScopedTimer() {
    const double ms = elapsed_ms();
    if (out_ != nullptr) *out_ = ms;
    if (on_done_) on_done_(ms);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* out_ = nullptr;
  std::function<void(double)> on_done_;
  Clock::time_point start_;
};

}  // namespace wsn::obs
