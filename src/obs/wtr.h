// "wtr" — the compact binary trace format.
//
// JSONL is the archival, grep/jq-able export, but at production scale
// (ROADMAP items 2-3: 100k-1M-node deployments, multi-GB captures) its
// ~100+ bytes/event and per-event text formatting dominate the capture
// path. wtr is the same event model packed for volume:
//
//   segment := header record*
//   header  := magic "WTRC" | u16le version (=1) | u16le reserved
//            | varint segment_index
//   record  := varint payload_len | payload
//   payload := tag byte, then per tag:
//     kTagIntern (1): varint string_id | raw bytes (the string)
//                     ids are assigned densely in first-use order and an
//                     intern record always precedes the first use
//     kTagEvent  (2): f64le time | zigzag-varint node | u8 category
//                   | u8 phase | varint name_id | varint flow
//                   | varint attr_count
//                   | attr*: varint key_id | u8 kind | value
//                     kind 0: zigzag-varint int64    kind 1: varint uint64
//                     kind 2: f64le double           kind 3: varint len, bytes
//     kTagFooter (3): varint event_count | u32le crc32 of every byte of the
//                     segment before this record's length prefix
//
// Doubles travel as their raw 8 bytes, so wtr -> JSONL conversion is
// byte-identical to a direct JSONL export of the same events (the JSONL
// writer's %.17g round-trips exactly). Every segment carries its own
// string table (reset on rotation), so any single trace.wtr.NNN file is
// decodable on its own — a crash mid-run costs at most the unflushed tail
// of the last segment, and the footer makes that truncation detectable.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.h"

namespace wsn::obs::wtr {

inline constexpr char kMagic[4] = {'W', 'T', 'R', 'C'};
inline constexpr std::uint16_t kVersion = 1;
inline constexpr std::size_t kHeaderFixedBytes = 8;  // magic + version + rsvd

inline constexpr std::uint8_t kTagIntern = 1;
inline constexpr std::uint8_t kTagEvent = 2;
inline constexpr std::uint8_t kTagFooter = 3;

inline constexpr std::uint8_t kAttrInt = 0;
inline constexpr std::uint8_t kAttrUint = 1;
inline constexpr std::uint8_t kAttrDouble = 2;
inline constexpr std::uint8_t kAttrString = 3;

/// LEB128 append (7 bits per byte, high bit = continuation).
inline void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  out += static_cast<char>(v);
}

/// Zigzag: small-magnitude signed values stay short varints.
inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void append_f64le(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((bits >> (8 * i)) & 0xff);
  }
}

/// Incremental CRC-32 (IEEE, polynomial 0xEDB88320) over the segment bytes;
/// the footer stores it so a reader can tell truncation from corruption.
class Crc32 {
 public:
  void update(const char* data, std::size_t n);
  void update(const std::string& s) { update(s.data(), s.size()); }
  std::uint32_t value() const { return ~state_; }
  void reset() { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// Encodes events of one segment into a caller-owned append buffer. The
/// intern table lives here; reset() starts a fresh self-contained segment.
/// All appends reuse internal scratch, so the steady-state encode path does
/// not allocate.
class SegmentEncoder {
 public:
  /// Appends the segment header (not length-prefixed).
  void begin_segment(std::string& out, std::uint64_t segment_index);

  /// Appends the intern records this event needs, then the event record.
  void append_event(const TraceEvent& ev, std::string& out);

  /// Appends the footer record. `crc` must cover every segment byte already
  /// written (header + all records), i.e. everything before this footer.
  static void append_footer(std::string& out, std::uint64_t event_count,
                            std::uint32_t crc);

  void reset() {
    table_.clear();
    next_id_ = 0;
  }

 private:
  std::uint64_t intern(const std::string& s, std::string& out);

  std::unordered_map<std::string, std::uint64_t> table_;
  std::uint64_t next_id_ = 0;
  std::string payload_;  // record staging buffer, reused across events
  std::string intern_scratch_;  // intern-record staging; separate from
                                // payload_, which intern() must not disturb
                                // mid-event
};

/// What ended a segment read.
enum class SegmentEnd {
  kClean,      // footer present, counts and CRC agree
  kTruncated,  // EOF before a complete footer (crash / unflushed tail)
  kCorrupt,    // structurally bad bytes or CRC/count mismatch
};

/// Pull-based decoder over one segment file. Reads through a bounded
/// buffer — one record at a time — so decoding a multi-GB segment needs
/// only record-sized memory. Constructor throws std::runtime_error on an
/// unopenable file, a bad magic, or an unsupported version (those are
/// structural errors, not truncations). Truncated or corrupt tails are
/// reported via end()/finding() after next() returns false.
class SegmentReader {
 public:
  explicit SegmentReader(std::string path);
  ~SegmentReader();
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  /// Fills `ev` with the next event; false at end of segment.
  bool next(TraceEvent& ev);

  SegmentEnd end() const { return end_; }
  /// Human-readable description of a non-clean end ("" when clean).
  const std::string& finding() const { return finding_; }
  std::uint64_t events_read() const { return events_read_; }
  std::uint64_t segment_index() const { return segment_index_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  const std::string& path() const { return path_; }

 private:
  bool read_record();  // fills payload_; false at EOF/footer/error
  bool read_exact(char* dst, std::size_t n);
  void truncated(const std::string& why);
  void corrupt(const std::string& why);

  std::string path_;
  std::FILE* file_ = nullptr;
  Crc32 crc_;
  std::string payload_;
  std::vector<std::string> table_;
  SegmentEnd end_ = SegmentEnd::kClean;
  std::string finding_;
  bool done_ = false;
  std::uint64_t events_read_ = 0;
  std::uint64_t segment_index_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace wsn::obs::wtr
