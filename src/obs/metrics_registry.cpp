#include "obs/metrics_registry.h"

#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/json.h"

namespace wsn::obs {

void MetricsRegistry::add_counters(std::string name,
                                   const sim::CounterSet* counters) {
  counters_.push_back({std::move(name), counters});
}

void MetricsRegistry::add_ledger(std::string name,
                                 const net::EnergyLedger* ledger) {
  ledgers_.push_back({std::move(name), ledger});
}

void MetricsRegistry::add_gauge(std::string name, std::function<double()> fn) {
  gauges_.push_back({std::move(name), std::move(fn)});
}

void MetricsRegistry::add_summary(std::string name,
                                  std::function<sim::Summary()> fn) {
  summaries_.push_back({std::move(name), std::move(fn)});
}

void MetricsRegistry::add_histogram(std::string name,
                                    const Histogram* histogram) {
  histograms_.push_back({std::move(name), histogram});
}

void MetricsRegistry::add_histogram(std::string name,
                                    std::function<Histogram()> fn) {
  histogram_fns_.push_back({std::move(name), std::move(fn)});
}

const Histogram& MetricsRegistry::histogram(const std::string& name) const {
  for (const HistogramEntry& e : histograms_) {
    if (e.name == name) return *e.histogram;
  }
  throw std::out_of_range("MetricsRegistry: unknown histogram " + name);
}

Histogram MetricsRegistry::histogram_snapshot(const std::string& name) const {
  for (const HistogramEntry& e : histograms_) {
    if (e.name == name) return *e.histogram;
  }
  for (const HistogramFnEntry& e : histogram_fns_) {
    if (e.name == name) return e.fn();
  }
  throw std::out_of_range("MetricsRegistry: unknown histogram " + name);
}

namespace {

LedgerSnapshot snapshot_of(const net::EnergyLedger& ledger) {
  // Mirrors analysis::energy_report exactly (same Summary arithmetic) so
  // the two agree to the last bit; test_obs asserts this.
  LedgerSnapshot s;
  const sim::Summary d = ledger.distribution();
  s.total = d.sum();
  s.mean = d.mean();
  s.stddev = d.stddev();
  s.cv = d.cv();
  s.max = d.max();
  s.min = d.min();
  s.tx = ledger.total(net::EnergyUse::kTx);
  s.rx = ledger.total(net::EnergyUse::kRx);
  s.compute = ledger.total(net::EnergyUse::kCompute);
  return s;
}

void append_ledger_json(std::string& out, const LedgerSnapshot& s) {
  out += "{\"total\":";
  json_append_double(out, s.total);
  out += ",\"mean\":";
  json_append_double(out, s.mean);
  out += ",\"stddev\":";
  json_append_double(out, s.stddev);
  out += ",\"cv\":";
  json_append_double(out, s.cv);
  out += ",\"max\":";
  json_append_double(out, s.max);
  out += ",\"min\":";
  json_append_double(out, s.min);
  out += ",\"tx\":";
  json_append_double(out, s.tx);
  out += ",\"rx\":";
  json_append_double(out, s.rx);
  out += ",\"compute\":";
  json_append_double(out, s.compute);
  out += '}';
}

void append_histogram_json(std::string& out, const Histogram& h) {
  out += "{\"count\":";
  out += std::to_string(h.count());
  out += ",\"lo\":";
  json_append_double(out, h.lo());
  out += ",\"hi\":";
  json_append_double(out, h.hi());
  out += ",\"min\":";
  json_append_double(out, h.min());
  out += ",\"max\":";
  json_append_double(out, h.max());
  out += ",\"mean\":";
  json_append_double(out, h.mean());
  out += ",\"p50\":";
  json_append_double(out, h.p50());
  out += ",\"p90\":";
  json_append_double(out, h.p90());
  out += ",\"p95\":";
  json_append_double(out, h.p95());
  out += ",\"p99\":";
  json_append_double(out, h.p99());
  out += ",\"underflow\":";
  out += std::to_string(h.underflow());
  out += ",\"overflow\":";
  out += std::to_string(h.overflow());
  out += ",\"buckets\":[";
  bool first_bucket = true;
  for (std::uint64_t b : h.buckets()) {
    if (!first_bucket) out += ',';
    first_bucket = false;
    out += std::to_string(b);
  }
  out += "]}";
}

}  // namespace

LedgerSnapshot MetricsRegistry::ledger_snapshot(const std::string& name) const {
  for (const LedgerEntry& e : ledgers_) {
    if (e.name == name) return snapshot_of(*e.ledger);
  }
  throw std::out_of_range("MetricsRegistry: unknown ledger " + name);
}

double MetricsRegistry::gauge(const std::string& name) const {
  for (const GaugeEntry& e : gauges_) {
    if (e.name == name) return e.fn();
  }
  throw std::out_of_range("MetricsRegistry: unknown gauge " + name);
}

std::uint64_t MetricsRegistry::counter(const std::string& name,
                                       const std::string& key) const {
  for (const CounterEntry& e : counters_) {
    if (e.name == name) return e.counters->get(key);
  }
  return 0;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (const CounterEntry& e : counters_) {
    sep();
    json_append_string(out, e.name);
    out += ":{";
    bool first_key = true;
    for (const auto& [key, value] : e.counters->sorted()) {
      if (!first_key) out += ',';
      first_key = false;
      json_append_string(out, key);
      out += ':';
      out += std::to_string(value);
    }
    out += '}';
  }
  for (const LedgerEntry& e : ledgers_) {
    sep();
    json_append_string(out, e.name);
    out += ':';
    append_ledger_json(out, snapshot_of(*e.ledger));
  }
  for (const GaugeEntry& e : gauges_) {
    sep();
    json_append_string(out, e.name);
    out += ':';
    json_append_double(out, e.fn());
  }
  for (const SummaryEntry& e : summaries_) {
    sep();
    json_append_string(out, e.name);
    const sim::Summary s = e.fn();
    out += ":{\"count\":";
    out += std::to_string(s.count());
    out += ",\"mean\":";
    json_append_double(out, s.mean());
    out += ",\"stddev\":";
    json_append_double(out, s.stddev());
    out += ",\"min\":";
    json_append_double(out, s.min());
    out += ",\"max\":";
    json_append_double(out, s.max());
    out += '}';
  }
  for (const HistogramEntry& e : histograms_) {
    sep();
    json_append_string(out, e.name);
    out += ':';
    append_histogram_json(out, *e.histogram);
  }
  for (const HistogramFnEntry& e : histogram_fns_) {
    sep();
    json_append_string(out, e.name);
    out += ':';
    append_histogram_json(out, e.fn());
  }
  out += '}';
  return out;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << to_json() << '\n';
}

}  // namespace wsn::obs
