#include "obs/stream_sink.h"

#include <unistd.h>

#include <cinttypes>
#include <filesystem>
#include <utility>

#include "obs/export.h"
#include "obs/profiler.h"

namespace wsn::obs {

std::string StreamingFileSink::segment_name(TraceFormat format,
                                            std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "trace.%s.%03" PRIu64,
                format == TraceFormat::kWtr ? "wtr" : "jsonl", index);
  return buf;
}

StreamingFileSink::StreamingFileSink(StreamSinkConfig config)
    : config_(std::move(config)) {
  std::error_code ec;
  std::filesystem::create_directories(config_.directory, ec);
  if (ec) {
    fail("cannot create " + config_.directory + ": " + ec.message());
    return;
  }
  buf_.reserve(config_.flush_bytes * 2);
  open_segment();
}

StreamingFileSink::~StreamingFileSink() { close(); }

void StreamingFileSink::fail(const std::string& why) {
  if (failed_) return;  // keep the first, causal error
  failed_ = true;
  error_ = why;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void StreamingFileSink::open_segment() {
  const std::string path = config_.directory + "/" +
                           segment_name(config_.format, segment_index_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    fail("cannot open " + path + " for writing");
    return;
  }
  opened_ = true;
  if (config_.format == TraceFormat::kWtr) {
    encoder_.begin_segment(buf_, segment_index_);
  }
}

void StreamingFileSink::flush_buffer() {
  if (buf_.empty() || failed_) return;
  const std::size_t n = std::fwrite(buf_.data(), 1, buf_.size(), file_);
  if (n != buf_.size()) {
    fail("short write to segment " +
         segment_name(config_.format, segment_index_) + " in " +
         config_.directory);
    return;
  }
  if (config_.format == TraceFormat::kWtr) crc_.update(buf_);
  bytes_written_ += n;
  segment_written_ += n;
  ++flushes_;
  buf_.clear();
}

void StreamingFileSink::rotate() {
  flush_buffer();
  if (failed_) return;
  if (config_.format == TraceFormat::kWtr) {
    // The footer sits outside the CRC it stores.
    std::string footer;
    wtr::SegmentEncoder::append_footer(footer, events_in_segment_,
                                       crc_.value());
    if (std::fwrite(footer.data(), 1, footer.size(), file_) != footer.size()) {
      fail("short write to segment footer in " + config_.directory);
      return;
    }
    bytes_written_ += footer.size();
  }
  std::fflush(file_);
  if (config_.fsync_on_rotate) fsync(fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
}

void StreamingFileSink::accept(TraceEvent ev) {
  if (failed_ || closed_) return;
  ProfSpan span(ProfCat::kSink);
  if (config_.format == TraceFormat::kWtr) {
    encoder_.append_event(ev, buf_);
  } else {
    append_jsonl(ev, buf_);
    buf_ += '\n';
  }
  ++events_;
  ++events_in_segment_;
  if (buf_.size() >= config_.flush_bytes) flush_buffer();
  if (segment_written_ + buf_.size() >= config_.segment_bytes) {
    rotate();
    if (failed_) return;
    ++segment_index_;
    segment_written_ = 0;
    events_in_segment_ = 0;
    crc_.reset();
    encoder_.reset();
    open_segment();
  }
}

bool StreamingFileSink::close() {
  if (closed_) return ok();
  closed_ = true;
  if (!failed_ && file_ != nullptr) rotate();
  return ok();
}

void StreamingFileSink::register_metrics(MetricsRegistry& registry,
                                         const std::string& prefix) const {
  registry.add_gauge(prefix + ".events",
                     [this] { return static_cast<double>(events_); });
  registry.add_gauge(prefix + ".bytes_written",
                     [this] { return static_cast<double>(bytes_written_); });
  registry.add_gauge(prefix + ".segments",
                     [this] { return static_cast<double>(segments()); });
  registry.add_gauge(prefix + ".flushes",
                     [this] { return static_cast<double>(flushes_); });
}

}  // namespace wsn::obs
