// Fixed-bucket histogram instrument.
//
// One implementation serves both live code (registered in MetricsRegistry,
// snapshotted as JSON with p50/p90/p95/p99) and offline trace analysis
// (obs/analyze builds latency/size distributions from parsed traces), so a
// percentile printed by `wsn-inspect hist` means exactly what the same
// percentile means in a metrics snapshot.
//
// Buckets are uniform over [lo, hi); values outside the range land in
// underflow/overflow counts (they still contribute to count/min/max, and
// percentiles clamp into the tracked range). Percentiles use linear
// interpolation within the bucket, the standard fixed-bucket estimator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace wsn::obs {

class Histogram {
 public:
  /// `buckets` uniform buckets over [lo, hi); both bounds finite, lo < hi.
  Histogram(double lo, double hi, std::size_t buckets = 32)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {
    if (!(lo < hi) || buckets == 0) {
      throw std::invalid_argument("Histogram: need lo < hi and buckets >= 1");
    }
  }

  void add(double v) {
    ++count_;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    sum_ += v;
    if (v < lo_) {
      ++underflow_;
    } else if (v >= hi_) {
      ++overflow_;
    } else {
      const auto i = static_cast<std::size_t>(
          (v - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
      ++counts_[std::min(i, counts_.size() - 1)];
    }
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  const std::vector<std::uint64_t>& buckets() const { return counts_; }
  double bucket_width() const {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }

  /// Estimated p-quantile, p in [0, 1]. Underflow mass sits at lo, overflow
  /// mass at hi; within a bucket the mass is assumed uniform.
  double percentile(double p) const {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double rank = p * static_cast<double>(count_);
    double seen = static_cast<double>(underflow_);
    if (rank <= seen) return min();  // all underflow mass sits below lo
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const double in_bucket = static_cast<double>(counts_[i]);
      if (rank <= seen + in_bucket) {
        const double frac = in_bucket == 0 ? 0.0 : (rank - seen) / in_bucket;
        return lo_ + (static_cast<double>(i) + frac) * bucket_width();
      }
      seen += in_bucket;
    }
    return hi_;
  }

  double p50() const { return percentile(0.50); }
  double p90() const { return percentile(0.90); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }

  void reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = underflow_ = overflow_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace wsn::obs
