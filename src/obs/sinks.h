// Trace sinks: where emitted TraceEvents go.
//
// RingBufferSink is the default capture device: bounded memory, overwrite-
// oldest semantics, so it can stay installed for an entire experiment
// without unbounded growth. NullSink measures the cost of the emission
// machinery itself (bench_micro_kernels uses it to prove the disabled path
// is free).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace wsn::obs {

/// Swallows every event. Installing it exercises the full guard + emit
/// path without retaining anything.
class NullSink final : public TraceSink {
 public:
  void accept(TraceEvent) override { ++accepted_; }
  std::uint64_t accepted() const { return accepted_; }

 private:
  std::uint64_t accepted_ = 0;
};

/// Bounded ring buffer: keeps the most recent `capacity` events, counting
/// (not keeping) older ones it had to drop. A nonzero dropped() means the
/// capture is a suffix of the run, not the whole run — register_metrics
/// exposes the count so `wsn-inspect check --metrics` can flag truncated
/// captures instead of silently analyzing a partial trace.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  void accept(TraceEvent ev) override {
    ProfSpan span(ProfCat::kSink);
    if (capacity_ == 0) {
      ++dropped_;
      return;
    }
    if (events_.size() < capacity_) {
      events_.push_back(std::move(ev));
    } else {
      events_[head_] = std::move(ev);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return events_.size(); }
  /// Events discarded because the buffer was full (the oldest go first).
  std::uint64_t dropped() const { return dropped_; }

  /// Exposes capture health — "<prefix>.captured" (events currently held)
  /// and "<prefix>.dropped" — in the unified registry, so a metrics
  /// snapshot records whether its companion trace file is complete.
  void register_metrics(MetricsRegistry& registry,
                        const std::string& prefix = "trace") const {
    registry.add_gauge(prefix + ".captured", [this] {
      return static_cast<double>(events_.size());
    });
    registry.add_gauge(prefix + ".dropped", [this] {
      return static_cast<double>(dropped_);
    });
  }

  /// Events in emission order (oldest surviving first).
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i) {
      out.push_back(events_[(head_ + i) % events_.size()]);
    }
    return out;
  }

  void clear() {
    events_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest element once full
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

/// Fans one emission out to two sinks — e.g. a RingBufferSink for the
/// in-memory tail alongside a StreamingFileSink for the full capture.
/// Neither sink is owned; both must outlive the tee.
class TeeSink final : public TraceSink {
 public:
  TeeSink(TraceSink& a, TraceSink& b) : a_(&a), b_(&b) {}

  void accept(TraceEvent ev) override {
    a_->accept(ev);  // copy: the second sink may consume the event
    b_->accept(std::move(ev));
  }

 private:
  TraceSink* a_;
  TraceSink* b_;
};

}  // namespace wsn::obs
