// Trace sinks: where emitted TraceEvents go.
//
// RingBufferSink is the default capture device: bounded memory, overwrite-
// oldest semantics, so it can stay installed for an entire experiment
// without unbounded growth. NullSink measures the cost of the emission
// machinery itself (bench_micro_kernels uses it to prove the disabled path
// is free).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace wsn::obs {

/// Swallows every event. Installing it exercises the full guard + emit
/// path without retaining anything.
class NullSink final : public TraceSink {
 public:
  void accept(TraceEvent) override { ++accepted_; }
  std::uint64_t accepted() const { return accepted_; }

 private:
  std::uint64_t accepted_ = 0;
};

/// Bounded ring buffer: keeps the most recent `capacity` events, counting
/// (not keeping) older ones it had to overwrite.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1 << 16)
      : capacity_(capacity) {}

  void accept(TraceEvent ev) override {
    if (capacity_ == 0) {
      ++overwritten_;
      return;
    }
    if (events_.size() < capacity_) {
      events_.push_back(std::move(ev));
    } else {
      events_[head_] = std::move(ev);
      head_ = (head_ + 1) % capacity_;
      ++overwritten_;
    }
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return events_.size(); }
  std::uint64_t overwritten() const { return overwritten_; }

  /// Events in emission order (oldest surviving first).
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i) {
      out.push_back(events_[(head_ + i) % events_.size()]);
    }
    return out;
  }

  void clear() {
    events_.clear();
    head_ = 0;
    overwritten_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest element once full
  std::uint64_t overwritten_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace wsn::obs
