#include "core/grid_topology.h"

namespace wsn::core {

std::vector<GridCoord> GridTopology::route(const GridCoord& a,
                                           const GridCoord& b) const {
  if (!contains(a) || !contains(b)) {
    throw std::invalid_argument("GridTopology::route: endpoint off grid");
  }
  std::vector<GridCoord> path;
  path.reserve(manhattan(a, b) + 1);
  GridCoord cur = a;
  path.push_back(cur);
  while (cur.col != b.col) {
    cur.col += cur.col < b.col ? 1 : -1;
    path.push_back(cur);
  }
  while (cur.row != b.row) {
    cur.row += cur.row < b.row ? 1 : -1;
    path.push_back(cur);
  }
  return path;
}

std::vector<GridCoord> GridTopology::all_coords() const {
  std::vector<GridCoord> out;
  out.reserve(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) out.push_back(coord_of(i));
  return out;
}

namespace {

// Spreads the low 32 bits of v so each lands in an even position.
constexpr std::uint64_t spread_bits(std::uint64_t v) {
  v &= 0xffffffffULL;
  v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

constexpr std::uint64_t compact_bits(std::uint64_t v) {
  v &= 0x5555555555555555ULL;
  v = (v | (v >> 1)) & 0x3333333333333333ULL;
  v = (v | (v >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v >> 4)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v >> 8)) & 0x0000ffff0000ffffULL;
  v = (v | (v >> 16)) & 0x00000000ffffffffULL;
  return v;
}

}  // namespace

std::uint64_t morton_index(const GridCoord& c) {
  // Column bits land in even positions, row bits in odd positions, so that
  // within every 2x2 block the order is NW, NE, SW, SE - exactly the label
  // order of Figure 3 (0 1 / 2 3 within the top-left block).
  return spread_bits(static_cast<std::uint64_t>(c.col)) |
         (spread_bits(static_cast<std::uint64_t>(c.row)) << 1);
}

GridCoord morton_coord(std::uint64_t index) {
  return {static_cast<std::int32_t>(compact_bits(index >> 1)),
          static_cast<std::int32_t>(compact_bits(index))};
}

}  // namespace wsn::core
