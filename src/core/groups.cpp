#include "core/groups.h"

#include <stdexcept>

namespace wsn::core {

GroupHierarchy::GroupHierarchy(const GridTopology& grid,
                               LeaderPlacement placement)
    : grid_(grid), placement_(placement), max_level_(0) {
  if (!GridTopology::is_power_of_two(grid.side())) {
    throw std::invalid_argument(
        "GroupHierarchy: grid side must be a power of two");
  }
  std::size_t s = grid.side();
  while (s > 1) {
    s >>= 1;
    ++max_level_;
  }
}

GridCoord GroupHierarchy::block_origin(const GridCoord& c,
                                       std::uint32_t level) const {
  if (level > max_level_) {
    throw std::invalid_argument("GroupHierarchy: level out of range");
  }
  const auto mask = static_cast<std::int32_t>(block_side(level)) - 1;
  return {c.row & ~mask, c.col & ~mask};
}

GridCoord GroupHierarchy::place_leader(const GridCoord& origin,
                                       std::uint32_t level) const {
  const auto side = static_cast<std::int32_t>(block_side(level));
  switch (placement_) {
    case LeaderPlacement::kNorthWest:
      return origin;
    case LeaderPlacement::kBlockCenter:
      return {origin.row + side / 2, origin.col + side / 2};
    case LeaderPlacement::kSouthEast:
      return {origin.row + side - 1, origin.col + side - 1};
  }
  return origin;
}

GridCoord GroupHierarchy::leader_of(const GridCoord& c,
                                    std::uint32_t level) const {
  if (level == 0) return c;  // level 0: every node leads itself.
  return place_leader(block_origin(c, level), level);
}

std::uint32_t GroupHierarchy::highest_leader_level(const GridCoord& c) const {
  std::uint32_t best = 0;
  for (std::uint32_t level = 1; level <= max_level_; ++level) {
    if (is_leader(c, level)) best = level;
  }
  return best;
}

std::vector<GridCoord> GroupHierarchy::members(const GridCoord& c,
                                               std::uint32_t level) const {
  const GridCoord origin = block_origin(c, level);
  const auto side = static_cast<std::int32_t>(block_side(level));
  std::vector<GridCoord> out;
  out.reserve(static_cast<std::size_t>(side) * static_cast<std::size_t>(side));
  for (std::int32_t r = 0; r < side; ++r) {
    for (std::int32_t col = 0; col < side; ++col) {
      out.push_back({origin.row + r, origin.col + col});
    }
  }
  return out;
}

std::vector<GridCoord> GroupHierarchy::leaders(std::uint32_t level) const {
  const auto side = static_cast<std::int32_t>(block_side(level));
  const auto grid_side = static_cast<std::int32_t>(grid_.side());
  std::vector<GridCoord> out;
  for (std::int32_t r = 0; r < grid_side; r += side) {
    for (std::int32_t c = 0; c < grid_side; c += side) {
      out.push_back(place_leader({r, c}, level));
    }
  }
  return out;
}

}  // namespace wsn::core
