// The executable face of the virtual architecture: an event-driven network
// of virtual grid nodes exchanging messages whose latency and energy follow
// the uniform cost model with shortest-path (dimension-order) routing.
//
// Programs written against this class are the "programs for the virtual
// architecture" of Figure 1: they never see the physical deployment. The
// same programs can instead be bound to a physical network through the
// Section 5 runtime (emulation::OverlayNetwork), which is how the library
// checks that virtual-layer analysis predicts physical-layer behaviour.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <functional>
#include <vector>

#include "core/cost_model.h"
#include "core/fabric.h"
#include "core/grid_topology.h"
#include "core/groups.h"
#include "net/energy.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace wsn::core {

/// How the virtual layer treats concurrent transmissions.
enum class Congestion : std::uint8_t {
  /// The paper's cost model: links are contention-free; a message's latency
  /// is exactly hops x units / B regardless of other traffic.
  kNone,
  /// Store-and-forward with per-node transmitter serialization: a node can
  /// push only one packet onto the air at a time, so messages queue at busy
  /// relays. Exposes funnel effects (e.g. a centralized sink) the uniform
  /// model hides.
  kNodeSerialized,
};

/// Event-driven virtual grid network (the designer's cost model made
/// executable).
class VirtualNetwork final : public MessageFabric {
 public:
  VirtualNetwork(sim::Simulator& sim, GridTopology grid, CostModel cost,
                 LeaderPlacement placement = LeaderPlacement::kNorthWest,
                 Congestion congestion = Congestion::kNone)
      : sim_(sim),
        grid_(grid),
        cost_(cost),
        groups_(grid_, placement),
        congestion_(congestion),
        ledger_(grid.node_count()),
        receivers_(grid.node_count()),
        down_(grid.node_count(), false),
        tx_busy_until_(grid.node_count(), 0.0) {
    cost_.validate();
  }

  sim::Simulator& simulator() override { return sim_; }
  const GridTopology& grid() const override { return grid_; }
  const GroupHierarchy& groups() const override { return groups_; }
  const CostModel& cost() const { return cost_; }
  net::EnergyLedger& ledger() { return ledger_; }
  const net::EnergyLedger& ledger() const { return ledger_; }
  sim::CounterSet& counters() { return counters_; }

  void set_receiver(const GridCoord& c, Handler h) override {
    receivers_[grid_.index_of(c)] = std::move(h);
  }

  /// Marks a virtual node's process as crashed: its sends are suppressed
  /// (counted as `vnet.tx_dead`) and deliveries to it are dropped at the
  /// last instant (`vnet.rx_dead`, with a flow-correlated "drop" trace
  /// event). The ideal relay fabric keeps forwarding — this models process
  /// failure, the virtual-layer counterpart of LinkLayer::set_down, so
  /// fault campaigns (sim/fault_plan.h) apply to both fabrics.
  void set_down(const GridCoord& c, bool down) {
    down_[grid_.index_of(c)] = down;
  }
  bool is_down(const GridCoord& c) const { return down_[grid_.index_of(c)]; }
  std::size_t down_count() const {
    std::size_t n = 0;
    for (bool d : down_) n += d ? 1 : 0;
    return n;
  }

  /// Sends `payload` from `from` to `to`. Charges the sender tx energy, each
  /// dimension-order relay rx+tx, and the destination rx; delivery occurs
  /// after hops * (units/B) of latency. A self-send is free and delivered at
  /// the current instant (the quad-tree mapping exploits this: one of the
  /// four child messages is "from the node to itself", Section 4.3).
  void send(const GridCoord& from, const GridCoord& to, std::any payload,
            double size_units = 1.0) override;

  /// Charges `ops` computations at `c` per the uniform cost model and
  /// returns their latency.
  sim::Time compute(const GridCoord& c, double ops) override {
    ledger_.charge(static_cast<net::NodeId>(grid_.index_of(c)),
                   net::EnergyUse::kCompute, cost_.compute_energy(ops));
    counters_.add("vnet.compute");
    return cost_.compute_latency(ops);
  }

  /// Sum of hop counts of all sends so far; with unit message size this
  /// equals half the total communication energy under the uniform model.
  std::uint64_t total_hops() const { return total_hops_; }

  Congestion congestion() const { return congestion_; }

  /// Registers this network's instruments (counters, ledger, hop gauge)
  /// under `prefix` in the unified registry.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "vnet") const {
    registry.add_counters(prefix + ".counters", &counters_);
    registry.add_ledger(prefix + ".energy", &ledger_);
    registry.add_gauge(prefix + ".total_hops", [this] {
      return static_cast<double>(total_hops_);
    });
  }

 private:
  /// One store-and-forward hop under kNodeSerialized: the packet waits for
  /// the relay's transmitter, then occupies it for one hop latency.
  /// `flow` is the trace correlation id of the originating send (0 when
  /// tracing is disabled).
  void forward_serialized(std::shared_ptr<std::vector<GridCoord>> path,
                          std::size_t hop, std::shared_ptr<std::any> payload,
                          double size_units, std::uint64_t flow);
  void deliver(const GridCoord& from, const GridCoord& to,
               const std::any& payload, double size_units, std::uint64_t flow);

  sim::Simulator& sim_;
  GridTopology grid_;
  CostModel cost_;
  GroupHierarchy groups_;
  Congestion congestion_;
  net::EnergyLedger ledger_;
  std::vector<Handler> receivers_;
  std::vector<bool> down_;
  sim::CounterSet counters_;
  std::vector<sim::Time> tx_busy_until_;
  std::uint64_t total_hops_ = 0;
};

}  // namespace wsn::core
