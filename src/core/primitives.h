// Collective computation/communication primitives of the virtual
// architecture (Section 2: "Computation primitives could include summing,
// sorting, or ranking a set of data values from a set of sensor nodes",
// citing Bhuvaneswaran et al.).
//
// Each collective runs as an event-driven protocol on the VirtualNetwork:
// members transmit to the group leader (cost: hops x message size, per the
// middleware's advertised member-to-leader cost), and the leader performs
// the combining computation (cost: one op per received value). Completion is
// reported through a callback carrying the result and the finish time.
//
// A collective temporarily owns the receive handlers of the participating
// nodes; interleave collectives on disjoint groups only.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/fabric.h"

namespace wsn::core {

/// Reduction operators for group_reduce.
enum class ReduceOp : std::uint8_t { kSum, kMax, kMin, kCount };

/// Result of a collective operation.
struct CollectiveResult {
  double value = 0.0;       // reduction result (or element count for sort)
  sim::Time finished = 0;   // simulation time at completion
  std::uint32_t messages = 0;
};

/// Applies `op` over one value per member, combining at `leader`.
/// `values[i]` belongs to `members[i]`. `done` fires when the leader has
/// received and folded every remote value.
void group_reduce(MessageFabric& fabric, std::span<const GridCoord> members,
                  const GridCoord& leader, std::span<const double> values,
                  ReduceOp op, double message_units,
                  std::function<void(const CollectiveResult&)> done);

/// Leader-to-group broadcast of a scalar along per-member shortest paths.
/// `done` fires when the last member has received the value.
void group_broadcast(MessageFabric& fabric, const GridCoord& leader,
                     std::span<const GridCoord> members, double value,
                     double message_units,
                     std::function<void(const CollectiveResult&)> done);

/// Gathers one value per member at the leader and sorts them there
/// (|g| log |g| compute ops). `done` receives the sorted values.
void group_sort(MessageFabric& fabric, std::span<const GridCoord> members,
                const GridCoord& leader, std::span<const double> values,
                double message_units,
                std::function<void(std::vector<double>, CollectiveResult)> done);

/// Barrier synchronization over a group (the UW-API facility Section 6
/// relates to: "even barrier synchronization is supported for the sensor
/// nodes that lie within a region"): every member signals the leader; once
/// all have arrived the leader releases them; `done` fires when the last
/// member has observed the release.
void group_barrier(MessageFabric& fabric, std::span<const GridCoord> members,
                   const GridCoord& leader, double message_units,
                   std::function<void(const CollectiveResult&)> done);

/// Computes the rank (0-based, by ascending value, ties by member order) of
/// each member's value: gather at leader, sort, scatter ranks back.
/// `done` receives rank[i] for members[i], firing when the last member has
/// learned its rank.
void group_rank(MessageFabric& fabric, std::span<const GridCoord> members,
                const GridCoord& leader, std::span<const double> values,
                double message_units,
                std::function<void(std::vector<std::uint32_t>, CollectiveResult)>
                    done);

}  // namespace wsn::core
