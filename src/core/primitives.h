// Collective computation/communication primitives of the virtual
// architecture (Section 2: "Computation primitives could include summing,
// sorting, or ranking a set of data values from a set of sensor nodes",
// citing Bhuvaneswaran et al.).
//
// Each collective runs as an event-driven protocol on the VirtualNetwork:
// members transmit to the group leader (cost: hops x message size, per the
// middleware's advertised member-to-leader cost), and the leader performs
// the combining computation (cost: one op per received value). Completion is
// reported through a callback carrying the result and the finish time.
//
// A collective temporarily owns the receive handlers of the participating
// nodes; interleave collectives on disjoint groups only.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/fabric.h"

namespace wsn::core {

/// Reduction operators for group_reduce.
enum class ReduceOp : std::uint8_t { kSum, kMax, kMin, kCount };

/// Result of a collective operation.
struct CollectiveResult {
  double value = 0.0;       // reduction result (or element count for sort)
  sim::Time finished = 0;   // simulation time at completion
  std::uint32_t messages = 0;
};

/// Result of a deadline-bounded collective: instead of hanging on a crashed
/// or unreachable member, the leader closes the round at the deadline with
/// whatever contributions arrived. `contributors` ⊆ `expected` always; the
/// leader itself contributes locally and is always present (when it is a
/// member).
struct PartialResult {
  double value = 0.0;                // folded over contributors only
  std::vector<GridCoord> contributors;  // members whose value arrived
  std::vector<GridCoord> expected;      // the full member list
  sim::Time finished = 0;
  std::uint32_t messages = 0;
  bool deadline_hit = false;         // true iff the round closed by timeout
  /// Contributions rejected because their binding epoch was older than the
  /// fabric's current epoch for that member — a deposed leader's in-flight
  /// value that must not be folded (it would double-count once the re-bound
  /// leader contributes for the same virtual node).
  std::uint32_t stale_rejected = 0;

  bool complete() const { return contributors.size() == expected.size(); }
  /// Members whose contribution never arrived — the degraded round's
  /// suspect list (feeds liveness probing / failover).
  std::vector<GridCoord> missing() const;
};

/// Applies `op` over one value per member, combining at `leader`.
/// `values[i]` belongs to `members[i]`. `done` fires when the leader has
/// received and folded every remote value.
void group_reduce(MessageFabric& fabric, std::span<const GridCoord> members,
                  const GridCoord& leader, std::span<const double> values,
                  ReduceOp op, double message_units,
                  std::function<void(const CollectiveResult&)> done);

/// Leader-to-group broadcast of a scalar along per-member shortest paths.
/// `done` fires when the last member has received the value.
void group_broadcast(MessageFabric& fabric, const GridCoord& leader,
                     std::span<const GridCoord> members, double value,
                     double message_units,
                     std::function<void(const CollectiveResult&)> done);

/// Gathers one value per member at the leader and sorts them there
/// (|g| log |g| compute ops). `done` receives the sorted values.
void group_sort(MessageFabric& fabric, std::span<const GridCoord> members,
                const GridCoord& leader, std::span<const double> values,
                double message_units,
                std::function<void(std::vector<double>, CollectiveResult)> done);

/// Barrier synchronization over a group (the UW-API facility Section 6
/// relates to: "even barrier synchronization is supported for the sensor
/// nodes that lie within a region"): every member signals the leader; once
/// all have arrived the leader releases them; `done` fires when the last
/// member has observed the release.
void group_barrier(MessageFabric& fabric, std::span<const GridCoord> members,
                   const GridCoord& leader, double message_units,
                   std::function<void(const CollectiveResult&)> done);

/// Computes the rank (0-based, by ascending value, ties by member order) of
/// each member's value: gather at leader, sort, scatter ranks back.
/// `done` receives rank[i] for members[i], firing when the last member has
/// learned its rank.
void group_rank(MessageFabric& fabric, std::span<const GridCoord> members,
                const GridCoord& leader, std::span<const double> values,
                double message_units,
                std::function<void(std::vector<std::uint32_t>, CollectiveResult)>
                    done);

// ---- Deadline-bounded (gracefully degrading) variants -------------------
//
// Identical protocols, except the leader arms a timer `deadline` time units
// after the start: if not every contribution has arrived by then, the round
// closes with the partial fold and `done` fires with PartialResult instead
// of hanging forever on a lossy or fault-injected fabric. Contributions
// arriving after the close are ignored (traced as kCollective "late"
// events). With a generous deadline and a healthy fabric the result is
// complete() and value-identical to the plain variant.

/// Deadline-bounded group_reduce (sum/max/min/count via `op`).
void group_reduce_deadline(MessageFabric& fabric,
                           std::span<const GridCoord> members,
                           const GridCoord& leader,
                           std::span<const double> values, ReduceOp op,
                           double message_units, sim::Time deadline,
                           std::function<void(const PartialResult&)> done);

/// Deadline-bounded group_sort: `done` receives the sorted values of the
/// contributors only (result.value = contributor count).
void group_sort_deadline(
    MessageFabric& fabric, std::span<const GridCoord> members,
    const GridCoord& leader, std::span<const double> values,
    double message_units, sim::Time deadline,
    std::function<void(std::vector<double>, PartialResult)> done);

/// Deadline-bounded group_rank: ranks are computed among contributors only
/// and `ranks[i]` aligns with `result.contributors[i]`. The leader scatters
/// each contributor its rank fire-and-forget (a degraded round must not
/// block on members that may be gone); `done` fires after the leader's
/// sort/compute, not after scatter delivery.
void group_rank_deadline(
    MessageFabric& fabric, std::span<const GridCoord> members,
    const GridCoord& leader, std::span<const double> values,
    double message_units, sim::Time deadline,
    std::function<void(std::vector<std::uint32_t>, PartialResult)> done);

}  // namespace wsn::core
