#include "core/virtual_network.h"

namespace wsn::core {

void VirtualNetwork::deliver(const GridCoord& from, const GridCoord& to,
                             const std::any& payload, double size_units,
                             std::uint64_t flow) {
  const std::size_t idx = grid_.index_of(to);
  if (down_[idx]) {
    // The destination process crashed while the message was in flight; the
    // radio work already happened (energy stays charged), only the handler
    // is suppressed. The "drop" event keeps the flow explicable offline.
    counters_.add("vnet.rx_dead");
    if (obs::tracer().enabled(obs::Category::kVirtual)) {
      obs::tracer().emit(
          {sim_.now(), static_cast<std::int64_t>(idx), obs::Category::kVirtual,
           'i', "drop", flow,
           {{"from", static_cast<std::uint64_t>(grid_.index_of(from))},
            {"why", std::string("dead")}}});
    }
    return;
  }
  counters_.add("vnet.delivered");
  if (obs::tracer().enabled(obs::Category::kVirtual)) {
    obs::tracer().emit(
        {sim_.now(), static_cast<std::int64_t>(idx), obs::Category::kVirtual,
         'i', "deliver", flow,
         {{"src", static_cast<std::uint64_t>(grid_.index_of(from))},
          {"size", size_units}}});
  }
  if (receivers_[idx]) {
    receivers_[idx](VirtualMessage{from, size_units, payload});
  } else {
    counters_.add("vnet.no_receiver");
  }
}

void VirtualNetwork::forward_serialized(
    std::shared_ptr<std::vector<GridCoord>> path, std::size_t hop,
    std::shared_ptr<std::any> payload, double size_units, std::uint64_t flow) {
  // The packet sits at path[hop] and must cross to path[hop+1].
  const GridCoord& here = (*path)[hop];
  const std::size_t here_idx = grid_.index_of(here);
  const sim::Time now = sim_.now();
  const sim::Time depart =
      std::max(now, tx_busy_until_[here_idx]) + cost_.hop_latency(size_units);
  tx_busy_until_[here_idx] = depart;
  if (depart > now + cost_.hop_latency(size_units)) {
    counters_.add("vnet.queued");
  }
  if (obs::tracer().enabled(obs::Category::kVirtual)) {
    // One relay span: `wait` is pure queueing delay behind the relay's
    // transmitter; summing waits over a flow explains exactly how far the
    // measured latency exceeds hops x hop_latency.
    obs::tracer().emit(
        {now, static_cast<std::int64_t>(here_idx), obs::Category::kVirtual,
         'i', "hop", flow,
         {{"hop", static_cast<std::uint64_t>(hop)},
          {"next",
           static_cast<std::uint64_t>(grid_.index_of((*path)[hop + 1]))},
          {"depart", depart},
          {"wait", depart - now - cost_.hop_latency(size_units)},
          {"size", size_units}}});
  }

  sim_.schedule_at(depart, [this, path, hop, payload, size_units, flow]() {
    const std::size_t next = hop + 1;
    if (next + 1 == path->size()) {
      deliver(path->front(), path->back(), *payload, size_units, flow);
    } else {
      forward_serialized(path, next, payload, size_units, flow);
    }
  });
}

void VirtualNetwork::send(const GridCoord& from, const GridCoord& to,
                          std::any payload, double size_units) {
  if (down_[grid_.index_of(from)]) {
    // A crashed process transmits nothing: no energy, no trace, no flow.
    counters_.add("vnet.tx_dead");
    return;
  }
  counters_.add("vnet.send");
  const std::uint32_t hops = manhattan(from, to);
  total_hops_ += hops;

  auto& tr = obs::tracer();
  std::uint64_t flow = 0;
  if (tr.enabled(obs::Category::kVirtual)) {
    flow = tr.next_flow();
    tr.emit({sim_.now(), static_cast<std::int64_t>(grid_.index_of(from)),
             obs::Category::kVirtual, 'i', hops == 0 ? "self_send" : "send",
             flow,
             {{"dst", static_cast<std::uint64_t>(grid_.index_of(to))},
              {"hops", static_cast<std::uint64_t>(hops)},
              {"size", size_units}}});
  }

  if (hops == 0) {
    // Self-delivery: no radio involved, no energy, no latency.
    counters_.add("vnet.self_send");
    sim_.post([this, from, payload = std::move(payload), size_units]() {
      const std::size_t idx = grid_.index_of(from);
      if (receivers_[idx]) {
        receivers_[idx](VirtualMessage{from, size_units, payload});
      }
    });
    return;
  }

  // Energy: every hop has one transmitter and one receiver. Endpoints pay
  // one side each; every intermediate relay pays both. Congestion does not
  // change energy, only timing.
  const auto path = grid_.route(from, to);
  ledger_.charge(static_cast<net::NodeId>(grid_.index_of(from)),
                 net::EnergyUse::kTx, cost_.tx_energy(size_units));
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    const auto idx = static_cast<net::NodeId>(grid_.index_of(path[i]));
    ledger_.charge(idx, net::EnergyUse::kRx, cost_.rx_energy(size_units));
    ledger_.charge(idx, net::EnergyUse::kTx, cost_.tx_energy(size_units));
  }
  ledger_.charge(static_cast<net::NodeId>(grid_.index_of(to)),
                 net::EnergyUse::kRx, cost_.rx_energy(size_units));

  if (congestion_ == Congestion::kNodeSerialized) {
    forward_serialized(std::make_shared<std::vector<GridCoord>>(path), 0,
                       std::make_shared<std::any>(std::move(payload)),
                       size_units, flow);
    return;
  }

  if (tr.enabled(obs::Category::kVirtual)) {
    // Contention-free hops are fully determined at send time: relay i
    // transmits at now + i * hop_latency with zero queueing. Emitting the
    // chain here keeps traces path-reconstructable in both congestion
    // modes without scheduling per-hop events the cost model doesn't need.
    const sim::Time now = sim_.now();
    const sim::Time hop_latency = cost_.hop_latency(size_units);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      tr.emit({now + static_cast<double>(i) * hop_latency,
               static_cast<std::int64_t>(grid_.index_of(path[i])),
               obs::Category::kVirtual, 'i', "hop", flow,
               {{"hop", static_cast<std::uint64_t>(i)},
                {"next", static_cast<std::uint64_t>(grid_.index_of(path[i + 1]))},
                {"depart", now + static_cast<double>(i + 1) * hop_latency},
                {"wait", 0.0},
                {"size", size_units}}});
    }
  }

  const sim::Time latency = cost_.path_latency(hops, size_units);
  sim_.schedule_in(
      latency,
      [this, from, to, payload = std::move(payload), size_units, flow]() {
        deliver(from, to, payload, size_units, flow);
      });
}

}  // namespace wsn::core
