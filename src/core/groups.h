// Hierarchical group-formation middleware service (Section 3.2).
//
// "At the lowest level of hierarchy (level 0), every node is both a group
// member and a group leader. At level 1, the grid is partitioned into blocks
// of 2x2 nodes. The node in the north-west corner is designated a level 1
// leader, and remaining nodes of the block are level 1 followers, and so on.
// Since every node knows its own grid coordinates, it can also determine its
// role as leader and/or follower at each level of the hierarchy."
#pragma once

#include <cstdint>
#include <vector>

#include "core/grid_topology.h"

namespace wsn::core {

/// Role of a node within a group at some level.
enum class GroupRole : std::uint8_t { kLeader, kFollower };

/// Placement policy for the level-k leader within its block. The paper's
/// service uses the north-west corner; the alternatives support the mapping
/// ablation of Section 4.2 (leader placement is a free design choice for
/// non-leaf tasks).
enum class LeaderPlacement : std::uint8_t {
  kNorthWest,   // the paper's choice
  kBlockCenter, // center node of the block (floor midpoint)
  kSouthEast,   // diagonal extreme, worst case for sibling symmetry
};

/// Static hierarchical groups over a square grid whose side is a power of
/// two. Stateless: every query is O(1) arithmetic on coordinates, mirroring
/// the paper's observation that nodes derive their roles locally.
class GroupHierarchy {
 public:
  explicit GroupHierarchy(const GridTopology& grid,
                          LeaderPlacement placement = LeaderPlacement::kNorthWest);

  const GridTopology& grid() const { return grid_; }
  LeaderPlacement placement() const { return placement_; }

  /// Number of levels: level 0 (every node) .. max_level() (whole grid).
  std::uint32_t max_level() const { return max_level_; }

  /// Side of a level-k block: 2^k.
  std::uint32_t block_side(std::uint32_t level) const { return 1u << level; }

  /// North-west corner of the level-k block containing `c`.
  GridCoord block_origin(const GridCoord& c, std::uint32_t level) const;

  /// The level-k leader of the group containing `c`.
  GridCoord leader_of(const GridCoord& c, std::uint32_t level) const;

  bool is_leader(const GridCoord& c, std::uint32_t level) const {
    return leader_of(c, level) == c;
  }

  /// Highest level at which `c` is a leader (>= 0; level 0 always holds for
  /// the NorthWest policy; for other placements 0 is returned when `c` leads
  /// no block).
  std::uint32_t highest_leader_level(const GridCoord& c) const;

  GroupRole role(const GridCoord& c, std::uint32_t level) const {
    return is_leader(c, level) ? GroupRole::kLeader : GroupRole::kFollower;
  }

  /// All members of the level-k group containing `c` (block of 2^k x 2^k),
  /// row-major.
  std::vector<GridCoord> members(const GridCoord& c, std::uint32_t level) const;

  /// All level-k leaders, row-major by block.
  std::vector<GridCoord> leaders(std::uint32_t level) const;

  /// Hop distance from `c` to its level-k leader; the middleware's
  /// advertised cost for member-to-leader communication (Section 4.2).
  std::uint32_t hops_to_leader(const GridCoord& c, std::uint32_t level) const {
    return manhattan(c, leader_of(c, level));
  }

 private:
  GridCoord place_leader(const GridCoord& origin, std::uint32_t level) const;

  GridTopology grid_;
  LeaderPlacement placement_;
  std::uint32_t max_level_;
};

}  // namespace wsn::core
