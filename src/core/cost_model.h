// The uniform cost model of Section 3.2.
//
// "The energy cost for transmission, reception or computation of one unit of
// data is defined to be one unit of energy. One unit of latency is the time
// taken to complete R computations or transmit B units of data, where R and
// B are the processing speed and transmission bandwidth of the node."
//
// The defaults reproduce the paper exactly; the knobs let the end user swap
// in "a different set of cost functions if the characteristics of the
// deployment necessitate it" without touching algorithm code.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/grid_topology.h"

namespace wsn::core {

struct CostModel {
  /// Energy per unit of data transmitted (paper: 1).
  double tx_energy_per_unit = 1.0;
  /// Energy per unit of data received (paper: 1).
  double rx_energy_per_unit = 1.0;
  /// Energy per unit of computation (paper: 1).
  double compute_energy_per_op = 1.0;
  /// B: units of data transmitted per unit latency.
  double bandwidth = 1.0;
  /// R: computations completed per unit latency.
  double processing_speed = 1.0;

  void validate() const {
    if (bandwidth <= 0 || processing_speed <= 0) {
      throw std::invalid_argument("CostModel: B and R must be positive");
    }
    if (tx_energy_per_unit < 0 || rx_energy_per_unit < 0 ||
        compute_energy_per_op < 0) {
      throw std::invalid_argument("CostModel: energies must be non-negative");
    }
  }

  /// Latency of transmitting `units` of data over one (virtual) hop.
  double hop_latency(double units) const { return units / bandwidth; }

  /// Latency of `ops` computations.
  double compute_latency(double ops) const { return ops / processing_speed; }

  /// Energy expended by the sender for one hop of `units` data.
  double tx_energy(double units) const { return tx_energy_per_unit * units; }

  /// Energy expended by a receiver for one hop of `units` data.
  double rx_energy(double units) const { return rx_energy_per_unit * units; }

  /// Energy of `ops` computations.
  double compute_energy(double ops) const {
    return compute_energy_per_op * ops;
  }

  /// Total latency of a `hops`-hop store-and-forward transfer of `units`.
  double path_latency(std::uint32_t hops, double units) const {
    return static_cast<double>(hops) * hop_latency(units);
  }

  /// Total energy of a `hops`-hop transfer: every hop has one transmitter
  /// and one receiver, so intermediate relays pay rx then tx.
  double path_energy(std::uint32_t hops, double units) const {
    return static_cast<double>(hops) * (tx_energy(units) + rx_energy(units));
  }

  /// Latency of a message between two virtual grid nodes under shortest-path
  /// routing (Section 4.2: proportional to the minimum hop count).
  double message_latency(const GridCoord& from, const GridCoord& to,
                         double units) const {
    return path_latency(manhattan(from, to), units);
  }

  double message_energy(const GridCoord& from, const GridCoord& to,
                        double units) const {
    return path_energy(manhattan(from, to), units);
  }
};

/// The paper's exact cost model: all unit constants.
constexpr CostModel uniform_cost_model() { return CostModel{}; }

}  // namespace wsn::core
