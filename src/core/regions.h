// Geographic groups and logical naming (Section 3.2): "The membership in a
// group can be determined based on different factors such as geographic
// location, current reading of a sensor, the functionality of the program
// running on a node ... Geographic groups are ones where all nodes that are
// deployed in a certain geographic region are members of the group. ... In
// a general application scenario, this service can be implemented using a
// combination of geographically constrained groups and logical naming."
//
// A GeographicRegion is a predicate over virtual grid coordinates; a
// NamingService binds names to (possibly dynamic) member sets so that
// "group membership can even be determined at run time". Region-scoped
// collectives compose these with the primitives of primitives.h.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/grid_topology.h"

namespace wsn::core {

/// A geographic region: a membership predicate over grid coordinates.
class GeographicRegion {
 public:
  using Predicate = std::function<bool(const GridCoord&)>;

  explicit GeographicRegion(Predicate pred) : pred_(std::move(pred)) {}

  bool contains(const GridCoord& c) const { return pred_(c); }

  /// All members within `grid`, row-major.
  std::vector<GridCoord> members(const GridTopology& grid) const;

  /// Axis-aligned rectangle [r0, r1] x [c0, c1], inclusive.
  static GeographicRegion rectangle(std::int32_t row0, std::int32_t col0,
                                    std::int32_t row1, std::int32_t col1);

  /// Disk of manhattan radius `radius` around `center`.
  static GeographicRegion disk(const GridCoord& center, std::uint32_t radius);

  /// The level-k block containing `anchor` (a group of the hierarchy viewed
  /// as a region).
  static GeographicRegion block(const GridCoord& anchor, std::uint32_t level);

  /// Set algebra, composing predicates.
  GeographicRegion unite(const GeographicRegion& other) const;
  GeographicRegion intersect(const GeographicRegion& other) const;
  GeographicRegion subtract(const GeographicRegion& other) const;

 private:
  Predicate pred_;
};

/// Logical naming: names bound to member sets, resolvable at run time.
/// Bindings may be static coordinate lists or dynamic region predicates
/// (re-evaluated per resolve, so membership follows the predicate's state).
class NamingService {
 public:
  explicit NamingService(GridTopology grid) : grid_(grid) {}

  /// Binds `name` to an explicit set of coordinates (replaces any previous
  /// binding of the name).
  void bind(const std::string& name, std::vector<GridCoord> members);

  /// Binds `name` to a region predicate evaluated at resolve time.
  void bind(const std::string& name, GeographicRegion region);

  /// Resolves a name to its current member set; nullopt if unbound.
  std::optional<std::vector<GridCoord>> resolve(const std::string& name) const;

  bool unbind(const std::string& name);
  std::vector<std::string> names() const;

 private:
  struct Binding {
    std::optional<std::vector<GridCoord>> fixed;
    std::optional<GeographicRegion> dynamic;
  };

  GridTopology grid_;
  std::map<std::string, Binding> bindings_;
};

}  // namespace wsn::core
