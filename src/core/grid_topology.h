// The virtual network model: an oriented, two-dimensional grid of points of
// coverage (PoCs), as defined in Section 3.2 of the paper.
//
// Row 0 is the north edge and column 0 the west edge; the four directions of
// the oriented grid are the DIR set of Section 5.1.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace wsn::core {

/// Compass directions of the oriented grid (Section 5.1's DIR).
enum class Direction : std::uint8_t { kNorth = 0, kEast = 1, kSouth = 2, kWest = 3 };

inline constexpr std::array<Direction, 4> kAllDirections = {
    Direction::kNorth, Direction::kEast, Direction::kSouth, Direction::kWest};

constexpr Direction opposite(Direction d) {
  switch (d) {
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kEast: return Direction::kWest;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kWest: return Direction::kEast;
  }
  return Direction::kNorth;
}

inline const char* to_string(Direction d) {
  switch (d) {
    case Direction::kNorth: return "N";
    case Direction::kEast: return "E";
    case Direction::kSouth: return "S";
    case Direction::kWest: return "W";
  }
  return "?";
}

/// Grid coordinate (row, col); row grows southward, col grows eastward.
struct GridCoord {
  std::int32_t row = 0;
  std::int32_t col = 0;

  friend bool operator==(const GridCoord&, const GridCoord&) = default;
  friend auto operator<=>(const GridCoord&, const GridCoord&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const GridCoord& c) {
  return os << '(' << c.row << ',' << c.col << ')';
}

/// Manhattan hop distance, the virtual architecture's communication metric:
/// "the latency and energy of transmitting a data packet ... is proportional
/// to the minimum number of hops separating them in the virtual network
/// graph, assuming shortest path routing" (Section 4.2).
constexpr std::uint32_t manhattan(const GridCoord& a, const GridCoord& b) {
  const auto dr = a.row > b.row ? a.row - b.row : b.row - a.row;
  const auto dc = a.col > b.col ? a.col - b.col : b.col - a.col;
  return static_cast<std::uint32_t>(dr + dc);
}

/// The sqrt(N) x sqrt(N) oriented grid G_V.
class GridTopology {
 public:
  /// Creates a `side` x `side` grid; `side` must be >= 1.
  explicit GridTopology(std::size_t side) : side_(side) {
    if (side == 0) throw std::invalid_argument("GridTopology: side must be >= 1");
  }

  std::size_t side() const { return side_; }
  std::size_t node_count() const { return side_ * side_; }

  bool contains(const GridCoord& c) const {
    return c.row >= 0 && c.col >= 0 &&
           c.row < static_cast<std::int32_t>(side_) &&
           c.col < static_cast<std::int32_t>(side_);
  }

  /// Row-major linear index of `c`.
  std::size_t index_of(const GridCoord& c) const {
    return static_cast<std::size_t>(c.row) * side_ +
           static_cast<std::size_t>(c.col);
  }

  GridCoord coord_of(std::size_t index) const {
    return {static_cast<std::int32_t>(index / side_),
            static_cast<std::int32_t>(index % side_)};
  }

  /// Grid neighbor in direction `d`, or nullopt at the boundary.
  std::optional<GridCoord> neighbor(const GridCoord& c, Direction d) const {
    GridCoord n = step(c, d);
    if (!contains(n)) return std::nullopt;
    return n;
  }

  /// The coordinate one step in direction `d` (may be outside the grid).
  static constexpr GridCoord step(const GridCoord& c, Direction d) {
    switch (d) {
      case Direction::kNorth: return {c.row - 1, c.col};
      case Direction::kEast: return {c.row, c.col + 1};
      case Direction::kSouth: return {c.row + 1, c.col};
      case Direction::kWest: return {c.row, c.col - 1};
    }
    return c;
  }

  /// Dimension-order (column-first, then row) shortest path from `a` to `b`,
  /// inclusive of both endpoints. Length is manhattan(a,b)+1.
  std::vector<GridCoord> route(const GridCoord& a, const GridCoord& b) const;

  /// All coordinates in row-major order.
  std::vector<GridCoord> all_coords() const;

  /// True iff `side` is a power of two (required for the quad-tree
  /// decomposition of the case study).
  static constexpr bool is_power_of_two(std::size_t v) {
    return v != 0 && (v & (v - 1)) == 0;
  }

 private:
  std::size_t side_;
};

/// Morton (Z-order) index of a coordinate: the labeling used in Figures 2-3
/// of the paper, where blocks of four siblings occupy contiguous index
/// ranges at every level of the quad-tree.
std::uint64_t morton_index(const GridCoord& c);

/// Inverse of morton_index.
GridCoord morton_coord(std::uint64_t index);

}  // namespace wsn::core
