#include "core/regions.h"

#include "core/groups.h"

namespace wsn::core {

std::vector<GridCoord> GeographicRegion::members(
    const GridTopology& grid) const {
  std::vector<GridCoord> out;
  for (const GridCoord& c : grid.all_coords()) {
    if (pred_(c)) out.push_back(c);
  }
  return out;
}

GeographicRegion GeographicRegion::rectangle(std::int32_t row0,
                                             std::int32_t col0,
                                             std::int32_t row1,
                                             std::int32_t col1) {
  return GeographicRegion([=](const GridCoord& c) {
    return c.row >= row0 && c.row <= row1 && c.col >= col0 && c.col <= col1;
  });
}

GeographicRegion GeographicRegion::disk(const GridCoord& center,
                                        std::uint32_t radius) {
  return GeographicRegion([=](const GridCoord& c) {
    return manhattan(c, center) <= radius;
  });
}

GeographicRegion GeographicRegion::block(const GridCoord& anchor,
                                         std::uint32_t level) {
  const auto mask = static_cast<std::int32_t>((1u << level) - 1);
  const GridCoord origin{anchor.row & ~mask, anchor.col & ~mask};
  const auto side = static_cast<std::int32_t>(1u << level);
  return rectangle(origin.row, origin.col, origin.row + side - 1,
                   origin.col + side - 1);
}

GeographicRegion GeographicRegion::unite(const GeographicRegion& other) const {
  return GeographicRegion([a = pred_, b = other.pred_](const GridCoord& c) {
    return a(c) || b(c);
  });
}

GeographicRegion GeographicRegion::intersect(
    const GeographicRegion& other) const {
  return GeographicRegion([a = pred_, b = other.pred_](const GridCoord& c) {
    return a(c) && b(c);
  });
}

GeographicRegion GeographicRegion::subtract(
    const GeographicRegion& other) const {
  return GeographicRegion([a = pred_, b = other.pred_](const GridCoord& c) {
    return a(c) && !b(c);
  });
}

void NamingService::bind(const std::string& name,
                         std::vector<GridCoord> members) {
  bindings_[name] = Binding{std::move(members), std::nullopt};
}

void NamingService::bind(const std::string& name, GeographicRegion region) {
  bindings_[name] = Binding{std::nullopt, std::move(region)};
}

std::optional<std::vector<GridCoord>> NamingService::resolve(
    const std::string& name) const {
  const auto it = bindings_.find(name);
  if (it == bindings_.end()) return std::nullopt;
  if (it->second.fixed.has_value()) return it->second.fixed;
  return it->second.dynamic->members(grid_);
}

bool NamingService::unbind(const std::string& name) {
  return bindings_.erase(name) > 0;
}

std::vector<std::string> NamingService::names() const {
  std::vector<std::string> out;
  out.reserve(bindings_.size());
  for (const auto& [name, binding] : bindings_) out.push_back(name);
  return out;
}

}  // namespace wsn::core
