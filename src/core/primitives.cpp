#include "core/primitives.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "obs/trace.h"

namespace wsn::core {
namespace {

/// Emits the 'B' span event of a collective and returns its flow id, or 0
/// when the collective category is disabled.
std::uint64_t collective_begin(MessageFabric& fabric, const char* what,
                               const GridCoord& leader, std::size_t members) {
  auto& tr = obs::tracer();
  if (!tr.enabled(obs::Category::kCollective)) return 0;
  const std::uint64_t flow = tr.next_flow();
  tr.emit({fabric.simulator().now(),
           static_cast<std::int64_t>(fabric.grid().index_of(leader)),
           obs::Category::kCollective, 'B', what, flow,
           {{"members", static_cast<std::uint64_t>(members)}}});
  return flow;
}

/// Emits the matching 'E' span event at completion.
void collective_end(MessageFabric& fabric, const char* what,
                    const GridCoord& leader, std::uint64_t flow,
                    const CollectiveResult& result) {
  auto& tr = obs::tracer();
  if (!tr.enabled(obs::Category::kCollective)) return;
  tr.emit({fabric.simulator().now(),
           static_cast<std::int64_t>(fabric.grid().index_of(leader)),
           obs::Category::kCollective, 'E', what, flow,
           {{"value", result.value},
            {"messages", static_cast<std::uint64_t>(result.messages)}}});
}

double identity_of(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kCount:
      return 0.0;
    case ReduceOp::kMax:
      return -std::numeric_limits<double>::infinity();
    case ReduceOp::kMin:
      return std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double fold(ReduceOp op, double acc, double v) {
  switch (op) {
    case ReduceOp::kSum: return acc + v;
    case ReduceOp::kMax: return std::max(acc, v);
    case ReduceOp::kMin: return std::min(acc, v);
    case ReduceOp::kCount: return acc + 1.0;
  }
  return acc;
}

// Shared mutable state for an in-flight collective; kept alive by the
// handler closures via shared_ptr.
struct ReduceState {
  double acc = 0.0;
  std::size_t outstanding = 0;
  std::uint32_t messages = 0;
};

}  // namespace

std::vector<GridCoord> PartialResult::missing() const {
  std::vector<GridCoord> out;
  for (const GridCoord& m : expected) {
    bool found = false;
    for (const GridCoord& c : contributors) found = found || c == m;
    if (!found) out.push_back(m);
  }
  return out;
}

void group_reduce(MessageFabric& fabric, std::span<const GridCoord> members,
                  const GridCoord& leader, std::span<const double> values,
                  ReduceOp op, double message_units,
                  std::function<void(const CollectiveResult&)> done) {
  if (members.size() != values.size()) {
    throw std::invalid_argument("group_reduce: members/values size mismatch");
  }
  auto state = std::make_shared<ReduceState>();
  state->acc = identity_of(op);
  const std::uint64_t flow =
      collective_begin(fabric, "reduce", leader, members.size());

  // The leader's own value folds in locally, for free.
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == leader) {
      state->acc = fold(op, state->acc, values[i]);
    } else {
      ++state->outstanding;
    }
  }

  auto finish = [&fabric, state, leader, flow, done = std::move(done)]() {
    const CollectiveResult result{state->acc, fabric.simulator().now(),
                                  state->messages};
    collective_end(fabric, "reduce", leader, flow, result);
    done(result);
  };

  if (state->outstanding == 0) {
    fabric.simulator().post(finish);
    return;
  }

  fabric.set_receiver(leader, [&fabric, leader, op, state,
                             finish](const VirtualMessage& msg) {
    // One op to fold each arriving value (uniform cost model).
    const sim::Time fold_lat = fabric.compute(leader, 1.0);
    state->acc = fold(op, state->acc, std::any_cast<double>(msg.payload));
    ++state->messages;
    if (--state->outstanding == 0) {
      fabric.simulator().schedule_in(fold_lat, finish);
    }
  });

  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] != leader) {
      fabric.send(members[i], leader, values[i], message_units);
    }
  }
}

void group_broadcast(MessageFabric& fabric, const GridCoord& leader,
                     std::span<const GridCoord> members, double value,
                     double message_units,
                     std::function<void(const CollectiveResult&)> done) {
  auto state = std::make_shared<ReduceState>();
  state->acc = value;
  const std::uint64_t flow =
      collective_begin(fabric, "broadcast", leader, members.size());
  for (const GridCoord& m : members) {
    if (!(m == leader)) ++state->outstanding;
  }
  auto finish = [&fabric, state, leader, flow, done = std::move(done)]() {
    const CollectiveResult result{state->acc, fabric.simulator().now(),
                                  state->messages};
    collective_end(fabric, "broadcast", leader, flow, result);
    done(result);
  };
  if (state->outstanding == 0) {
    fabric.simulator().post(finish);
    return;
  }
  for (const GridCoord& m : members) {
    if (m == leader) continue;
    fabric.set_receiver(m, [state, finish](const VirtualMessage&) {
      ++state->messages;
      if (--state->outstanding == 0) finish();
    });
    fabric.send(leader, m, value, message_units);
  }
}

void group_barrier(MessageFabric& fabric, std::span<const GridCoord> members,
                   const GridCoord& leader, double message_units,
                   std::function<void(const CollectiveResult&)> done) {
  // Phase 1: arrive (convergecast of empty signals).
  auto arrivals = std::make_shared<std::size_t>(0);
  auto releases = std::make_shared<std::size_t>(0);
  auto messages = std::make_shared<std::uint32_t>(0);
  std::size_t expected = 0;
  for (const GridCoord& m : members) {
    if (!(m == leader)) ++expected;
  }
  auto member_list =
      std::make_shared<std::vector<GridCoord>>(members.begin(), members.end());
  const std::uint64_t flow =
      collective_begin(fabric, "barrier", leader, members.size());

  auto finish = [&fabric, messages, leader, flow, done = std::move(done)]() {
    const CollectiveResult result{0.0, fabric.simulator().now(), *messages};
    collective_end(fabric, "barrier", leader, flow, result);
    done(result);
  };

  if (expected == 0) {
    fabric.simulator().post(finish);
    return;
  }

  auto release = [&fabric, leader, member_list, releases, messages, expected,
                  finish, message_units]() {
    // Phase 2: the leader releases every waiting member.
    for (const GridCoord& m : *member_list) {
      if (m == leader) continue;
      fabric.set_receiver(m, [releases, messages, expected,
                              finish](const VirtualMessage&) {
        ++*messages;
        if (++*releases == expected) finish();
      });
      fabric.send(leader, m, 0.0, message_units);
    }
  };

  fabric.set_receiver(leader, [arrivals, messages, expected,
                               release](const VirtualMessage&) {
    ++*messages;
    if (++*arrivals == expected) release();
  });

  for (const GridCoord& m : members) {
    if (!(m == leader)) fabric.send(m, leader, 0.0, message_units);
  }
}

namespace {

struct GatherState {
  std::vector<double> gathered;
  std::size_t outstanding = 0;
  std::uint32_t messages = 0;
};

// Gathers values[i] from members[i] at the leader, then invokes `then` with
// the values in member order.
void gather_at_leader(MessageFabric& fabric, std::span<const GridCoord> members,
                      const GridCoord& leader, std::span<const double> values,
                      double message_units,
                      std::function<void(std::shared_ptr<GatherState>)> then) {
  if (members.size() != values.size()) {
    throw std::invalid_argument("gather: members/values size mismatch");
  }
  auto state = std::make_shared<GatherState>();
  state->gathered.assign(values.begin(), values.end());

  // Tag each remote value with its member index so arrival order is
  // irrelevant.
  struct Tagged {
    std::size_t index;
    double value;
  };

  for (std::size_t i = 0; i < members.size(); ++i) {
    if (!(members[i] == leader)) ++state->outstanding;
  }

  if (state->outstanding == 0) {
    fabric.simulator().post([state, then = std::move(then)]() { then(state); });
    return;
  }

  fabric.set_receiver(leader, [state, then](const VirtualMessage& msg) {
    const auto tagged = std::any_cast<Tagged>(msg.payload);
    state->gathered[tagged.index] = tagged.value;
    ++state->messages;
    if (--state->outstanding == 0) then(state);
  });

  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == leader) continue;
    fabric.send(members[i], leader, Tagged{i, values[i]}, message_units);
  }
}

}  // namespace

void group_sort(MessageFabric& fabric, std::span<const GridCoord> members,
                const GridCoord& leader, std::span<const double> values,
                double message_units,
                std::function<void(std::vector<double>, CollectiveResult)> done) {
  const std::uint64_t flow =
      collective_begin(fabric, "sort", leader, members.size());
  gather_at_leader(
      fabric, members, leader, values, message_units,
      [&fabric, leader, flow,
       done = std::move(done)](std::shared_ptr<GatherState> st) {
        const auto n = static_cast<double>(st->gathered.size());
        const double ops = n <= 1 ? 1.0 : n * std::log2(n);
        const sim::Time lat = fabric.compute(leader, ops);
        fabric.simulator().schedule_in(lat, [&fabric, leader, flow, st,
                                             done]() {
          std::vector<double> sorted = st->gathered;
          std::ranges::sort(sorted);
          const CollectiveResult result{
              static_cast<double>(st->gathered.size()),
              fabric.simulator().now(), st->messages};
          collective_end(fabric, "sort", leader, flow, result);
          done(std::move(sorted), result);
        });
      });
}

void group_rank(MessageFabric& fabric, std::span<const GridCoord> members,
                const GridCoord& leader, std::span<const double> values,
                double message_units,
                std::function<void(std::vector<std::uint32_t>, CollectiveResult)>
                    done) {
  // Copy members: the span may not outlive the async completion.
  auto member_list =
      std::make_shared<std::vector<GridCoord>>(members.begin(), members.end());
  const std::uint64_t flow =
      collective_begin(fabric, "rank", leader, members.size());

  gather_at_leader(
      fabric, members, leader, values, message_units,
      [&fabric, leader, member_list, flow,
       done = std::move(done)](std::shared_ptr<GatherState> st) {
        const auto n = static_cast<double>(st->gathered.size());
        const double ops = n <= 1 ? 1.0 : n * std::log2(n);
        const sim::Time lat = fabric.compute(leader, ops);
        fabric.simulator().schedule_in(lat, [&fabric, leader, member_list,
                                             flow, st, done]() {
          // Stable rank by (value, member order).
          std::vector<std::size_t> order(st->gathered.size());
          std::iota(order.begin(), order.end(), 0);
          std::ranges::stable_sort(order, [&](std::size_t a, std::size_t b) {
            return st->gathered[a] < st->gathered[b];
          });
          auto ranks =
              std::make_shared<std::vector<std::uint32_t>>(order.size(), 0);
          for (std::size_t pos = 0; pos < order.size(); ++pos) {
            (*ranks)[order[pos]] = static_cast<std::uint32_t>(pos);
          }

          auto outstanding = std::make_shared<std::size_t>(0);
          for (const GridCoord& m : *member_list) {
            if (!(m == leader)) ++*outstanding;
          }
          auto finish = [&fabric, leader, flow, ranks, st, done]() {
            const CollectiveResult result{static_cast<double>(ranks->size()),
                                          fabric.simulator().now(),
                                          st->messages};
            collective_end(fabric, "rank", leader, flow, result);
            done(*ranks, result);
          };
          if (*outstanding == 0) {
            fabric.simulator().post(finish);
            return;
          }
          for (std::size_t i = 0; i < member_list->size(); ++i) {
            const GridCoord& m = (*member_list)[i];
            if (m == leader) continue;
            fabric.set_receiver(m, [st, outstanding,
                                  finish](const VirtualMessage&) {
              ++st->messages;
              if (--*outstanding == 0) finish();
            });
            fabric.send(leader, m, static_cast<double>((*ranks)[i]), 1.0);
          }
        });
      });
}

// ---- Deadline-bounded variants ------------------------------------------

namespace {

/// Shared state of a deadline-bounded gather. Contribution i corresponds to
/// expected[i]; the leader's own value counts as arrived immediately.
struct DeadlineState {
  std::vector<GridCoord> expected;
  std::vector<double> values;
  std::vector<bool> arrived;
  std::size_t outstanding = 0;
  std::uint32_t messages = 0;
  std::uint32_t stale_rejected = 0;
  bool closed = false;
  sim::EventId timer = 0;
  std::uint64_t flow = 0;
};

/// Payload of a deadline-variant contribution: tagging with the member
/// index both makes arrival order irrelevant and lets the leader attribute
/// each arrival to a contributor. `epoch` is the sender's binding epoch at
/// send time; the leader rejects contributions older than the fabric's
/// current epoch for that member (a deposed leader's in-flight value).
struct DeadlineTagged {
  std::size_t index;
  double value;
  std::uint64_t epoch = 0;
};

PartialResult make_partial(MessageFabric& fabric,
                           const std::shared_ptr<DeadlineState>& st,
                           bool deadline_hit, double value) {
  PartialResult r;
  r.value = value;
  r.expected = st->expected;
  for (std::size_t i = 0; i < st->expected.size(); ++i) {
    if (st->arrived[i]) r.contributors.push_back(st->expected[i]);
  }
  r.finished = fabric.simulator().now();
  r.messages = st->messages;
  r.deadline_hit = deadline_hit;
  r.stale_rejected = st->stale_rejected;
  return r;
}

/// Emits the 'E' span of a deadline collective, annotated with how partial
/// the close was.
void collective_end_partial(MessageFabric& fabric, const char* what,
                            const GridCoord& leader, std::uint64_t flow,
                            const PartialResult& result) {
  auto& tr = obs::tracer();
  if (!tr.enabled(obs::Category::kCollective)) return;
  tr.emit({fabric.simulator().now(),
           static_cast<std::int64_t>(fabric.grid().index_of(leader)),
           obs::Category::kCollective, 'E', what, flow,
           {{"value", result.value},
            {"messages", static_cast<std::uint64_t>(result.messages)},
            {"contributors",
             static_cast<std::uint64_t>(result.contributors.size())},
            {"expected", static_cast<std::uint64_t>(result.expected.size())},
            {"partial",
             static_cast<std::uint64_t>(result.complete() ? 0 : 1)}}});
}

/// The engine under all three deadline collectives: tagged gather at the
/// leader, closed by whichever fires first — the last contribution or the
/// deadline timer. `then(state, deadline_hit)` runs exactly once; late
/// contributions afterwards only produce a kCollective "late" trace event.
void deadline_gather(
    MessageFabric& fabric, std::span<const GridCoord> members,
    const GridCoord& leader, std::span<const double> values,
    double message_units, sim::Time deadline, const char* what,
    std::function<void(std::shared_ptr<DeadlineState>, bool)> then) {
  if (members.size() != values.size()) {
    throw std::invalid_argument(
        "deadline collective: members/values size mismatch");
  }
  if (deadline < 0) {
    throw std::invalid_argument("deadline collective: negative deadline");
  }
  auto st = std::make_shared<DeadlineState>();
  st->expected.assign(members.begin(), members.end());
  st->values.assign(values.begin(), values.end());
  st->arrived.assign(members.size(), false);
  st->flow = collective_begin(fabric, what, leader, members.size());

  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == leader) {
      st->arrived[i] = true;  // the leader's own value folds in locally
    } else {
      ++st->outstanding;
    }
  }

  auto close = std::make_shared<std::function<void(bool)>>();
  *close = [&fabric, st, leader, then = std::move(then)](bool hit) {
    if (st->closed) return;
    st->closed = true;
    fabric.simulator().cancel(st->timer);
    // Tombstone receiver: contributions that beat the retry budget but not
    // the deadline are ignored, visibly.
    fabric.set_receiver(leader, [&fabric, st, leader](const VirtualMessage&) {
      auto& tr = obs::tracer();
      if (tr.enabled(obs::Category::kCollective)) {
        tr.emit({fabric.simulator().now(),
                 static_cast<std::int64_t>(fabric.grid().index_of(leader)),
                 obs::Category::kCollective, 'i', "late", st->flow, {}});
      }
    });
    then(st, hit);
  };

  if (st->outstanding > 0) {
    fabric.set_receiver(leader, [&fabric, st, leader,
                                 close](const VirtualMessage& msg) {
      if (st->closed) return;
      const auto tagged = std::any_cast<DeadlineTagged>(msg.payload);
      if (st->arrived[tagged.index]) return;  // duplicate contribution
      if (tagged.epoch < fabric.binding_epoch(st->expected[tagged.index])) {
        // A contribution stamped before this member's leadership moved:
        // the sender was deposed mid-flight. Folding it would double-count
        // the virtual node once the current binding contributes.
        ++st->stale_rejected;
        auto& tr = obs::tracer();
        if (tr.enabled(obs::Category::kCollective)) {
          tr.emit({fabric.simulator().now(),
                   static_cast<std::int64_t>(fabric.grid().index_of(leader)),
                   obs::Category::kCollective, 'i', "stale", st->flow,
                   {{"member", static_cast<std::uint64_t>(fabric.grid().index_of(
                                   st->expected[tagged.index]))},
                    {"epoch", tagged.epoch},
                    {"current",
                     fabric.binding_epoch(st->expected[tagged.index])}}});
        }
        return;
      }
      const sim::Time fold_lat = fabric.compute(leader, 1.0);
      st->arrived[tagged.index] = true;
      st->values[tagged.index] = tagged.value;
      ++st->messages;
      if (--st->outstanding == 0) {
        fabric.simulator().schedule_in(fold_lat,
                                       [close]() { (*close)(false); });
      }
    });
  }

  st->timer = fabric.simulator().schedule_in(deadline,
                                             [close]() { (*close)(true); });

  if (st->outstanding == 0) {
    fabric.simulator().post([close]() { (*close)(false); });
    return;
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == leader) continue;
    fabric.send(members[i], leader,
                DeadlineTagged{i, values[i], fabric.binding_epoch(members[i])},
                message_units);
  }
}

}  // namespace

void group_reduce_deadline(MessageFabric& fabric,
                           std::span<const GridCoord> members,
                           const GridCoord& leader,
                           std::span<const double> values, ReduceOp op,
                           double message_units, sim::Time deadline,
                           std::function<void(const PartialResult&)> done) {
  deadline_gather(
      fabric, members, leader, values, message_units, deadline, "reduce",
      [&fabric, leader, op,
       done = std::move(done)](std::shared_ptr<DeadlineState> st, bool hit) {
        double acc = identity_of(op);
        for (std::size_t i = 0; i < st->expected.size(); ++i) {
          if (st->arrived[i]) acc = fold(op, acc, st->values[i]);
        }
        const PartialResult r = make_partial(fabric, st, hit, acc);
        collective_end_partial(fabric, "reduce", leader, st->flow, r);
        done(r);
      });
}

void group_sort_deadline(
    MessageFabric& fabric, std::span<const GridCoord> members,
    const GridCoord& leader, std::span<const double> values,
    double message_units, sim::Time deadline,
    std::function<void(std::vector<double>, PartialResult)> done) {
  deadline_gather(
      fabric, members, leader, values, message_units, deadline, "sort",
      [&fabric, leader,
       done = std::move(done)](std::shared_ptr<DeadlineState> st, bool hit) {
        std::vector<double> present;
        for (std::size_t i = 0; i < st->expected.size(); ++i) {
          if (st->arrived[i]) present.push_back(st->values[i]);
        }
        const auto n = static_cast<double>(present.size());
        const double ops = n <= 1 ? 1.0 : n * std::log2(n);
        const sim::Time lat = fabric.compute(leader, ops);
        auto sorted = std::make_shared<std::vector<double>>(std::move(present));
        fabric.simulator().schedule_in(lat, [&fabric, leader, st, hit, sorted,
                                             done]() {
          std::ranges::sort(*sorted);
          const PartialResult r = make_partial(
              fabric, st, hit, static_cast<double>(sorted->size()));
          collective_end_partial(fabric, "sort", leader, st->flow, r);
          done(std::move(*sorted), r);
        });
      });
}

void group_rank_deadline(
    MessageFabric& fabric, std::span<const GridCoord> members,
    const GridCoord& leader, std::span<const double> values,
    double message_units, sim::Time deadline,
    std::function<void(std::vector<std::uint32_t>, PartialResult)> done) {
  deadline_gather(
      fabric, members, leader, values, message_units, deadline, "rank",
      [&fabric, leader,
       done = std::move(done)](std::shared_ptr<DeadlineState> st, bool hit) {
        // Contributor list in member order, with their values.
        auto present = std::make_shared<std::vector<std::size_t>>();
        for (std::size_t i = 0; i < st->expected.size(); ++i) {
          if (st->arrived[i]) present->push_back(i);
        }
        const auto n = static_cast<double>(present->size());
        const double ops = n <= 1 ? 1.0 : n * std::log2(n);
        const sim::Time lat = fabric.compute(leader, ops);
        fabric.simulator().schedule_in(lat, [&fabric, leader, st, hit,
                                             present, done]() {
          // Stable rank among contributors by (value, member order).
          std::vector<std::size_t> order(present->size());
          std::iota(order.begin(), order.end(), 0);
          std::ranges::stable_sort(order, [&](std::size_t a, std::size_t b) {
            return st->values[(*present)[a]] < st->values[(*present)[b]];
          });
          std::vector<std::uint32_t> ranks(present->size(), 0);
          for (std::size_t pos = 0; pos < order.size(); ++pos) {
            ranks[order[pos]] = static_cast<std::uint32_t>(pos);
          }
          const PartialResult r = make_partial(
              fabric, st, hit, static_cast<double>(present->size()));
          collective_end_partial(fabric, "rank", leader, st->flow, r);
          // Fire-and-forget scatter: a degraded round must not block on
          // members that may already be gone.
          for (std::size_t i = 0; i < present->size(); ++i) {
            const GridCoord& m = st->expected[(*present)[i]];
            if (m == leader) continue;
            fabric.send(leader, m, static_cast<double>(ranks[i]), 1.0);
          }
          done(std::move(ranks), r);
        });
      });
}

}  // namespace wsn::core
