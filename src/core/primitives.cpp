#include "core/primitives.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "obs/trace.h"

namespace wsn::core {
namespace {

/// Emits the 'B' span event of a collective and returns its flow id, or 0
/// when the collective category is disabled.
std::uint64_t collective_begin(MessageFabric& fabric, const char* what,
                               const GridCoord& leader, std::size_t members) {
  auto& tr = obs::tracer();
  if (!tr.enabled(obs::Category::kCollective)) return 0;
  const std::uint64_t flow = tr.next_flow();
  tr.emit({fabric.simulator().now(),
           static_cast<std::int64_t>(fabric.grid().index_of(leader)),
           obs::Category::kCollective, 'B', what, flow,
           {{"members", static_cast<std::uint64_t>(members)}}});
  return flow;
}

/// Emits the matching 'E' span event at completion.
void collective_end(MessageFabric& fabric, const char* what,
                    const GridCoord& leader, std::uint64_t flow,
                    const CollectiveResult& result) {
  auto& tr = obs::tracer();
  if (!tr.enabled(obs::Category::kCollective)) return;
  tr.emit({fabric.simulator().now(),
           static_cast<std::int64_t>(fabric.grid().index_of(leader)),
           obs::Category::kCollective, 'E', what, flow,
           {{"value", result.value},
            {"messages", static_cast<std::uint64_t>(result.messages)}}});
}

double identity_of(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kCount:
      return 0.0;
    case ReduceOp::kMax:
      return -std::numeric_limits<double>::infinity();
    case ReduceOp::kMin:
      return std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double fold(ReduceOp op, double acc, double v) {
  switch (op) {
    case ReduceOp::kSum: return acc + v;
    case ReduceOp::kMax: return std::max(acc, v);
    case ReduceOp::kMin: return std::min(acc, v);
    case ReduceOp::kCount: return acc + 1.0;
  }
  return acc;
}

// Shared mutable state for an in-flight collective; kept alive by the
// handler closures via shared_ptr.
struct ReduceState {
  double acc = 0.0;
  std::size_t outstanding = 0;
  std::uint32_t messages = 0;
};

}  // namespace

void group_reduce(MessageFabric& fabric, std::span<const GridCoord> members,
                  const GridCoord& leader, std::span<const double> values,
                  ReduceOp op, double message_units,
                  std::function<void(const CollectiveResult&)> done) {
  if (members.size() != values.size()) {
    throw std::invalid_argument("group_reduce: members/values size mismatch");
  }
  auto state = std::make_shared<ReduceState>();
  state->acc = identity_of(op);
  const std::uint64_t flow =
      collective_begin(fabric, "reduce", leader, members.size());

  // The leader's own value folds in locally, for free.
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == leader) {
      state->acc = fold(op, state->acc, values[i]);
    } else {
      ++state->outstanding;
    }
  }

  auto finish = [&fabric, state, leader, flow, done = std::move(done)]() {
    const CollectiveResult result{state->acc, fabric.simulator().now(),
                                  state->messages};
    collective_end(fabric, "reduce", leader, flow, result);
    done(result);
  };

  if (state->outstanding == 0) {
    fabric.simulator().post(finish);
    return;
  }

  fabric.set_receiver(leader, [&fabric, leader, op, state,
                             finish](const VirtualMessage& msg) {
    // One op to fold each arriving value (uniform cost model).
    const sim::Time fold_lat = fabric.compute(leader, 1.0);
    state->acc = fold(op, state->acc, std::any_cast<double>(msg.payload));
    ++state->messages;
    if (--state->outstanding == 0) {
      fabric.simulator().schedule_in(fold_lat, finish);
    }
  });

  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] != leader) {
      fabric.send(members[i], leader, values[i], message_units);
    }
  }
}

void group_broadcast(MessageFabric& fabric, const GridCoord& leader,
                     std::span<const GridCoord> members, double value,
                     double message_units,
                     std::function<void(const CollectiveResult&)> done) {
  auto state = std::make_shared<ReduceState>();
  state->acc = value;
  const std::uint64_t flow =
      collective_begin(fabric, "broadcast", leader, members.size());
  for (const GridCoord& m : members) {
    if (!(m == leader)) ++state->outstanding;
  }
  auto finish = [&fabric, state, leader, flow, done = std::move(done)]() {
    const CollectiveResult result{state->acc, fabric.simulator().now(),
                                  state->messages};
    collective_end(fabric, "broadcast", leader, flow, result);
    done(result);
  };
  if (state->outstanding == 0) {
    fabric.simulator().post(finish);
    return;
  }
  for (const GridCoord& m : members) {
    if (m == leader) continue;
    fabric.set_receiver(m, [state, finish](const VirtualMessage&) {
      ++state->messages;
      if (--state->outstanding == 0) finish();
    });
    fabric.send(leader, m, value, message_units);
  }
}

void group_barrier(MessageFabric& fabric, std::span<const GridCoord> members,
                   const GridCoord& leader, double message_units,
                   std::function<void(const CollectiveResult&)> done) {
  // Phase 1: arrive (convergecast of empty signals).
  auto arrivals = std::make_shared<std::size_t>(0);
  auto releases = std::make_shared<std::size_t>(0);
  auto messages = std::make_shared<std::uint32_t>(0);
  std::size_t expected = 0;
  for (const GridCoord& m : members) {
    if (!(m == leader)) ++expected;
  }
  auto member_list =
      std::make_shared<std::vector<GridCoord>>(members.begin(), members.end());
  const std::uint64_t flow =
      collective_begin(fabric, "barrier", leader, members.size());

  auto finish = [&fabric, messages, leader, flow, done = std::move(done)]() {
    const CollectiveResult result{0.0, fabric.simulator().now(), *messages};
    collective_end(fabric, "barrier", leader, flow, result);
    done(result);
  };

  if (expected == 0) {
    fabric.simulator().post(finish);
    return;
  }

  auto release = [&fabric, leader, member_list, releases, messages, expected,
                  finish, message_units]() {
    // Phase 2: the leader releases every waiting member.
    for (const GridCoord& m : *member_list) {
      if (m == leader) continue;
      fabric.set_receiver(m, [releases, messages, expected,
                              finish](const VirtualMessage&) {
        ++*messages;
        if (++*releases == expected) finish();
      });
      fabric.send(leader, m, 0.0, message_units);
    }
  };

  fabric.set_receiver(leader, [arrivals, messages, expected,
                               release](const VirtualMessage&) {
    ++*messages;
    if (++*arrivals == expected) release();
  });

  for (const GridCoord& m : members) {
    if (!(m == leader)) fabric.send(m, leader, 0.0, message_units);
  }
}

namespace {

struct GatherState {
  std::vector<double> gathered;
  std::size_t outstanding = 0;
  std::uint32_t messages = 0;
};

// Gathers values[i] from members[i] at the leader, then invokes `then` with
// the values in member order.
void gather_at_leader(MessageFabric& fabric, std::span<const GridCoord> members,
                      const GridCoord& leader, std::span<const double> values,
                      double message_units,
                      std::function<void(std::shared_ptr<GatherState>)> then) {
  if (members.size() != values.size()) {
    throw std::invalid_argument("gather: members/values size mismatch");
  }
  auto state = std::make_shared<GatherState>();
  state->gathered.assign(values.begin(), values.end());

  // Tag each remote value with its member index so arrival order is
  // irrelevant.
  struct Tagged {
    std::size_t index;
    double value;
  };

  for (std::size_t i = 0; i < members.size(); ++i) {
    if (!(members[i] == leader)) ++state->outstanding;
  }

  if (state->outstanding == 0) {
    fabric.simulator().post([state, then = std::move(then)]() { then(state); });
    return;
  }

  fabric.set_receiver(leader, [state, then](const VirtualMessage& msg) {
    const auto tagged = std::any_cast<Tagged>(msg.payload);
    state->gathered[tagged.index] = tagged.value;
    ++state->messages;
    if (--state->outstanding == 0) then(state);
  });

  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == leader) continue;
    fabric.send(members[i], leader, Tagged{i, values[i]}, message_units);
  }
}

}  // namespace

void group_sort(MessageFabric& fabric, std::span<const GridCoord> members,
                const GridCoord& leader, std::span<const double> values,
                double message_units,
                std::function<void(std::vector<double>, CollectiveResult)> done) {
  const std::uint64_t flow =
      collective_begin(fabric, "sort", leader, members.size());
  gather_at_leader(
      fabric, members, leader, values, message_units,
      [&fabric, leader, flow,
       done = std::move(done)](std::shared_ptr<GatherState> st) {
        const auto n = static_cast<double>(st->gathered.size());
        const double ops = n <= 1 ? 1.0 : n * std::log2(n);
        const sim::Time lat = fabric.compute(leader, ops);
        fabric.simulator().schedule_in(lat, [&fabric, leader, flow, st,
                                             done]() {
          std::vector<double> sorted = st->gathered;
          std::ranges::sort(sorted);
          const CollectiveResult result{
              static_cast<double>(st->gathered.size()),
              fabric.simulator().now(), st->messages};
          collective_end(fabric, "sort", leader, flow, result);
          done(std::move(sorted), result);
        });
      });
}

void group_rank(MessageFabric& fabric, std::span<const GridCoord> members,
                const GridCoord& leader, std::span<const double> values,
                double message_units,
                std::function<void(std::vector<std::uint32_t>, CollectiveResult)>
                    done) {
  // Copy members: the span may not outlive the async completion.
  auto member_list =
      std::make_shared<std::vector<GridCoord>>(members.begin(), members.end());
  const std::uint64_t flow =
      collective_begin(fabric, "rank", leader, members.size());

  gather_at_leader(
      fabric, members, leader, values, message_units,
      [&fabric, leader, member_list, flow,
       done = std::move(done)](std::shared_ptr<GatherState> st) {
        const auto n = static_cast<double>(st->gathered.size());
        const double ops = n <= 1 ? 1.0 : n * std::log2(n);
        const sim::Time lat = fabric.compute(leader, ops);
        fabric.simulator().schedule_in(lat, [&fabric, leader, member_list,
                                             flow, st, done]() {
          // Stable rank by (value, member order).
          std::vector<std::size_t> order(st->gathered.size());
          std::iota(order.begin(), order.end(), 0);
          std::ranges::stable_sort(order, [&](std::size_t a, std::size_t b) {
            return st->gathered[a] < st->gathered[b];
          });
          auto ranks =
              std::make_shared<std::vector<std::uint32_t>>(order.size(), 0);
          for (std::size_t pos = 0; pos < order.size(); ++pos) {
            (*ranks)[order[pos]] = static_cast<std::uint32_t>(pos);
          }

          auto outstanding = std::make_shared<std::size_t>(0);
          for (const GridCoord& m : *member_list) {
            if (!(m == leader)) ++*outstanding;
          }
          auto finish = [&fabric, leader, flow, ranks, st, done]() {
            const CollectiveResult result{static_cast<double>(ranks->size()),
                                          fabric.simulator().now(),
                                          st->messages};
            collective_end(fabric, "rank", leader, flow, result);
            done(*ranks, result);
          };
          if (*outstanding == 0) {
            fabric.simulator().post(finish);
            return;
          }
          for (std::size_t i = 0; i < member_list->size(); ++i) {
            const GridCoord& m = (*member_list)[i];
            if (m == leader) continue;
            fabric.set_receiver(m, [st, outstanding,
                                  finish](const VirtualMessage&) {
              ++st->messages;
              if (--*outstanding == 0) finish();
            });
            fabric.send(leader, m, static_cast<double>((*ranks)[i]), 1.0);
          }
        });
      });
}

}  // namespace wsn::core
