// MessageFabric: the execution interface of the virtual architecture.
//
// A program synthesized for the virtual architecture only ever talks to this
// interface: grid-coordinate-addressed send/receive, group leader lookup,
// and metered computation. Two implementations exist:
//
//   * core::VirtualNetwork  - the designer's model: costs follow the uniform
//     cost model directly on the virtual grid (used for analysis).
//   * emulation::OverlayNetwork - the runtime system of Section 5: the same
//     calls are realized by multi-hop routing over an arbitrary physical
//     deployment through topology emulation and leader binding.
//
// Keeping programs fabric-agnostic is the library's rendering of the
// paper's methodology: analyze on the virtual architecture, execute on the
// real network, and compare.
#pragma once

#include <any>
#include <cstdint>
#include <functional>

#include "core/cost_model.h"
#include "core/grid_topology.h"
#include "core/groups.h"
#include "sim/simulator.h"

namespace wsn::core {

/// A message delivered to a virtual node.
struct VirtualMessage {
  GridCoord sender;
  double size_units = 1.0;
  std::any payload;
};

/// Abstract message-passing surface shared by the virtual and emulated
/// physical layers.
class MessageFabric {
 public:
  using Handler = std::function<void(const VirtualMessage&)>;

  virtual ~MessageFabric() = default;

  virtual sim::Simulator& simulator() = 0;
  virtual const GridTopology& grid() const = 0;
  virtual const GroupHierarchy& groups() const = 0;

  /// Installs the receive handler of virtual node `c`.
  virtual void set_receiver(const GridCoord& c, Handler h) = 0;

  /// Sends `payload` from virtual node `from` to virtual node `to`.
  virtual void send(const GridCoord& from, const GridCoord& to,
                    std::any payload, double size_units) = 0;

  /// Charges `ops` units of computation to virtual node `c` and returns the
  /// latency they take; callers schedule follow-up work after that latency.
  virtual sim::Time compute(const GridCoord& c, double ops) = 0;

  /// Generation number of the binding executing virtual node `c`. Fabrics
  /// whose virtual nodes can migrate between physical executors (leader
  /// re-binding after a crash) bump this on every rebind; collectives stamp
  /// contributions with it so a deposed leader's in-flight traffic is
  /// rejected instead of double-counted. The virtual layer never rebinds,
  /// so the default is a constant 0.
  virtual std::uint64_t binding_epoch(const GridCoord& c) const {
    (void)c;
    return 0;
  }

  /// Group-communication primitive: send to the level-`level` leader of the
  /// group containing `from`, addressed as a logical entity (Section 3.2).
  void send_to_leader(const GridCoord& from, std::uint32_t level,
                      std::any payload, double size_units) {
    send(from, groups().leader_of(from, level), std::move(payload),
         size_units);
  }
};

}  // namespace wsn::core
