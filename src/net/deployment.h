// Node deployment models: where the physical sensor nodes land on the
// terrain. The paper assumes "large-scale, homogeneous, dense, arbitrarily
// deployed" networks; these generators produce the arbitrary part while the
// cell-occupancy helper enforces the paper's feasibility precondition that
// every virtual-grid cell contains at least one node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/geometry.h"
#include "sim/rng.h"

namespace wsn::net {

/// Identifier of a physical sensor node; index into position/energy arrays.
using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Deployment pattern families used throughout the experiments.
enum class DeploymentKind {
  kUniformRandom,   // n iid-uniform positions over the terrain
  kPerturbedGrid,   // regular grid jittered by Gaussian noise
  kClustered,       // Gaussian clusters around random centers
  kOnePerCellPlus,  // one guaranteed node per cell + uniform extras
};

struct DeploymentConfig {
  DeploymentKind kind = DeploymentKind::kUniformRandom;
  std::size_t node_count = 0;
  Rect terrain;
  /// For kPerturbedGrid / kOnePerCellPlus: cells per terrain side.
  std::size_t cells_per_side = 1;
  /// For kPerturbedGrid: jitter stddev as a fraction of cell side.
  double jitter_fraction = 0.15;
  /// For kClustered: number of cluster centers.
  std::size_t cluster_count = 8;
  /// For kClustered: cluster stddev as a fraction of terrain side.
  double cluster_spread = 0.08;
};

/// Generates node positions according to `config`. Every position lies
/// strictly inside the terrain rectangle.
std::vector<Point> deploy(const DeploymentConfig& config, sim::Rng& rng);

/// Returns the index of the grid cell (row-major) containing `p`, for an
/// m-by-m partition of `terrain` into equal square cells. The paper's
/// cell(i,j) with row i from the top (north) edge, matching the oriented
/// grid used by the virtual architecture.
std::size_t cell_of(const Point& p, const Rect& terrain,
                    std::size_t cells_per_side);

/// Number of nodes per cell for an m-by-m partition; used to check the
/// "at least one sensor node in each geographic cell" precondition.
std::vector<std::size_t> cell_occupancy(const std::vector<Point>& positions,
                                        const Rect& terrain,
                                        std::size_t cells_per_side);

/// True iff every cell of the m-by-m partition holds at least one node.
bool covers_all_cells(const std::vector<Point>& positions, const Rect& terrain,
                      std::size_t cells_per_side);

}  // namespace wsn::net
