#include "net/network_graph.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <unordered_set>

namespace wsn::net {
namespace {

// Uniform spatial hash over buckets of side `range` so neighbor search only
// scans the 3x3 bucket neighborhood.
struct BucketGrid {
  BucketGrid(const std::vector<Point>& pts, double cell) : cell_side(cell) {
    if (pts.empty()) return;
    min_x = min_y = std::numeric_limits<double>::infinity();
    for (const Point& p : pts) {
      min_x = std::min(min_x, p.x);
      min_y = std::min(min_y, p.y);
    }
    double max_x = -std::numeric_limits<double>::infinity();
    double max_y = max_x;
    for (const Point& p : pts) {
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
    cols = static_cast<std::size_t>((max_x - min_x) / cell_side) + 1;
    rows = static_cast<std::size_t>((max_y - min_y) / cell_side) + 1;
    buckets.resize(cols * rows);
    for (NodeId i = 0; i < pts.size(); ++i) {
      buckets[index_of(pts[i])].push_back(i);
    }
  }

  std::size_t index_of(const Point& p) const {
    const auto c = static_cast<std::size_t>((p.x - min_x) / cell_side);
    const auto r = static_cast<std::size_t>((p.y - min_y) / cell_side);
    return std::min(r, rows - 1) * cols + std::min(c, cols - 1);
  }

  double cell_side;
  double min_x = 0;
  double min_y = 0;
  std::size_t cols = 0;
  std::size_t rows = 0;
  std::vector<std::vector<NodeId>> buckets;
};

}  // namespace

NetworkGraph::NetworkGraph(std::vector<Point> positions, double range)
    : positions_(std::move(positions)), range_(range) {
  if (range <= 0) {
    throw std::invalid_argument("NetworkGraph: range must be positive");
  }
  const std::size_t n = positions_.size();
  offsets_.assign(n + 1, 0);
  if (n == 0) return;

  const BucketGrid grid(positions_, range_);
  const double range_sq = range_ * range_;

  std::vector<std::vector<NodeId>> adj(n);
  for (std::size_t b = 0; b < grid.buckets.size(); ++b) {
    const std::size_t br = b / grid.cols;
    const std::size_t bc = b % grid.cols;
    for (NodeId i : grid.buckets[b]) {
      for (std::size_t dr = 0; dr < 3; ++dr) {
        for (std::size_t dc = 0; dc < 3; ++dc) {
          const std::ptrdiff_t nr = static_cast<std::ptrdiff_t>(br + dr) - 1;
          const std::ptrdiff_t nc = static_cast<std::ptrdiff_t>(bc + dc) - 1;
          if (nr < 0 || nc < 0 ||
              nr >= static_cast<std::ptrdiff_t>(grid.rows) ||
              nc >= static_cast<std::ptrdiff_t>(grid.cols)) {
            continue;
          }
          for (NodeId j : grid.buckets[static_cast<std::size_t>(nr) * grid.cols +
                                       static_cast<std::size_t>(nc)]) {
            if (j <= i) continue;
            if (distance_sq(positions_[i], positions_[j]) <= range_sq) {
              adj[i].push_back(j);
              adj[j].push_back(i);
            }
          }
        }
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    std::ranges::sort(adj[i]);
    offsets_[i + 1] = offsets_[i] + adj[i].size();
  }
  adjacency_.reserve(offsets_[n]);
  for (std::size_t i = 0; i < n; ++i) {
    adjacency_.insert(adjacency_.end(), adj[i].begin(), adj[i].end());
  }
}

bool NetworkGraph::has_edge(NodeId a, NodeId b) const {
  const auto nbrs = neighbors(a);
  return std::ranges::binary_search(nbrs, b);
}

bool NetworkGraph::connected() const {
  const std::size_t n = node_count();
  if (n == 0) return true;
  const auto dist = hop_distances(0);
  return std::ranges::none_of(
      dist, [](std::uint32_t d) { return d == kUnreachable; });
}

bool NetworkGraph::induced_connected(std::span<const NodeId> members) const {
  if (members.empty()) return true;
  const auto dist = hop_distances_within(members.front(), members);
  return std::ranges::all_of(members, [&](NodeId m) {
    return dist[m] != kUnreachable;
  });
}

std::vector<std::uint32_t> NetworkGraph::hop_distances(NodeId source) const {
  std::vector<std::uint32_t> dist(node_count(), kUnreachable);
  std::deque<NodeId> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> NetworkGraph::hop_distances_within(
    NodeId source, std::span<const NodeId> members) const {
  std::vector<bool> in_set(node_count(), false);
  for (NodeId m : members) in_set[m] = true;
  std::vector<std::uint32_t> dist(node_count(), kUnreachable);
  if (!in_set[source]) return dist;
  std::deque<NodeId> frontier{source};
  dist[source] = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : neighbors(u)) {
      if (in_set[v] && dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> NetworkGraph::shortest_path(NodeId from, NodeId to) const {
  std::vector<NodeId> parent(node_count(), kNoNode);
  std::vector<bool> seen(node_count(), false);
  std::deque<NodeId> frontier{from};
  seen[from] = true;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (u == to) break;
    for (NodeId v : neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        parent[v] = u;
        frontier.push_back(v);
      }
    }
  }
  if (!seen[to]) return {};
  std::vector<NodeId> path;
  for (NodeId cur = to; cur != kNoNode; cur = parent[cur]) {
    path.push_back(cur);
    if (cur == from) break;
  }
  std::ranges::reverse(path);
  return path;
}

}  // namespace wsn::net
