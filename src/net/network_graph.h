// Connectivity graph G_R = (V_R, E_R) of the physical deployment:
// an edge (i,j) exists iff Euclidean distance(s_i, s_j) <= radio range
// (Section 5.1 of the paper).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/deployment.h"
#include "net/geometry.h"

namespace wsn::net {

/// Immutable adjacency structure over deployed nodes.
class NetworkGraph {
 public:
  /// Builds the unit-disk graph for `positions` with transmission range
  /// `range`. O(n^2) pair scan with a uniform grid bucket accelerator.
  NetworkGraph(std::vector<Point> positions, double range);

  std::size_t node_count() const { return positions_.size(); }
  double range() const { return range_; }
  const Point& position(NodeId id) const { return positions_[id]; }
  const std::vector<Point>& positions() const { return positions_; }

  /// One-hop neighbors of `id` (the paper's NBR_i), sorted by id.
  std::span<const NodeId> neighbors(NodeId id) const {
    return {adjacency_.data() + offsets_[id],
            offsets_[id + 1] - offsets_[id]};
  }

  std::size_t degree(NodeId id) const {
    return offsets_[id + 1] - offsets_[id];
  }

  bool has_edge(NodeId a, NodeId b) const;

  std::size_t edge_count() const { return adjacency_.size() / 2; }

  /// True iff the whole graph is connected (paper assumes G_R connected).
  bool connected() const;

  /// True iff the subgraph induced by `members` is connected. Used for the
  /// paper's assumption that each cell's node set induces a connected
  /// subgraph.
  bool induced_connected(std::span<const NodeId> members) const;

  /// BFS hop distances from `source` to every node; unreachable nodes get
  /// kUnreachable.
  std::vector<std::uint32_t> hop_distances(NodeId source) const;

  /// BFS hop distances from `source` restricted to the induced subgraph of
  /// `members` (node ids outside `members` are treated as absent).
  std::vector<std::uint32_t> hop_distances_within(
      NodeId source, std::span<const NodeId> members) const;

  /// Shortest hop path from `from` to `to` (inclusive of endpoints); empty
  /// if unreachable.
  std::vector<NodeId> shortest_path(NodeId from, NodeId to) const;

  static constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

 private:
  std::vector<Point> positions_;
  double range_;
  // CSR adjacency.
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> adjacency_;
};

}  // namespace wsn::net
