// Radio model: short-range omnidirectional antennas.
//
// Section 3.2 of the paper: "For such antennas, the reception and
// transmission energy is of similar magnitude, and depends only on the radio
// electronics" (citing Min & Chandrakasan). The default model therefore
// charges equal, distance-independent energy per unit of data for tx and rx.
// A configurable per-unit cost keeps the model honest for sensitivity
// studies without departing from the paper's assumption by default.
#pragma once

#include <cstdint>

namespace wsn::net {

/// Unit-disk radio with uniform per-data-unit energy costs.
struct RadioModel {
  /// Transmission range in meters (the paper's rho).
  double range = 1.0;
  /// Energy to transmit one unit of data (paper's uniform cost: 1).
  double tx_energy_per_unit = 1.0;
  /// Energy to receive one unit of data (paper's uniform cost: 1).
  double rx_energy_per_unit = 1.0;
  /// Units of data transmittable per unit latency (paper's B).
  double bandwidth = 1.0;

  /// True iff two nodes separated by Euclidean distance `d` have a link.
  bool in_range(double d) const { return d <= range; }

  /// Time to push `units` of data over one hop.
  double tx_latency(double units) const { return units / bandwidth; }
};

/// Node processing model: R computations per unit latency (paper's R).
struct CpuModel {
  double ops_per_unit_latency = 1.0;
  /// Energy to perform one unit of computation (paper's uniform cost: 1).
  double energy_per_op = 1.0;

  double compute_latency(double ops) const { return ops / ops_per_unit_latency; }
};

}  // namespace wsn::net
