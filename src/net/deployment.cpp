#include "net/deployment.h"

#include <algorithm>
#include <stdexcept>

namespace wsn::net {
namespace {

Point clamp_into(const Rect& r, Point p) {
  // Keep the point strictly inside the half-open rectangle so cell_of never
  // lands out of range.
  const double eps_x = r.width() * 1e-9;
  const double eps_y = r.height() * 1e-9;
  p.x = std::clamp(p.x, r.x0, r.x1 - eps_x);
  p.y = std::clamp(p.y, r.y0, r.y1 - eps_y);
  return p;
}

std::vector<Point> deploy_uniform(std::size_t n, const Rect& terrain,
                                  sim::Rng& rng) {
  std::vector<Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Point{rng.uniform(terrain.x0, terrain.x1),
                        rng.uniform(terrain.y0, terrain.y1)});
  }
  return out;
}

std::vector<Point> deploy_perturbed_grid(const DeploymentConfig& cfg,
                                         sim::Rng& rng) {
  // Lay nodes on a regular lattice fine enough to hold node_count points,
  // then jitter each by Gaussian noise scaled to the virtual cell size.
  std::size_t side = 1;
  while (side * side < cfg.node_count) ++side;
  const double dx = cfg.terrain.width() / static_cast<double>(side);
  const double dy = cfg.terrain.height() / static_cast<double>(side);
  const double cell =
      cfg.terrain.width() / static_cast<double>(std::max<std::size_t>(
                                cfg.cells_per_side, 1));
  const double sigma = cfg.jitter_fraction * cell;
  std::vector<Point> out;
  out.reserve(cfg.node_count);
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    const std::size_t r = i / side;
    const std::size_t c = i % side;
    Point p{cfg.terrain.x0 + (static_cast<double>(c) + 0.5) * dx +
                rng.normal(0.0, sigma),
            cfg.terrain.y0 + (static_cast<double>(r) + 0.5) * dy +
                rng.normal(0.0, sigma)};
    out.push_back(clamp_into(cfg.terrain, p));
  }
  return out;
}

std::vector<Point> deploy_clustered(const DeploymentConfig& cfg,
                                    sim::Rng& rng) {
  const std::size_t k = std::max<std::size_t>(cfg.cluster_count, 1);
  std::vector<Point> centers = deploy_uniform(k, cfg.terrain, rng);
  const double sigma = cfg.cluster_spread * cfg.terrain.width();
  std::vector<Point> out;
  out.reserve(cfg.node_count);
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    const Point& c = centers[rng.below(k)];
    Point p{c.x + rng.normal(0.0, sigma), c.y + rng.normal(0.0, sigma)};
    out.push_back(clamp_into(cfg.terrain, p));
  }
  return out;
}

std::vector<Point> deploy_one_per_cell(const DeploymentConfig& cfg,
                                       sim::Rng& rng) {
  const std::size_t m = cfg.cells_per_side;
  const std::size_t base = m * m;
  if (cfg.node_count < base) {
    throw std::invalid_argument(
        "deploy: kOnePerCellPlus requires node_count >= cells^2");
  }
  const double cw = cfg.terrain.width() / static_cast<double>(m);
  const double ch = cfg.terrain.height() / static_cast<double>(m);
  std::vector<Point> out;
  out.reserve(cfg.node_count);
  for (std::size_t row = 0; row < m; ++row) {
    for (std::size_t col = 0; col < m; ++col) {
      const double x0 = cfg.terrain.x0 + static_cast<double>(col) * cw;
      const double y0 = cfg.terrain.y0 + static_cast<double>(row) * ch;
      out.push_back(Point{rng.uniform(x0, x0 + cw), rng.uniform(y0, y0 + ch)});
    }
  }
  for (std::size_t i = base; i < cfg.node_count; ++i) {
    out.push_back(Point{rng.uniform(cfg.terrain.x0, cfg.terrain.x1),
                        rng.uniform(cfg.terrain.y0, cfg.terrain.y1)});
  }
  return out;
}

}  // namespace

std::vector<Point> deploy(const DeploymentConfig& config, sim::Rng& rng) {
  if (config.node_count == 0) return {};
  if (config.terrain.width() <= 0 || config.terrain.height() <= 0) {
    throw std::invalid_argument("deploy: terrain must have positive area");
  }
  switch (config.kind) {
    case DeploymentKind::kUniformRandom:
      return deploy_uniform(config.node_count, config.terrain, rng);
    case DeploymentKind::kPerturbedGrid:
      return deploy_perturbed_grid(config, rng);
    case DeploymentKind::kClustered:
      return deploy_clustered(config, rng);
    case DeploymentKind::kOnePerCellPlus:
      return deploy_one_per_cell(config, rng);
  }
  throw std::logic_error("deploy: unknown deployment kind");
}

std::size_t cell_of(const Point& p, const Rect& terrain,
                    std::size_t cells_per_side) {
  const double m = static_cast<double>(cells_per_side);
  auto clamp_idx = [&](double v) {
    auto idx = static_cast<std::ptrdiff_t>(v);
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(cells_per_side) - 1);
    return static_cast<std::size_t>(idx);
  };
  const std::size_t col = clamp_idx((p.x - terrain.x0) / terrain.width() * m);
  // Row 0 is the north (top) edge: y grows southward in terrain coordinates.
  const std::size_t row = clamp_idx((p.y - terrain.y0) / terrain.height() * m);
  return row * cells_per_side + col;
}

std::vector<std::size_t> cell_occupancy(const std::vector<Point>& positions,
                                        const Rect& terrain,
                                        std::size_t cells_per_side) {
  std::vector<std::size_t> counts(cells_per_side * cells_per_side, 0);
  for (const Point& p : positions) {
    ++counts[cell_of(p, terrain, cells_per_side)];
  }
  return counts;
}

bool covers_all_cells(const std::vector<Point>& positions, const Rect& terrain,
                      std::size_t cells_per_side) {
  const auto counts = cell_occupancy(positions, terrain, cells_per_side);
  return std::ranges::all_of(counts, [](std::size_t c) { return c > 0; });
}

}  // namespace wsn::net
