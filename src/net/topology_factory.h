// Topology diversification for the robustness harness: deployments whose
// unit-disk connectivity graph takes the classic shapes PraSLE's
// stabilization tables are stated over (ring / line / mesh / clique), in
// addition to the default one-node-per-cell grid deployment.
//
// Each non-grid topology keeps the paper's feasibility precondition (at
// least one node per virtual-grid cell) but arranges the nodes *within*
// each cell into a characteristic geometric pattern, so the induced
// unit-disk graph has the intended local structure: a clique packs the
// cell's nodes into a tight disc (fully connected), a ring spreads them on
// a circle, a line strings them along the cell diagonal, and a mesh lays
// them on a jittered sub-grid. kGrid delegates verbatim to
// net::deploy(kOnePerCellPlus) — same RNG consumption, same positions — so
// existing seeded runs replay byte-identically.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/deployment.h"
#include "net/geometry.h"
#include "sim/rng.h"

namespace wsn::net {

enum class TopologyKind : std::uint8_t {
  kGrid,    // one guaranteed node per cell + uniform extras (the default)
  kRing,    // per-cell nodes evenly spaced on a circle
  kLine,    // per-cell nodes strung along the cell diagonal
  kMesh,    // per-cell nodes on a jittered sub-grid
  kClique,  // per-cell nodes packed into a tight disc around the center
};

/// Stable lowercase name ("grid", "ring", "line", "mesh", "clique") used by
/// CLI flags, campaign summaries, and bench rows.
const char* to_string(TopologyKind kind);

/// Parses a topology name; returns false (leaving `out` untouched) on an
/// unknown name.
bool parse_topology(const std::string& name, TopologyKind& out);

/// Generates `node_count` positions over `terrain` partitioned into
/// `cells_per_side`^2 cells, shaped per `kind`. Every cell receives at
/// least one node (node_count must be >= cells^2, as for kOnePerCellPlus);
/// extras are spread round-robin across cells in row-major order. All
/// positions lie strictly inside their cell, so cell occupancy is exact by
/// construction. Deterministic for a given (kind, rng state).
std::vector<Point> deploy_topology(TopologyKind kind,
                                   std::size_t cells_per_side,
                                   std::size_t node_count, const Rect& terrain,
                                   sim::Rng& rng);

}  // namespace wsn::net
