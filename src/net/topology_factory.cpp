#include "net/topology_factory.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wsn::net {
namespace {

constexpr double kPi = 3.14159265358979323846;

Point clamp_into(const Rect& r, Point p) {
  // Strictly inside the half-open rectangle, as deployment.cpp does, so
  // cell_of always lands in range.
  const double eps_x = r.width() * 1e-9;
  const double eps_y = r.height() * 1e-9;
  p.x = std::clamp(p.x, r.x0, r.x1 - eps_x);
  p.y = std::clamp(p.y, r.y0, r.y1 - eps_y);
  return p;
}

/// Number of nodes assigned to row-major cell index `ci`: one-per-cell
/// guaranteed, extras round-robin from cell 0.
std::size_t cell_quota(std::size_t ci, std::size_t cells, std::size_t n) {
  const std::size_t base = n / cells;
  const std::size_t extra = n % cells;
  return base + (ci < extra ? 1 : 0);
}

/// Position of node j of k within the unit square [0,1)^2, per shape.
/// Jitter is added by the caller (fixed two RNG draws per node, so RNG
/// consumption is independent of shape).
Point shape_point(TopologyKind kind, std::size_t j, std::size_t k) {
  const double t = static_cast<double>(j);
  const double n = static_cast<double>(std::max<std::size_t>(k, 1));
  switch (kind) {
    case TopologyKind::kRing: {
      const double angle = 2.0 * kPi * t / n;
      return Point{0.5 + 0.38 * std::cos(angle), 0.5 + 0.38 * std::sin(angle)};
    }
    case TopologyKind::kLine: {
      const double frac = (k <= 1) ? 0.5 : t / (n - 1.0);
      return Point{0.15 + 0.7 * frac, 0.15 + 0.7 * frac};
    }
    case TopologyKind::kMesh: {
      std::size_t side = 1;
      while (side * side < k) ++side;
      const double step = 0.7 / static_cast<double>(side);
      const double col = static_cast<double>(j % side);
      const double row = static_cast<double>(j / side);
      return Point{0.15 + (col + 0.5) * step, 0.15 + (row + 0.5) * step};
    }
    case TopologyKind::kClique: {
      // Tight disc: evenly spaced on a small circle so intra-cell distances
      // stay well under any practical radio range.
      const double angle = 2.0 * kPi * t / n;
      return Point{0.5 + 0.1 * std::cos(angle), 0.5 + 0.1 * std::sin(angle)};
    }
    case TopologyKind::kGrid:
      break;  // handled by net::deploy
  }
  return Point{0.5, 0.5};
}

}  // namespace

const char* to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kGrid:
      return "grid";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kLine:
      return "line";
    case TopologyKind::kMesh:
      return "mesh";
    case TopologyKind::kClique:
      return "clique";
  }
  return "unknown";
}

bool parse_topology(const std::string& name, TopologyKind& out) {
  if (name == "grid") {
    out = TopologyKind::kGrid;
  } else if (name == "ring") {
    out = TopologyKind::kRing;
  } else if (name == "line") {
    out = TopologyKind::kLine;
  } else if (name == "mesh") {
    out = TopologyKind::kMesh;
  } else if (name == "clique") {
    out = TopologyKind::kClique;
  } else {
    return false;
  }
  return true;
}

std::vector<Point> deploy_topology(TopologyKind kind,
                                   std::size_t cells_per_side,
                                   std::size_t node_count, const Rect& terrain,
                                   sim::Rng& rng) {
  if (kind == TopologyKind::kGrid) {
    // Byte-for-byte the default deployment: same generator, same RNG draws.
    DeploymentConfig cfg;
    cfg.kind = DeploymentKind::kOnePerCellPlus;
    cfg.node_count = node_count;
    cfg.terrain = terrain;
    cfg.cells_per_side = cells_per_side;
    return deploy(cfg, rng);
  }
  const std::size_t m = cells_per_side;
  const std::size_t cells = m * m;
  if (node_count < cells) {
    throw std::invalid_argument(
        "deploy_topology: node_count must be >= cells^2");
  }
  if (terrain.width() <= 0 || terrain.height() <= 0) {
    throw std::invalid_argument(
        "deploy_topology: terrain must have positive area");
  }
  const double cw = terrain.width() / static_cast<double>(m);
  const double ch = terrain.height() / static_cast<double>(m);
  const double jitter = 0.03;  // fraction of the cell side
  std::vector<Point> out;
  out.reserve(node_count);
  for (std::size_t row = 0; row < m; ++row) {
    for (std::size_t col = 0; col < m; ++col) {
      const std::size_t ci = row * m + col;
      const std::size_t k = cell_quota(ci, cells, node_count);
      const Rect cell{terrain.x0 + static_cast<double>(col) * cw,
                      terrain.y0 + static_cast<double>(row) * ch,
                      terrain.x0 + static_cast<double>(col + 1) * cw,
                      terrain.y0 + static_cast<double>(row + 1) * ch};
      for (std::size_t j = 0; j < k; ++j) {
        const Point u = shape_point(kind, j, k);
        const Point p{cell.x0 + (u.x + rng.uniform(-jitter, jitter)) * cw,
                      cell.y0 + (u.y + rng.uniform(-jitter, jitter)) * ch};
        out.push_back(clamp_into(cell, p));
      }
    }
  }
  return out;
}

}  // namespace wsn::net
