// Per-node energy accounting.
//
// Implements the paper's uniform cost model bookkeeping: every transmission,
// reception, or computation of one unit of data costs one unit of energy
// (Section 3.2). The ledger tracks category totals so benches can report
// total energy, energy balance, and network lifetime (first depletion).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/deployment.h"
#include "sim/trace.h"

namespace wsn::net {

/// Energy expenditure categories.
enum class EnergyUse : std::uint8_t { kTx = 0, kRx = 1, kCompute = 2 };
inline constexpr std::size_t kEnergyUseCount = 3;

/// Tracks energy spent (and optionally a finite initial budget) per node.
class EnergyLedger {
 public:
  /// Called exactly once per node, synchronously from the charge (or
  /// set_budget) that crosses its budget. Depletion is latched: once a
  /// node has crossed, later charges or budget raises never re-fire it.
  using DepletionCallback = std::function<void(NodeId)>;

  /// `initial_budget` of infinity models the paper's analysis setting where
  /// only totals matter; a finite budget enables lifetime experiments.
  explicit EnergyLedger(
      std::size_t node_count,
      double initial_budget = std::numeric_limits<double>::infinity())
      : budget_(initial_budget),
        spent_(node_count, 0.0),
        by_use_(node_count * kEnergyUseCount, 0.0),
        crossed_(node_count, false),
        finite_(initial_budget !=
                std::numeric_limits<double>::infinity()) {}

  std::size_t node_count() const { return spent_.size(); }
  double budget() const { return budget_; }

  /// Effective budget of one node: its override if set, else the default.
  double budget(NodeId node) const {
    return budget_override_.empty() ? budget_ : budget_override_[node];
  }
  /// Per-node battery override (heterogeneous budgets; FaultPlan's
  /// set_budget lands here). A budget at or below the node's current spend
  /// marks it depleted immediately — the crossing fires from this call.
  void set_budget(NodeId node, double budget) {
    if (budget < 0) {
      throw std::invalid_argument("EnergyLedger: negative budget");
    }
    if (budget_override_.empty()) {
      budget_override_.assign(spent_.size(), budget_);
    }
    budget_override_[node] = budget;
    finite_ = true;
    note_crossing(node);
  }

  /// Uniform battery for every node (clears overrides). Like set_budget,
  /// nodes already past the new budget deplete immediately, exactly once.
  void set_budget_all(double budget) {
    if (budget < 0) {
      throw std::invalid_argument("EnergyLedger: negative budget");
    }
    budget_ = budget;
    budget_override_.clear();
    finite_ = budget != std::numeric_limits<double>::infinity();
    if (finite_) {
      for (std::size_t i = 0; i < spent_.size(); ++i) {
        note_crossing(static_cast<NodeId>(i));
      }
    }
  }

  /// Installs the depletion hook (one per ledger; replaces any previous).
  /// Nodes that crossed before the hook was installed do NOT re-fire — the
  /// DepletionMonitor sweeps for them at arm() time instead.
  void set_on_depleted(DepletionCallback cb) { on_depleted_ = std::move(cb); }

  /// Records `amount` units of energy spent by `node` for `use`. Charges
  /// keep accumulating after depletion (the dying transmission is still
  /// paid for); only the crossing itself is reported, once.
  void charge(NodeId node, EnergyUse use, double amount) {
    if (amount < 0) {
      throw std::invalid_argument("EnergyLedger: negative charge");
    }
    spent_[node] += amount;
    by_use_[node * kEnergyUseCount + static_cast<std::size_t>(use)] += amount;
    if (finite_) note_crossing(node);
  }

  double spent(NodeId node) const { return spent_[node]; }
  double spent(NodeId node, EnergyUse use) const {
    return by_use_[node * kEnergyUseCount + static_cast<std::size_t>(use)];
  }
  /// Residual energy, clamped at zero: a node that overshot its budget by
  /// one in-flight frame reports 0 left, never a negative battery.
  double remaining(NodeId node) const {
    return std::max(budget(node) - spent_[node], 0.0);
  }
  bool depleted(NodeId node) const { return spent_[node] >= budget(node); }

  /// Nodes whose budget crossing has been reported (== ever depleted).
  std::size_t depleted_count() const {
    std::size_t n = 0;
    for (const bool c : crossed_) n += c ? 1 : 0;
    return n;
  }

  /// Sum over all nodes (the paper's "total energy" metric).
  double total() const {
    double t = 0;
    for (double s : spent_) t += s;
    return t;
  }

  double total(EnergyUse use) const {
    double t = 0;
    for (std::size_t i = 0; i < spent_.size(); ++i) {
      t += by_use_[i * kEnergyUseCount + static_cast<std::size_t>(use)];
    }
    return t;
  }

  /// Distribution of per-node spend; stddev/cv capture "energy balance".
  sim::Summary distribution() const {
    sim::Summary s;
    for (double v : spent_) s.add(v);
    return s;
  }

  /// Id of the node that has spent the most energy (the first to die under
  /// a finite budget); kNoNode when the ledger is empty.
  NodeId hottest() const {
    NodeId best = kNoNode;
    double most = -1.0;
    for (std::size_t i = 0; i < spent_.size(); ++i) {
      if (spent_[i] > most) {
        most = spent_[i];
        best = static_cast<NodeId>(i);
      }
    }
    return best;
  }

  void reset() {
    for (double& s : spent_) s = 0;
    for (double& s : by_use_) s = 0;
    crossed_.assign(spent_.size(), false);
  }

 private:
  /// Latched exactly-once crossing detection: the flag flips on the first
  /// budget crossing and never clears (raising a depleted node's budget
  /// does not resurrect it — dead nodes stay dead, deterministically).
  void note_crossing(NodeId node) {
    if (crossed_[node] || spent_[node] < budget(node)) return;
    crossed_[node] = true;
    if (on_depleted_) on_depleted_(node);
  }

  double budget_;
  std::vector<double> spent_;
  std::vector<double> by_use_;  // node-major [node][use]
  std::vector<double> budget_override_;  // empty = uniform budget_
  std::vector<bool> crossed_;
  bool finite_;  // any finite budget possible; guards the charge hot path
  DepletionCallback on_depleted_;
};

}  // namespace wsn::net
