// Per-node energy accounting.
//
// Implements the paper's uniform cost model bookkeeping: every transmission,
// reception, or computation of one unit of data costs one unit of energy
// (Section 3.2). The ledger tracks category totals so benches can report
// total energy, energy balance, and network lifetime (first depletion).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "net/deployment.h"
#include "sim/trace.h"

namespace wsn::net {

/// Energy expenditure categories.
enum class EnergyUse : std::uint8_t { kTx = 0, kRx = 1, kCompute = 2 };
inline constexpr std::size_t kEnergyUseCount = 3;

/// Tracks energy spent (and optionally a finite initial budget) per node.
class EnergyLedger {
 public:
  /// `initial_budget` of infinity models the paper's analysis setting where
  /// only totals matter; a finite budget enables lifetime experiments.
  explicit EnergyLedger(
      std::size_t node_count,
      double initial_budget = std::numeric_limits<double>::infinity())
      : budget_(initial_budget),
        spent_(node_count, 0.0),
        by_use_(node_count * kEnergyUseCount, 0.0) {}

  std::size_t node_count() const { return spent_.size(); }
  double budget() const { return budget_; }

  /// Records `amount` units of energy spent by `node` for `use`.
  void charge(NodeId node, EnergyUse use, double amount) {
    if (amount < 0) {
      throw std::invalid_argument("EnergyLedger: negative charge");
    }
    spent_[node] += amount;
    by_use_[node * kEnergyUseCount + static_cast<std::size_t>(use)] += amount;
  }

  double spent(NodeId node) const { return spent_[node]; }
  double spent(NodeId node, EnergyUse use) const {
    return by_use_[node * kEnergyUseCount + static_cast<std::size_t>(use)];
  }
  double remaining(NodeId node) const { return budget_ - spent_[node]; }
  bool depleted(NodeId node) const { return spent_[node] >= budget_; }

  /// Sum over all nodes (the paper's "total energy" metric).
  double total() const {
    double t = 0;
    for (double s : spent_) t += s;
    return t;
  }

  double total(EnergyUse use) const {
    double t = 0;
    for (std::size_t i = 0; i < spent_.size(); ++i) {
      t += by_use_[i * kEnergyUseCount + static_cast<std::size_t>(use)];
    }
    return t;
  }

  /// Distribution of per-node spend; stddev/cv capture "energy balance".
  sim::Summary distribution() const {
    sim::Summary s;
    for (double v : spent_) s.add(v);
    return s;
  }

  /// Id of the node that has spent the most energy (the first to die under
  /// a finite budget); kNoNode when the ledger is empty.
  NodeId hottest() const {
    NodeId best = kNoNode;
    double most = -1.0;
    for (std::size_t i = 0; i < spent_.size(); ++i) {
      if (spent_[i] > most) {
        most = spent_[i];
        best = static_cast<NodeId>(i);
      }
    }
    return best;
  }

  void reset() {
    for (double& s : spent_) s = 0;
    for (double& s : by_use_) s = 0;
  }

 private:
  double budget_;
  std::vector<double> spent_;
  std::vector<double> by_use_;  // node-major [node][use]
};

}  // namespace wsn::net
