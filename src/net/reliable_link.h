// ReliableChannel: a stop-and-wait-per-frame ARQ shim over LinkLayer.
//
// The paper's Section 5 runtime keeps a virtual grid alive on an unreliable
// deployment, but nothing above the lossy link recovers a dropped packet: a
// single loss stalls a collective or silently corrupts its result. This
// layer adds the missing machinery for unicast traffic (the overlay's hop
// transport): per-directed-pair sequence numbers, ack frames, retransmit
// timers with exponential backoff + jitter on the simulator's own event
// queue, a bounded retry budget with an `on_give_up` callback, and duplicate
// suppression on receive.
//
// Give-ups double as a liveness signal: a frame that survives the full
// retry budget names a suspect endpoint, which emulation::FailoverBinder
// turns into automatic leader re-election (Section 5.2 maintenance without
// an external caller).
//
// The channel owns the LinkLayer receivers of every node (install it after
// the setup protocols — topology emulation and leader binding — have run
// and released theirs). Upper layers register their handlers here instead.
//
// Observability: every send/retransmit/ack/duplicate/give-up emits a
// Category::kReliability TraceEvent (names "rel.*") and bumps an "arq.*"
// counter, so wsn-inspect can attribute retransmission energy and verify
// the pairing invariants. Data frames carry the originating message's flow
// id into the physical unicasts beneath them; ack frames travel as flow 0
// (uncorrelated control traffic).
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/link_layer.h"
#include "obs/metrics_registry.h"
#include "sim/simulator.h"

namespace wsn::net {

struct ReliableConfig {
  /// Initial retransmit timeout = rto_factor x (data airtime + ack airtime),
  /// floored at min_rto. Must exceed one round trip or every frame
  /// retransmits at least once.
  double rto_factor = 3.0;
  double min_rto = 1.0;
  /// Timeout multiplier per retry (exponential backoff).
  double backoff = 2.0;
  /// Each timeout is stretched by uniform[0, jitter) of itself, decorrelating
  /// retransmit bursts. Drawn from the simulator RNG: deterministic per seed.
  double jitter = 0.25;
  /// Retransmissions after the initial transmission before giving up.
  std::uint32_t max_retries = 5;
  /// Airtime/energy size of an ack frame in data units.
  double ack_size_units = 0.25;
};

class ReliableChannel {
 public:
  /// `from`/`to` are the DATA frame's endpoints; `attempts` counts
  /// transmissions performed (1 initial + retries).
  using GiveUp = std::function<void(NodeId from, NodeId to, std::uint64_t seq,
                                    std::uint32_t attempts)>;

  /// Takes over every LinkLayer receiver. The link must outlive the channel.
  explicit ReliableChannel(LinkLayer& link, ReliableConfig cfg = {});

  /// Installs the upper-layer handler for data frames addressed to `node`.
  /// Acks and duplicates are consumed internally.
  void set_receiver(NodeId node, LinkLayer::Receiver r) {
    receivers_[node] = std::move(r);
  }

  /// Reliably sends `payload` over the one-hop link `from` -> `to`
  /// (LinkLayer::unicast semantics). `flow` is the trace correlation id of
  /// the logical message this hop serves.
  void send(NodeId from, NodeId to, std::any payload, double size_units = 1.0,
            std::uint64_t flow = 0);

  void set_on_give_up(GiveUp fn) { on_give_up_ = std::move(fn); }

  LinkLayer& link() { return link_; }
  const ReliableConfig& config() const { return cfg_; }
  /// Frames currently awaiting an ack.
  std::size_t in_flight() const { return in_flight_; }
  sim::CounterSet& counters() { return counters_; }

  /// Registers the ARQ counters under `prefix` in the unified registry.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "arq") const {
    registry.add_counters(prefix + ".counters", &counters_);
    registry.add_gauge(prefix + ".in_flight", [this] {
      return static_cast<double>(in_flight_);
    });
  }

 private:
  /// Wire format of one channel frame; `src`/`dst` always name the DATA
  /// transfer's endpoints, also on acks (which travel dst -> src).
  struct Frame {
    bool ack = false;
    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    std::uint64_t seq = 0;
    double data_size = 1.0;
    std::shared_ptr<std::any> payload;  // null on acks
    std::uint64_t flow = 0;
  };

  struct Pending {
    sim::EventId timer = 0;
    std::uint32_t attempts = 0;  // transmissions performed so far
    double rto = 0.0;            // timeout armed for the last transmission
    Frame frame;
  };

  static std::uint64_t pair_key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  void handle(NodeId at, const Packet& raw);
  void transmit(Pending& p);
  void arm_timer(Pending& p);
  void on_timeout(std::uint64_t pair, std::uint64_t seq);
  void give_up(std::uint64_t pair, std::uint64_t seq);
  double initial_rto(double data_size) const;
  void trace_rel(const char* name, const Frame& fr, std::int64_t node,
                 std::uint32_t attempts);

  LinkLayer& link_;
  ReliableConfig cfg_;
  std::vector<LinkLayer::Receiver> receivers_;
  /// Sender side: next sequence number and unacked frames per directed pair.
  std::unordered_map<std::uint64_t, std::uint64_t> next_seq_;
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint64_t, Pending>>
      pending_;
  /// Receiver side: sequence numbers already delivered upward, per pair.
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> seen_;
  std::size_t in_flight_ = 0;
  GiveUp on_give_up_;
  sim::CounterSet counters_;
};

}  // namespace wsn::net
