// Event-driven physical network: single-hop broadcast/unicast over the
// unit-disk connectivity graph, with energy charged per the uniform cost
// model and delivery latency derived from the radio bandwidth.
//
// This is the substrate the Section 5 runtime protocols execute on. A
// broadcast is one transmission heard by every one-hop neighbor: the sender
// pays tx energy once per data unit and every neighbor in range pays rx
// energy, matching the short-range omnidirectional antenna model.
#pragma once

#include <any>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/energy.h"
#include "net/network_graph.h"
#include "net/radio.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace wsn::net {

/// A message in flight. `payload` is protocol-defined; `size_units` drives
/// both latency and energy.
struct Packet {
  NodeId sender = kNoNode;
  double size_units = 1.0;
  std::any payload;
};

/// Physical network façade: owns delivery scheduling and energy accounting,
/// borrows the simulator.
class LinkLayer {
 public:
  using Receiver = std::function<void(const Packet&)>;

  LinkLayer(sim::Simulator& sim, const NetworkGraph& graph, RadioModel radio,
            CpuModel cpu, EnergyLedger& ledger)
      : sim_(sim), graph_(graph), radio_(radio), cpu_(cpu), ledger_(ledger),
        receivers_(graph.node_count()), down_(graph.node_count(), false) {}

  sim::Simulator& simulator() { return sim_; }
  const NetworkGraph& graph() const { return graph_; }
  const RadioModel& radio() const { return radio_; }
  const CpuModel& cpu() const { return cpu_; }
  EnergyLedger& ledger() { return ledger_; }
  sim::CounterSet& counters() { return counters_; }

  /// Installs the receive handler for `node`. Packets delivered to a node
  /// with no handler are counted and dropped.
  void set_receiver(NodeId node, Receiver r) {
    receivers_[node] = std::move(r);
  }

  /// Per-packet loss probability applied independently per receiver.
  void set_loss_probability(double p) { loss_probability_ = p; }
  double loss_probability() const { return loss_probability_; }

  /// Distance-dependent loss: `fn(d)` returns the drop probability for a
  /// receiver at Euclidean distance d from the sender (composed with the
  /// flat loss probability into one effective loss; see effective_loss()).
  /// Models path-loss/shadowing-induced fringe unreliability near the edge
  /// of the nominal disk; pass nullptr to disable.
  void set_distance_loss(std::function<double(double)> fn) {
    distance_loss_ = std::move(fn);
  }
  bool has_distance_loss() const { return distance_loss_ != nullptr; }

  /// The exact per-packet drop probability for a transmission from `from`
  /// heard at `to`: the flat and distance-dependent mechanisms compose as
  /// independent loss processes, p = 1 - (1-p_flat)(1-p_dist(d)). A single
  /// RNG draw decides the drop (historically the two mechanisms drew two
  /// independent coins, which made the composed rate opaque to campaign
  /// planning); attribution to `link.lost` vs `link.lost_fringe` splits the
  /// one draw at p_flat, preserving both counters' marginal rates.
  double effective_loss(NodeId from, NodeId to) const {
    double p = loss_probability_;
    if (distance_loss_) {
      const double d = distance(graph_.position(from), graph_.position(to));
      p = 1.0 - (1.0 - p) * (1.0 - distance_loss_(d));
    }
    return p;
  }

  /// A sigmoid fringe model: reliable up to `reliable_radius`, then the
  /// drop probability rises smoothly toward 1 at the nominal range.
  static std::function<double(double)> sigmoid_fringe(double reliable_radius,
                                                      double range) {
    const double width = std::max((range - reliable_radius) / 4.0, 1e-9);
    return [reliable_radius, width](double d) {
      return 1.0 / (1.0 + std::exp(-(d - reliable_radius) / width)) *
             (d > reliable_radius ? 1.0 : 0.0);
    };
  }

  /// Opt-in transmitter serialization (default off): a node's radio can
  /// push only one packet at a time, so back-to-back transmissions queue.
  /// The physical-layer counterpart of core::Congestion::kNodeSerialized.
  void set_tx_serialization(bool on) { tx_serialized_ = on; }

  /// Marks a node as failed (crashed / removed): it neither transmits nor
  /// receives. Section 5.1 motivates periodic protocol re-execution with
  /// exactly such failures.
  void set_down(NodeId node, bool down) { down_[node] = down; }
  bool is_down(NodeId node) const { return down_[node]; }
  std::size_t down_count() const {
    std::size_t n = 0;
    for (bool d : down_) n += d ? 1 : 0;
    return n;
  }

  /// One local broadcast: sender pays tx once; each live neighbor pays rx
  /// and receives the packet after the transmission latency.
  ///
  /// `flow` is an optional trace correlation id (obs::TraceEvent::flow):
  /// overlay/protocol callers thread the originating message's id through
  /// so a trace reconstructs which physical transmissions served which
  /// logical send. Pass 0 for uncorrelated traffic.
  void broadcast(NodeId from, std::any payload, double size_units = 1.0,
                 std::uint64_t flow = 0) {
    obs::ProfSpan prof(obs::ProfCat::kLinkTx);
    if (down_[from] || ledger_.depleted(from)) {
      counters_.add("link.tx_dead");
      return;
    }
    ledger_.charge(from, EnergyUse::kTx, radio_.tx_energy_per_unit * size_units);
    counters_.add("link.broadcast");
    const sim::Time arrive = tx_start(from) + radio_.tx_latency(size_units);
    if (tx_serialized_) tx_busy_until_(from) = arrive;
    if (obs::tracer().enabled(obs::Category::kLink)) {
      obs::tracer().emit({sim_.now(), static_cast<std::int64_t>(from),
                          obs::Category::kLink, 'i', "broadcast", flow,
                          {{"size", size_units}, {"arrive", arrive}}});
    }
    for (NodeId nbr : graph_.neighbors(from)) {
      deliver_at(arrive, from, nbr, payload, size_units, flow);
    }
  }

  /// One-hop unicast; `to` must be a one-hop neighbor of `from`. With a
  /// short-range omnidirectional antenna the energy cost equals broadcast
  /// (neighbors overhear but discard; we charge rx only at the addressee,
  /// the standard idealization in the algorithm-design literature the paper
  /// builds on).
  void unicast(NodeId from, NodeId to, std::any payload,
               double size_units = 1.0, std::uint64_t flow = 0) {
    obs::ProfSpan prof(obs::ProfCat::kLinkTx);
    if (down_[from] || ledger_.depleted(from)) {
      counters_.add("link.tx_dead");
      return;
    }
    ledger_.charge(from, EnergyUse::kTx, radio_.tx_energy_per_unit * size_units);
    counters_.add("link.unicast");
    const sim::Time arrive = tx_start(from) + radio_.tx_latency(size_units);
    if (tx_serialized_) tx_busy_until_(from) = arrive;
    if (obs::tracer().enabled(obs::Category::kLink)) {
      obs::tracer().emit({sim_.now(), static_cast<std::int64_t>(from),
                          obs::Category::kLink, 'i', "unicast", flow,
                          {{"to", static_cast<std::uint64_t>(to)},
                           {"size", size_units},
                           {"arrive", arrive}}});
    }
    deliver_at(arrive, from, to, payload, size_units, flow);
  }

  /// Charges compute energy and returns the latency of `ops` computations;
  /// callers schedule follow-up work after that latency.
  sim::Time compute(NodeId node, double ops) {
    ledger_.charge(node, EnergyUse::kCompute, cpu_.energy_per_op * ops);
    counters_.add("link.compute");
    return cpu_.compute_latency(ops);
  }

  /// Registers this layer's instruments (counters, shared ledger, down-node
  /// gauge) under `prefix` in the unified registry.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "link") const {
    registry.add_counters(prefix + ".counters", &counters_);
    registry.add_ledger(prefix + ".energy", &ledger_);
    registry.add_gauge(prefix + ".down_nodes",
                       [this] { return static_cast<double>(down_count()); });
  }

 private:
  /// Earliest instant `from` may begin transmitting.
  sim::Time tx_start(NodeId from) {
    if (!tx_serialized_) return sim_.now();
    if (busy_.size() != graph_.node_count()) {
      busy_.assign(graph_.node_count(), 0.0);
    }
    const sim::Time start = std::max(sim_.now(), busy_[from]);
    if (start > sim_.now()) counters_.add("link.tx_queued");
    return start;
  }

  sim::Time& tx_busy_until_(NodeId from) { return busy_[from]; }

  /// Emits a flow-correlated kLink "drop" event so the analyzer can explain
  /// transmissions that never produce a "deliver" (lost in the air, or the
  /// receiver was dead on arrival).
  void trace_drop(NodeId from, NodeId to, std::uint64_t flow,
                  const char* why) {
    if (obs::tracer().enabled(obs::Category::kLink)) {
      obs::tracer().emit({sim_.now(), static_cast<std::int64_t>(to),
                          obs::Category::kLink, 'i', "drop", flow,
                          {{"from", static_cast<std::uint64_t>(from)},
                           {"why", std::string(why)}}});
    }
  }

  void deliver_at(sim::Time at, NodeId from, NodeId to, std::any payload,
                  double size_units, std::uint64_t flow) {
    // One draw against the composed loss probability (see effective_loss);
    // the draw splits at the flat probability so `link.lost` and
    // `link.lost_fringe` keep their exact marginal rates. When only one
    // mechanism is active this consumes the same RNG stream as the historic
    // two-coin implementation.
    if (loss_probability_ > 0 || distance_loss_) {
      const double p = effective_loss(from, to);
      const double u = sim_.rng().uniform();
      if (u < p) {
        counters_.add(u < loss_probability_ ? "link.lost"
                                            : "link.lost_fringe");
        trace_drop(from, to, flow, "loss");
        return;
      }
    }
    sim_.schedule_at(at, [this, from, to, payload = std::move(payload),
                          size_units, flow]() {
      obs::ProfSpan prof(obs::ProfCat::kLinkRx);
      if (down_[to] || ledger_.depleted(to)) {
        counters_.add("link.rx_dead");
        trace_drop(from, to, flow, "dead");
        return;
      }
      ledger_.charge(to, EnergyUse::kRx, radio_.rx_energy_per_unit * size_units);
      counters_.add("link.delivered");
      if (obs::tracer().enabled(obs::Category::kLink)) {
        obs::tracer().emit({sim_.now(), static_cast<std::int64_t>(to),
                            obs::Category::kLink, 'i', "deliver", flow,
                            {{"from", static_cast<std::uint64_t>(from)},
                             {"size", size_units}}});
      }
      if (receivers_[to]) {
        receivers_[to](Packet{from, size_units, payload});
      } else {
        counters_.add("link.no_receiver");
      }
    });
  }

  sim::Simulator& sim_;
  const NetworkGraph& graph_;
  RadioModel radio_;
  CpuModel cpu_;
  EnergyLedger& ledger_;
  std::vector<Receiver> receivers_;
  std::vector<bool> down_;
  sim::CounterSet counters_;
  double loss_probability_ = 0.0;
  std::function<double(double)> distance_loss_;
  bool tx_serialized_ = false;
  std::vector<sim::Time> busy_;
};

}  // namespace wsn::net
