#include "net/reliable_link.h"

#include <utility>

#include "obs/profiler.h"

namespace wsn::net {

ReliableChannel::ReliableChannel(LinkLayer& link, ReliableConfig cfg)
    : link_(link), cfg_(cfg), receivers_(link.graph().node_count()) {
  for (NodeId i = 0; i < link_.graph().node_count(); ++i) {
    link_.set_receiver(i, [this, i](const Packet& pkt) { handle(i, pkt); });
  }
}

double ReliableChannel::initial_rto(double data_size) const {
  const double round_trip = link_.radio().tx_latency(data_size) +
                            link_.radio().tx_latency(cfg_.ack_size_units);
  return std::max(cfg_.min_rto, cfg_.rto_factor * round_trip);
}

void ReliableChannel::trace_rel(const char* name, const Frame& fr,
                                std::int64_t node, std::uint32_t attempts) {
  auto& tr = obs::tracer();
  if (!tr.enabled(obs::Category::kReliability)) return;
  tr.emit({link_.simulator().now(), node, obs::Category::kReliability, 'i',
           name, fr.flow,
           {{"src", static_cast<std::uint64_t>(fr.src)},
            {"dst", static_cast<std::uint64_t>(fr.dst)},
            {"seq", fr.seq},
            {"attempts", static_cast<std::uint64_t>(attempts)}}});
}

void ReliableChannel::send(NodeId from, NodeId to, std::any payload,
                           double size_units, std::uint64_t flow) {
  obs::ProfSpan prof(obs::ProfCat::kArq);
  const std::uint64_t key = pair_key(from, to);
  const std::uint64_t seq = ++next_seq_[key];
  Frame fr{false, from, to, seq, size_units,
           std::make_shared<std::any>(std::move(payload)), flow};
  counters_.add("arq.send");
  trace_rel("rel.send", fr, static_cast<std::int64_t>(from), 0);
  Pending& p = pending_[key][seq];
  p.frame = std::move(fr);
  ++in_flight_;
  transmit(p);
}

void ReliableChannel::transmit(Pending& p) {
  ++p.attempts;
  // A down/depleted sender's unicast is a silent no-op at the link; the
  // timer still runs, so the failure surfaces as a give-up (the channel
  // object is middleware bookkeeping that outlives the node).
  link_.unicast(p.frame.src, p.frame.dst, p.frame, p.frame.data_size,
                p.frame.flow);
  arm_timer(p);
}

void ReliableChannel::arm_timer(Pending& p) {
  p.rto = p.attempts <= 1 ? initial_rto(p.frame.data_size)
                          : p.rto * cfg_.backoff;
  double timeout = p.rto;
  if (cfg_.jitter > 0) {
    timeout *= 1.0 + link_.simulator().rng().uniform(0.0, cfg_.jitter);
  }
  const std::uint64_t pair = pair_key(p.frame.src, p.frame.dst);
  const std::uint64_t seq = p.frame.seq;
  p.timer = link_.simulator().schedule_in(
      timeout, [this, pair, seq]() { on_timeout(pair, seq); });
}

void ReliableChannel::on_timeout(std::uint64_t pair, std::uint64_t seq) {
  const auto pit = pending_.find(pair);
  if (pit == pending_.end()) return;
  const auto it = pit->second.find(seq);
  if (it == pit->second.end()) return;  // acked; timer raced cancellation
  Pending& p = it->second;
  const bool sender_dead =
      link_.is_down(p.frame.src) || link_.ledger().depleted(p.frame.src);
  if (sender_dead || p.attempts > cfg_.max_retries) {
    give_up(pair, seq);
    return;
  }
  counters_.add("arq.retransmit");
  trace_rel("rel.retransmit", p.frame, static_cast<std::int64_t>(p.frame.src),
            p.attempts);
  transmit(p);
}

void ReliableChannel::give_up(std::uint64_t pair, std::uint64_t seq) {
  auto& by_seq = pending_[pair];
  const auto it = by_seq.find(seq);
  const Frame frame = it->second.frame;
  const std::uint32_t attempts = it->second.attempts;
  by_seq.erase(it);
  if (by_seq.empty()) pending_.erase(pair);
  --in_flight_;
  counters_.add("arq.give_up");
  trace_rel("rel.give_up", frame, static_cast<std::int64_t>(frame.src),
            attempts);
  if (on_give_up_) on_give_up_(frame.src, frame.dst, seq, attempts);
}

void ReliableChannel::handle(NodeId at, const Packet& raw) {
  obs::ProfSpan prof(obs::ProfCat::kArq);
  const auto& fr = std::any_cast<const Frame&>(raw.payload);
  const std::uint64_t key = pair_key(fr.src, fr.dst);

  if (fr.ack) {
    // Ack arrived back at the data sender (at == fr.src).
    const auto pit = pending_.find(key);
    if (pit == pending_.end()) {
      counters_.add("arq.ack_stale");
      return;
    }
    const auto it = pit->second.find(fr.seq);
    if (it == pit->second.end()) {
      counters_.add("arq.ack_stale");  // duplicate ack or post-give-up ack
      return;
    }
    link_.simulator().cancel(it->second.timer);
    counters_.add("arq.ack");
    trace_rel("rel.ack", it->second.frame, static_cast<std::int64_t>(at),
              it->second.attempts);
    pit->second.erase(it);
    if (pit->second.empty()) pending_.erase(pit);
    --in_flight_;
    return;
  }

  // Data frame at the receiver (at == fr.dst). Always (re-)ack: the ack of
  // an already-delivered frame may have been lost.
  link_.unicast(fr.dst, fr.src, Frame{true, fr.src, fr.dst, fr.seq,
                                      fr.data_size, nullptr, 0},
                cfg_.ack_size_units, 0);
  auto& seen = seen_[key];
  if (!seen.insert(fr.seq).second) {
    counters_.add("arq.dup");
    trace_rel("rel.dup", fr, static_cast<std::int64_t>(at), 0);
    return;
  }
  counters_.add("arq.delivered");
  if (receivers_[at]) {
    receivers_[at](Packet{fr.src, fr.data_size, *fr.payload});
  }
}

}  // namespace wsn::net
