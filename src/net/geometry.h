// Planar geometry primitives for terrain and deployment modeling.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>

namespace wsn::net {

/// A point on the deployment terrain, in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

inline double distance_sq(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance (the paper's delta function in Section 5.1).
inline double distance(const Point& a, const Point& b) {
  return std::sqrt(distance_sq(a, b));
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

/// Axis-aligned rectangle [x0,x1) x [y0,y1).
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  double width() const { return x1 - x0; }
  double height() const { return y1 - y0; }
  Point center() const { return {(x0 + x1) / 2.0, (y0 + y1) / 2.0}; }

  bool contains(const Point& p) const {
    return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1;
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Square terrain of side `side` meters anchored at the origin, as assumed
/// in Section 5.1 ("deployed over a square terrain of side L").
inline Rect square_terrain(double side) { return Rect{0.0, 0.0, side, side}; }

}  // namespace wsn::net
