// The synthesized reactive program of Section 4.3 / Figure 4.
//
// The program is a set of guarded condition -> action rules over per-node
// state, executed under a reactive, event-driven model with asynchronous
// data flow: "a process need not wait for all its input data (incoming
// messages) before computing on them ... incoming information is
// incrementally processed wherever possible."
//
// State (initial values), exactly as in Figure 4:
//   start(=false), recLevel(=0), maxrecLevel,
//   mySubGraph[1..maxrecLevel](=NULL), myCoords,
//   msgsReceived[1..maxrecLevel](=0), transmit(=false)
// Message alphabet: mGraph = {senderCoord, msubGraph, mrecLevel}.
//
// Rule semantics implemented here (one consistent reading of the figure;
// see DESIGN.md for the reconciliation of the figure's increment placement):
//   R1 start:     start=false; mySubGraph[0] = data from the sensing
//                 interface; transmit=true.
//   R2 receive:   merge(mGraph.msubGraph, mySubGraph[mrecLevel]);
//                 msgsReceived[mrecLevel]++.
//   R3 transmit:  if recLevel == maxrecLevel: exfiltrate mySubGraph[recLevel]
//                 else send {myCoords, mySubGraph[recLevel], recLevel+1} to
//                 Leader(recLevel+1); when that leader is the node itself the
//                 send degenerates to a local merge (the paper: "one of the
//                 four incoming messages ... is from the node to itself").
//                 transmit=false.
//   R4 advance:   when msgsReceived[recLevel+1] == 3 and the node's own
//                 contribution is folded in: recLevel++; transmit=true.
//                 (3 = the four quad-tree children minus the self-message.)
//
// The figure's "3 messages" is specific to the paper's NW-corner mapping,
// where every level-l leader also leads one of its own sub-blocks. The
// interpreter derives the expected contribution count from the group
// hierarchy instead (3 remote + self when the leader leads a sub-block,
// 4 remote otherwise), so the same program also runs under the alternative
// leader placements of the mapping ablation.
#pragma once

#include <any>
#include <memory>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/fabric.h"

namespace wsn::synthesis {

/// Application-specific behavior plugged into the generic program skeleton.
/// The interpreter is agnostic to what the "subgraph" data actually is.
struct ProgramHooks {
  /// Produces the level-0 data of a node from its sensing interface.
  std::function<std::any(const core::GridCoord&)> sense;

  /// Folds one child contribution into the accumulator for a level.
  /// `acc` starts empty (has_value() == false) for each level.
  std::function<void(std::any& acc, const std::any& incoming)> merge;

  /// Converts a completed accumulation into the payload transmitted upward
  /// (level >= 1) or the level-0 sensed data into its payload (level == 0).
  std::function<std::any(std::any& acc, const core::GridCoord& self,
                         std::uint32_t level)>
      seal;

  /// Units of data one payload occupies on the air.
  std::function<double(const std::any& payload)> payload_units;

  /// Receives the final aggregate at the exfiltrating node.
  std::function<void(const core::GridCoord&, std::any)> exfiltrate;

  /// Cost annotations (ops per activation), per the uniform cost model.
  double sense_ops = 1.0;
  double merge_ops = 1.0;
};

/// Execution statistics of one aggregation round.
struct RoundStats {
  std::uint64_t messages_sent = 0;   // network sends (self-sends excluded)
  std::uint64_t self_merges = 0;     // leader-to-itself contributions
  std::uint64_t remote_merges = 0;   // mGraph receptions merged
  sim::Time finished_at = 0;         // exfiltration time
  bool finished = false;
  core::GridCoord exfiltration_node{};
};

/// Event-driven interpreter running one instance of the Figure 4 program on
/// every node of a MessageFabric. Drive it with:
///   AggregationProgram prog(fabric, hooks);
///   prog.start_round();
///   fabric.simulator().run();
///   prog.stats();  // finished, result, costs
class AggregationProgram {
 public:
  AggregationProgram(core::MessageFabric& fabric, ProgramHooks hooks);

  /// Uninstalls the receivers this program placed on the fabric, so a
  /// destroyed program can never be invoked by a late message.
  ~AggregationProgram();

  AggregationProgram(const AggregationProgram&) = delete;
  AggregationProgram& operator=(const AggregationProgram&) = delete;

  /// Raises `start` on every node at the current simulation time.
  void start_round();

  const RoundStats& stats() const { return stats_; }
  bool finished() const { return stats_.finished; }
  /// The exfiltrated aggregate (valid once finished()).
  const std::any& result() const { return result_; }

  std::uint32_t max_rec_level() const { return max_level_; }

 private:
  struct NodeState {
    bool start = false;
    std::vector<std::any> my_sub_graph;      // [0..maxrecLevel]
    std::vector<std::uint32_t> msgs_received; // [0..maxrecLevel]
    /// Merges whose compute latency has elapsed; gates advancement so the
    /// final merge's cost lands on the critical path.
    std::vector<std::uint32_t> merges_done;   // [0..maxrecLevel]
    std::vector<bool> contributed;            // self data folded per level
    std::vector<bool> level_sent;             // sealed & transmitted upward
  };

  /// One message of the mGraph alphabet.
  struct MGraph {
    core::GridCoord sender_coord;
    std::shared_ptr<std::any> msub_graph;
    std::uint32_t mrec_level;
  };

  void on_start(const core::GridCoord& c);
  void on_receive(const core::GridCoord& c, const core::VirtualMessage& msg);
  /// Seals the data a node assembled at `level` and moves it one level up
  /// (self-merge, network send, or exfiltration at maxrecLevel).
  void transmit_level(const core::GridCoord& c, std::uint32_t level);
  void check_advance(const core::GridCoord& c, std::uint32_t level);
  NodeState& state(const core::GridCoord& c) {
    return states_[fabric_.grid().index_of(c)];
  }

  core::MessageFabric& fabric_;
  ProgramHooks hooks_;
  std::uint32_t max_level_;
  std::vector<NodeState> states_;
  RoundStats stats_;
  std::any result_;
};

/// Renders the Figure 4 program specification as text (states, message
/// alphabet, and the four condition/action clauses).
std::string render_figure4();

}  // namespace wsn::synthesis
