#include "synthesis/spec.h"

#include <sstream>
#include <stdexcept>

#include "core/grid_topology.h"

namespace wsn::synthesis {

std::string ProgramSpec::render() const {
  std::ostringstream os;
  os << "State (initial values) :\n ";
  for (std::size_t i = 0; i < state.size(); ++i) {
    os << ' ' << state[i].name << "(= " << state[i].initial << ')';
    if (i + 1 < state.size()) os << ',';
    if (i % 3 == 2 && i + 1 < state.size()) os << "\n ";
  }
  os << "\n\nMessage alphabet :\n  " << message_name << " = {";
  for (std::size_t i = 0; i < message_fields.size(); ++i) {
    if (i) os << ", ";
    os << message_fields[i].name;
  }
  os << "}\n";
  for (const Clause& clause : clauses) {
    os << "\nCondition : " << clause.condition << '\n';
    for (std::size_t i = 0; i < clause.actions.size(); ++i) {
      os << (i == 0 ? "Action    : " : "            ") << clause.actions[i]
         << '\n';
    }
  }
  return os.str();
}

ProgramSpec figure4_spec(std::size_t grid_side) {
  if (!core::GridTopology::is_power_of_two(grid_side)) {
    throw std::invalid_argument("figure4_spec: side must be a power of two");
  }
  std::uint32_t levels = 0;
  for (std::size_t s = grid_side; s > 1; s >>= 1) ++levels;

  ProgramSpec spec;
  spec.max_rec_level = levels;
  spec.expected_messages = 3;
  spec.state = {
      {"start", "false"},
      {"recLevel", "0"},
      {"maxrecLevel", std::to_string(levels)},
      {"mySubGraph[1..maxrecLevel]", "NULL"},
      {"myCoords", "-"},
      {"msgsReceived[1..maxrecLevel]", "0"},
      {"transmit", "false"},
  };
  spec.message_name = "mGraph";
  spec.message_fields = {{"senderCoord"}, {"msubGraph"}, {"mrecLevel"}};
  spec.clauses = {
      {"start = true",
       {"start = false", "compute mySubGraph[recLevel] from intra-cell readings",
        "transmit = true", "recLevel = recLevel + 1"}},
      {"received mGraph",
       {"merge(mGraph, mySubGraph[mrecLevel])", "msgsReceived[mrecLevel]++"}},
      {"transmit = true",
       {"message = {myCoords, mySubGraph, recLevel}",
        "if (recLevel = maxrecLevel)", "  exfiltrate message", "else",
        "  send message to Leader(recLevel+1)", "transmit = false"}},
      {"msgsReceived[recLevel] = " + std::to_string(spec.expected_messages),
       {"transmit = true", "recLevel = recLevel + 1"}},
  };
  return spec;
}

}  // namespace wsn::synthesis
