// Declarative program specification: Figure 4 as a data structure.
//
// The synthesis stage does not emit C++; it emits a guarded-rule program -
// state variables with initial values, a message alphabet, and
// condition/action clauses - which a node runtime then executes. Keeping
// the specification as data (rather than only as the interpreter's code)
// lets the synthesizer parameterize it (maxrecLevel, expected message
// count, exfiltration target) and lets tools render it exactly as the
// paper's figure prints it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wsn::synthesis {

/// A state variable with its initial value, e.g. "recLevel" = "0".
struct StateVariable {
  std::string name;
  std::string initial;
};

/// One field of the message alphabet record.
struct MessageField {
  std::string name;
};

/// A guarded clause: when `condition` holds, run `actions` in order.
struct Clause {
  std::string condition;
  std::vector<std::string> actions;
};

/// The synthesized per-node program.
struct ProgramSpec {
  std::vector<StateVariable> state;
  std::string message_name;               // "mGraph"
  std::vector<MessageField> message_fields;
  std::vector<Clause> clauses;

  /// Parameters the synthesizer filled in.
  std::uint32_t max_rec_level = 0;
  std::uint32_t expected_messages = 3;  // figure: msgsReceived[recLevel] = 3

  /// Renders the spec in the layout of Figure 4.
  std::string render() const;
};

/// The Figure 4 program for a grid of the given side (power of two):
/// maxrecLevel = log2(side); the expected message count is 3 under the
/// paper's NW-corner mapping (one of the four quad-tree inputs is the
/// leader's own contribution).
ProgramSpec figure4_spec(std::size_t grid_side);

}  // namespace wsn::synthesis
