#include "synthesis/synthesizer.h"

#include <limits>
#include <sstream>

namespace wsn::synthesis {

std::string SynthesisReport::describe() const {
  std::ostringstream os;
  os << "Synthesis report\n"
     << "  regular k-ary tree : " << (regular_kary_tree ? "yes" : "no");
  if (regular_kary_tree) os << " (k = " << arity << ", levels = " << levels << ")";
  os << "\n  leaders aligned    : " << (leaders_aligned ? "yes" : "no")
     << "\n  coverage           : " << (coverage_ok ? "ok" : "VIOLATED")
     << "\n  spatial correlation: " << (spatial_correlation_ok ? "ok" : "VIOLATED")
     << "\n  implementation     : "
     << (use_group_communication ? "group communication middleware"
                                 : "point-to-point send/receive")
     << '\n';
  for (const std::string& n : notes) os << "  note: " << n << '\n';
  return os.str();
}

SynthesisReport synthesize(const taskgraph::QuadTree& tree,
                           const taskgraph::RoleAssignment& mapping,
                           const core::GroupHierarchy& groups) {
  SynthesisReport report;
  const taskgraph::TaskGraph& graph = tree.graph;
  graph.validate();

  // Arity analysis.
  std::uint32_t arity = 0;
  bool uniform = true;
  for (const taskgraph::Task& t : graph.tasks()) {
    if (t.children.empty()) continue;
    const auto k = static_cast<std::uint32_t>(t.children.size());
    if (arity == 0) {
      arity = k;
    } else if (arity != k) {
      uniform = false;
    }
  }
  report.regular_kary_tree = uniform && arity > 0;
  report.arity = uniform ? arity : 0;
  report.levels = graph.height();
  if (!uniform) {
    report.notes.push_back("non-uniform arity: falling back to explicit sends");
  }

  // Constraint checks (the mapping tool's output must be feasible).
  const core::GridTopology& grid = groups.grid();
  report.coverage_ok = taskgraph::check_coverage(graph, mapping, grid).empty();
  report.spatial_correlation_ok =
      taskgraph::check_spatial_correlation(graph, mapping, grid).empty();

  // Leader alignment: each interior task must sit on the level-l leader of
  // its extent, which is what makes Leader(recLevel+1) addressing resolve to
  // the parent's executor at run time.
  report.leaders_aligned = true;
  for (const taskgraph::Task& t : graph.tasks()) {
    if (t.children.empty()) continue;
    core::GridCoord nw{std::numeric_limits<std::int32_t>::max(),
                       std::numeric_limits<std::int32_t>::max()};
    for (taskgraph::TaskId leaf : graph.leaf_descendants(t.id)) {
      const core::GridCoord c = mapping.coord_of[leaf];
      nw.row = std::min(nw.row, c.row);
      nw.col = std::min(nw.col, c.col);
    }
    if (mapping.coord_of[t.id] != groups.leader_of(nw, t.level)) {
      report.leaders_aligned = false;
      report.notes.push_back(
          "interior task not on its block leader; group addressing disabled");
      break;
    }
  }

  report.use_group_communication =
      report.regular_kary_tree && report.leaders_aligned;
  if (report.use_group_communication) {
    report.notes.push_back(
        "parent-child interaction bound to Leader(recLevel+1) middleware calls");
  }
  return report;
}

}  // namespace wsn::synthesis
