// Program synthesis stage (Section 4.3 / design flow of Figure 1).
//
// Input: the mapped task graph. Output: the decision of which middleware
// services implement the graph's interactions, plus the parameters of the
// per-node program. "The structure of the task graph and explicit
// annotations by the application developer are used to determine which of
// the available middleware services (if any) are useful. For instance, in a
// task graph structured as a k-ary tree, the interaction between every
// parent node and its k children can be implemented using a middleware API
// for group communication."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/groups.h"
#include "taskgraph/mapping.h"
#include "taskgraph/quadtree.h"

namespace wsn::synthesis {

/// What the synthesizer decided and why.
struct SynthesisReport {
  /// The graph is a complete k-ary tree with uniform arity.
  bool regular_kary_tree = false;
  std::uint32_t arity = 0;
  std::uint32_t levels = 0;

  /// Every interior task is mapped onto the group leader of its extent at
  /// its level, so parent-child interaction can use Leader(level) group
  /// addressing instead of explicit coordinates.
  bool leaders_aligned = false;

  /// Selected implementation: group communication middleware (true) or
  /// plain point-to-point send/receive (false).
  bool use_group_communication = false;

  /// Mapping constraint check outcomes.
  bool coverage_ok = false;
  bool spatial_correlation_ok = false;

  std::vector<std::string> notes;

  std::string describe() const;
};

/// Analyzes the mapped quad-tree and decides the synthesis strategy. The
/// emitted per-node program is AggregationProgram (program.h) with
/// maxrecLevel = levels; this function validates that the mapping supports
/// its Leader(recLevel+1) addressing.
SynthesisReport synthesize(const taskgraph::QuadTree& tree,
                           const taskgraph::RoleAssignment& mapping,
                           const core::GroupHierarchy& groups);

}  // namespace wsn::synthesis
