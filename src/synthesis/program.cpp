#include "synthesis/program.h"

#include <stdexcept>

namespace wsn::synthesis {

AggregationProgram::AggregationProgram(core::MessageFabric& fabric,
                                       ProgramHooks hooks)
    : fabric_(fabric), hooks_(std::move(hooks)) {
  if (!hooks_.sense || !hooks_.merge || !hooks_.seal || !hooks_.payload_units ||
      !hooks_.exfiltrate) {
    throw std::invalid_argument("AggregationProgram: all hooks are required");
  }
  max_level_ = fabric_.groups().max_level();
  states_.resize(fabric_.grid().node_count());
  for (NodeState& s : states_) {
    s.my_sub_graph.resize(max_level_ + 1);
    s.msgs_received.assign(max_level_ + 1, 0);
    s.merges_done.assign(max_level_ + 1, 0);
    s.contributed.assign(max_level_ + 1, false);
    s.level_sent.assign(max_level_ + 1, false);
  }
  for (const core::GridCoord& c : fabric_.grid().all_coords()) {
    fabric_.set_receiver(c, [this, c](const core::VirtualMessage& msg) {
      on_receive(c, msg);
    });
  }
}

AggregationProgram::~AggregationProgram() {
  for (const core::GridCoord& c : fabric_.grid().all_coords()) {
    fabric_.set_receiver(c, nullptr);
  }
}

void AggregationProgram::start_round() {
  stats_ = RoundStats{};
  for (NodeState& s : states_) {
    s = NodeState{};
    s.my_sub_graph.resize(max_level_ + 1);
    s.msgs_received.assign(max_level_ + 1, 0);
    s.merges_done.assign(max_level_ + 1, 0);
    s.contributed.assign(max_level_ + 1, false);
    s.level_sent.assign(max_level_ + 1, false);
    s.start = true;
  }
  for (const core::GridCoord& c : fabric_.grid().all_coords()) {
    fabric_.simulator().post([this, c]() { on_start(c); });
  }
}

void AggregationProgram::on_start(const core::GridCoord& c) {
  NodeState& s = state(c);
  if (!s.start) return;
  s.start = false;
  // Compute mySubGraph[0] from intra-cell readings, then transmit.
  s.my_sub_graph[0] = hooks_.sense(c);
  const sim::Time lat = fabric_.compute(c, hooks_.sense_ops);
  fabric_.simulator().schedule_in(lat,
                                  [this, c]() { transmit_level(c, 0); });
}

void AggregationProgram::transmit_level(const core::GridCoord& c,
                                        std::uint32_t level) {
  NodeState& s = state(c);
  if (s.level_sent[level]) return;
  s.level_sent[level] = true;

  std::any payload = hooks_.seal(s.my_sub_graph[level], c, level);

  if (level == max_level_) {
    // Final aggregation complete: exfiltrate.
    stats_.finished = true;
    stats_.finished_at = fabric_.simulator().now();
    stats_.exfiltration_node = c;
    result_ = payload;
    hooks_.exfiltrate(c, std::move(payload));
    return;
  }

  const std::uint32_t target_level = level + 1;
  const core::GridCoord leader = fabric_.groups().leader_of(c, target_level);
  if (leader == c) {
    // Self-contribution: "one of the four incoming messages ... is from the
    // node to itself" - no radio, merge locally.
    ++stats_.self_merges;
    hooks_.merge(s.my_sub_graph[target_level], payload);
    const sim::Time lat = fabric_.compute(c, hooks_.merge_ops);
    fabric_.simulator().schedule_in(lat, [this, c, target_level]() {
      state(c).contributed[target_level] = true;
      check_advance(c, target_level);
    });
    return;
  }

  ++stats_.messages_sent;
  const double units = hooks_.payload_units(payload);
  MGraph msg{c, std::make_shared<std::any>(std::move(payload)), target_level};
  fabric_.send(c, leader, std::move(msg), units);
}

void AggregationProgram::on_receive(const core::GridCoord& c,
                                    const core::VirtualMessage& vmsg) {
  const auto msg = std::any_cast<MGraph>(vmsg.payload);
  NodeState& s = state(c);
  // merge(mGraph, mySubGraph[mrecLevel]); msgsReceived[mrecLevel]++
  hooks_.merge(s.my_sub_graph[msg.mrec_level], *msg.msub_graph);
  ++s.msgs_received[msg.mrec_level];
  ++stats_.remote_merges;
  const sim::Time lat = fabric_.compute(c, hooks_.merge_ops);
  const std::uint32_t level = msg.mrec_level;
  fabric_.simulator().schedule_in(lat, [this, c, level]() {
    ++state(c).merges_done[level];
    check_advance(c, level);
  });
}

void AggregationProgram::check_advance(const core::GridCoord& c,
                                       std::uint32_t level) {
  NodeState& s = state(c);
  if (level == 0 || level > max_level_ || s.level_sent[level]) return;
  if (!fabric_.groups().is_leader(c, level)) return;
  // A level-l leader that also leads one of its sub-blocks contributes its
  // own piece locally and expects 3 remote messages (the Figure 4 count,
  // which assumes the paper's NW mapping); otherwise all 4 sub-block pieces
  // arrive over the network. Gating on completed merges keeps the last
  // merge's compute latency on the critical path.
  const bool leads_sub_block = fabric_.groups().is_leader(c, level - 1);
  const std::uint32_t expected_remote = leads_sub_block ? 3 : 4;
  const bool self_ok = !leads_sub_block || s.contributed[level];
  if (s.merges_done[level] == expected_remote && self_ok) {
    transmit_level(c, level);
  }
}

std::string render_figure4() {
  return R"(State (initial values) :
  start(= false), recLevel(= 0), maxrecLevel,
  mySubGraph[1..maxrecLevel](= NULL),
  myCoords, msgsReceived[1..maxrecLevel](= 0)
  transmit(= false)

Message alphabet :
  mGraph = {senderCoord, msubGraph, mrecLevel}

Condition : start = true
Action    : start = false
            compute mySubGraph[recLevel] from intra-cell readings
            transmit = true
            recLevel = recLevel + 1

Condition : received mGraph
Action    : merge(mGraph, mySubGraph[mrecLevel])
            msgsReceived[mrecLevel]++

Condition : transmit = true
Action    : message = {myCoords, mySubGraph, recLevel}
            if (recLevel = maxrecLevel)
              exfiltrate message
            else
              send message to Leader(recLevel+1)
            transmit = false

Condition : msgsReceived[recLevel] = 3
Action    : transmit = true
            recLevel = recLevel + 1
)";
}

}  // namespace wsn::synthesis
