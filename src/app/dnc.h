// In-memory divide-and-conquer labeling: the algorithm of Section 4.1
// executed sequentially (no network), used as the algorithmic reference for
// the distributed runs and for step-complexity measurements.
//
// "Our starting point is an algorithm for topographic querying that runs in
// O(sqrt(N)) steps for a sqrt(N) x sqrt(N) grid, by using a divide and
// conquer strategy."
#pragma once

#include <cstdint>
#include <vector>

#include "app/boundary.h"
#include "app/feature_grid.h"

namespace wsn::app {

/// Counters describing one divide-and-conquer execution.
struct DncStats {
  std::uint32_t levels = 0;        // quad-tree height (log2 side)
  std::uint64_t merges = 0;        // pairwise summary merges performed
  /// Parallel steps as the paper counts them: at every level each group
  /// performs its transfers + merge concurrently, and a level-l transfer
  /// covers 2^(l-1) hops, so steps = sum over levels of (2^(l-1) + 1).
  std::uint64_t steps = 0;
};

/// Builds the boundary summary of the whole grid by recursive quadrant
/// merging (grid side must be a power of two).
BlockSummary dnc_summary(const FeatureGrid& grid, DncStats* stats = nullptr);

/// Full labeling via divide and conquer; the returned regions match
/// label_regions(grid).regions up to ordering.
std::vector<RegionInfo> dnc_label(const FeatureGrid& grid,
                                  DncStats* stats = nullptr);

}  // namespace wsn::app
