// Reference connected-component labeling: the ground truth every in-network
// algorithm is checked against.
//
// A homogeneous (feature) region is a maximal 4-connected set of feature
// cells. This is the classical image-component-labeling problem; the paper's
// in-network algorithm descends from Alnuweiri & Prasanna's parallel
// component labeling work (its reference [3]).
#pragma once

#include <cstdint>
#include <vector>

#include "app/feature_grid.h"
#include "core/grid_topology.h"

namespace wsn::app {

/// Axis-aligned bounding box of a region, in grid coordinates (inclusive).
struct GridBounds {
  std::int32_t row_min = 0;
  std::int32_t col_min = 0;
  std::int32_t row_max = -1;
  std::int32_t col_max = -1;

  void expand(const core::GridCoord& c) {
    if (row_max < row_min) {  // empty
      row_min = row_max = c.row;
      col_min = col_max = c.col;
      return;
    }
    row_min = std::min(row_min, c.row);
    row_max = std::max(row_max, c.row);
    col_min = std::min(col_min, c.col);
    col_max = std::max(col_max, c.col);
  }

  void merge(const GridBounds& o) {
    if (o.row_max < o.row_min) return;
    if (row_max < row_min) {
      *this = o;
      return;
    }
    row_min = std::min(row_min, o.row_min);
    row_max = std::max(row_max, o.row_max);
    col_min = std::min(col_min, o.col_min);
    col_max = std::max(col_max, o.col_max);
  }

  friend bool operator==(const GridBounds&, const GridBounds&) = default;
};

/// A labeled homogeneous region.
struct Region {
  std::uint32_t label = 0;  // 1-based; 0 is background
  std::uint64_t area = 0;
  GridBounds bounds;
};

/// Full labeling result.
struct Labeling {
  std::size_t side = 0;
  /// labels[row * side + col]; 0 = background, regions numbered from 1 in
  /// first-encounter (row-major) order.
  std::vector<std::uint32_t> labels;
  std::vector<Region> regions;

  std::uint32_t label_at(const core::GridCoord& c) const {
    return labels[static_cast<std::size_t>(c.row) * side +
                  static_cast<std::size_t>(c.col)];
  }
  std::size_t region_count() const { return regions.size(); }
};

/// Two-pass union-find connected-component labeling (4-connectivity).
Labeling label_regions(const FeatureGrid& grid);

}  // namespace wsn::app

namespace wsn::app::detail {

/// Minimal union-find used by the labeler and the boundary-merge structure.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n = 0) { reset(n); }

  void reset(std::size_t n) {
    parent_.resize(n);
    rank_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::uint32_t>(i);
  }

  std::uint32_t add() {
    parent_.push_back(static_cast<std::uint32_t>(parent_.size()));
    rank_.push_back(0);
    return parent_.back();
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Unions the sets of a and b; returns the surviving root.
  std::uint32_t unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return a;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return a;
  }

  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> rank_;
};

}  // namespace wsn::app::detail
