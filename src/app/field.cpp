#include "app/field.h"

#include <cmath>

namespace wsn::app {

ScalarField hotspot_field(std::size_t count, sim::Rng& rng) {
  struct Spot {
    double u, v, sigma, amp;
  };
  std::vector<Spot> spots;
  spots.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    spots.push_back({rng.uniform(), rng.uniform(), rng.uniform(0.04, 0.18),
                     rng.uniform(0.6, 1.0)});
  }
  return [spots](double u, double v) {
    double sum = 0.0;
    for (const Spot& s : spots) {
      const double du = u - s.u;
      const double dv = v - s.v;
      sum += s.amp * std::exp(-(du * du + dv * dv) / (2 * s.sigma * s.sigma));
    }
    return sum;
  };
}

ScalarField plume_field(double source_u, double source_v, double wind_angle,
                        double spread, double reach) {
  const double wx = std::cos(wind_angle);
  const double wy = std::sin(wind_angle);
  return [=](double u, double v) {
    const double du = u - source_u;
    const double dv = v - source_v;
    const double along = du * wx + dv * wy;      // downwind distance
    const double across = -du * wy + dv * wx;    // crosswind offset
    if (along < 0) return 0.0;
    const double width = spread * (0.3 + along); // plume widens downwind
    const double decay = std::exp(-along / reach);
    return decay * std::exp(-(across * across) / (2 * width * width));
  };
}

ScalarField gradient_field(double lo, double hi) {
  return [lo, hi](double, double v) { return lo + (hi - lo) * v; };
}

namespace {

// Deterministic lattice hash -> [0,1).
double lattice_value(std::uint64_t seed, std::int64_t x, std::int64_t y) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(y) * 0xc2b2ae3d27d4eb4fULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double smoothstep(double t) { return t * t * (3 - 2 * t); }

double value_noise_octave(std::uint64_t seed, double u, double v,
                          double frequency) {
  const double x = u * frequency;
  const double y = v * frequency;
  const auto x0 = static_cast<std::int64_t>(std::floor(x));
  const auto y0 = static_cast<std::int64_t>(std::floor(y));
  const double fx = smoothstep(x - static_cast<double>(x0));
  const double fy = smoothstep(y - static_cast<double>(y0));
  const double a = lattice_value(seed, x0, y0);
  const double b = lattice_value(seed, x0 + 1, y0);
  const double c = lattice_value(seed, x0, y0 + 1);
  const double d = lattice_value(seed, x0 + 1, y0 + 1);
  return (a * (1 - fx) + b * fx) * (1 - fy) + (c * (1 - fx) + d * fx) * fy;
}

}  // namespace

ScalarField value_noise_field(std::uint64_t seed, std::size_t octaves) {
  return [seed, octaves](double u, double v) {
    double sum = 0.0;
    double amp = 1.0;
    double total = 0.0;
    double freq = 4.0;
    for (std::size_t o = 0; o < octaves; ++o) {
      sum += amp * value_noise_octave(seed + o * 0x51ed2701ULL, u, v, freq);
      total += amp;
      amp *= 0.5;
      freq *= 2.0;
    }
    return sum / total;
  };
}

FeatureGrid threshold_sample(const ScalarField& field, std::size_t side,
                             double threshold) {
  FeatureGrid grid(side);
  const double step = 1.0 / static_cast<double>(side);
  for (std::int32_t r = 0; r < static_cast<std::int32_t>(side); ++r) {
    for (std::int32_t c = 0; c < static_cast<std::int32_t>(side); ++c) {
      const double u = (static_cast<double>(c) + 0.5) * step;
      const double v = (static_cast<double>(r) + 0.5) * step;
      grid.set({r, c}, field(u, v) >= threshold);
    }
  }
  return grid;
}

FeatureGrid random_grid(std::size_t side, double p, sim::Rng& rng) {
  FeatureGrid grid(side);
  for (std::int32_t r = 0; r < static_cast<std::int32_t>(side); ++r) {
    for (std::int32_t c = 0; c < static_cast<std::int32_t>(side); ++c) {
      grid.set({r, c}, rng.chance(p));
    }
  }
  return grid;
}

FeatureGrid empty_grid(std::size_t side) { return FeatureGrid(side); }

FeatureGrid full_grid(std::size_t side) {
  FeatureGrid grid(side);
  for (std::int32_t r = 0; r < static_cast<std::int32_t>(side); ++r) {
    for (std::int32_t c = 0; c < static_cast<std::int32_t>(side); ++c) {
      grid.set({r, c}, true);
    }
  }
  return grid;
}

FeatureGrid checkerboard_grid(std::size_t side) {
  FeatureGrid grid(side);
  for (std::int32_t r = 0; r < static_cast<std::int32_t>(side); ++r) {
    for (std::int32_t c = 0; c < static_cast<std::int32_t>(side); ++c) {
      grid.set({r, c}, (r + c) % 2 == 0);
    }
  }
  return grid;
}

FeatureGrid stripes_grid(std::size_t side, std::size_t period) {
  FeatureGrid grid(side);
  if (period == 0) period = 1;
  for (std::int32_t r = 0; r < static_cast<std::int32_t>(side); ++r) {
    for (std::int32_t c = 0; c < static_cast<std::int32_t>(side); ++c) {
      grid.set({r, c},
               (static_cast<std::size_t>(r) / period) % 2 == 0);
    }
  }
  return grid;
}

FeatureGrid ring_grid(std::size_t side) {
  FeatureGrid grid(side);
  const auto s = static_cast<std::int32_t>(side);
  const std::int32_t lo = s / 4;
  const std::int32_t hi = s - 1 - s / 4;
  for (std::int32_t r = lo; r <= hi; ++r) {
    for (std::int32_t c = lo; c <= hi; ++c) {
      const bool border = r == lo || r == hi || c == lo || c == hi;
      if (border) grid.set({r, c}, true);
    }
  }
  return grid;
}

}  // namespace wsn::app
