#include "app/contours.h"

#include <stdexcept>

#include "app/dnc.h"
#include "app/topographic.h"

namespace wsn::app {

std::string ContourMap::render(const ScalarField& field,
                               std::size_t side) const {
  std::string out;
  out.reserve(side * (side + 1));
  const double step = 1.0 / static_cast<double>(side);
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      const double u = (static_cast<double>(c) + 0.5) * step;
      const double v = (static_cast<double>(r) + 0.5) * step;
      const double reading = field(u, v);
      std::size_t depth = 0;
      for (const ContourLevel& level : levels) {
        if (reading >= level.threshold) ++depth;
      }
      out.push_back(depth == 0
                        ? '.'
                        : static_cast<char>('0' + std::min<std::size_t>(depth, 9)));
    }
    out.push_back('\n');
  }
  return out;
}

std::vector<double> iso_levels(double lo, double hi, std::size_t count) {
  if (count == 0 || hi <= lo) {
    throw std::invalid_argument("iso_levels: need count > 0 and hi > lo");
  }
  std::vector<double> out;
  out.reserve(count);
  const double step = (hi - lo) / static_cast<double>(count + 1);
  for (std::size_t i = 1; i <= count; ++i) {
    out.push_back(lo + static_cast<double>(i) * step);
  }
  return out;
}

ContourMap contour_map(const ScalarField& field, std::size_t side,
                       const std::vector<double>& thresholds) {
  ContourMap map;
  map.levels.reserve(thresholds.size());
  for (double threshold : thresholds) {
    const FeatureGrid grid = threshold_sample(field, side, threshold);
    ContourLevel level;
    level.threshold = threshold;
    level.regions = dnc_label(grid);
    level.feature_area = grid.feature_count();
    map.levels.push_back(std::move(level));
  }
  return map;
}

InNetworkContourResult contour_map_in_network(
    core::MessageFabric& fabric, const ScalarField& field,
    const std::vector<double>& thresholds) {
  InNetworkContourResult result;
  result.map.levels.reserve(thresholds.size());
  const std::size_t side = fabric.grid().side();
  for (double threshold : thresholds) {
    const FeatureGrid grid = threshold_sample(field, side, threshold);
    const double round_start = fabric.simulator().now();
    const auto outcome = run_topographic_query(fabric, grid);
    ContourLevel level;
    level.threshold = threshold;
    level.regions = outcome.regions;
    level.feature_area = grid.feature_count();
    result.map.levels.push_back(std::move(level));
    result.total_latency += outcome.round.finished_at - round_start;
    result.total_messages += outcome.round.messages_sent;
  }
  return result;
}

bool monotone_nesting(const ContourMap& map) {
  for (std::size_t i = 1; i < map.levels.size(); ++i) {
    if (map.levels[i].threshold < map.levels[i - 1].threshold) return false;
    if (map.levels[i].feature_area > map.levels[i - 1].feature_area) {
      return false;
    }
  }
  return true;
}

}  // namespace wsn::app
