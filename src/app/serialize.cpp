#include "app/serialize.h"

#include <stdexcept>

namespace wsn::app {
namespace detail {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(std::span<const std::uint8_t> bytes,
                         std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos >= bytes.size()) {
      throw std::runtime_error("decode_summary: truncated varint");
    }
    const std::uint8_t b = bytes[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) throw std::runtime_error("decode_summary: varint overflow");
  }
  return v;
}

namespace {

void put_edge(std::vector<std::uint8_t>& out,
              const std::vector<BoundaryLabel>& edge) {
  // Run-length encoding: (label, run) pairs. Boundary labels are small and
  // runs of background/one region dominate real fields.
  std::size_t i = 0;
  put_varint(out, edge.size());
  while (i < edge.size()) {
    std::size_t j = i;
    while (j < edge.size() && edge[j] == edge[i]) ++j;
    put_varint(out, edge[i]);
    put_varint(out, j - i);
    i = j;
  }
}

std::vector<BoundaryLabel> get_edge(std::span<const std::uint8_t> bytes,
                                    std::size_t& pos) {
  const std::uint64_t len = get_varint(bytes, pos);
  std::vector<BoundaryLabel> edge;
  edge.reserve(len);
  while (edge.size() < len) {
    const auto label = static_cast<BoundaryLabel>(get_varint(bytes, pos));
    const std::uint64_t run = get_varint(bytes, pos);
    if (run == 0 || edge.size() + run > len) {
      throw std::runtime_error("decode_summary: bad run length");
    }
    edge.insert(edge.end(), run, label);
  }
  return edge;
}

void put_bounds(std::vector<std::uint8_t>& out, const GridBounds& b) {
  put_varint(out, zigzag(b.row_min));
  put_varint(out, zigzag(b.col_min));
  put_varint(out, zigzag(b.row_max));
  put_varint(out, zigzag(b.col_max));
}

GridBounds get_bounds(std::span<const std::uint8_t> bytes, std::size_t& pos) {
  GridBounds b;
  b.row_min = static_cast<std::int32_t>(unzigzag(get_varint(bytes, pos)));
  b.col_min = static_cast<std::int32_t>(unzigzag(get_varint(bytes, pos)));
  b.row_max = static_cast<std::int32_t>(unzigzag(get_varint(bytes, pos)));
  b.col_max = static_cast<std::int32_t>(unzigzag(get_varint(bytes, pos)));
  return b;
}

}  // namespace
}  // namespace detail

std::vector<std::uint8_t> encode_summary(const BlockSummary& s) {
  using detail::put_varint;
  using detail::zigzag;
  std::vector<std::uint8_t> out;
  out.reserve(16 + s.width / 2 + s.height / 2 + 8 * s.open.size() +
              8 * s.closed.size());
  put_varint(out, zigzag(s.row0));
  put_varint(out, zigzag(s.col0));
  put_varint(out, s.width);
  put_varint(out, s.height);
  detail::put_edge(out, s.north);
  detail::put_edge(out, s.south);
  detail::put_edge(out, s.west);
  detail::put_edge(out, s.east);
  put_varint(out, s.open.size());
  for (const auto& [label, info] : s.open) {
    put_varint(out, label);
    put_varint(out, info.area);
    detail::put_bounds(out, info.bounds);
  }
  put_varint(out, s.closed.size());
  for (const RegionInfo& info : s.closed) {
    put_varint(out, info.area);
    detail::put_bounds(out, info.bounds);
  }
  return out;
}

BlockSummary decode_summary(std::span<const std::uint8_t> bytes) {
  using detail::get_varint;
  using detail::unzigzag;
  std::size_t pos = 0;
  BlockSummary s;
  s.row0 = static_cast<std::int32_t>(unzigzag(get_varint(bytes, pos)));
  s.col0 = static_cast<std::int32_t>(unzigzag(get_varint(bytes, pos)));
  s.width = static_cast<std::uint32_t>(get_varint(bytes, pos));
  s.height = static_cast<std::uint32_t>(get_varint(bytes, pos));
  s.north = detail::get_edge(bytes, pos);
  s.south = detail::get_edge(bytes, pos);
  s.west = detail::get_edge(bytes, pos);
  s.east = detail::get_edge(bytes, pos);
  const std::uint64_t open_count = get_varint(bytes, pos);
  for (std::uint64_t i = 0; i < open_count; ++i) {
    const auto label = static_cast<BoundaryLabel>(get_varint(bytes, pos));
    RegionInfo info;
    info.area = get_varint(bytes, pos);
    info.bounds = detail::get_bounds(bytes, pos);
    s.open.emplace(label, info);
  }
  const std::uint64_t closed_count = get_varint(bytes, pos);
  for (std::uint64_t i = 0; i < closed_count; ++i) {
    RegionInfo info;
    info.area = get_varint(bytes, pos);
    info.bounds = detail::get_bounds(bytes, pos);
    s.closed.push_back(info);
  }
  if (pos != bytes.size()) {
    throw std::runtime_error("decode_summary: trailing bytes");
  }
  s.validate();
  return s;
}

std::size_t encoded_size(const BlockSummary& summary) {
  return encode_summary(summary).size();
}

}  // namespace wsn::app
