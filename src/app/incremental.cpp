#include "app/incremental.h"

#include <set>
#include <stdexcept>

namespace wsn::app {
namespace {

struct UpdateMsg {
  std::shared_ptr<BlockSummary> piece;
  std::uint32_t level;
};

}  // namespace

IncrementalAggregator::IncrementalAggregator(core::MessageFabric& fabric,
                                             TopographicConfig config)
    : fabric_(fabric), config_(config) {
  max_level_ = fabric_.groups().max_level();
  const std::size_t n = fabric_.grid().node_count();
  cache_.assign(max_level_, std::vector<QuadCache>(n));
  expected_.assign(max_level_, std::vector<std::uint32_t>(n, 0));
  received_.assign(max_level_, std::vector<std::uint32_t>(n, 0));

  for (const core::GridCoord& c : fabric_.grid().all_coords()) {
    fabric_.set_receiver(c, [this, c](const core::VirtualMessage& vmsg) {
      const auto msg = std::any_cast<UpdateMsg>(vmsg.payload);
      on_update(c, msg.level, *msg.piece);
    });
  }
}

std::size_t IncrementalAggregator::quadrant_of(const BlockSummary& piece,
                                               std::uint32_t level) const {
  const auto parent_side = static_cast<std::int32_t>(1u << level);
  const auto sub_side = parent_side / 2;
  const std::int32_t rel_r = (piece.row0 % parent_side) / sub_side;
  const std::int32_t rel_c = (piece.col0 % parent_side) / sub_side;
  return static_cast<std::size_t>(rel_r * 2 + rel_c);
}

void IncrementalAggregator::deliver_update(const core::GridCoord& target,
                                           std::uint32_t level,
                                           BlockSummary piece, bool via_network,
                                           const core::GridCoord& from) {
  if (!via_network) {
    // Self-contribution: free local hand-off at the current instant.
    fabric_.simulator().post(
        [this, target, level, piece = std::move(piece)]() {
          on_update(target, level, piece);
        });
    return;
  }
  ++stats_.messages;
  const double units = config_.size_model.units(piece);
  UpdateMsg msg{std::make_shared<BlockSummary>(std::move(piece)), level};
  fabric_.send(from, target, std::move(msg), units);
}

void IncrementalAggregator::on_update(const core::GridCoord& self,
                                      std::uint32_t level,
                                      const BlockSummary& piece) {
  const std::size_t idx = fabric_.grid().index_of(self);
  cache_[level - 1][idx].pieces[quadrant_of(piece, level)] = piece;
  ++received_[level - 1][idx];
  if (received_[level - 1][idx] >= expected_[level - 1][idx]) {
    try_reseal(self, level);
  }
}

void IncrementalAggregator::try_reseal(const core::GridCoord& self,
                                       std::uint32_t level) {
  const std::size_t idx = fabric_.grid().index_of(self);
  QuadCache& entry = cache_[level - 1][idx];
  if (!entry.complete()) return;  // cold round still filling in

  // Re-merge the four (partly cached, partly fresh) quadrants.
  stats_.merges += 3;
  const sim::Time lat = fabric_.compute(self, 3.0 * config_.merge_ops);
  BlockSummary sealed = merge4(*entry.pieces[0], *entry.pieces[1],
                               *entry.pieces[2], *entry.pieces[3]);
  fabric_.simulator().schedule_in(
      lat, [this, self, level, sealed = std::move(sealed)]() mutable {
        if (level == max_level_) {
          regions_ = finalize(sealed);
          stats_.finished_at = fabric_.simulator().now();
          return;
        }
        const core::GridCoord target =
            fabric_.groups().leader_of(self, level + 1);
        deliver_update(target, level + 1, std::move(sealed), !(target == self),
                       self);
      });
}

std::pair<std::vector<RegionInfo>, DeltaStats> IncrementalAggregator::round(
    const FeatureGrid& grid) {
  if (grid.side() != fabric_.grid().side()) {
    throw std::invalid_argument("IncrementalAggregator: grid side mismatch");
  }
  stats_ = DeltaStats{};
  for (auto& level : received_) {
    for (auto& v : level) v = 0;
  }
  for (auto& level : expected_) {
    for (auto& v : level) v = 0;
  }

  // Changed leaves: everything on the first round, the status diff after.
  std::vector<core::GridCoord> changed;
  for (const core::GridCoord& c : fabric_.grid().all_coords()) {
    if (!previous_.has_value() || previous_->at(c) != grid.at(c)) {
      changed.push_back(c);
    }
  }
  stats_.full_round = !previous_.has_value();
  stats_.changed_leaves = changed.size();
  previous_ = grid;

  if (max_level_ == 0) {
    // 1x1 grid: the single leaf is the root.
    regions_ = finalize(BlockSummary::leaf({0, 0}, grid.at({0, 0})));
    stats_.finished_at = fabric_.simulator().now();
    return {regions_, stats_};
  }

  if (changed.empty()) {
    // Nothing to do: the cached result stands.
    stats_.finished_at = fabric_.simulator().now();
    return {regions_, stats_};
  }

  // Expected update counts per aggregation point: one per changed child.
  // changed_at[l] = coords of level-l aggregation points with a changed
  // subtree (level 0 = the changed leaves themselves).
  std::set<core::GridCoord> frontier(changed.begin(), changed.end());
  for (std::uint32_t level = 1; level <= max_level_; ++level) {
    std::set<core::GridCoord> next;
    for (const core::GridCoord& child : frontier) {
      const core::GridCoord leader = fabric_.groups().leader_of(child, level);
      ++expected_[level - 1][fabric_.grid().index_of(leader)];
      next.insert(leader);
    }
    frontier = std::move(next);
  }

  // Kickoff: changed leaves re-sense and push their new summary.
  for (const core::GridCoord& leaf : changed) {
    const sim::Time lat = fabric_.compute(leaf, config_.sense_ops);
    BlockSummary piece = BlockSummary::leaf(leaf, grid.at(leaf));
    const core::GridCoord target = fabric_.groups().leader_of(leaf, 1);
    fabric_.simulator().schedule_in(
        lat, [this, leaf, target, piece = std::move(piece)]() mutable {
          deliver_update(target, 1, std::move(piece), !(target == leaf), leaf);
        });
  }

  fabric_.simulator().run();
  return {regions_, stats_};
}

}  // namespace wsn::app
