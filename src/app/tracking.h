// Event-driven target tracking: the scenario Section 4.1 contrasts with the
// static task-graph model - "only the sensor nodes in the vicinity of the
// target (event) perform the sampling and in-network collaborative signal
// processing."
//
// Each round, the nodes whose signal reading exceeds a detection threshold
// form an ad hoc collaboration group, the strongest detector acts as the
// cluster head, the others ship their readings to it, and the head fuses
// them into a weighted-centroid position estimate. Heads hand off as the
// target moves. Energy stays localized along the trajectory, unlike the
// whole-grid sweep of the topographic task graph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/virtual_network.h"
#include "net/geometry.h"

namespace wsn::app {

/// Target signal and detection parameters. Positions use continuous grid
/// coordinates: x = column, y = row, both in [0, side).
struct TrackingConfig {
  double amplitude = 1.0;        // signal strength at zero distance
  double falloff_radius = 2.0;   // distance (cells) at which signal halves
  double detection_threshold = 0.2;
  double reading_units = 1.0;    // message size of one reading
  double fuse_ops_per_reading = 1.0;
};

/// Signal strength of a target at `target` as read by the node at `cell`
/// (inverse-quadratic falloff).
double signal_at(const core::GridCoord& cell, const net::Point& target,
                 const TrackingConfig& config);

/// Per-round tracking outcome.
struct TrackEstimate {
  net::Point true_position;
  net::Point estimate;        // weighted centroid of detector readings
  core::GridCoord head{};     // cluster head (strongest detector)
  std::size_t detectors = 0;  // nodes above threshold
  bool detected = false;      // at least one detector
  double error = 0.0;         // euclidean distance estimate <-> truth
};

struct TrackingResult {
  std::vector<TrackEstimate> rounds;
  std::uint64_t head_handoffs = 0;   // rounds where the head changed
  std::uint64_t messages = 0;        // detector-to-head messages
  double mean_error = 0.0;           // over detected rounds
  std::size_t detected_rounds = 0;
};

/// Piecewise-linear trajectory through `waypoints`, sampled at `rounds`
/// equally spaced instants (inclusive of both endpoints).
std::vector<net::Point> sample_trajectory(std::span<const net::Point> waypoints,
                                          std::size_t rounds);

/// Runs the tracking application on the virtual network: one estimation
/// round per trajectory sample. Drives the simulator to quiescence between
/// rounds; detector messages and fusion costs land in the fabric's ledger.
TrackingResult run_tracking(core::VirtualNetwork& vnet,
                            std::span<const net::Point> trajectory,
                            const TrackingConfig& config = {});

}  // namespace wsn::app
