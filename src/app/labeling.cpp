#include "app/labeling.h"

#include <algorithm>
#include <unordered_map>

namespace wsn::app {

Labeling label_regions(const FeatureGrid& grid) {
  const std::size_t side = grid.side();
  Labeling out;
  out.side = side;
  out.labels.assign(side * side, 0);

  detail::DisjointSets dsu;
  std::vector<std::uint32_t> provisional(side * side, 0);

  // Pass 1: provisional labels, recording equivalences with west/north
  // neighbors (4-connectivity).
  for (std::int32_t r = 0; r < static_cast<std::int32_t>(side); ++r) {
    for (std::int32_t c = 0; c < static_cast<std::int32_t>(side); ++c) {
      if (!grid.at(r, c)) continue;
      const std::size_t idx = static_cast<std::size_t>(r) * side +
                              static_cast<std::size_t>(c);
      const std::uint32_t west =
          c > 0 && grid.at(r, c - 1) ? provisional[idx - 1] : 0;
      const std::uint32_t north =
          r > 0 && grid.at(r - 1, c) ? provisional[idx - side] : 0;
      if (west == 0 && north == 0) {
        provisional[idx] = dsu.add() + 1;  // labels are 1-based
      } else if (west != 0 && north == 0) {
        provisional[idx] = west;
      } else if (west == 0) {
        provisional[idx] = north;
      } else {
        provisional[idx] = std::min(west, north);
        dsu.unite(west - 1, north - 1);
      }
    }
  }

  // Pass 2: canonicalize to dense labels in row-major first-encounter order
  // and accumulate region statistics.
  std::unordered_map<std::uint32_t, std::uint32_t> dense;
  for (std::int32_t r = 0; r < static_cast<std::int32_t>(side); ++r) {
    for (std::int32_t c = 0; c < static_cast<std::int32_t>(side); ++c) {
      const std::size_t idx = static_cast<std::size_t>(r) * side +
                              static_cast<std::size_t>(c);
      if (provisional[idx] == 0) continue;
      const std::uint32_t root = dsu.find(provisional[idx] - 1);
      auto [it, inserted] =
          dense.try_emplace(root, static_cast<std::uint32_t>(dense.size()) + 1);
      const std::uint32_t label = it->second;
      out.labels[idx] = label;
      if (inserted) {
        out.regions.push_back(Region{label, 0, {}});
      }
      Region& region = out.regions[label - 1];
      ++region.area;
      region.bounds.expand({r, c});
    }
  }
  return out;
}

}  // namespace wsn::app
