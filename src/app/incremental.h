// Incremental re-aggregation across sampling rounds.
//
// Section 4.1: "Leaf nodes sample at a known frequency, and every 'round'
// of sampling triggers one execution of the entire task graph." When the
// phenomenon evolves slowly, most leaves resample the same status; this
// engine caches every node's last sealed block summary and, on a new round,
// re-executes the task graph only along root-to-leaf paths containing a
// changed leaf. Unchanged quadrants contribute their cached summaries for
// free, so the message count drops from side^2 - 1 to the number of tree
// edges on changed paths.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "app/boundary.h"
#include "app/feature_grid.h"
#include "app/topographic.h"
#include "core/fabric.h"

namespace wsn::app {

/// Statistics of one incremental round.
struct DeltaStats {
  std::size_t changed_leaves = 0;
  std::uint64_t messages = 0;      // network messages this round
  std::uint64_t merges = 0;        // pairwise summary merges performed
  double finished_at = 0.0;        // simulation time of root completion
  bool full_round = false;         // true for the initial (cold) round
};

/// Event-driven incremental aggregation engine bound to one fabric. The
/// engine owns the fabric's receivers while a round is in flight.
class IncrementalAggregator {
 public:
  IncrementalAggregator(core::MessageFabric& fabric,
                        TopographicConfig config = {});

  /// Runs a round against `grid` (drives the simulator to completion).
  /// The first call is a full round; subsequent calls re-aggregate only
  /// changed paths. Returns the labeled regions and the round statistics.
  std::pair<std::vector<RegionInfo>, DeltaStats> round(const FeatureGrid& grid);

  /// Regions from the most recent round.
  const std::vector<RegionInfo>& regions() const { return regions_; }

 private:
  /// Cache entry of one interior (leader, level) aggregation point: the four
  /// quadrant summaries in NW, NE, SW, SE order.
  struct QuadCache {
    std::array<std::optional<BlockSummary>, 4> pieces;
    bool complete() const {
      for (const auto& p : pieces) {
        if (!p.has_value()) return false;
      }
      return true;
    }
  };

  /// Quadrant position (0 NW, 1 NE, 2 SW, 3 SE) of a child block within its
  /// parent block at `level`.
  std::size_t quadrant_of(const BlockSummary& piece, std::uint32_t level) const;

  void deliver_update(const core::GridCoord& target, std::uint32_t level,
                      BlockSummary piece, bool via_network,
                      const core::GridCoord& from);
  void on_update(const core::GridCoord& self, std::uint32_t level,
                 const BlockSummary& piece);
  void try_reseal(const core::GridCoord& self, std::uint32_t level);

  core::MessageFabric& fabric_;
  TopographicConfig config_;
  std::uint32_t max_level_;

  std::optional<FeatureGrid> previous_;
  /// cache_[level-1][leader grid index] for levels 1..max.
  std::vector<std::vector<QuadCache>> cache_;
  /// Per-round bookkeeping.
  std::vector<std::vector<std::uint32_t>> expected_;  // updates per (lvl,idx)
  std::vector<std::vector<std::uint32_t>> received_;
  std::vector<RegionInfo> regions_;
  DeltaStats stats_;
};

}  // namespace wsn::app
