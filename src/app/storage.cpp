#include "app/storage.h"

#include <stdexcept>

namespace wsn::app {
namespace {

/// Accumulator that tracks how many already-closed regions arrived in the
/// input pieces, so seal() can attribute newly closed regions to this node.
struct CountingAccumulator {
  QuadAccumulator quad;
  std::uint64_t input_closed = 0;
};

}  // namespace

RegionStore run_and_store(core::MessageFabric& fabric, const FeatureGrid& grid,
                          const TopographicConfig& config) {
  if (fabric.grid().side() != grid.side()) {
    throw std::invalid_argument("run_and_store: fabric/grid side mismatch");
  }
  RegionStore store;
  store.closed_here.assign(fabric.grid().node_count(), 0.0);

  synthesis::ProgramHooks hooks;
  hooks.sense_ops = config.sense_ops;
  hooks.merge_ops = config.merge_ops;

  hooks.sense = [&grid](const core::GridCoord& c) -> std::any {
    return BlockSummary::leaf(c, grid.at(c));
  };

  hooks.merge = [](std::any& acc, const std::any& incoming) {
    if (!acc.has_value()) acc = CountingAccumulator{};
    auto& counting = std::any_cast<CountingAccumulator&>(acc);
    const auto& piece = std::any_cast<const BlockSummary&>(incoming);
    counting.input_closed += piece.closed.size();
    counting.quad.add(piece);
  };

  hooks.seal = [&store, &fabric](std::any& acc, const core::GridCoord& self,
                                 std::uint32_t level) -> std::any {
    if (level == 0) {
      return std::any_cast<BlockSummary>(acc);
    }
    auto& counting = std::any_cast<CountingAccumulator&>(acc);
    if (!counting.quad.complete()) {
      throw std::logic_error("run_and_store: quadrant set incomplete");
    }
    BlockSummary sealed = counting.quad.take();
    // Regions in `sealed.closed` either passed through (already closed in a
    // child piece) or closed during this node's merges.
    const std::uint64_t newly_closed =
        sealed.closed.size() - counting.input_closed;
    store.closed_here[fabric.grid().index_of(self)] +=
        static_cast<double>(newly_closed);
    counting.input_closed = 0;
    return sealed;
  };

  hooks.payload_units = [size_model = config.size_model](const std::any& p) {
    return size_model.units(std::any_cast<const BlockSummary&>(p));
  };

  hooks.exfiltrate = [&store, &fabric](const core::GridCoord& c,
                                       std::any payload) {
    const auto& summary = std::any_cast<const BlockSummary&>(payload);
    // Regions still open at the root close here conceptually.
    store.closed_here[fabric.grid().index_of(c)] +=
        static_cast<double>(summary.open.size());
    store.total_regions = finalize(summary).size();
  };

  synthesis::AggregationProgram program(fabric, hooks);
  program.start_round();
  fabric.simulator().run();
  if (!program.finished()) {
    throw std::runtime_error("run_and_store: round did not complete");
  }
  store.gather_round = program.stats();
  return store;
}

core::CollectiveResult count_regions_query(core::MessageFabric& fabric,
                                           const RegionStore& store) {
  // Storage nodes: every node holding a nonzero count.
  std::vector<core::GridCoord> members;
  std::vector<double> values;
  for (std::size_t i = 0; i < store.closed_here.size(); ++i) {
    if (store.closed_here[i] != 0.0) {
      members.push_back(fabric.grid().coord_of(i));
      values.push_back(store.closed_here[i]);
    }
  }
  const core::GridCoord root_leader =
      fabric.groups().leader_of({0, 0}, fabric.groups().max_level());

  core::CollectiveResult result;
  bool done = false;
  if (members.empty()) {
    // No regions anywhere: the answer is 0, known at the root for free.
    result.value = 0.0;
    result.finished = fabric.simulator().now();
    return result;
  }
  core::group_reduce(fabric, members, root_leader, values,
                     core::ReduceOp::kSum, 1.0,
                     [&](const core::CollectiveResult& r) {
                       result = r;
                       done = true;
                     });
  fabric.simulator().run();
  if (!done) {
    throw std::runtime_error("count_regions_query: did not complete");
  }
  return result;
}

}  // namespace wsn::app
