// Wire serialization of boundary summaries.
//
// The cost model charges energy and latency per unit of data, so message
// sizes matter. The SummarySizeModel approximates them; this codec makes
// them exact: a BlockSummary is encoded into the byte layout a real
// implementation would transmit (varint-packed perimeter runs + region
// records), and the byte count feeds the cost model directly. The paper's
// compression argument - boundary descriptions shrink relative to raw data
// as blocks grow - becomes measurable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "app/boundary.h"

namespace wsn::app {

/// Encodes `summary` into a compact byte representation:
///   header: row0, col0 (zigzag varint), width, height (varint)
///   perimeter: run-length encoded labels in canonical scan order
///   open regions: label, area, bounds (varints)
///   closed regions: area, bounds (varints)
std::vector<std::uint8_t> encode_summary(const BlockSummary& summary);

/// Inverse of encode_summary. Throws std::runtime_error on malformed input.
BlockSummary decode_summary(std::span<const std::uint8_t> bytes);

/// Exact wire size in bytes.
std::size_t encoded_size(const BlockSummary& summary);

/// Message-size model backed by the codec: units = bytes / bytes_per_unit.
/// With bytes_per_unit = 16 (a small radio frame payload), a leaf summary
/// costs about one unit, aligning the exact model with the paper's
/// fixed-unit analysis at the leaves while letting interior messages grow
/// with true boundary complexity.
struct ExactSizeModel {
  double bytes_per_unit = 16.0;

  double units(const BlockSummary& s) const {
    return static_cast<double>(encoded_size(s)) / bytes_per_unit;
  }
};

namespace detail {

/// LEB128-style unsigned varint.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint64_t get_varint(std::span<const std::uint8_t> bytes, std::size_t& pos);

/// Zigzag mapping for signed values.
constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace detail

}  // namespace wsn::app
