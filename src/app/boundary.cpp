#include "app/boundary.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace wsn::app {
namespace {

/// Applies `fn(label)` to every distinct perimeter cell of `s` in the
/// canonical order: north edge west->east, east edge north->south (skipping
/// the NE corner already visited), south edge west->east (skipping corners
/// on the east/west columns when height > 1), west edge north->south
/// (skipping corners). Degenerate one-row / one-column extents visit each
/// cell exactly once.
template <typename Fn>
void for_each_perimeter_label(const BlockSummary& s, Fn&& fn) {
  const std::size_t w = s.width;
  const std::size_t h = s.height;
  if (h == 1) {
    for (std::size_t i = 0; i < w; ++i) fn(s.north[i]);
    return;
  }
  if (w == 1) {
    for (std::size_t i = 0; i < h; ++i) fn(s.west[i]);
    return;
  }
  for (std::size_t i = 0; i < w; ++i) fn(s.north[i]);
  for (std::size_t i = 1; i < h; ++i) fn(s.east[i]);
  for (std::size_t i = 0; i + 1 < w; ++i) fn(s.south[i]);
  for (std::size_t i = 1; i + 1 < h; ++i) fn(s.west[i]);
}

/// Renumbers perimeter labels densely (1..k, canonical encounter order) and
/// rebuilds the open map from `stats`. `stats` maps the raw label space used
/// in the edge arrays to region statistics.
void canonicalize(BlockSummary& s,
                  const std::unordered_map<BoundaryLabel, RegionInfo>& stats) {
  std::unordered_map<BoundaryLabel, BoundaryLabel> dense;
  for_each_perimeter_label(s, [&](BoundaryLabel raw) {
    if (raw == 0) return;
    dense.try_emplace(raw, static_cast<BoundaryLabel>(dense.size()) + 1);
  });
  auto remap = [&dense](std::vector<BoundaryLabel>& edge) {
    for (BoundaryLabel& l : edge) {
      if (l != 0) l = dense.at(l);
    }
  };
  remap(s.north);
  remap(s.south);
  remap(s.west);
  remap(s.east);
  s.open.clear();
  for (const auto& [raw, label] : dense) {
    auto it = stats.find(raw);
    if (it == stats.end()) {
      throw std::logic_error("canonicalize: perimeter label without stats");
    }
    s.open.emplace(label, it->second);
  }
}

enum class Adjacency { kHorizontal, kVertical };

/// Determines how `a` and `b` fit together; normalizes so the returned pair
/// is (west-or-north piece, east-or-south piece).
std::pair<Adjacency, bool> classify(const BlockSummary& a,
                                    const BlockSummary& b) {
  const bool same_rows = a.row0 == b.row0 && a.height == b.height;
  const bool same_cols = a.col0 == b.col0 && a.width == b.width;
  if (same_rows &&
      b.col0 == a.col0 + static_cast<std::int32_t>(a.width)) {
    return {Adjacency::kHorizontal, false};
  }
  if (same_rows &&
      a.col0 == b.col0 + static_cast<std::int32_t>(b.width)) {
    return {Adjacency::kHorizontal, true};  // b is the western piece
  }
  if (same_cols &&
      b.row0 == a.row0 + static_cast<std::int32_t>(a.height)) {
    return {Adjacency::kVertical, false};
  }
  if (same_cols &&
      a.row0 == b.row0 + static_cast<std::int32_t>(b.height)) {
    return {Adjacency::kVertical, true};  // b is the northern piece
  }
  throw std::invalid_argument("merge: extents are not edge-adjacent");
}

std::vector<BoundaryLabel> concat(const std::vector<BoundaryLabel>& x,
                                  const std::vector<BoundaryLabel>& y) {
  std::vector<BoundaryLabel> out;
  out.reserve(x.size() + y.size());
  out.insert(out.end(), x.begin(), x.end());
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

}  // namespace

BlockSummary BlockSummary::leaf(const core::GridCoord& c, bool feature) {
  BlockSummary s;
  s.row0 = c.row;
  s.col0 = c.col;
  s.width = 1;
  s.height = 1;
  const BoundaryLabel l = feature ? 1 : 0;
  s.north = s.south = s.west = s.east = {l};
  if (feature) {
    GridBounds b;
    b.expand(c);
    s.open.emplace(1, RegionInfo{1, b});
  }
  return s;
}

BlockSummary BlockSummary::of_rect(const FeatureGrid& grid, std::int32_t row0,
                                   std::int32_t col0, std::uint32_t width,
                                   std::uint32_t height) {
  // Label the sub-rectangle in isolation, then classify regions by whether
  // they touch its perimeter.
  FeatureGrid sub(std::max(width, height));
  // label_regions expects a square grid; use a square canvas with the
  // rectangle placed at the origin (the padding stays background).
  for (std::uint32_t r = 0; r < height; ++r) {
    for (std::uint32_t c = 0; c < width; ++c) {
      sub.set({static_cast<std::int32_t>(r), static_cast<std::int32_t>(c)},
              grid.at(row0 + static_cast<std::int32_t>(r),
                      col0 + static_cast<std::int32_t>(c)));
    }
  }
  const Labeling labeled = label_regions(sub);

  BlockSummary s;
  s.row0 = row0;
  s.col0 = col0;
  s.width = width;
  s.height = height;
  auto local_label = [&](std::uint32_t r, std::uint32_t c) {
    return labeled.label_at({static_cast<std::int32_t>(r),
                             static_cast<std::int32_t>(c)});
  };
  s.north.resize(width);
  s.south.resize(width);
  for (std::uint32_t c = 0; c < width; ++c) {
    s.north[c] = local_label(0, c);
    s.south[c] = local_label(height - 1, c);
  }
  s.west.resize(height);
  s.east.resize(height);
  for (std::uint32_t r = 0; r < height; ++r) {
    s.west[r] = local_label(r, 0);
    s.east[r] = local_label(r, width - 1);
  }

  // Region statistics in global coordinates.
  std::unordered_map<BoundaryLabel, RegionInfo> stats;
  std::vector<bool> touches(labeled.regions.size() + 1, false);
  for (const Region& region : labeled.regions) {
    GridBounds global;
    global.row_min = region.bounds.row_min + row0;
    global.row_max = region.bounds.row_max + row0;
    global.col_min = region.bounds.col_min + col0;
    global.col_max = region.bounds.col_max + col0;
    stats[region.label] = RegionInfo{region.area, global};
    const bool touch = region.bounds.row_min == 0 ||
                       region.bounds.col_min == 0 ||
                       region.bounds.row_max ==
                           static_cast<std::int32_t>(height) - 1 ||
                       region.bounds.col_max ==
                           static_cast<std::int32_t>(width) - 1;
    touches[region.label] = touch;
    if (!touch) s.closed.push_back(stats[region.label]);
  }
  canonicalize(s, stats);
  return s;
}

std::uint64_t BlockSummary::total_area() const {
  std::uint64_t sum = 0;
  for (const auto& [label, info] : open) sum += info.area;
  for (const RegionInfo& info : closed) sum += info.area;
  return sum;
}

std::size_t BlockSummary::boundary_feature_cells() const {
  std::size_t count = 0;
  for_each_perimeter_label(*this,
                           [&](BoundaryLabel l) { count += l != 0 ? 1 : 0; });
  return count;
}

void BlockSummary::validate() const {
  if (width == 0 || height == 0) {
    throw std::logic_error("BlockSummary: empty extent");
  }
  if (north.size() != width || south.size() != width ||
      west.size() != height || east.size() != height) {
    throw std::logic_error("BlockSummary: edge length mismatch");
  }
  if (north.front() != west.front() || north.back() != east.front() ||
      south.front() != west.back() || south.back() != east.back()) {
    throw std::logic_error("BlockSummary: corner labels inconsistent");
  }
  if (height == 1 && north != south) {
    throw std::logic_error("BlockSummary: 1-row extent with north != south");
  }
  if (width == 1 && west != east) {
    throw std::logic_error("BlockSummary: 1-col extent with west != east");
  }
  // Every perimeter label must be an open region and vice versa; labels are
  // dense 1..k.
  std::vector<bool> seen(open.size() + 1, false);
  for_each_perimeter_label(*this, [&](BoundaryLabel l) {
    if (l == 0) return;
    if (!open.contains(l)) {
      throw std::logic_error("BlockSummary: perimeter label not open");
    }
    seen[l] = true;
  });
  for (const auto& [label, info] : open) {
    if (label == 0 || label > open.size()) {
      throw std::logic_error("BlockSummary: open labels not dense");
    }
    if (!seen[label]) {
      throw std::logic_error("BlockSummary: open region not on perimeter");
    }
    if (info.area == 0) {
      throw std::logic_error("BlockSummary: open region with zero area");
    }
  }
  for (const RegionInfo& info : closed) {
    if (info.area == 0) {
      throw std::logic_error("BlockSummary: closed region with zero area");
    }
  }
}

bool BlockSummary::mergeable_with(const BlockSummary& other) const {
  try {
    classify(*this, other);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

std::string BlockSummary::describe() const {
  std::ostringstream os;
  os << width << 'x' << height << " block at (" << row0 << ',' << col0
     << "): " << open.size() << " open, " << closed.size() << " closed";
  return os.str();
}

BlockSummary merge(const BlockSummary& a, const BlockSummary& b) {
  const auto [orientation, swapped] = classify(a, b);
  const BlockSummary& first = swapped ? b : a;   // west or north piece
  const BlockSummary& second = swapped ? a : b;  // east or south piece

  // Raw label space of the merged perimeter: first's labels keep their
  // values; second's labels are offset past them.
  const auto offset = static_cast<BoundaryLabel>(first.open.size());
  auto shift = [offset](const std::vector<BoundaryLabel>& edge) {
    std::vector<BoundaryLabel> out = edge;
    for (BoundaryLabel& l : out) {
      if (l != 0) l += offset;
    }
    return out;
  };

  // Union-find over raw labels 1..first.open.size()+second.open.size();
  // index i represents raw label i+1.
  detail::DisjointSets dsu(first.open.size() + second.open.size());
  auto unite_seam = [&](const std::vector<BoundaryLabel>& edge_first,
                        const std::vector<BoundaryLabel>& edge_second) {
    for (std::size_t i = 0; i < edge_first.size(); ++i) {
      const BoundaryLabel la = edge_first[i];
      const BoundaryLabel lb = edge_second[i];
      if (la != 0 && lb != 0) {
        dsu.unite(la - 1, lb + offset - 1);
      }
    }
  };

  BlockSummary out;
  if (orientation == Adjacency::kHorizontal) {
    unite_seam(first.east, second.west);
    out.row0 = first.row0;
    out.col0 = first.col0;
    out.width = first.width + second.width;
    out.height = first.height;
    out.north = concat(first.north, shift(second.north));
    out.south = concat(first.south, shift(second.south));
    out.west = first.west;
    out.east = shift(second.east);
  } else {
    unite_seam(first.south, second.north);
    out.row0 = first.row0;
    out.col0 = first.col0;
    out.width = first.width;
    out.height = first.height + second.height;
    out.north = first.north;
    out.south = shift(second.south);
    out.west = concat(first.west, shift(second.west));
    out.east = concat(first.east, shift(second.east));
  }

  // Resolve every perimeter label to its union-find root (in raw space).
  auto resolve = [&](std::vector<BoundaryLabel>& edge) {
    for (BoundaryLabel& l : edge) {
      if (l != 0) l = dsu.find(l - 1) + 1;
    }
  };
  resolve(out.north);
  resolve(out.south);
  resolve(out.west);
  resolve(out.east);

  // Accumulate statistics per root.
  std::unordered_map<BoundaryLabel, RegionInfo> stats;
  auto fold = [&](const std::map<BoundaryLabel, RegionInfo>& open,
                  BoundaryLabel label_offset) {
    for (const auto& [label, info] : open) {
      const BoundaryLabel root = dsu.find(label + label_offset - 1) + 1;
      RegionInfo& acc = stats[root];
      acc.area += info.area;
      acc.bounds.merge(info.bounds);
    }
  };
  fold(first.open, 0);
  fold(second.open, offset);

  // Closed regions pass through; groups absent from the merged perimeter
  // close now.
  out.closed = first.closed;
  out.closed.insert(out.closed.end(), second.closed.begin(),
                    second.closed.end());
  std::vector<bool> on_perimeter(dsu.size() + 1, false);
  for_each_perimeter_label(out, [&](BoundaryLabel l) {
    if (l != 0) on_perimeter[l] = true;
  });
  for (const auto& [root, info] : stats) {
    if (!on_perimeter[root]) out.closed.push_back(info);
  }

  canonicalize(out, stats);
  return out;
}

BlockSummary merge4(const BlockSummary& nw, const BlockSummary& ne,
                    const BlockSummary& sw, const BlockSummary& se) {
  return merge(merge(nw, ne), merge(sw, se));
}

std::vector<RegionInfo> finalize(const BlockSummary& root) {
  std::vector<RegionInfo> regions = root.closed;
  for (const auto& [label, info] : root.open) regions.push_back(info);
  return regions;
}

std::uint32_t QuadAccumulator::add(BlockSummary piece) {
  pieces_.push_back(std::move(piece));
  ++received_;
  std::uint32_t merges = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < pieces_.size() && !progressed; ++i) {
      for (std::size_t j = i + 1; j < pieces_.size() && !progressed; ++j) {
        if (pieces_[i].mergeable_with(pieces_[j])) {
          BlockSummary merged = merge(pieces_[i], pieces_[j]);
          pieces_.erase(pieces_.begin() + static_cast<std::ptrdiff_t>(j));
          pieces_[i] = std::move(merged);
          ++merges;
          progressed = true;
        }
      }
    }
  }
  return merges;
}

bool QuadAccumulator::complete() const {
  return received_ == 4 && pieces_.size() == 1;
}

BlockSummary QuadAccumulator::take() {
  if (!complete()) {
    throw std::logic_error("QuadAccumulator: take() before complete");
  }
  BlockSummary out = std::move(pieces_.front());
  pieces_.clear();
  received_ = 0;
  return out;
}

}  // namespace wsn::app
