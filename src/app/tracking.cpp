#include "app/tracking.h"

#include <cmath>
#include <memory>
#include <stdexcept>

namespace wsn::app {

double signal_at(const core::GridCoord& cell, const net::Point& target,
                 const TrackingConfig& config) {
  const net::Point here{static_cast<double>(cell.col),
                        static_cast<double>(cell.row)};
  const double d2 = net::distance_sq(here, target);
  const double r2 = config.falloff_radius * config.falloff_radius;
  return config.amplitude / (1.0 + d2 / r2);
}

std::vector<net::Point> sample_trajectory(std::span<const net::Point> waypoints,
                                          std::size_t rounds) {
  if (waypoints.size() < 2 || rounds < 2) {
    throw std::invalid_argument(
        "sample_trajectory: need >= 2 waypoints and >= 2 rounds");
  }
  // Arc-length parameterization over the polyline.
  std::vector<double> cumulative{0.0};
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    cumulative.push_back(cumulative.back() +
                         net::distance(waypoints[i - 1], waypoints[i]));
  }
  const double total = cumulative.back();
  std::vector<net::Point> out;
  out.reserve(rounds);
  for (std::size_t k = 0; k < rounds; ++k) {
    const double s =
        total * static_cast<double>(k) / static_cast<double>(rounds - 1);
    std::size_t seg = 1;
    while (seg + 1 < cumulative.size() && cumulative[seg] < s) ++seg;
    const double seg_len = cumulative[seg] - cumulative[seg - 1];
    const double t = seg_len > 0 ? (s - cumulative[seg - 1]) / seg_len : 0.0;
    out.push_back(net::Point{
        waypoints[seg - 1].x + t * (waypoints[seg].x - waypoints[seg - 1].x),
        waypoints[seg - 1].y + t * (waypoints[seg].y - waypoints[seg - 1].y)});
  }
  return out;
}

namespace {

struct Reading {
  core::GridCoord cell;
  double signal;
};

}  // namespace

TrackingResult run_tracking(core::VirtualNetwork& vnet,
                            std::span<const net::Point> trajectory,
                            const TrackingConfig& config) {
  TrackingResult result;
  core::GridCoord previous_head{-1, -1};
  double error_sum = 0.0;

  for (const net::Point& target : trajectory) {
    TrackEstimate round;
    round.true_position = target;

    // Detection: purely local threshold test at every node (the event-driven
    // premise - nodes far from the target never transmit).
    std::vector<Reading> detectors;
    for (const core::GridCoord& cell : vnet.grid().all_coords()) {
      const double s = signal_at(cell, target, config);
      if (s >= config.detection_threshold) {
        detectors.push_back({cell, s});
      }
    }
    round.detectors = detectors.size();
    round.detected = !detectors.empty();

    if (round.detected) {
      // Cluster head: strongest signal, ties to the lexicographically
      // smallest coordinate - a local decision all detectors agree on given
      // overheard beacon strengths (we grant them that knowledge, as the
      // state-centric frameworks the paper cites do).
      const Reading* head = &detectors.front();
      for (const Reading& r : detectors) {
        if (r.signal > head->signal ||
            (r.signal == head->signal && r.cell < head->cell)) {
          head = &r;
        }
      }
      round.head = head->cell;
      if (!(round.head == previous_head) && previous_head.row >= 0) {
        ++result.head_handoffs;
      }
      previous_head = round.head;

      // Followers ship readings to the head; the head fuses a weighted
      // centroid once all arrive.
      auto gathered = std::make_shared<std::vector<Reading>>();
      gathered->push_back(*head);
      auto outstanding =
          std::make_shared<std::size_t>(detectors.size() - 1);
      auto estimate = std::make_shared<net::Point>();
      auto fused = std::make_shared<bool>(false);

      auto fuse = [&vnet, gathered, estimate, fused, &config,
                   head_cell = round.head]() {
        const sim::Time lat = vnet.compute(
            head_cell,
            config.fuse_ops_per_reading * static_cast<double>(gathered->size()));
        vnet.simulator().schedule_in(lat, [gathered, estimate, fused]() {
          double wx = 0;
          double wy = 0;
          double w = 0;
          for (const Reading& r : *gathered) {
            wx += r.signal * static_cast<double>(r.cell.col);
            wy += r.signal * static_cast<double>(r.cell.row);
            w += r.signal;
          }
          *estimate = net::Point{wx / w, wy / w};
          *fused = true;
        });
      };

      if (*outstanding == 0) {
        fuse();
      } else {
        vnet.set_receiver(round.head, [gathered, outstanding, fuse,
                                       &result](const core::VirtualMessage& m) {
          gathered->push_back(std::any_cast<Reading>(m.payload));
          ++result.messages;
          if (--*outstanding == 0) fuse();
        });
        for (const Reading& r : detectors) {
          if (r.cell == round.head) continue;
          vnet.send(r.cell, round.head, r, config.reading_units);
        }
      }
      vnet.simulator().run();
      if (!*fused) {
        throw std::runtime_error("run_tracking: fusion did not complete");
      }
      round.estimate = *estimate;
      round.error = net::distance(round.estimate, round.true_position);
      error_sum += round.error;
      ++result.detected_rounds;
      vnet.set_receiver(round.head, nullptr);
    }

    result.rounds.push_back(round);
  }

  result.mean_error = result.detected_rounds > 0
                          ? error_sum / static_cast<double>(result.detected_rounds)
                          : 0.0;
  return result;
}

}  // namespace wsn::app
