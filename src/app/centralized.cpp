#include "app/centralized.h"

#include <memory>
#include <stdexcept>

namespace wsn::app {
namespace {

struct StatusMsg {
  core::GridCoord coord;
  bool feature;
};

}  // namespace

CentralizedOutcome run_centralized_query(core::MessageFabric& fabric,
                                         const FeatureGrid& grid,
                                         const core::GridCoord& sink,
                                         double status_units,
                                         double ops_per_cell) {
  if (fabric.grid().side() != grid.side()) {
    throw std::invalid_argument(
        "run_centralized_query: fabric/grid side mismatch");
  }
  const std::size_t n = fabric.grid().node_count();
  auto outcome = std::make_shared<CentralizedOutcome>();
  auto gathered = std::make_shared<FeatureGrid>(grid.side());
  auto remaining = std::make_shared<std::size_t>(n - 1);
  auto done = std::make_shared<bool>(false);

  gathered->set(sink, grid.at(sink));  // the sink's own reading is local

  fabric.set_receiver(sink, [&fabric, sink, outcome, gathered, remaining, done,
                             ops_per_cell](const core::VirtualMessage& vmsg) {
    const auto msg = std::any_cast<StatusMsg>(vmsg.payload);
    gathered->set(msg.coord, msg.feature);
    ++outcome->messages;
    if (--*remaining == 0) {
      // All statuses in hand: label the field at the sink, charging the
      // whole-grid computation there.
      const double total_ops =
          ops_per_cell * static_cast<double>(gathered->cell_count());
      const sim::Time label_lat = fabric.compute(sink, total_ops);
      fabric.simulator().schedule_in(label_lat, [&fabric, outcome, gathered,
                                                 done]() {
        const Labeling labeled = label_regions(*gathered);
        outcome->regions.reserve(labeled.regions.size());
        for (const Region& r : labeled.regions) {
          outcome->regions.push_back(RegionInfo{r.area, r.bounds});
        }
        outcome->finished_at = fabric.simulator().now();
        *done = true;
      });
    }
  });

  for (const core::GridCoord& c : fabric.grid().all_coords()) {
    if (c == sink) continue;
    fabric.send(c, sink, StatusMsg{c, grid.at(c)}, status_units);
  }

  if (n == 1) {
    // Degenerate single-node network: nothing to gather.
    const sim::Time label_lat = fabric.compute(sink, ops_per_cell);
    fabric.simulator().schedule_in(label_lat, [&fabric, outcome, gathered,
                                               done]() {
      const Labeling labeled = label_regions(*gathered);
      for (const Region& r : labeled.regions) {
        outcome->regions.push_back(RegionInfo{r.area, r.bounds});
      }
      outcome->finished_at = fabric.simulator().now();
      *done = true;
    });
  }

  fabric.simulator().run();
  if (!*done) {
    throw std::runtime_error("run_centralized_query: did not complete");
  }
  return *outcome;
}

}  // namespace wsn::app
