// Region-boundary summaries: the data structure exchanged by the in-network
// divide-and-conquer labeling algorithm (Sections 3.1 and 4).
//
// "At each level of hierarchy, a node receives data from its four children,
// containing a description of the boundaries of feature regions contained
// within the sender's geographic oversight. The boundary information also
// indicates whether the feature region(s) lie entirely within that extent,
// or information from neighboring extents is required to identify the true
// boundary of the feature region."
//
// A BlockSummary describes a rectangular extent by (i) the region label of
// every cell on its perimeter, (ii) statistics (area, bounding box) of every
// OPEN region - one that touches the perimeter and may continue outside -
// and (iii) statistics of every CLOSED region, fully contained and final.
// Two summaries of edge-adjacent rectangles merge by unioning labels across
// the shared seam (a disjoint-set pass over perimeter labels); regions that
// no longer touch the merged perimeter close. This is the maximally
// compressed representation the spatial-correlation constraint exists to
// enable: merging non-adjacent extents would forfeit it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "app/feature_grid.h"
#include "app/labeling.h"

namespace wsn::app {

/// Perimeter label; 0 = background, open regions numbered densely from 1.
using BoundaryLabel = std::uint32_t;

/// Statistics carried per region.
struct RegionInfo {
  std::uint64_t area = 0;
  GridBounds bounds;

  friend bool operator==(const RegionInfo&, const RegionInfo&) = default;
};

/// Boundary description of one rectangular extent.
struct BlockSummary {
  // Extent in grid coordinates.
  std::int32_t row0 = 0;
  std::int32_t col0 = 0;
  std::uint32_t width = 0;   // columns
  std::uint32_t height = 0;  // rows

  // Perimeter labels. north/south run west->east (length width); west/east
  // run north->south (length height). Corner cells appear in two arrays and
  // must agree.
  std::vector<BoundaryLabel> north, south, west, east;

  /// Open regions by label (touch the perimeter; may extend beyond it).
  std::map<BoundaryLabel, RegionInfo> open;
  /// Closed regions (entirely inside; final).
  std::vector<RegionInfo> closed;

  /// Single-cell summary for one point of coverage.
  static BlockSummary leaf(const core::GridCoord& c, bool feature);

  /// Exact summary of an arbitrary sub-rectangle of `grid` (reference
  /// construction used by tests to cross-check merges).
  static BlockSummary of_rect(const FeatureGrid& grid, std::int32_t row0,
                              std::int32_t col0, std::uint32_t width,
                              std::uint32_t height);

  std::size_t open_count() const { return open.size(); }
  std::size_t closed_count() const { return closed.size(); }

  /// Total feature area represented (open + closed).
  std::uint64_t total_area() const;

  /// Number of feature cells on the perimeter (corners counted once).
  std::size_t boundary_feature_cells() const;

  /// Checks structural invariants (corner consistency, open labels present
  /// on the perimeter, dense labeling); throws std::logic_error on failure.
  void validate() const;

  /// True iff `other`'s extent is edge-adjacent to this one (shares a full
  /// east/west or north/south edge), so merge() is defined.
  bool mergeable_with(const BlockSummary& other) const;

  std::string describe() const;
};

/// Merges two edge-adjacent summaries into the summary of their union.
/// Throws std::invalid_argument if the extents are not compatible.
BlockSummary merge(const BlockSummary& a, const BlockSummary& b);

/// Merges four quadrant summaries (NW, NE, SW, SE of one square) via
/// pairwise merges.
BlockSummary merge4(const BlockSummary& nw, const BlockSummary& ne,
                    const BlockSummary& sw, const BlockSummary& se);

/// Closes every open region (used at the root, whose extent has no
/// neighbors) and returns all regions of the extent.
std::vector<RegionInfo> finalize(const BlockSummary& root);

/// Message size model: units of data a summary occupies on the air. The
/// paper's analysis uses fixed-size messages (base only); the data-dependent
/// terms support sensitivity studies on the compression claim.
struct SummarySizeModel {
  double base = 1.0;
  double per_boundary_cell = 0.0;
  double per_open_region = 0.0;

  double units(const BlockSummary& s) const {
    return base +
           per_boundary_cell * static_cast<double>(s.boundary_feature_cells()) +
           per_open_region * static_cast<double>(s.open_count());
  }
};

/// Opportunistically merging accumulator for the four child summaries of a
/// quad-tree node. add() merges edge-adjacent pieces as soon as they are
/// both present ("incoming information is incrementally processed wherever
/// possible", Section 4.3); complete() returns the full block summary once
/// all four quadrants have arrived.
class QuadAccumulator {
 public:
  /// Adds one child summary; returns the number of pairwise merges
  /// performed immediately (0, 1, or 2), which the caller charges as
  /// computation.
  std::uint32_t add(BlockSummary piece);

  bool complete() const;
  std::size_t pieces_received() const { return received_; }

  /// Extracts the merged summary; requires complete().
  BlockSummary take();

 private:
  std::vector<BlockSummary> pieces_;
  std::size_t received_ = 0;
};

}  // namespace wsn::app
