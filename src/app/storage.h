// Distributed storage of labeling results and decoupled query processing
// (Section 3.1): "Once this information is gathered and stored in the
// network, other queries can be answered. For example, a query to count the
// number of regions of interest can obtain and sum the local counts of each
// of the distributed storage nodes. Processing and responding to queries
// could be in most cases decoupled from the actual data gathering and
// boundary estimation process."
//
// During the aggregation round, every merging leader records how many
// regions *closed* at it (became fully interior to its block); the root
// additionally records the regions still open at the end. Each region
// closes at exactly one node, so the counts partition the region set: a
// later count query just sums one small scalar per storage node - far
// cheaper than re-running boundary estimation.
#pragma once

#include <cstdint>
#include <vector>

#include "app/boundary.h"
#include "app/feature_grid.h"
#include "app/topographic.h"
#include "core/fabric.h"
#include "core/primitives.h"

namespace wsn::app {

/// Per-node stored state after one gathering round.
struct RegionStore {
  /// closed_here[grid index] = regions whose boundary estimation finished
  /// at this node (plus, at the exfiltration node, the regions still open
  /// at the root).
  std::vector<double> closed_here;
  /// Ground-truth total (root's final count), for validation.
  std::uint64_t total_regions = 0;
  /// Costs of the gathering round that built the store.
  synthesis::RoundStats gather_round;
};

/// Runs one topographic gathering round on `fabric` and leaves the counting
/// state distributed across the merging leaders.
RegionStore run_and_store(core::MessageFabric& fabric, const FeatureGrid& grid,
                          const TopographicConfig& config = {});

/// Answers "how many regions of interest?" from the distributed store: a
/// convergecast sum of every node's stored count to the root leader (one
/// scalar unit per node; nodes storing nothing contribute zero locally and
/// are excluded from the message pattern). Runs the simulator to
/// completion.
core::CollectiveResult count_regions_query(core::MessageFabric& fabric,
                                           const RegionStore& store);

}  // namespace wsn::app
