// End-to-end topographic querying: binds the Figure 4 program to the
// boundary-summary data structures and runs one identification-and-labeling
// round on any MessageFabric (virtual grid or emulated physical network).
#pragma once

#include <cstdint>
#include <vector>

#include "app/boundary.h"
#include "app/feature_grid.h"
#include "core/fabric.h"
#include "synthesis/program.h"

namespace wsn::app {

struct TopographicConfig {
  SummarySizeModel size_model;
  double sense_ops = 1.0;
  double merge_ops = 1.0;
};

struct TopographicOutcome {
  std::vector<RegionInfo> regions;
  synthesis::RoundStats round;
};

/// Builds the ProgramHooks that implement topographic labeling over `grid`
/// (sense = leaf summary; merge = opportunistic quadrant accumulation; seal
/// = completed block summary; exfiltrate captured by the runner).
synthesis::ProgramHooks topographic_hooks(
    const FeatureGrid& grid, const TopographicConfig& config,
    std::vector<RegionInfo>* regions_out);

/// Runs one full round to completion on `fabric` (drives the simulator) and
/// returns the labeled regions plus execution statistics. The fabric's grid
/// side must equal `grid.side()` and be a power of two.
TopographicOutcome run_topographic_query(core::MessageFabric& fabric,
                                         const FeatureGrid& grid,
                                         const TopographicConfig& config = {});

}  // namespace wsn::app
