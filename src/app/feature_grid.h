// Binary feature status per point of coverage (Section 3.1): "for simplicity
// we assume that a sensor node has a binary status (feature node or not a
// feature node) for the query".
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/grid_topology.h"

namespace wsn::app {

/// Square grid of binary feature flags, indexed by virtual grid coordinate.
class FeatureGrid {
 public:
  explicit FeatureGrid(std::size_t side)
      : side_(side), cells_(side * side, 0) {
    if (side == 0) throw std::invalid_argument("FeatureGrid: side must be >= 1");
  }

  std::size_t side() const { return side_; }
  std::size_t cell_count() const { return cells_.size(); }

  bool at(const core::GridCoord& c) const {
    return cells_[index(c)] != 0;
  }
  bool at(std::int32_t row, std::int32_t col) const {
    return at(core::GridCoord{row, col});
  }

  void set(const core::GridCoord& c, bool feature) {
    cells_[index(c)] = feature ? 1 : 0;
  }

  std::size_t feature_count() const {
    std::size_t n = 0;
    for (std::uint8_t v : cells_) n += v;
    return n;
  }

  bool in_bounds(const core::GridCoord& c) const {
    return c.row >= 0 && c.col >= 0 &&
           c.row < static_cast<std::int32_t>(side_) &&
           c.col < static_cast<std::int32_t>(side_);
  }

  /// ASCII rendering: '#' feature, '.' background. Row 0 on top (north).
  std::string render() const;

 private:
  std::size_t index(const core::GridCoord& c) const {
    if (!in_bounds(c)) throw std::out_of_range("FeatureGrid: out of bounds");
    return static_cast<std::size_t>(c.row) * side_ +
           static_cast<std::size_t>(c.col);
  }

  std::size_t side_;
  std::vector<std::uint8_t> cells_;
};

}  // namespace wsn::app
