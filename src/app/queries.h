// Topographic queries answered from stored region information (Section 3.1):
// counting regions of interest, enumerating regions with areas in a range,
// locating the largest feature, and point membership - the workloads that
// motivate keeping the labeling "gathered and stored in the network" so
// "other queries can be answered" without re-sampling.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "app/boundary.h"

namespace wsn::app {

/// Number of homogeneous regions.
std::size_t count_regions(std::span<const RegionInfo> regions);

/// Total feature area across regions.
std::uint64_t total_feature_area(std::span<const RegionInfo> regions);

/// The region with the largest area (ties: smallest bounding-box origin);
/// nullopt when there are no regions.
std::optional<RegionInfo> largest_region(std::span<const RegionInfo> regions);

/// Regions whose area lies in [min_area, max_area].
std::vector<RegionInfo> regions_with_area(std::span<const RegionInfo> regions,
                                          std::uint64_t min_area,
                                          std::uint64_t max_area);

/// Regions whose bounding box contains the given coordinate (a cheap
/// point-in-region pre-filter; exact membership needs the label grid).
std::vector<RegionInfo> regions_covering(std::span<const RegionInfo> regions,
                                         const core::GridCoord& c);

/// Histogram of region areas with `bucket_count` equal-width buckets over
/// [1, max area]; bucket i counts regions in its range.
std::vector<std::size_t> area_histogram(std::span<const RegionInfo> regions,
                                        std::size_t bucket_count);

}  // namespace wsn::app
