// Multi-level topographic contouring: "the end user might be interested in
// visualizing gradients of sensor readings across the region or other
// queries such as enumeration of regions with sensor readings in a specific
// range" (Section 3.1).
//
// A contour map thresholds the scalar field at K iso-levels and labels the
// homogeneous super-level regions of each, yielding the nested-region
// structure of a topographic map. Each level is one run of the labeling
// machinery; the in-network variant runs K rounds of the synthesized
// program over the same fabric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "app/boundary.h"
#include "app/field.h"
#include "core/fabric.h"

namespace wsn::app {

/// Regions at one iso-level.
struct ContourLevel {
  double threshold = 0.0;
  std::vector<RegionInfo> regions;
  std::uint64_t feature_area = 0;
};

/// A full multi-level contour map.
struct ContourMap {
  std::vector<ContourLevel> levels;  // ascending thresholds

  std::size_t total_regions() const {
    std::size_t n = 0;
    for (const ContourLevel& l : levels) n += l.regions.size();
    return n;
  }

  /// ASCII art: each cell shows the highest level whose threshold the
  /// reading exceeds ('.' below all, then '1'..'9').
  std::string render(const ScalarField& field, std::size_t side) const;
};

/// Evenly spaced thresholds in (lo, hi): K interior cut points.
std::vector<double> iso_levels(double lo, double hi, std::size_t count);

/// Sequential contour map (reference): label each thresholded field
/// directly.
ContourMap contour_map(const ScalarField& field, std::size_t side,
                       const std::vector<double>& thresholds);

/// In-network contour map: one synthesized-program round per iso-level on
/// `fabric`. Produces identical regions; costs accumulate in the fabric's
/// ledger. Returns the map plus the total simulated latency.
struct InNetworkContourResult {
  ContourMap map;
  double total_latency = 0.0;
  std::uint64_t total_messages = 0;
};

InNetworkContourResult contour_map_in_network(
    core::MessageFabric& fabric, const ScalarField& field,
    const std::vector<double>& thresholds);

/// Nesting invariant of super-level sets: the feature area is
/// non-increasing in the threshold. Returns true when it holds.
bool monotone_nesting(const ContourMap& map);

}  // namespace wsn::app
