#include "app/dnc.h"

#include <stdexcept>

#include "core/grid_topology.h"

namespace wsn::app {
namespace {

BlockSummary build(const FeatureGrid& grid, std::int32_t row0, std::int32_t col0,
                   std::uint32_t side, DncStats* stats) {
  if (side == 1) {
    return BlockSummary::leaf({row0, col0},
                              grid.at(row0, col0));
  }
  const std::uint32_t half = side / 2;
  const auto h = static_cast<std::int32_t>(half);
  BlockSummary nw = build(grid, row0, col0, half, stats);
  BlockSummary ne = build(grid, row0, col0 + h, half, stats);
  BlockSummary sw = build(grid, row0 + h, col0, half, stats);
  BlockSummary se = build(grid, row0 + h, col0 + h, half, stats);
  if (stats != nullptr) stats->merges += 3;
  return merge4(nw, ne, sw, se);
}

}  // namespace

BlockSummary dnc_summary(const FeatureGrid& grid, DncStats* stats) {
  if (!core::GridTopology::is_power_of_two(grid.side())) {
    throw std::invalid_argument("dnc_summary: grid side must be a power of two");
  }
  if (stats != nullptr) {
    *stats = DncStats{};
    std::size_t s = grid.side();
    while (s > 1) {
      s >>= 1;
      ++stats->levels;
    }
    for (std::uint32_t level = 1; level <= stats->levels; ++level) {
      stats->steps += (1ULL << (level - 1)) + 1;  // transfer hops + merge
    }
  }
  return build(grid, 0, 0, static_cast<std::uint32_t>(grid.side()), stats);
}

std::vector<RegionInfo> dnc_label(const FeatureGrid& grid, DncStats* stats) {
  return finalize(dnc_summary(grid, stats));
}

}  // namespace wsn::app
