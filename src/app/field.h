// Synthetic scalar fields standing in for the physical phenomenon
// (temperature, contaminant concentration, ...) the sensor network samples.
//
// The paper's case study thresholds sensor readings into binary feature
// status; these generators produce the underlying readings over the unit
// square, which the library samples at each point of coverage. The shapes
// cover the application areas named in Section 3.1: HVAC-style smooth
// gradients, contaminant plumes, and multi-modal hot-spot scenes.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "app/feature_grid.h"
#include "sim/rng.h"

namespace wsn::app {

/// A scalar field over the unit square [0,1)^2; u is east, v is south.
using ScalarField = std::function<double(double u, double v)>;

/// Sum of `count` Gaussian hot spots with random centers, widths and
/// amplitudes drawn from `rng`.
ScalarField hotspot_field(std::size_t count, sim::Rng& rng);

/// An anisotropic plume: Gaussian cross-section around a ray from a source
/// point along a wind direction, decaying with downwind distance.
ScalarField plume_field(double source_u, double source_v, double wind_angle,
                        double spread = 0.08, double reach = 0.9);

/// Linear gradient from `lo` at v=0 (north) to `hi` at v=1 (south).
ScalarField gradient_field(double lo, double hi);

/// Smooth multi-octave value noise (deterministic in `seed`); thresholding
/// it yields organic blob regions.
ScalarField value_noise_field(std::uint64_t seed, std::size_t octaves = 3);

/// Samples `field` at the center of every cell of a `side` x `side` grid and
/// thresholds: feature iff reading >= `threshold`.
FeatureGrid threshold_sample(const ScalarField& field, std::size_t side,
                             double threshold);

/// Uniformly random feature grid: each cell independently a feature with
/// probability `p` (worst-case fragmentation for the labeling algorithm).
FeatureGrid random_grid(std::size_t side, double p, sim::Rng& rng);

/// Named deterministic fixtures used by tests and benches.
FeatureGrid empty_grid(std::size_t side);
FeatureGrid full_grid(std::size_t side);
FeatureGrid checkerboard_grid(std::size_t side);
FeatureGrid stripes_grid(std::size_t side, std::size_t period);
/// A ring (feature cells on the border of a centered square), exercising
/// regions that stay open across many merge levels.
FeatureGrid ring_grid(std::size_t side);

}  // namespace wsn::app
