#include "app/feature_grid.h"

namespace wsn::app {

std::string FeatureGrid::render() const {
  std::string out;
  out.reserve(cell_count() + side_);
  for (std::int32_t r = 0; r < static_cast<std::int32_t>(side_); ++r) {
    for (std::int32_t c = 0; c < static_cast<std::int32_t>(side_); ++c) {
      out.push_back(at(r, c) ? '#' : '.');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace wsn::app
