// Centralized baseline: every point of coverage ships its raw binary status
// to a sink node, which labels the whole field locally. This is the
// "centralized approach" the design flow of Section 2 weighs against divide
// and conquer ("the end user could decide if a divide and conquer approach
// is better than a centralized approach").
#pragma once

#include <cstdint>
#include <vector>

#include "app/boundary.h"
#include "app/feature_grid.h"
#include "app/labeling.h"
#include "core/fabric.h"

namespace wsn::app {

struct CentralizedOutcome {
  std::vector<RegionInfo> regions;
  sim::Time finished_at = 0;
  std::uint64_t messages = 0;
};

/// Runs the baseline to completion on `fabric` (drives the simulator):
/// every non-sink node sends one `status_units` message to `sink`; once all
/// have arrived the sink runs connected-component labeling at
/// `ops_per_cell` per grid cell.
CentralizedOutcome run_centralized_query(core::MessageFabric& fabric,
                                         const FeatureGrid& grid,
                                         const core::GridCoord& sink = {0, 0},
                                         double status_units = 1.0,
                                         double ops_per_cell = 1.0);

}  // namespace wsn::app
