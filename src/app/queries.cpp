#include "app/queries.h"

#include <algorithm>

namespace wsn::app {

std::size_t count_regions(std::span<const RegionInfo> regions) {
  return regions.size();
}

std::uint64_t total_feature_area(std::span<const RegionInfo> regions) {
  std::uint64_t sum = 0;
  for (const RegionInfo& r : regions) sum += r.area;
  return sum;
}

std::optional<RegionInfo> largest_region(std::span<const RegionInfo> regions) {
  if (regions.empty()) return std::nullopt;
  const RegionInfo* best = &regions.front();
  for (const RegionInfo& r : regions.subspan(1)) {
    if (r.area > best->area ||
        (r.area == best->area &&
         std::pair{r.bounds.row_min, r.bounds.col_min} <
             std::pair{best->bounds.row_min, best->bounds.col_min})) {
      best = &r;
    }
  }
  return *best;
}

std::vector<RegionInfo> regions_with_area(std::span<const RegionInfo> regions,
                                          std::uint64_t min_area,
                                          std::uint64_t max_area) {
  std::vector<RegionInfo> out;
  for (const RegionInfo& r : regions) {
    if (r.area >= min_area && r.area <= max_area) out.push_back(r);
  }
  return out;
}

std::vector<RegionInfo> regions_covering(std::span<const RegionInfo> regions,
                                         const core::GridCoord& c) {
  std::vector<RegionInfo> out;
  for (const RegionInfo& r : regions) {
    if (c.row >= r.bounds.row_min && c.row <= r.bounds.row_max &&
        c.col >= r.bounds.col_min && c.col <= r.bounds.col_max) {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<std::size_t> area_histogram(std::span<const RegionInfo> regions,
                                        std::size_t bucket_count) {
  std::vector<std::size_t> buckets(std::max<std::size_t>(bucket_count, 1), 0);
  if (regions.empty()) return buckets;
  std::uint64_t max_area = 0;
  for (const RegionInfo& r : regions) max_area = std::max(max_area, r.area);
  for (const RegionInfo& r : regions) {
    const std::size_t idx = std::min(
        buckets.size() - 1,
        static_cast<std::size_t>((r.area - 1) * buckets.size() / max_area));
    ++buckets[idx];
  }
  return buckets;
}

}  // namespace wsn::app
