#include "app/topographic.h"

#include <stdexcept>

namespace wsn::app {

synthesis::ProgramHooks topographic_hooks(
    const FeatureGrid& grid, const TopographicConfig& config,
    std::vector<RegionInfo>* regions_out) {
  synthesis::ProgramHooks hooks;
  hooks.sense_ops = config.sense_ops;
  hooks.merge_ops = config.merge_ops;

  hooks.sense = [&grid](const core::GridCoord& c) -> std::any {
    return BlockSummary::leaf(c, grid.at(c));
  };

  hooks.merge = [](std::any& acc, const std::any& incoming) {
    if (!acc.has_value()) acc = QuadAccumulator{};
    auto& accumulator = std::any_cast<QuadAccumulator&>(acc);
    accumulator.add(std::any_cast<BlockSummary>(incoming));
  };

  hooks.seal = [](std::any& acc, const core::GridCoord& /*self*/,
                  std::uint32_t level) -> std::any {
    if (level == 0) {
      // Level 0 holds the sensed leaf summary directly.
      return std::any_cast<BlockSummary>(acc);
    }
    auto& accumulator = std::any_cast<QuadAccumulator&>(acc);
    if (!accumulator.complete()) {
      throw std::logic_error("topographic seal: quadrant set incomplete");
    }
    return accumulator.take();
  };

  hooks.payload_units = [size_model = config.size_model](const std::any& p) {
    return size_model.units(std::any_cast<const BlockSummary&>(p));
  };

  hooks.exfiltrate = [regions_out](const core::GridCoord&, std::any payload) {
    if (regions_out != nullptr) {
      *regions_out = finalize(std::any_cast<const BlockSummary&>(payload));
    }
  };

  return hooks;
}

TopographicOutcome run_topographic_query(core::MessageFabric& fabric,
                                         const FeatureGrid& grid,
                                         const TopographicConfig& config) {
  if (fabric.grid().side() != grid.side()) {
    throw std::invalid_argument(
        "run_topographic_query: fabric/grid side mismatch");
  }
  TopographicOutcome outcome;
  synthesis::AggregationProgram program(
      fabric, topographic_hooks(grid, config, &outcome.regions));
  program.start_round();
  fabric.simulator().run();
  if (!program.finished()) {
    throw std::runtime_error("run_topographic_query: round did not complete");
  }
  outcome.round = program.stats();
  return outcome;
}

}  // namespace wsn::app
