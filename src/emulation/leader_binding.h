// Binding virtual processes to physical nodes (Section 5.2).
//
// Within every cell, the node geographically closest to the cell center is
// elected to execute the virtual node's program: each node broadcasts its
// distance delta to the center; on hearing a smaller delta from a same-cell
// neighbor a node clears its ldr flag and re-broadcasts the smaller value;
// inter-cell messages are suppressed. On quiescence exactly one node per
// cell keeps ldr = true.
//
// The paper notes that "residual energy level or more sophisticated metrics
// could also be employed, especially if the role of leader is to be
// periodically rotated" - BindingMetric::kResidualEnergy implements that
// variant for the lifetime experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "emulation/cell_mapper.h"
#include "net/energy.h"
#include "net/link_layer.h"
#include "obs/metrics_registry.h"
#include "sim/trace.h"

namespace wsn::net {
class ReliableChannel;
}

namespace wsn::emulation {

class OverlayNetwork;

/// Which scalar the election minimizes.
enum class BindingMetric : std::uint8_t {
  kDistanceToCenter,  // the paper's choice: align problem and network geometry
  kResidualEnergy,    // elect the node with most remaining energy
};

/// Outcome of one binding execution.
struct BindingResult {
  /// leaders[row * m + col] = physical node bound to virtual node (row,col);
  /// kNoNode for unoccupied cells.
  std::vector<net::NodeId> leaders;
  std::uint64_t broadcasts = 0;
  std::uint64_t suppressed = 0;
  double converged_at = 0.0;
  /// True iff every occupied cell elected exactly one leader.
  bool unique_leaders = true;

  net::NodeId leader_of(const core::GridCoord& cell, std::size_t m) const {
    return leaders[static_cast<std::size_t>(cell.row) * m +
                   static_cast<std::size_t>(cell.col)];
  }
};

/// Registers the audit counts of a completed binding run (by value) under
/// `prefix` in the registry.
inline void register_metrics(obs::MetricsRegistry& registry,
                             const BindingResult& result,
                             const std::string& prefix = "binding") {
  registry.add_gauge(prefix + ".broadcasts", [v = result.broadcasts] {
    return static_cast<double>(v);
  });
  registry.add_gauge(prefix + ".suppressed", [v = result.suppressed] {
    return static_cast<double>(v);
  });
  registry.add_gauge(prefix + ".converged_at",
                     [v = result.converged_at] { return v; });
  registry.add_gauge(prefix + ".unique_leaders", [v = result.unique_leaders] {
    return v ? 1.0 : 0.0;
  });
}

/// Runs the election to quiescence. Ties on the metric break toward the
/// lower node id, making the winner unique and deterministic. Nodes marked
/// down at the link layer do not participate.
BindingResult run_leader_binding(net::LinkLayer& link, const CellMapper& mapper,
                                 BindingMetric metric = BindingMetric::kDistanceToCenter,
                                 double jitter = 0.0);

/// Failover re-election (Section 5.2 maintenance): only cells whose bound
/// leader in `previous` has failed re-run the election among their live
/// members; healthy cells keep their leader. The returned result covers all
/// cells.
BindingResult run_binding_repair(net::LinkLayer& link, const CellMapper& mapper,
                                 const BindingResult& previous,
                                 BindingMetric metric = BindingMetric::kDistanceToCenter,
                                 double jitter = 0.0);

/// Reference (oracle) winner per cell, computed centrally; tests compare the
/// protocol's outcome against this. Pass `link` to exclude down nodes.
std::vector<net::NodeId> oracle_leaders(const CellMapper& mapper,
                                        BindingMetric metric,
                                        const net::EnergyLedger& ledger,
                                        const net::LinkLayer* link = nullptr);

/// Election score of node `id` under `metric` (lower wins, exact ties break
/// toward the lower id). One definition shared by the setup election, the
/// oracle failover reference, and the distributed FailureDetector election,
/// so all three deterministically agree on the same winner.
double binding_score(net::NodeId id, const CellMapper& mapper,
                     BindingMetric metric, const net::EnergyLedger& ledger);

/// ORACLE failover reference: leader re-binding driven by ARQ liveness
/// suspicion plus global knowledge.
///
/// This is the test-only reference implementation the distributed path
/// (emulation::FailureDetector) is cross-checked against: its decisions
/// consult state no real node could have — LinkLayer::is_down and the
/// EnergyLedger of *other* nodes — so it computes the correct answer
/// instantly and for free. Production-shaped recovery is the
/// FailureDetector's message-only heartbeat/lease/election protocol, which
/// converges to the same winner this oracle picks (same (score, id) key).
///
/// Installing a FailoverBinder takes over the channel's on_give_up hook.
/// On each give-up it (1) routes around the unresponsive hop via
/// OverlayNetwork::on_hop_give_up, then (2) checks both frame endpoints: if
/// one is a bound leader that is actually down or depleted, the cell is
/// re-bound immediately to the minimum (score, id) key among its live
/// members — the same deterministic winner the distributed election and
/// oracle_leaders produce — and the overlay's intra-cell tree is rebuilt.
/// A give-up naming a live leader (e.g. during a loss burst) only counts
/// `failover.false_suspicion`; no rebind happens.
///
/// Deliberate cost-model simplification: the failover decision itself is
/// charged no radio energy. Real suspicion would ride on probe traffic; here
/// the give-ups already paid for it, and the announcement cost is omitted so
/// trace-derived energy stays equal to the ledger.
class FailoverBinder {
 public:
  FailoverBinder(net::ReliableChannel& arq, OverlayNetwork& overlay,
                 BindingMetric metric = BindingMetric::kDistanceToCenter);

  /// Successful re-binds performed so far.
  std::uint64_t failovers() const { return failovers_; }
  sim::CounterSet& counters() { return counters_; }

  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "failover") const {
    registry.add_counters(prefix + ".counters", &counters_);
  }

 private:
  void on_give_up(net::NodeId from, net::NodeId to);
  void maybe_rebind(net::NodeId node);

  OverlayNetwork& overlay_;
  BindingMetric metric_;
  std::uint64_t failovers_ = 0;
  sim::CounterSet counters_;
};

}  // namespace wsn::emulation
