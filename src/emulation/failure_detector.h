// Distributed failure detection and in-protocol leader re-election.
//
// PR 3's FailoverBinder recovers crashed leaders by consulting an oracle
// (LinkLayer::is_down / the EnergyLedger of other nodes) — global knowledge
// the paper's Section 5 runtime explicitly denies the nodes. This layer
// replaces the oracle with a protocol: liveness is only ever inferred from
// the presence or absence of messages, every one of which crosses the real
// LinkLayer (through the ReliableChannel when attached), costs energy, and
// appears in traces.
//
// The protocol, per cell:
//
//   * Heartbeat/lease. The bound leader floods a kBeat into its own cell
//     every `heartbeat_period` (unicasts to same-cell neighbors; receivers
//     forward fresh beats on, so one beat reaches the whole connected
//     cell). A follower holding a beat renews its lease for
//     `lease_duration`. Leaders of cells additionally lease *up the
//     hierarchy*: every cell's leader periodically sends a kUpLease,
//     hop-routed over the overlay tables, to the leader of its lowest
//     strict ancestor cell in the GroupHierarchy; the parent tracks a lease
//     per expected child and, when one expires, marks the silent child
//     leader suspected and repairs routes around it.
//
//   * Election. When a follower's lease expires it starts an election for
//     epoch max(known, seen)+1: it floods a kElect carrying its own
//     (score, id) key — the same key the setup election and oracle_leaders
//     minimize — and every live member that hears the flood joins with its
//     own key, so the eventual winner is the minimum key over all live,
//     reachable members: exactly the oracle's answer. Candidates close
//     their election after `election_timeout` plus a score-proportional
//     stagger (the best key closes first); a candidate that closes still
//     holding its own key as the minimum wins: it adopts leadership, bumps
//     the cell's binding epoch, re-binds the overlay (which rebuilds the
//     intra-cell tree and reroutes inter-cell entries around the deposed
//     leader), and floods a kClaim. Losers adopt the claim. A lost claim is
//     repaired by the next lease expiry, which elects at a strictly higher
//     epoch, so stale election state can never deadlock a cell.
//
//   * Proactive handoff. A leader watches its own residual energy (local
//     knowledge: its battery) every beat; when it falls under
//     `handoff_low_water` the leader *solicits a successor* instead of
//     dying in office: it floods a handoff probe — an election for
//     epoch+1 seeded with a sentinel-worst key, so the retiring leader
//     cannot win its own succession — and every live member joins with
//     its (residual energy, binding score, id) key exactly as in a crash
//     election. The best-supplied member claims, re-binds, and the
//     retiring leader gracefully demotes on the claim it itself keeps
//     serving until: a planned transfer costing a handful of frames and
//     zero leaderless time, versus lease-expiry + election after the
//     battery dies mid-round. Elections (planned or not) order candidates
//     by residual energy first, so crash recovery also rotates leadership
//     toward the healthiest member.
//
//   * Rejoin/resync. A recovered follower simply resumes renewing leases
//     from the next beat it hears. A recovered *deposed* leader still
//     beats with its old epoch; the current leader answers stale beats
//     with a kSync carrying the current (leader, epoch), which demotes the
//     returnee. Receipt of any control message from a suspected node is
//     proof of life and clears the overlay suspicion, so false suspicions
//     accumulated during loss bursts or outages heal within about one
//     heartbeat period of the node coming back.
//
// Epochs ("generation numbers on bindings") make rejoin double-count-safe:
// OverlayNetwork::binding_epoch bumps on every rebind, deadline collectives
// stamp contributions with the sender's epoch, and leaders reject stale
// epochs (core/primitives.cpp), so a deposed leader's in-flight
// contribution can never be folded alongside its successor's.
//
// Determinism: all timing derives from the simulator clock and config; the
// only RNG use is the ReliableChannel's retransmit jitter, drawn from the
// simulator's seeded stream. Same seed + same fault plan => byte-identical
// traces (the chaos-soak replay test asserts this).
//
// Observability: control messages are Category::kLink/kReliability traffic
// with flow 0 (uncorrelated background, like ARQ acks); protocol decisions
// emit Category::kReliability "fd.*" events and bump "fd.*" counters.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "emulation/leader_binding.h"
#include "emulation/membership_view.h"
#include "emulation/overlay_network.h"
#include "obs/metrics_registry.h"
#include "sim/fault_plan.h"
#include "sim/trace.h"

namespace wsn::emulation {

struct FailureDetectorConfig {
  /// Interval between a leader's intra-cell heartbeat floods.
  double heartbeat_period = 5.0;
  /// How long one received beat keeps a follower's lease alive. Must cover
  /// several heartbeat periods or sporadic loss triggers spurious elections.
  double lease_duration = 16.0;
  /// How long an election candidate collects keys before closing. Must
  /// cover an intra-cell flood round trip including ARQ retries.
  double election_timeout = 8.0;
  /// Interval between a cell leader's kUpLease renewals to its parent.
  double uplease_period = 10.0;
  /// Parent-side lease on each expected child cell.
  double uplease_duration = 35.0;
  /// Airtime/energy size of one control frame, in data units.
  double beat_size_units = 0.25;
  /// Residual-energy threshold (in energy units) below which a leader
  /// solicits a planned handoff instead of leading until its battery dies.
  /// 0 disables; with infinite budgets residual is +inf and never crosses,
  /// so enabling the knob is free on unbudgeted stacks.
  double handoff_low_water = 0.0;
  /// Interval between a leader's self-stabilization audit floods (kAudit):
  /// each round every member lexicographically reconciles its (leader,
  /// epoch) view against the auditor's PraSLE-style and validates/repairs
  /// its own route-table entries, so *any* reachable state corruption —
  /// repointed leader beliefs, self-crowned impostors, scrambled routes —
  /// converges back to one correct leader per cell within an audit period
  /// plus an election. 0 disables (the default: audits add periodic
  /// traffic, and byte-identical replay of pre-existing seeded runs
  /// requires opting in).
  double audit_period = 0.0;
  /// Live-membership mode: cell beliefs and leader rosters become runtime
  /// state (emulation::MembershipView) maintained and repaired by the same
  /// message machinery — kAudit floods carry a roster digest, defected
  /// beliefs self-heal from local position knowledge, and a node orphaned
  /// in an empty or disconnected cell is *adopted* by the nearest reachable
  /// neighboring cell, whose leader then serves the vacated virtual node by
  /// proxy (zero dark cells). Requires audit_period > 0 for the roster
  /// repair bound to hold. Off by default: byte-identical replay of
  /// pre-existing seeded runs requires opting in.
  bool membership = false;
  /// Election metric; must match the setup binding for the oracle
  /// cross-check to be meaningful.
  BindingMetric metric = BindingMetric::kDistanceToCenter;
};

/// One successful re-election, as recorded at the winner.
struct ClaimRecord {
  core::GridCoord cell;
  std::uint64_t epoch = 0;
  net::NodeId winner = net::kNoNode;
  net::NodeId old_leader = net::kNoNode;
  sim::Time at = 0.0;
  /// True when the old leader solicited this succession (proactive
  /// handoff) rather than being voted out after a lease expiry.
  bool planned = false;
};

/// One orphan adoption, as recorded at the orphan when it defected.
struct AdoptionRecord {
  net::NodeId node = net::kNoNode;
  core::GridCoord from{-1, -1};  // the cell the orphan abandoned
  core::GridCoord to{-1, -1};    // the adopter cell it joined
  sim::Time at = 0.0;
};

class FailureDetector {
 public:
  /// The overlay must outlive the detector. When the overlay has an ARQ
  /// channel attached, the detector takes over its on_give_up hook (route
  /// repair on hop give-up); install it instead of a FailoverBinder, not in
  /// addition to one.
  FailureDetector(OverlayNetwork& overlay, FailureDetectorConfig cfg = {});
  /// Detaches the membership view from the overlay (the overlay outlives
  /// the detector and must not dangle into it).
  ~FailureDetector();

  /// Seeds every node's view from the converged setup binding (the result
  /// the Section 5.2 protocol announced to all members) and starts the
  /// heartbeat/lease timers. While running, the simulator's queue never
  /// drains — drive it with run_until(), then stop().
  void start();

  /// Stops all periodic timers; already-scheduled firings become no-ops, so
  /// Simulator::run() terminates again.
  void stop();

  bool running() const { return running_; }

  /// Node `i`'s current belief of its cell's leader / binding epoch —
  /// local per-node protocol state, exposed for tests and audits.
  net::NodeId believed_leader(net::NodeId i) const {
    return believed_leader_[i];
  }
  std::uint64_t epoch_view(net::NodeId i) const { return epoch_[i]; }

  /// Every successful re-election so far, in commit order.
  const std::vector<ClaimRecord>& claims() const { return claims_; }

  /// Planned successions committed so far (claims with planned == true).
  std::size_t planned_handoffs() const;

  /// The live membership view, or nullptr when membership mode is off or
  /// the detector has not started.
  const MembershipView* membership_view() const { return membership_.get(); }

  /// Every orphan adoption so far, in commit order (membership mode only).
  const std::vector<AdoptionRecord>& adoptions() const { return adoptions_; }

  /// Vacated cells re-bound to a proxy leader so far (membership mode).
  std::uint64_t adopt_binds() const { return adopt_binds_; }

  /// Membership end-state audit (test/assert only — consults is_down):
  /// cells whose bound virtual node is missing or dead (a dark cell
  /// adoption failed to cover), cells where a live node's belief is absent
  /// from the believed cell's roster, and cells whose roster lists a live
  /// node that believes elsewhere. Empty once reconciliation and adoption
  /// have settled; dead nodes' frozen beliefs and roster entries are
  /// ignored. Always empty when membership mode is off.
  std::vector<core::GridCoord> membership_violations() const;

  /// Makes `cell`'s current leader solicit a handoff now, regardless of its
  /// residual energy — the operator/test entry point for planned
  /// maintenance. Returns false when the cell has no live, self-believing
  /// leader to retire (nothing was sent).
  bool request_handoff(const core::GridCoord& cell);

  /// Split-brain audit (test/assert only — consults is_down): cells where
  /// two live nodes both believe they lead at the same epoch.
  std::vector<core::GridCoord> split_brains() const;

  /// End-state convergence audit (test/assert only — consults is_down):
  /// cells whose live members do not all agree on one (leader, epoch), or
  /// whose agreed leader is not itself live and self-believing. Empty once
  /// self-stabilization has completed; the corruption soak asserts exactly
  /// that after the stabilization bound. Cells with no live members are
  /// skipped (an empty cell has no view to agree on).
  std::vector<core::GridCoord> unconverged_cells() const;

  /// Deterministically scrambles `node`'s soft protocol state (the
  /// FaultInjector's state_corruption applier): the concrete wrong values
  /// are drawn from the simulator's seeded RNG, so seed + plan reproduce
  /// the exact corrupted state. Returns false (and does nothing) when the
  /// detector is stopped or the node is down. Emits an "fd.corrupt" trace
  /// event carrying the target name and the analytic stabilization bound,
  /// which the check_stabilization invariant keys off.
  bool inject_corruption(net::NodeId node, sim::CorruptionTarget target);

  /// Analytic re-convergence bound after one inject_corruption: worst case
  /// is a lease poisoned up to two lease durations ahead, plus a full
  /// election close (timeout + maximum stagger), plus one audit round for
  /// the views only reconciliation can repair, plus flood/ARQ slack. In
  /// membership mode one more audit round is added (the roster-repair
  /// term): a scrambled roster is only detected and reinstated when the
  /// next audit digest crosses it, which can land a full period after the
  /// leader-view repair the first round bought.
  double stabilization_bound() const {
    return 2.5 * cfg_.lease_duration + 1.5 * cfg_.election_timeout +
           cfg_.audit_period + (cfg_.membership ? cfg_.audit_period : 0.0) +
           10.0;
  }

  sim::CounterSet& counters() { return counters_; }

  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "fd") const {
    registry.add_counters(prefix + ".counters", &counters_);
    registry.add_gauge(prefix + ".elections", [this] {
      return static_cast<double>(claims_.size());
    });
  }

 private:
  struct FdMsg;  // wire format of all control frames (cpp-local layout use)

  sim::Simulator& sim() { return overlay_.simulator(); }
  net::LinkLayer& link() { return overlay_.link(); }
  const CellMapper& mapper() const { return overlay_.mapper(); }

  void on_control(net::NodeId at, const net::Packet& pkt);
  void handle(net::NodeId at, const FdMsg& msg,
              net::NodeId from = net::kNoNode);
  void adopt(net::NodeId i, net::NodeId leader, std::uint64_t epoch);
  void renew_lease(net::NodeId i);
  void arm_watchdog(net::NodeId i);
  void on_watchdog(net::NodeId i);
  void start_election(net::NodeId i);
  void close_election(net::NodeId i, std::uint64_t target);
  void win_election(net::NodeId w, std::uint64_t epoch);
  void maybe_handoff(net::NodeId leader);
  void start_handoff(net::NodeId leader);
  void beat(net::NodeId leader);
  void audit(net::NodeId leader);
  void uplease(std::size_t cell_idx);
  void uplease_send(std::size_t cell_idx);
  void arm_child_watchdog(std::size_t cell_idx);
  void flood(net::NodeId from, const FdMsg& msg);
  void route_control(net::NodeId at, const FdMsg& msg, bool first_hop,
                     net::NodeId from = net::kNoNode);
  /// Node's cell for protocol purposes: the live belief in membership mode,
  /// the geometric cell otherwise.
  core::GridCoord cell_view(net::NodeId i) const;
  void rebuild_cell_neighbors(net::NodeId i);
  /// Moves `i`'s belief (and roster listing) to `to`, refreshing the
  /// same-cell neighbor lists of `i` and everyone in radio range of it.
  void move_belief(net::NodeId i, const core::GridCoord& to);
  /// Self-check against local knowledge (own position + terrain): snaps a
  /// corruption-defected belief back to the geometric cell. Deliberate
  /// adoptions are exempt. Returns true when a belief was healed.
  bool heal_belief(net::NodeId i);
  /// Component-based orphan adoption: after a full lease of total cell
  /// silence, join the nearest reachable neighboring cell instead of
  /// electing over a component of one. Returns false when fully isolated.
  bool try_adopt(net::NodeId i);
  /// Re-binds a vacated cell's virtual node to `proxy` (an adopter or
  /// parent leader living elsewhere), restoring coverage.
  void adopt_bind(net::NodeId proxy, const core::GridCoord& cell);
  double score(net::NodeId i) const;
  double residual(net::NodeId i) const;
  void trace_fd(const char* name, net::NodeId node,
                std::vector<obs::Attr> attrs);

  OverlayNetwork& overlay_;
  FailureDetectorConfig cfg_;
  bool running_ = false;
  /// Bumped on every start(); stale timer closures compare and bail, so a
  /// stop()/start() cycle cannot resurrect old state.
  std::uint64_t run_gen_ = 0;

  // Per-node protocol state (all message-learned after start()'s snapshot
  // of the announced setup binding).
  std::vector<net::NodeId> believed_leader_;
  std::vector<std::uint64_t> epoch_;
  std::vector<sim::Time> lease_expiry_;
  std::vector<bool> watchdog_armed_;
  std::vector<bool> was_down_;  // reboot observed; next up-watchdog rejoins
  std::vector<std::uint64_t> beat_seq_;        // own sequence, as leader
  std::vector<std::uint64_t> seen_beat_epoch_;  // flood dedup highwater
  std::vector<std::uint64_t> seen_beat_seq_;
  std::vector<std::uint64_t> audit_seq_;         // own sequence, as auditor
  std::vector<std::uint64_t> seen_audit_epoch_;  // audit dedup highwater
  std::vector<std::uint64_t> seen_audit_seq_;
  /// Epoch-regression responses are muted per node between floods so one
  /// regressed leader's beat burst doesn't trigger O(degree^2) syncs.
  std::vector<sim::Time> regress_mute_until_;
  std::vector<std::uint64_t> elect_epoch_;  // target epoch; 0 = idle
  std::vector<double> elect_best_score_;
  std::vector<double> elect_best_residual_;
  std::vector<net::NodeId> elect_best_id_;
  std::vector<bool> elect_close_armed_;
  std::vector<bool> elect_handoff_;  // current election is a planned handoff
  std::vector<sim::Time> next_handoff_ok_;  // retry cooldown, per leader
  /// Same-cell neighbor lists (local knowledge: radio range + own cell).
  std::vector<std::vector<net::NodeId>> cell_neighbors_;

  // Membership mode (cfg_.membership): live beliefs/rosters plus the
  // adoption machinery. membership_ is null when the mode is off, and
  // every membership code path is gated on it, so default-config behavior
  // stays byte-identical.
  std::unique_ptr<MembershipView> membership_;
  /// Last time a same-cell control frame reached the node — the silence
  /// clock behind orphan detection (a follower that closes an election
  /// after a full lease of total cell silence is alone in its cell).
  std::vector<sim::Time> last_cell_frame_;
  /// Nodes whose belief deliberately differs from geometry (adopted
  /// orphans); heal_belief leaves these alone.
  std::vector<bool> adopted_;
  std::vector<AdoptionRecord> adoptions_;
  std::uint64_t adopt_binds_ = 0;

  // Per-cell state, row-major by cell index.
  std::vector<net::NodeId> cell_leader_;  // latest committed claimant
  std::vector<std::int32_t> parent_of_;   // parent cell index; -1 for root
  std::vector<sim::Time> child_expiry_;
  std::vector<bool> child_suspected_;
  std::vector<bool> child_watchdog_armed_;
  std::vector<net::NodeId> child_last_leader_;
  std::vector<bool> has_children_;

  std::vector<ClaimRecord> claims_;
  sim::CounterSet counters_;
};

}  // namespace wsn::emulation
