#include "emulation/failure_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "net/reliable_link.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace wsn::emulation {

/// Wire format of every control frame. `cell` is the subject cell (the
/// flood's own cell, or the child cell of an uplease); `dst_cell` is only
/// used by hop-routed upleases.
struct FailureDetector::FdMsg {
  enum Kind : std::uint8_t {
    kBeat, kElect, kClaim, kSync, kUpLease, kAudit, kJoin
  };
  Kind kind = kBeat;
  core::GridCoord cell{0, 0};
  core::GridCoord dst_cell{0, 0};
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;              // beats: per-leader sequence
  net::NodeId leader = net::kNoNode;  // beat/claim/sync/uplease: the leader
  net::NodeId old_leader = net::kNoNode;  // claim: the deposed leader
  double score = 0.0;                     // elect: best key's score so far
  net::NodeId origin = net::kNoNode;      // elect: best key's node id
                                          // join: the orphan
  double residual = 0.0;                  // elect: best key's residual energy
  bool handoff = false;                   // elect: solicited by the leader
  // Membership mode only (zero/defaulted otherwise):
  core::GridCoord src_cell{-1, -1};   // sender's cell belief; join: the
                                      // cell the orphan abandoned
  std::uint64_t roster_digest = 0;    // audit: digest of the leader's roster
  std::uint32_t roster_size = 0;      // audit: entries behind the digest
  bool last = false;  // join: orphan's evidence it was the cell's last
                      // reachable member (a full lease of total silence)
  OverlayNetwork::RouteState route{};  // hop-routed frames: detour state
};

namespace {

/// Lexicographic election key order: more residual energy wins first (so
/// recovery rotates leadership toward the best-supplied member; on
/// unbudgeted stacks every residual is +inf and the term ties out), then
/// lower binding score, then lower id.
bool key_less(double ra, double sa, net::NodeId ia, double rb, double sb,
              net::NodeId ib) {
  if (ra != rb) return ra > rb;
  if (sa != sb) return sa < sb;
  return ia < ib;
}

}  // namespace

FailureDetector::FailureDetector(OverlayNetwork& overlay,
                                 FailureDetectorConfig cfg)
    : overlay_(overlay), cfg_(cfg) {}

FailureDetector::~FailureDetector() {
  if (overlay_.membership_view() == membership_.get()) {
    overlay_.set_membership_view(nullptr);
  }
}

core::GridCoord FailureDetector::cell_view(net::NodeId i) const {
  return membership_ != nullptr ? membership_->cell_of(i)
                                : mapper().cell_of(i);
}

void FailureDetector::rebuild_cell_neighbors(net::NodeId i) {
  cell_neighbors_[i].clear();
  for (net::NodeId v : link().graph().neighbors(i)) {
    if (cell_view(v) == cell_view(i)) cell_neighbors_[i].push_back(v);
  }
}

void FailureDetector::move_belief(net::NodeId i, const core::GridCoord& to) {
  membership_->set_cell_of(i, to);
  adopted_[i] = !(to == mapper().cell_of(i));
  rebuild_cell_neighbors(i);
  for (net::NodeId v : link().graph().neighbors(i)) rebuild_cell_neighbors(v);
}

bool FailureDetector::heal_belief(net::NodeId i) {
  if (membership_ == nullptr || adopted_[i]) return false;
  const core::GridCoord truth = mapper().cell_of(i);
  if (membership_->cell_of(i) == truth) return false;
  // Every node can recompute its cell from its own (x, y) and the terrain
  // (Section 5.1 local knowledge), so a defected belief is detectable the
  // moment the node inspects it — PraSLE-style local checking. Adopted
  // orphans never reach this: their divergence is deliberate.
  const core::GridCoord was = membership_->cell_of(i);
  move_belief(i, truth);
  counters_.add("fd.member_heal");
  trace_fd("fd.member_heal", i,
           {{"from_row", static_cast<std::int64_t>(was.row)},
            {"from_col", static_cast<std::int64_t>(was.col)},
            {"row", static_cast<std::int64_t>(truth.row)},
            {"col", static_cast<std::int64_t>(truth.col)}});
  // Re-anchor on the true cell's announced binding; the next beat corrects
  // any staleness via adopt-if-newer.
  const std::size_t ci = overlay_.grid().index_of(truth);
  believed_leader_[i] = cell_leader_[ci];
  epoch_[i] = overlay_.binding_epoch(truth);
  last_cell_frame_[i] = sim().now();
  if (believed_leader_[i] != i) renew_lease(i);
  return true;
}

bool FailureDetector::try_adopt(net::NodeId i) {
  // Component-based re-formation (the clustering scheme in PAPERS.md):
  // candidates are the belief cells of the node's live-looking radio
  // neighbors — local knowledge only. "Nearest" is the geometric distance
  // to the candidate cell's center; ties break on the iteration order of
  // the (id-sorted) neighbor list, so the choice is deterministic.
  const core::GridCoord here = cell_view(i);
  const net::Point& pos = link().graph().position(i);
  core::GridCoord best{-1, -1};
  net::NodeId gateway = net::kNoNode;
  double best_d = std::numeric_limits<double>::infinity();
  for (net::NodeId v : link().graph().neighbors(i)) {
    const core::GridCoord c = cell_view(v);
    if (c == here || overlay_.is_suspected(v)) continue;
    const net::Point ctr = mapper().cell_center(c);
    const double dx = ctr.x - pos.x;
    const double dy = ctr.y - pos.y;
    const double d = dx * dx + dy * dy;
    if (d < best_d) {
      best_d = d;
      best = c;
      gateway = v;
    }
  }
  if (gateway == net::kNoNode) {
    // Fully isolated: nobody to defect to. Stay put; the next lease cycle
    // retries (a recovery may restore a neighbor).
    counters_.add("fd.stranded");
    trace_fd("fd.stranded", i,
             {{"row", static_cast<std::int64_t>(here.row)},
              {"col", static_cast<std::int64_t>(here.col)}});
    return false;
  }
  move_belief(i, best);
  adoptions_.push_back({i, here, best, sim().now()});
  counters_.add("fd.adopt");
  trace_fd("fd.adopt", i,
           {{"from_row", static_cast<std::int64_t>(here.row)},
            {"from_col", static_cast<std::int64_t>(here.col)},
            {"row", static_cast<std::int64_t>(best.row)},
            {"col", static_cast<std::int64_t>(best.col)},
            {"last", static_cast<std::uint64_t>(1)},
            {"bound", stabilization_bound()}});
  // Join the adopter cell's protocol: anchor on its announced binding and
  // hang off its intra-cell tree, then announce the adoption to its leader
  // (one hop to the gateway, then a climb).
  const std::size_t di = overlay_.grid().index_of(best);
  believed_leader_[i] = cell_leader_[di];
  epoch_[i] = overlay_.binding_epoch(best);
  elect_epoch_[i] = 0;
  renew_lease(i);
  last_cell_frame_[i] = sim().now();
  overlay_.refresh_cell_tree(best);
  FdMsg join;
  join.kind = FdMsg::kJoin;
  join.cell = best;
  join.src_cell = here;
  join.origin = i;
  join.last = true;  // the silence criterion IS the evidence
  overlay_.send_control(i, gateway, join, cfg_.beat_size_units);
  return true;
}

void FailureDetector::adopt_bind(net::NodeId proxy,
                                 const core::GridCoord& cell) {
  const std::size_t ci = overlay_.grid().index_of(cell);
  if (cell_leader_[ci] == proxy && overlay_.bound_node(cell) == proxy) {
    return;  // already proxied here
  }
  cell_leader_[ci] = proxy;
  // Binding a proxy asserts the cell has no live members left: every relay
  // listed in its roster is gone, so traffic must route around the dead
  // cell *now*. Waiting for the ARQ give-up backoff (tens of time units
  // per blackholed gateway) would stall upleases from every cell whose
  // dimension-order path crosses the hole, cascading spurious suspicion
  // far past the stabilization bound. A wrongly-purged survivor is
  // restored by proof of life: any control frame it sends clears the
  // suspicion again.
  if (membership_ != nullptr) {
    for (net::NodeId r : membership_->roster(cell)) {
      if (r != proxy && !overlay_.is_suspected(r)) {
        overlay_.on_hop_give_up(proxy, r);
      }
    }
  }
  const std::uint64_t epoch = overlay_.binding_epoch(cell) + 1;
  overlay_.rebind(cell, proxy, epoch);
  ++adopt_binds_;
  counters_.add("fd.adopt_bind");
  trace_fd("fd.adopt_bind", proxy,
           {{"row", static_cast<std::int64_t>(cell.row)},
            {"col", static_cast<std::int64_t>(cell.col)},
            {"epoch", epoch}});
}

double FailureDetector::score(net::NodeId i) const {
  return binding_score(i, overlay_.mapper(), cfg_.metric,
                       overlay_.link().ledger());
}

double FailureDetector::residual(net::NodeId i) const {
  return overlay_.link().ledger().remaining(i);
}

void FailureDetector::trace_fd(const char* name, net::NodeId node,
                               std::vector<obs::Attr> attrs) {
  auto& tr = obs::tracer();
  if (!tr.enabled(obs::Category::kReliability)) return;
  tr.emit({sim().now(), static_cast<std::int64_t>(node),
           obs::Category::kReliability, 'i', name, 0, std::move(attrs)});
}

void FailureDetector::start() {
  ++run_gen_;
  running_ = true;
  const std::size_t n = link().graph().node_count();
  const std::size_t side = mapper().grid_side();
  const std::size_t cells = side * side;
  const auto& grid = overlay_.grid();
  const auto& groups = overlay_.groups();
  const sim::Time now = sim().now();

  believed_leader_.assign(n, net::kNoNode);
  epoch_.assign(n, 0);
  lease_expiry_.assign(n, 0.0);
  watchdog_armed_.assign(n, false);
  was_down_.assign(n, false);
  beat_seq_.assign(n, 0);
  seen_beat_epoch_.assign(n, 0);
  seen_beat_seq_.assign(n, 0);
  audit_seq_.assign(n, 0);
  seen_audit_epoch_.assign(n, 0);
  seen_audit_seq_.assign(n, 0);
  regress_mute_until_.assign(n, 0.0);
  elect_epoch_.assign(n, 0);
  elect_best_score_.assign(n, 0.0);
  elect_best_residual_.assign(n, 0.0);
  elect_best_id_.assign(n, net::kNoNode);
  elect_close_armed_.assign(n, false);
  elect_handoff_.assign(n, false);
  next_handoff_ok_.assign(n, 0.0);
  membership_.reset();
  if (cfg_.membership) {
    membership_ = std::make_unique<MembershipView>(mapper());
  }
  overlay_.set_membership_view(membership_.get());
  last_cell_frame_.assign(n, now);
  adopted_.assign(n, false);
  adoptions_.clear();
  adopt_binds_ = 0;
  cell_neighbors_.assign(n, {});
  for (net::NodeId i = 0; i < n; ++i) {
    for (net::NodeId v : link().graph().neighbors(i)) {
      if (mapper().cell_of(v) == mapper().cell_of(i)) {
        cell_neighbors_[i].push_back(v);
      }
    }
  }

  cell_leader_.assign(cells, net::kNoNode);
  parent_of_.assign(cells, -1);
  child_expiry_.assign(cells, 0.0);
  child_suspected_.assign(cells, false);
  child_watchdog_armed_.assign(cells, false);
  child_last_leader_.assign(cells, net::kNoNode);
  has_children_.assign(cells, false);
  claims_.clear();

  // Seed every node's view from the announced result of the setup binding
  // protocol (Section 5.2 floods the winner to all cell members), and
  // derive the lease hierarchy from grid arithmetic — both are knowledge
  // each node already holds locally.
  for (const core::GridCoord& c : grid.all_coords()) {
    const std::size_t ci = grid.index_of(c);
    cell_leader_[ci] = overlay_.bound_node(c);
    child_last_leader_[ci] = cell_leader_[ci];
    for (std::uint32_t level = 1; level <= groups.max_level(); ++level) {
      const core::GridCoord p = groups.leader_of(c, level);
      if (!(p == c)) {
        parent_of_[ci] = static_cast<std::int32_t>(grid.index_of(p));
        break;
      }
    }
    if (parent_of_[ci] >= 0) {
      has_children_[static_cast<std::size_t>(parent_of_[ci])] = true;
    }
  }
  for (net::NodeId i = 0; i < n; ++i) {
    const std::size_t ci = grid.index_of(mapper().cell_of(i));
    believed_leader_[i] = cell_leader_[ci];
    epoch_[i] = overlay_.binding_epoch(mapper().cell_of(i));
    // Initial grace: 1.5 leases before the first expiry can fire, covering
    // the staggered first beats.
    lease_expiry_[i] = now + cfg_.lease_duration * 1.5;
    if (believed_leader_[i] != i) arm_watchdog(i);
  }

  // Leaders start beating (staggered so 64 cells do not all key up in the
  // same microsecond) and leasing up the hierarchy.
  for (std::size_t ci = 0; ci < cells; ++ci) {
    const net::NodeId leader = cell_leader_[ci];
    if (leader != net::kNoNode) {
      const double stagger =
          cfg_.heartbeat_period * (static_cast<double>(ci % 8) + 1.0) / 9.0;
      const std::uint64_t gen = run_gen_;
      sim().schedule_in(stagger, [this, leader, gen] {
        if (gen != run_gen_ || !running_) return;
        beat(leader);
      });
      if (cfg_.audit_period > 0.0) {
        // Audits stagger on a different residue than beats so the two
        // periodic floods of one cell don't land on the same tick.
        const double audit_stagger =
            cfg_.audit_period * (static_cast<double>(ci % 7) + 1.5) / 9.0;
        sim().schedule_in(audit_stagger, [this, leader, gen] {
          if (gen != run_gen_ || !running_) return;
          audit(leader);
        });
      }
    }
    if (parent_of_[ci] >= 0) {
      child_expiry_[ci] = now + cfg_.uplease_duration * 1.5;
      const double stagger =
          cfg_.uplease_period * (static_cast<double>(ci % 5) + 1.0) / 6.0;
      const std::uint64_t gen = run_gen_;
      sim().schedule_in(stagger, [this, ci, gen] {
        if (gen != run_gen_ || !running_) return;
        uplease(ci);
      });
    }
  }
  for (std::size_t ci = 0; ci < cells; ++ci) {
    if (parent_of_[ci] >= 0) arm_child_watchdog(ci);
  }

  const std::uint64_t gen = run_gen_;
  overlay_.set_control_receiver(
      [this, gen](net::NodeId at, const net::Packet& pkt) {
        if (gen != run_gen_ || !running_) return;
        on_control(at, pkt);
      });
  if (net::ReliableChannel* arq = overlay_.arq()) {
    arq->set_on_give_up([this, gen](net::NodeId from, net::NodeId to,
                                    std::uint64_t, std::uint32_t) {
      if (gen != run_gen_ || !running_) return;
      counters_.add("fd.hop_give_up");
      overlay_.on_hop_give_up(from, to);
    });
  }
}

void FailureDetector::stop() { running_ = false; }

void FailureDetector::renew_lease(net::NodeId i) {
  lease_expiry_[i] = sim().now() + cfg_.lease_duration;
  arm_watchdog(i);
}

void FailureDetector::arm_watchdog(net::NodeId i) {
  if (watchdog_armed_[i]) return;
  watchdog_armed_[i] = true;
  const std::uint64_t gen = run_gen_;
  sim().schedule_at(std::max(lease_expiry_[i], sim().now()), [this, i, gen] {
    if (gen != run_gen_ || !running_) return;
    watchdog_armed_[i] = false;
    on_watchdog(i);
  });
}

void FailureDetector::on_watchdog(net::NodeId i) {
  obs::ProfSpan prof(obs::ProfCat::kDetector);
  if (link().is_down(i)) {
    // Own radio is dead (a node always knows that much). Keep a reboot
    // probe scheduled so the node re-engages after a recovery.
    was_down_[i] = true;
    lease_expiry_[i] = sim().now() + cfg_.lease_duration;
    arm_watchdog(i);
    return;
  }
  if (was_down_[i]) {
    // Rejoin: first watchdog after a recovery. Neighbors marked this node
    // suspected when its routes gave up, and suspected nodes are skipped by
    // heartbeat floods — without a proof of life it would starve, expire,
    // and call a spurious election. Flood a one-hop hello (a kSync carrying
    // our possibly-stale view; adopt-if-newer makes it harmless): its mere
    // delivery clears suspicion at every live neighbor, after which the
    // current leader's beats reach us again and resync the epoch.
    was_down_[i] = false;
    counters_.add("fd.rejoin");
    trace_fd("fd.rejoin", i,
             {{"leader", static_cast<std::uint64_t>(believed_leader_[i])},
              {"epoch", epoch_[i]}});
    FdMsg hello;
    hello.kind = FdMsg::kSync;
    hello.cell = cell_view(i);
    hello.epoch = epoch_[i];
    hello.leader = believed_leader_[i];
    hello.origin = i;
    hello.src_cell = cell_view(i);
    flood(i, hello);
    lease_expiry_[i] = sim().now() + cfg_.lease_duration;
    arm_watchdog(i);
    return;
  }
  // Membership self-check before acting on the lease: a corruption-defected
  // belief must not drive elections (or adoptions) in the wrong cell.
  heal_belief(i);
  if (believed_leader_[i] == i) return;  // leaders do not lease themselves
  if (sim().now() + 1e-12 < lease_expiry_[i]) {
    arm_watchdog(i);  // renewed since this timer was armed
    return;
  }
  if (elect_close_armed_[i]) {
    // An election this node joined is still open; give it time instead of
    // escalating the epoch mid-election.
    lease_expiry_[i] = sim().now() + cfg_.lease_duration;
    arm_watchdog(i);
    return;
  }
  counters_.add("fd.lease_expire");
  trace_fd("fd.lease_expire", i,
           {{"leader", static_cast<std::uint64_t>(believed_leader_[i])}});
  start_election(i);
  lease_expiry_[i] = sim().now() + cfg_.lease_duration;
  arm_watchdog(i);
}

void FailureDetector::start_election(net::NodeId i) {
  const core::GridCoord cell = cell_view(i);
  // Strictly above anything seen: a failed election (winner crashed before
  // its claim spread) is retried at a fresh epoch, never deadlocked on
  // stale best-key state.
  const std::uint64_t target = std::max(epoch_[i], elect_epoch_[i]) + 1;
  elect_epoch_[i] = target;
  elect_best_score_[i] = score(i);
  elect_best_residual_[i] = residual(i);
  elect_best_id_[i] = i;
  elect_handoff_[i] = false;
  counters_.add("fd.elect");
  trace_fd("fd.elect", i,
           {{"row", static_cast<std::int64_t>(cell.row)},
            {"col", static_cast<std::int64_t>(cell.col)},
            {"epoch", target}});
  FdMsg m;
  m.kind = FdMsg::kElect;
  m.cell = cell;
  m.epoch = target;
  m.score = elect_best_score_[i];
  m.origin = i;
  m.residual = elect_best_residual_[i];
  flood(i, m);
  if (!elect_close_armed_[i]) {
    elect_close_armed_[i] = true;
    // Score-proportional stagger: the best key closes (and claims) first,
    // so by the time worse keys close they have heard the claim.
    const double s = std::max(elect_best_score_[i], 0.0);
    const double stagger = cfg_.election_timeout * 0.25 * (s / (1.0 + s));
    const std::uint64_t gen = run_gen_;
    sim().schedule_in(cfg_.election_timeout + stagger, [this, i, target, gen] {
      if (gen != run_gen_ || !running_) return;
      elect_close_armed_[i] = false;
      close_election(i, target);
    });
  }
}

void FailureDetector::close_election(net::NodeId i, std::uint64_t target) {
  if (link().is_down(i)) return;
  if (epoch_[i] >= target) return;        // a claim settled this epoch
  if (elect_epoch_[i] != target) return;  // superseded by a later election
  if (elect_best_id_[i] != i) return;     // lost; the winner's claim is due
  if (membership_ != nullptr && !elect_handoff_[i] &&
      sim().now() + 1e-12 >= last_cell_frame_[i] + cfg_.lease_duration) {
    // Winning with no competing key AND a full lease of total cell silence
    // (no beat, claim, sync, or even a rival's election flood — live
    // cellmates would have joined this election and reset the silence
    // clock) means the node is alone in its believed cell: every member is
    // gone or unreachable. Claiming would crown a component of one and
    // leave the rest of the grid pointing at a dark cell; the component-
    // based re-formation scheme merges the orphan into a reachable
    // neighboring cell instead.
    if (try_adopt(i)) return;
  }
  win_election(i, target);
}

void FailureDetector::win_election(net::NodeId w, std::uint64_t epoch) {
  const core::GridCoord cell = cell_view(w);
  const std::size_t ci = overlay_.grid().index_of(cell);
  const net::NodeId old = believed_leader_[w];
  const bool planned = elect_handoff_[w];
  believed_leader_[w] = w;
  epoch_[w] = epoch;
  cell_leader_[ci] = w;
  claims_.push_back({cell, epoch, w, old, sim().now(), planned});
  counters_.add("fd.claim");
  if (planned) counters_.add("fd.handoff_claim");
  trace_fd("fd.claim", w,
           {{"row", static_cast<std::int64_t>(cell.row)},
            {"col", static_cast<std::int64_t>(cell.col)},
            {"epoch", epoch},
            {"winner", static_cast<std::uint64_t>(w)},
            {"old", static_cast<std::uint64_t>(
                        old == net::kNoNode ? 0 : old)},
            {"planned", static_cast<std::uint64_t>(planned ? 1 : 0)}});
  // Route repair around the silent ex-leader, then re-bind the virtual
  // node here. The winner is trivially alive; make sure no stale suspicion
  // keeps routes away from it. A *planned* handoff retires the role, not
  // the node: the ex-leader is alive (merely low on battery) and usually
  // still the cell's inter-cell gateway, so purging routes through it
  // would black-hole traffic for no failure. Its eventual battery death is
  // repaired organically by the ARQ give-up path like any relay loss.
  if (!planned && old != net::kNoNode && old != w &&
      !overlay_.is_suspected(old)) {
    overlay_.on_hop_give_up(w, old);
  }
  if (planned && old != net::kNoNode && old != w) {
    // Shed relay load off the retiree too: move inter-cell entries to an
    // alternate gateway where one exists (keeping it where none does), so
    // when its battery finally dies almost nothing routes through it.
    overlay_.evacuate_relay(old);
  }
  overlay_.clear_suspected(w);
  overlay_.rebind(cell, w, epoch);
  FdMsg m;
  m.kind = FdMsg::kClaim;
  m.cell = cell;
  m.epoch = epoch;
  m.leader = w;
  m.old_leader = old;
  flood(w, m);
  beat_seq_[w] = 0;
  const std::uint64_t gen = run_gen_;
  sim().schedule_in(cfg_.heartbeat_period, [this, w, gen] {
    if (gen != run_gen_ || !running_) return;
    beat(w);
  });
  if (cfg_.audit_period > 0.0) {
    audit_seq_[w] = 0;
    sim().schedule_in(cfg_.audit_period, [this, w, gen] {
      if (gen != run_gen_ || !running_) return;
      audit(w);
    });
  }
  if (parent_of_[ci] >= 0) uplease_send(ci);
}

void FailureDetector::maybe_handoff(net::NodeId leader) {
  if (cfg_.handoff_low_water <= 0.0) return;
  // Residual is +inf on an unbudgeted stack, so the crossing never fires
  // there and the knob costs nothing.
  if (residual(leader) >= cfg_.handoff_low_water) return;
  if (sim().now() < next_handoff_ok_[leader]) return;
  if (cell_neighbors_[leader].empty()) return;  // nobody to hand off to
  // A lost succession (every candidate crashed, claim never spread) is
  // retried one lease later, not every beat: the cooldown keeps a dying
  // leader from spending its last joules flooding probes.
  next_handoff_ok_[leader] = sim().now() + cfg_.lease_duration;
  start_handoff(leader);
}

void FailureDetector::start_handoff(net::NodeId i) {
  const core::GridCoord cell = cell_view(i);
  const std::uint64_t target = std::max(epoch_[i], elect_epoch_[i]) + 1;
  elect_epoch_[i] = target;
  elect_handoff_[i] = true;
  // Sentinel-worst key: the retiring leader opens the succession but can
  // never win it — any member's real key beats (-1 residual, +inf score,
  // kNoNode), and close_election's best_id == self check keeps the
  // initiator from claiming even if nobody answers the probe.
  elect_best_residual_[i] = -1.0;
  elect_best_score_[i] = std::numeric_limits<double>::infinity();
  elect_best_id_[i] = net::kNoNode;
  const double res = residual(i);
  counters_.add("fd.handoff");
  trace_fd("fd.handoff", i,
           {{"row", static_cast<std::int64_t>(cell.row)},
            {"col", static_cast<std::int64_t>(cell.col)},
            {"epoch", target},
            {"residual", std::isfinite(res) ? res : -1.0}});
  FdMsg m;
  m.kind = FdMsg::kElect;
  m.cell = cell;
  m.epoch = target;
  m.score = elect_best_score_[i];
  m.origin = elect_best_id_[i];
  m.residual = elect_best_residual_[i];
  m.handoff = true;
  flood(i, m);
}

bool FailureDetector::request_handoff(const core::GridCoord& cell) {
  if (!running_) return false;
  const std::size_t ci = overlay_.grid().index_of(cell);
  const net::NodeId leader = cell_leader_[ci];
  if (leader == net::kNoNode) return false;
  if (believed_leader_[leader] != leader) return false;
  if (link().is_down(leader)) return false;
  if (cell_neighbors_[leader].empty()) return false;
  start_handoff(leader);
  return true;
}

std::size_t FailureDetector::planned_handoffs() const {
  std::size_t n = 0;
  for (const ClaimRecord& c : claims_) {
    if (c.planned) ++n;
  }
  return n;
}

void FailureDetector::beat(net::NodeId leader) {
  obs::ProfSpan prof(obs::ProfCat::kDetector);
  // A leader whose own belief was defected must notice before beating the
  // wrong cell (it holds no follower lease, so the watchdog never checks).
  if (!link().is_down(leader)) heal_belief(leader);
  if (believed_leader_[leader] != leader) return;  // deposed: loop ends
  if (!link().is_down(leader)) {
    ++beat_seq_[leader];
    const core::GridCoord cell = cell_view(leader);
    counters_.add("fd.beat");
    trace_fd("fd.beat", leader,
             {{"row", static_cast<std::int64_t>(cell.row)},
              {"col", static_cast<std::int64_t>(cell.col)},
              {"epoch", epoch_[leader]},
              {"seq", beat_seq_[leader]}});
    FdMsg m;
    m.kind = FdMsg::kBeat;
    m.cell = cell;
    m.epoch = epoch_[leader];
    m.seq = beat_seq_[leader];
    m.leader = leader;
    m.src_cell = cell;  // beats carry the sender's cell belief
    flood(leader, m);
    maybe_handoff(leader);
  }
  const std::uint64_t gen = run_gen_;
  sim().schedule_in(cfg_.heartbeat_period, [this, leader, gen] {
    if (gen != run_gen_ || !running_) return;
    beat(leader);
  });
}

void FailureDetector::audit(net::NodeId leader) {
  obs::ProfSpan prof(obs::ProfCat::kDetector);
  if (!link().is_down(leader)) heal_belief(leader);
  if (believed_leader_[leader] != leader) return;  // deposed: loop ends
  if (!link().is_down(leader)) {
    ++audit_seq_[leader];
    const core::GridCoord cell = cell_view(leader);
    counters_.add("fd.audit");
    trace_fd("fd.audit", leader,
             {{"row", static_cast<std::int64_t>(cell.row)},
              {"col", static_cast<std::int64_t>(cell.col)},
              {"epoch", epoch_[leader]},
              {"seq", audit_seq_[leader]}});
    FdMsg m;
    m.kind = FdMsg::kAudit;
    m.cell = cell;
    m.epoch = epoch_[leader];
    m.seq = audit_seq_[leader];
    m.leader = leader;
    m.score = score(leader);
    m.origin = leader;
    m.residual = residual(leader);
    if (membership_ != nullptr) {
      // Leader-side roster scrub: drop entries whose belief moved away
      // (splice corruption, or an orphan that defected out). Then the
      // flood carries the repaired roster's digest, so any member the
      // roster wrongly *misses* detects the disagreement and reinstates
      // itself on receipt — one audit round repairs either direction.
      m.src_cell = cell;
      const std::vector<net::NodeId> roster = membership_->roster(cell);
      for (net::NodeId r : roster) {
        if (membership_->cell_of(r) == cell) continue;
        membership_->roster_drop(cell, r);
        counters_.add("fd.roster_heal");
        trace_fd("fd.roster_heal", leader,
                 {{"node", static_cast<std::uint64_t>(r)},
                  {"row", static_cast<std::int64_t>(cell.row)},
                  {"col", static_cast<std::int64_t>(cell.col)},
                  {"why", std::string("foreign")}});
      }
      // The auditor repairs its own listing too: receivers reinstate
      // themselves when the digest crosses them, but the flood's origin
      // never hears it, so a roster corruption that dropped the *leader*
      // would otherwise survive every round.
      if (membership_->roster_insert(cell, leader)) {
        counters_.add("fd.roster_heal");
        trace_fd("fd.roster_heal", leader,
                 {{"node", static_cast<std::uint64_t>(leader)},
                  {"row", static_cast<std::int64_t>(cell.row)},
                  {"col", static_cast<std::int64_t>(cell.col)},
                  {"why", std::string("reinstate")}});
      }
      m.roster_digest = membership_->digest(cell);
      m.roster_size =
          static_cast<std::uint32_t>(membership_->roster(cell).size());
    }
    flood(leader, m);
    // The auditor scrubs its own tables; members scrub theirs on receipt.
    const std::size_t fixed = overlay_.repair_routes(leader);
    if (fixed > 0) {
      counters_.add("fd.route_repair", fixed);
      trace_fd("fd.route_repair", leader,
               {{"entries", static_cast<std::uint64_t>(fixed)}});
    }
  }
  const std::uint64_t gen = run_gen_;
  sim().schedule_in(cfg_.audit_period, [this, leader, gen] {
    if (gen != run_gen_ || !running_) return;
    audit(leader);
  });
}

void FailureDetector::uplease_send(std::size_t cell_idx) {
  const net::NodeId actor = cell_leader_[cell_idx];
  if (actor == net::kNoNode || link().is_down(actor)) return;
  if (believed_leader_[actor] != actor) return;
  const core::GridCoord cell = overlay_.grid().coord_of(cell_idx);
  const core::GridCoord parent =
      overlay_.grid().coord_of(static_cast<std::size_t>(parent_of_[cell_idx]));
  counters_.add("fd.uplease");
  FdMsg m;
  m.kind = FdMsg::kUpLease;
  m.cell = cell;
  m.dst_cell = parent;
  m.epoch = epoch_[actor];
  m.leader = actor;
  m.src_cell = cell_view(actor);
  if (membership_ != nullptr &&
      (cell_view(actor) == parent || overlay_.bound_node(parent) == actor) &&
      believed_leader_[actor] == actor) {
    // The proxy serving this (vacated) child cell IS the parent cell's
    // leader — or proxies the parent too: the lease renews locally, no
    // radio hop to itself.
    handle(actor, m);
    return;
  }
  route_control(actor, m, /*first_hop=*/true);
}

void FailureDetector::uplease(std::size_t cell_idx) {
  uplease_send(cell_idx);
  const std::uint64_t gen = run_gen_;
  sim().schedule_in(cfg_.uplease_period, [this, cell_idx, gen] {
    if (gen != run_gen_ || !running_) return;
    uplease(cell_idx);
  });
}

void FailureDetector::arm_child_watchdog(std::size_t cell_idx) {
  if (child_watchdog_armed_[cell_idx]) return;
  child_watchdog_armed_[cell_idx] = true;
  const std::uint64_t gen = run_gen_;
  sim().schedule_at(
      std::max(child_expiry_[cell_idx], sim().now()), [this, cell_idx, gen] {
        if (gen != run_gen_ || !running_) return;
        child_watchdog_armed_[cell_idx] = false;
        if (sim().now() + 1e-12 < child_expiry_[cell_idx]) {
          arm_child_watchdog(cell_idx);
          return;
        }
        const std::size_t pi = static_cast<std::size_t>(parent_of_[cell_idx]);
        const net::NodeId actor = cell_leader_[pi];
        if (actor != net::kNoNode && !link().is_down(actor) &&
            !child_suspected_[cell_idx]) {
          child_suspected_[cell_idx] = true;
          counters_.add("fd.cell_suspect");
          const core::GridCoord cell = overlay_.grid().coord_of(cell_idx);
          trace_fd("fd.cell_suspect", actor,
                   {{"row", static_cast<std::int64_t>(cell.row)},
                    {"col", static_cast<std::int64_t>(cell.col)}});
          const net::NodeId silent = child_last_leader_[cell_idx];
          if (silent != net::kNoNode && !overlay_.is_suspected(silent)) {
            overlay_.on_hop_give_up(actor, silent);
          }
        } else if (membership_ != nullptr && child_suspected_[cell_idx] &&
                   actor != net::kNoNode && !link().is_down(actor) &&
                   believed_leader_[actor] == actor) {
          // Second consecutive silent uplease window with no resume: the
          // child cell has nobody left to elect, beat, or uplease (a total
          // wipe, or it was empty from the start and no orphan ever
          // announced it). The parent leader adopts the dark child's
          // virtual node so coverage closes; if a survivor later claims at
          // a fresh epoch, its rebind simply supersedes the proxy.
          adopt_bind(actor, overlay_.grid().coord_of(cell_idx));
        }
        child_expiry_[cell_idx] = sim().now() + cfg_.uplease_duration;
        arm_child_watchdog(cell_idx);
      });
}

void FailureDetector::flood(net::NodeId from, const FdMsg& msg) {
  for (net::NodeId v : cell_neighbors_[from]) {
    // Deliberately no is_suspected() filter, even for steady-state beats:
    // suspicion can be stale (ARQ give-ups for frames sent into a node's
    // crash window fire after it already recovered), and a suspected-but-
    // live member that no beat ever reaches would starve, expire its lease,
    // and call a spurious election. Probing apparently-dead neighbors every
    // period costs a bounded ARQ retry budget and IS the failure detector's
    // job; a delivered beat renews the lease regardless of suspicion, and
    // its delivery is the proof of life that clears the suspicion.
    overlay_.send_control(from, v, msg, cfg_.beat_size_units);
  }
}

void FailureDetector::route_control(net::NodeId at, const FdMsg& msg,
                                    bool first_hop, net::NodeId from) {
  (void)first_hop;
  FdMsg m = msg;  // route_next_hop updates the frame's detour state
  const net::NodeId nh = overlay_.route_next_hop(at, m.dst_cell, from, &m.route);
  if (nh == net::kNoNode) {
    counters_.add("fd.unroutable");
    return;
  }
  overlay_.send_control(at, nh, m, cfg_.beat_size_units);
}

void FailureDetector::on_control(net::NodeId at, const net::Packet& pkt) {
  obs::ProfSpan prof(obs::ProfCat::kDetector);
  const auto* msg = std::any_cast<FdMsg>(&pkt.payload);
  if (msg == nullptr) return;
  // Proof of life: any control frame received from a suspected node clears
  // the suspicion (and restores routes through it).
  if (pkt.sender != net::kNoNode && overlay_.is_suspected(pkt.sender)) {
    counters_.add("fd.unsuspect");
    overlay_.clear_suspected(pkt.sender);
  }
  handle(at, *msg, pkt.sender);
}

void FailureDetector::adopt(net::NodeId i, net::NodeId leader,
                            std::uint64_t epoch) {
  if (believed_leader_[i] == i && leader != i) counters_.add("fd.demote");
  believed_leader_[i] = leader;
  epoch_[i] = epoch;
  const std::size_t ci = overlay_.grid().index_of(cell_view(i));
  cell_leader_[ci] = leader;
  if (leader != i) renew_lease(i);
}

void FailureDetector::handle(net::NodeId at, const FdMsg& msg,
                             net::NodeId from) {
  if (membership_ != nullptr) {
    // Any control frame is an occasion for the local belief self-check
    // (heal BEFORE filtering: a healed belief changes which frames are
    // ours), and any same-cell frame resets the orphan-silence clock.
    heal_belief(at);
    if (msg.kind != FdMsg::kUpLease && cell_view(at) == msg.cell) {
      last_cell_frame_[at] = sim().now();
    }
  }
  switch (msg.kind) {
    case FdMsg::kUpLease: {
      // The parent cell itself may be dark and served by a proxy leader
      // standing elsewhere; the lease must renew at whoever *holds* the
      // parent's virtual node, not at its empty geometric cell.
      const bool parent_here =
          cell_view(at) == msg.dst_cell ||
          (membership_ != nullptr && overlay_.bound_node(msg.dst_cell) == at);
      if (parent_here && believed_leader_[at] == at) {
        const std::size_t child = overlay_.grid().index_of(msg.cell);
        child_expiry_[child] = sim().now() + cfg_.uplease_duration;
        child_last_leader_[child] = msg.leader;
        if (child_suspected_[child]) {
          child_suspected_[child] = false;
          counters_.add("fd.cell_resume");
          trace_fd("fd.cell_resume", at,
                   {{"row", static_cast<std::int64_t>(msg.cell.row)},
                    {"col", static_cast<std::int64_t>(msg.cell.col)}});
        }
        if (overlay_.is_suspected(msg.leader)) {
          overlay_.clear_suspected(msg.leader);
        }
        arm_child_watchdog(child);
        return;
      }
      route_control(at, msg, /*first_hop=*/false, from);
      return;
    }
    case FdMsg::kBeat: {
      if (!(cell_view(at) == msg.cell)) return;  // cross-cell leak
      // Epoch-regression detection, deliberately BEFORE flood dedup: when
      // the very node we believe leads is beating an epoch *behind* our
      // view, either its epoch regressed (state corruption) or ours jumped
      // — both are corrupted states dedup would silently swallow, because
      // the highwater already sits at the newer epoch. Direct neighbors of
      // the leader answer with a kSync carrying the newer view; adopt-if-
      // newer at the leader restores the epoch without an election. Muted
      // per responder between floods to bound the sync traffic.
      if (msg.epoch < epoch_[at] && msg.leader == believed_leader_[at] &&
          msg.leader != at && !link().is_down(at) &&
          sim().now() >= regress_mute_until_[at] &&
          std::find(cell_neighbors_[at].begin(), cell_neighbors_[at].end(),
                    msg.leader) != cell_neighbors_[at].end()) {
        regress_mute_until_[at] = sim().now() + cfg_.heartbeat_period * 0.5;
        counters_.add("fd.epoch_regress");
        trace_fd("fd.epoch_regress", at,
                 {{"leader", static_cast<std::uint64_t>(msg.leader)},
                  {"beat_epoch", msg.epoch},
                  {"view_epoch", epoch_[at]}});
        counters_.add("fd.sync");
        FdMsg sync;
        sync.kind = FdMsg::kSync;
        sync.cell = msg.cell;
        sync.epoch = epoch_[at];
        sync.leader = believed_leader_[at];
        sync.origin = at;
        flood(at, sync);
      }
      if (msg.epoch < seen_beat_epoch_[at] ||
          (msg.epoch == seen_beat_epoch_[at] &&
           msg.seq <= seen_beat_seq_[at])) {
        return;  // flood duplicate
      }
      seen_beat_epoch_[at] = msg.epoch;
      seen_beat_seq_[at] = msg.seq;
      flood(at, msg);  // forward the fresh beat through the cell
      if (msg.epoch > epoch_[at]) {
        adopt(at, msg.leader, msg.epoch);
      } else if (msg.epoch == epoch_[at]) {
        if (msg.leader == believed_leader_[at]) {
          if (at != msg.leader) renew_lease(at);
        } else if (msg.leader < believed_leader_[at]) {
          // Same-epoch conflict (should not happen in a connected cell):
          // converge deterministically toward the lower id.
          counters_.add("fd.conflict");
          adopt(at, msg.leader, msg.epoch);
        }
      } else {
        counters_.add("fd.stale_beat");
        if (believed_leader_[at] == at && !link().is_down(at)) {
          // A deposed leader came back and is beating its old epoch: the
          // current leader answers with the current binding.
          counters_.add("fd.sync");
          FdMsg sync;
          sync.kind = FdMsg::kSync;
          sync.cell = msg.cell;
          sync.epoch = epoch_[at];
          sync.leader = at;
          flood(at, sync);
        }
      }
      return;
    }
    case FdMsg::kElect: {
      if (!(cell_view(at) == msg.cell)) return;
      if (msg.epoch <= epoch_[at]) {
        counters_.add("fd.stale_elect");
        if (believed_leader_[at] == at) {
          // Electorate is out of date (e.g. missed the claim): re-announce.
          counters_.add("fd.sync");
          FdMsg sync;
          sync.kind = FdMsg::kSync;
          sync.cell = msg.cell;
          sync.epoch = epoch_[at];
          sync.leader = at;
          flood(at, sync);
        }
        return;
      }
      bool progressed = false;
      if (msg.epoch > elect_epoch_[at]) {
        // Join the election with our own key, so the winner is the minimum
        // over every live member the flood reaches (the oracle's answer).
        // Exception: a *handoff* election only wants successors that are
        // themselves above the low-water mark — accepting the crown while
        // nearly as drained as the retiree just cascades successions, and
        // every election storm burns the whole cell. A member below the
        // mark still forwards the flood (carrying the best key seen) but
        // keeps its own key out; if nobody qualifies, nobody claims, and
        // the incumbent carries on under its retry cooldown. Crash
        // elections take anyone: a poor leader beats no leader.
        const bool candidate =
            !msg.handoff || cfg_.handoff_low_water <= 0.0 ||
            residual(at) >= cfg_.handoff_low_water;
        elect_epoch_[at] = msg.epoch;
        if (candidate) {
          elect_best_score_[at] = score(at);
          elect_best_residual_[at] = residual(at);
          elect_best_id_[at] = at;
        } else {
          elect_best_score_[at] = msg.score;
          elect_best_residual_[at] = msg.residual;
          elect_best_id_[at] = msg.origin;
          counters_.add("fd.handoff_decline");
        }
        elect_handoff_[at] = msg.handoff;
        counters_.add("fd.elect_join");
        trace_fd("fd.elect", at,
                 {{"row", static_cast<std::int64_t>(msg.cell.row)},
                  {"col", static_cast<std::int64_t>(msg.cell.col)},
                  {"epoch", msg.epoch}});
        progressed = true;
        if (candidate && !elect_close_armed_[at]) {
          elect_close_armed_[at] = true;
          const double s = std::max(elect_best_score_[at], 0.0);
          const double stagger =
              cfg_.election_timeout * 0.25 * (s / (1.0 + s));
          const std::uint64_t gen = run_gen_;
          const std::uint64_t target = msg.epoch;
          sim().schedule_in(cfg_.election_timeout + stagger,
                            [this, at, target, gen] {
                              if (gen != run_gen_ || !running_) return;
                              elect_close_armed_[at] = false;
                              close_election(at, target);
                            });
        }
      }
      if (elect_epoch_[at] == msg.epoch &&
          key_less(msg.residual, msg.score, msg.origin,
                   elect_best_residual_[at], elect_best_score_[at],
                   elect_best_id_[at])) {
        elect_best_residual_[at] = msg.residual;
        elect_best_score_[at] = msg.score;
        elect_best_id_[at] = msg.origin;
        progressed = true;
      }
      if (progressed) {
        FdMsg fwd = msg;
        fwd.score = elect_best_score_[at];
        fwd.origin = elect_best_id_[at];
        fwd.residual = elect_best_residual_[at];
        flood(at, fwd);
      }
      return;
    }
    case FdMsg::kClaim:
    case FdMsg::kSync: {
      if (!(cell_view(at) == msg.cell)) return;
      const bool newer =
          msg.epoch > epoch_[at] ||
          (msg.epoch == epoch_[at] && msg.leader != believed_leader_[at] &&
           msg.leader < believed_leader_[at]);
      if (!newer) return;
      adopt(at, msg.leader, msg.epoch);
      flood(at, msg);
      return;
    }
    case FdMsg::kAudit: {
      if (!(cell_view(at) == msg.cell)) return;
      if (msg.epoch < seen_audit_epoch_[at] ||
          (msg.epoch == seen_audit_epoch_[at] &&
           msg.seq <= seen_audit_seq_[at])) {
        return;  // flood duplicate
      }
      seen_audit_epoch_[at] = msg.epoch;
      seen_audit_seq_[at] = msg.seq;
      flood(at, msg);  // forward the audit through the cell
      // Route scrub rides the audit round: each member validates its own
      // table entries against local knowledge (no-op when uncorrupted).
      const std::size_t fixed = overlay_.repair_routes(at);
      if (fixed > 0) {
        counters_.add("fd.route_repair", fixed);
        trace_fd("fd.route_repair", at,
                 {{"entries", static_cast<std::uint64_t>(fixed)}});
      }
      // Roster reconciliation rides the audit too: the digest announces
      // what the leader's roster holds, so a member the roster wrongly
      // misses (drop corruption) detects the disagreement locally and
      // reinstates itself. The opposite direction — foreign entries — was
      // scrubbed leader-side before the digest was taken.
      if (membership_ != nullptr && msg.roster_digest != 0 && at != msg.leader) {
        if (msg.roster_digest != membership_->digest(msg.cell)) {
          counters_.add("fd.roster_conflict");
        }
        if (!membership_->roster_contains(msg.cell, at)) {
          membership_->roster_insert(msg.cell, at);
          counters_.add("fd.roster_heal");
          trace_fd("fd.roster_heal", at,
                   {{"node", static_cast<std::uint64_t>(at)},
                    {"row", static_cast<std::int64_t>(msg.cell.row)},
                    {"col", static_cast<std::int64_t>(msg.cell.col)},
                    {"why", std::string("reinstate")}});
        }
      }
      if (msg.epoch > epoch_[at]) {
        // Our view fell behind (missed claim, regressed epoch): heal.
        counters_.add("fd.audit_heal");
        adopt(at, msg.leader, msg.epoch);
        return;
      }
      if (msg.epoch < epoch_[at]) {
        counters_.add("fd.audit_stale");
        if (believed_leader_[at] == at && !link().is_down(at)) {
          counters_.add("fd.sync");
          FdMsg sync;
          sync.kind = FdMsg::kSync;
          sync.cell = msg.cell;
          sync.epoch = epoch_[at];
          sync.leader = at;
          flood(at, sync);
        }
        return;
      }
      // Same epoch: PraSLE-style lexicographic reconciliation of views.
      if (msg.leader == believed_leader_[at]) {
        if (at != msg.leader) renew_lease(at);  // the audit doubles as a beat
        return;
      }
      if (believed_leader_[at] == at) {
        // Two live self-believed leaders at one epoch — the corrupted
        // split-brain no beat can break (neither ever expires). Order the
        // contenders by the election key: the better key asserts itself at
        // a strictly higher epoch, the worse one defers to the auditor.
        counters_.add("fd.audit_conflict");
        trace_fd("fd.audit_conflict", at,
                 {{"peer", static_cast<std::uint64_t>(msg.leader)},
                  {"epoch", msg.epoch}});
        if (key_less(residual(at), score(at), at, msg.residual, msg.score,
                     msg.leader)) {
          start_election(at);
        } else {
          adopt(at, msg.leader, msg.epoch);
        }
        return;
      }
      // Follower pointing at a third party: the auditor is live and
      // serving, so its view wins the reconciliation.
      counters_.add("fd.audit_heal");
      trace_fd("fd.audit_heal", at,
               {{"leader", static_cast<std::uint64_t>(msg.leader)},
                {"was", static_cast<std::uint64_t>(believed_leader_[at])},
                {"epoch", msg.epoch}});
      adopt(at, msg.leader, msg.epoch);
      return;
    }
    case FdMsg::kJoin: {
      if (membership_ == nullptr) return;
      if (believed_leader_[at] == at && cell_view(at) == msg.cell) {
        // The adopter cell's leader: acknowledge the orphan (its roster
        // move already happened through the shared view; reinstate is for
        // the case where a racing audit scrub dropped it), refresh the
        // cell tree so the newcomer relays, and — when the orphan was its
        // old cell's last reachable member — serve that vacated virtual
        // node by proxy so the grid keeps full coverage.
        counters_.add("fd.adopt_accept");
        trace_fd("fd.adopt_accept", at,
                 {{"node", static_cast<std::uint64_t>(msg.origin)},
                  {"from_row", static_cast<std::int64_t>(msg.src_cell.row)},
                  {"from_col", static_cast<std::int64_t>(msg.src_cell.col)},
                  {"row", static_cast<std::int64_t>(msg.cell.row)},
                  {"col", static_cast<std::int64_t>(msg.cell.col)}});
        if (!membership_->roster_contains(msg.cell, msg.origin)) {
          membership_->roster_insert(msg.cell, msg.origin);
        }
        overlay_.refresh_cell_tree(msg.cell);
        if (msg.last && overlay_.grid().contains(msg.src_cell)) {
          adopt_bind(at, msg.src_cell);
        }
        return;
      }
      // Not the adopter leader yet: climb toward it.
      FdMsg m = msg;
      const net::NodeId nh = overlay_.route_next_hop(at, m.cell, from, &m.route);
      if (nh == net::kNoNode) {
        counters_.add("fd.unroutable");
        return;
      }
      overlay_.send_control(at, nh, m, cfg_.beat_size_units);
      return;
    }
  }
}

std::vector<core::GridCoord> FailureDetector::unconverged_cells() const {
  std::vector<core::GridCoord> out;
  net::LinkLayer& link = overlay_.link();
  const std::size_t n = link.graph().node_count();
  for (const core::GridCoord& c : overlay_.grid().all_coords()) {
    net::NodeId leader = net::kNoNode;
    std::uint64_t epoch = 0;
    bool any = false;
    bool agreed = true;
    for (net::NodeId i = 0; i < n; ++i) {
      if (link.is_down(i) || !(cell_view(i) == c)) continue;
      if (!any) {
        any = true;
        leader = believed_leader_[i];
        epoch = epoch_[i];
      } else if (believed_leader_[i] != leader || epoch_[i] != epoch) {
        agreed = false;
        break;
      }
    }
    if (!any) continue;  // no live members: nothing to agree on
    if (!agreed || leader == net::kNoNode || link.is_down(leader) ||
        believed_leader_[leader] != leader) {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<core::GridCoord> FailureDetector::membership_violations() const {
  std::vector<core::GridCoord> out;
  if (membership_ == nullptr) return out;
  net::LinkLayer& link = overlay_.link();
  const std::size_t side = mapper().grid_side();
  std::vector<bool> bad(side * side, false);
  // Zero dark cells: every virtual node must be served by a live physical
  // node once adoption has settled.
  for (const core::GridCoord& c : overlay_.grid().all_coords()) {
    const net::NodeId bound = overlay_.bound_node(c);
    if (bound == net::kNoNode || link.is_down(bound)) {
      bad[overlay_.grid().index_of(c)] = true;
    }
  }
  // Belief/roster inverse over live nodes: a live believer must be listed
  // where it believes, and a live listee must believe where it is listed.
  // Dead nodes' frozen soft state is exempt (nothing will ever act on it).
  const std::size_t n = link.graph().node_count();
  for (net::NodeId i = 0; i < n; ++i) {
    if (link.is_down(i)) continue;
    const core::GridCoord c = membership_->cell_of(i);
    if (!membership_->roster_contains(c, i)) {
      bad[overlay_.grid().index_of(c)] = true;
    }
  }
  for (const core::GridCoord& c : overlay_.grid().all_coords()) {
    for (net::NodeId r : membership_->roster(c)) {
      if (!link.is_down(r) && !(membership_->cell_of(r) == c)) {
        bad[overlay_.grid().index_of(c)] = true;
      }
    }
  }
  for (const core::GridCoord& c : overlay_.grid().all_coords()) {
    if (bad[overlay_.grid().index_of(c)]) out.push_back(c);
  }
  return out;
}

bool FailureDetector::inject_corruption(net::NodeId node,
                                        sim::CorruptionTarget target) {
  if (!running_) return false;
  if (link().is_down(node)) return false;  // down nodes hold no soft state
  if (target == sim::CorruptionTarget::kMembership && membership_ == nullptr) {
    return false;  // no live membership state to scramble
  }
  sim::Rng& rng = sim().rng();
  const core::GridCoord cell = cell_view(node);
  counters_.add("fd.corrupt");
  trace_fd("fd.corrupt", node,
           {{"target", std::string(sim::to_string(target))},
            {"row", static_cast<std::int64_t>(cell.row)},
            {"col", static_cast<std::int64_t>(cell.col)},
            {"bound", stabilization_bound()}});
  switch (target) {
    case sim::CorruptionTarget::kEpoch: {
      // Half the draws regress the epoch below everything the node has
      // seen, half jump it ahead of the cell. Both directions drag the
      // flood-dedup highwaters along so the node's filter is consistent
      // with its (wrong) view — the adversary controls the whole word.
      const std::uint64_t e = epoch_[node];
      if (e > 0 && rng.uniform() < 0.5) {
        epoch_[node] = rng.below(e);  // regress into [0, e)
      } else {
        epoch_[node] = e + 1 + rng.below(4);  // jump ahead by 1..4
      }
      seen_beat_epoch_[node] = epoch_[node];
      seen_beat_seq_[node] = 0;
      seen_audit_epoch_[node] = epoch_[node];
      seen_audit_seq_[node] = 0;
      return true;
    }
    case sim::CorruptionTarget::kLeader: {
      // Re-point the node's leader belief — at itself (a usurper that
      // beats, audits, and never expires its own lease) or at a random
      // cell neighbor (a phantom leader that never renews the lease).
      const auto& nbrs = cell_neighbors_[node];
      net::NodeId pick = node;
      if (!nbrs.empty() && rng.uniform() >= 0.35) {
        pick = nbrs[rng.below(nbrs.size())];
      }
      believed_leader_[node] = pick;
      return true;
    }
    case sim::CorruptionTarget::kRoutes: {
      overlay_.scramble_routes(node, rng);
      return true;
    }
    case sim::CorruptionTarget::kLeases: {
      // Scramble the lease clock (anywhere inside two lease windows) and
      // plant one false suspicion, so routing wrongly avoids a live
      // neighbor until its next control frame proves it alive.
      lease_expiry_[node] = sim().now() + rng.uniform(0.0, 2.0 * cfg_.lease_duration);
      arm_watchdog(node);
      const auto& nbrs = cell_neighbors_[node];
      if (!nbrs.empty()) {
        const net::NodeId v = nbrs[rng.below(nbrs.size())];
        if (!overlay_.is_suspected(v)) {
          counters_.add("fd.false_suspect");
          overlay_.on_hop_give_up(node, v);
        }
      }
      return true;
    }
    case sim::CorruptionTarget::kMembership: {
      // Half the strikes defect the victim's cell belief to a random
      // adjacent in-grid cell (the node starts filtering, flooding, and
      // leasing as a member of the wrong cell until heal_belief snaps it
      // back); the other half scramble its cell's roster — drop a random
      // listed member, or splice in a random foreigner — which the next
      // audit round's leader scrub + digest reinstate must repair.
      if (rng.uniform() < 0.5) {
        std::vector<core::GridCoord> adjacent;
        for (core::Direction d : core::kAllDirections) {
          const core::GridCoord c = core::GridTopology::step(cell, d);
          if (overlay_.grid().contains(c)) adjacent.push_back(c);
        }
        const core::GridCoord to = adjacent[rng.below(adjacent.size())];
        move_belief(node, to);
        adopted_[node] = false;  // a scrambled belief, not an adoption
        counters_.add("fd.defect");
        trace_fd("fd.defect", node,
                 {{"from_row", static_cast<std::int64_t>(cell.row)},
                  {"from_col", static_cast<std::int64_t>(cell.col)},
                  {"row", static_cast<std::int64_t>(to.row)},
                  {"col", static_cast<std::int64_t>(to.col)},
                  {"bound", stabilization_bound()}});
      } else {
        const std::vector<net::NodeId>& roster = membership_->roster(cell);
        net::NodeId victim = net::kNoNode;
        bool dropped = false;
        if (!roster.empty() && rng.uniform() < 0.5) {
          victim = roster[rng.below(roster.size())];
          membership_->roster_drop(cell, victim);
          dropped = true;
        } else {
          // Splice a foreigner: any node not already listed. Bounded scan
          // from a random start keeps the draw seeded and O(n).
          const std::size_t n = link().graph().node_count();
          const std::size_t start = rng.below(n);
          for (std::size_t k = 0; k < n; ++k) {
            const net::NodeId cand =
                static_cast<net::NodeId>((start + k) % n);
            if (!membership_->roster_contains(cell, cand)) {
              victim = cand;
              break;
            }
          }
          if (victim == net::kNoNode) return true;  // roster lists everyone
          membership_->roster_insert(cell, victim);
        }
        counters_.add("fd.roster_corrupt");
        trace_fd("fd.roster_corrupt", node,
                 {{"node", static_cast<std::uint64_t>(victim)},
                  {"row", static_cast<std::int64_t>(cell.row)},
                  {"col", static_cast<std::int64_t>(cell.col)},
                  {"dropped", static_cast<std::uint64_t>(dropped ? 1 : 0)},
                  {"bound", stabilization_bound()}});
      }
      return true;
    }
  }
  return false;
}

std::vector<core::GridCoord> FailureDetector::split_brains() const {
  std::vector<core::GridCoord> out;
  net::LinkLayer& link = overlay_.link();
  const std::size_t side = mapper().grid_side();
  // cell index -> (epoch, live self-believed leader) pairs seen
  std::vector<std::vector<std::pair<std::uint64_t, net::NodeId>>> seen(side *
                                                                       side);
  const std::size_t n = link.graph().node_count();
  for (net::NodeId i = 0; i < n; ++i) {
    if (link.is_down(i)) continue;
    if (believed_leader_[i] != i) continue;
    const core::GridCoord c = cell_view(i);
    const std::size_t ci = overlay_.grid().index_of(c);
    bool dup = false;
    for (auto& [ep, node] : seen[ci]) {
      if (ep == epoch_[i] && node != i) dup = true;
    }
    if (dup) {
      out.push_back(c);
    } else {
      seen[ci].push_back({epoch_[i], i});
    }
  }
  return out;
}

}  // namespace wsn::emulation
