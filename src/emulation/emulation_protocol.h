// Topology emulation protocol (Section 5.1).
//
// Goal: every physical node ends up with a routing table
//   rtab_i : {NORTH, EAST, SOUTH, WEST} -> NodeId | NULL
// giving its next hop toward the adjacent grid cell in each direction.
//
// Protocol, exactly as in the paper:
//   1. Localization/neighbor discovery has happened: each node knows VP(s)
//      for itself and its one-hop neighbors. Entries reachable in one hop
//      are filled directly: rtab_i(d) = s_j if s_j is a one-hop neighbor
//      lying in the d-adjacent cell.
//   2. Each node broadcasts its (small) routing table to its neighbors.
//   3. On receiving a table from s_j: if VP(s_j) != VP(s_i) the message is
//      ignored (suppressed after crossing exactly one cell boundary).
//      Otherwise, for every direction d where s_j has an entry and s_i does
//      not, s_i sets rtab_i(d) = s_j and, having changed, rebroadcasts.
//
// The protocol's efficiency claims - parallel path setup per cell, at most
// one boundary crossing per message, latency proportional to the longest
// intra-cell shortest path - are measured by bench_topology_emulation and
// asserted by tests.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "emulation/cell_mapper.h"
#include "net/link_layer.h"
#include "obs/metrics_registry.h"
#include "sim/trace.h"

namespace wsn::emulation {

/// Per-node routing table: next hop toward each grid direction, or kNoNode.
struct RoutingTable {
  std::array<net::NodeId, 4> next_hop = {net::kNoNode, net::kNoNode,
                                         net::kNoNode, net::kNoNode};

  net::NodeId operator[](core::Direction d) const {
    return next_hop[static_cast<std::size_t>(d)];
  }
  net::NodeId& operator[](core::Direction d) {
    return next_hop[static_cast<std::size_t>(d)];
  }
  bool has(core::Direction d) const { return (*this)[d] != net::kNoNode; }
};

/// Outcome and audit data of one protocol execution.
struct EmulationResult {
  std::vector<RoutingTable> tables;     // indexed by NodeId
  std::uint64_t broadcasts = 0;         // table broadcasts transmitted
  std::uint64_t deliveries = 0;         // table receptions processed
  std::uint64_t suppressed = 0;         // receptions ignored (foreign cell)
  std::uint64_t adoptions = 0;          // table entries learned multi-hop
  double converged_at = 0.0;            // simulation time of quiescence
  bool boundary_audit_passed = true;    // no message traveled >1 cell
};

/// Registers the audit counts of a completed emulation run (by value — the
/// snapshot does not track later runs) under `prefix` in the registry.
inline void register_metrics(obs::MetricsRegistry& registry,
                             const EmulationResult& result,
                             const std::string& prefix = "emulation") {
  registry.add_gauge(prefix + ".broadcasts", [v = result.broadcasts] {
    return static_cast<double>(v);
  });
  registry.add_gauge(prefix + ".deliveries", [v = result.deliveries] {
    return static_cast<double>(v);
  });
  registry.add_gauge(prefix + ".suppressed", [v = result.suppressed] {
    return static_cast<double>(v);
  });
  registry.add_gauge(prefix + ".adoptions", [v = result.adoptions] {
    return static_cast<double>(v);
  });
  registry.add_gauge(prefix + ".converged_at",
                     [v = result.converged_at] { return v; });
}

/// Runs the protocol to quiescence on `link` and returns the tables.
///
/// `jitter` staggers the initial broadcasts uniformly in [0, jitter) to
/// model unsynchronized starts (0 = simultaneous). Nodes marked down at the
/// link layer neither participate nor appear in anyone's table.
EmulationResult run_topology_emulation(net::LinkLayer& link,
                                       const CellMapper& mapper,
                                       double jitter = 0.0);

/// Periodic re-execution after topology change (Section 5.1: "since new
/// nodes can be added to the network or existing nodes can leave or fail,
/// the above protocol should execute periodically"). Entries of `previous`
/// that point at down nodes are purged, direct entries are recomputed from
/// live neighbors, and the protocol re-runs to quiescence; surviving valid
/// entries are kept, so the repair converges with fewer adoptions than a
/// cold start.
EmulationResult run_topology_repair(net::LinkLayer& link,
                                    const CellMapper& mapper,
                                    std::vector<RoutingTable> previous,
                                    double jitter = 0.0);

/// Removes every table entry whose next hop is `via` (a node suspected or
/// known dead) from all tables. Unlike run_topology_repair this is a purely
/// local O(n) purge — no chain verification, no protocol re-run — suitable
/// for reacting to an ARQ give-up inside an event callback. Returns the
/// number of entries cleared.
std::size_t purge_entries_via(std::vector<RoutingTable>& tables,
                              net::NodeId via);

/// purge_entries_via plus a one-hop local repair: each cleared entry is
/// re-pointed at another live neighbor lying directly in the target cell,
/// when one exists (`excluded` filters additional suspects). Entries with
/// no such neighbor stay kNoNode — deliberately no same-cell chaining, which
/// could loop; full re-convergence remains run_topology_repair's job. Safe
/// inside an event callback: local, message-free, deterministic.
struct RerouteStats {
  std::size_t rerouted = 0;    // entries repaired to an alternate gateway
  std::size_t unroutable = 0;  // entries cleared with no local alternative
};
RerouteStats reroute_entries_via(
    std::vector<RoutingTable>& tables, net::NodeId via,
    const net::LinkLayer& link, const CellMapper& mapper,
    const std::function<bool(net::NodeId)>& excluded);

/// Relay-load shedding for a node that is still ALIVE but should stop
/// carrying inter-cell traffic (an energy-drained leader that just handed
/// off): entries with a live alternate gateway in the same target cell move
/// to it; entries with no alternative KEEP `via` — unlike the crash-path
/// reroute above, the node can still carry them, so no black hole is
/// created. Returns the number of entries moved.
std::size_t evacuate_entries_via(
    std::vector<RoutingTable>& tables, net::NodeId via,
    const net::LinkLayer& link, const CellMapper& mapper,
    const std::function<bool(net::NodeId)>& excluded);

/// Direction from cell `from` toward adjacent cell `to`, if they are
/// 4-adjacent on the grid.
std::optional<core::Direction> adjacent_direction(const core::GridCoord& from,
                                                  const core::GridCoord& to);

/// Follows the routing-table chain from `start` toward direction `d` until
/// the walk leaves the starting cell; returns the hop sequence including the
/// first node of the adjacent cell, or an empty vector if the chain dead-
/// ends or cycles (should not happen after convergence).
std::vector<net::NodeId> follow_chain(const CellMapper& mapper,
                                      const std::vector<RoutingTable>& tables,
                                      net::NodeId start, core::Direction d);

}  // namespace wsn::emulation
