#include "emulation/overlay_network.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "emulation/membership_view.h"
#include "net/reliable_link.h"
#include "obs/profiler.h"

namespace wsn::emulation {

OverlayNetwork::OverlayNetwork(net::LinkLayer& link, const CellMapper& mapper,
                               EmulationResult emulation, BindingResult binding,
                               core::LeaderPlacement placement)
    : link_(link),
      mapper_(mapper),
      emulation_(std::move(emulation)),
      binding_(std::move(binding)),
      grid_(mapper.grid_side()),
      groups_(grid_, placement),
      handlers_(grid_.node_count()) {
  const std::size_t n = link_.graph().node_count();

  // Intra-cell BFS trees rooted at each cell's bound leader: every member
  // learns its next hop toward the leader.
  toward_leader_.assign(n, net::kNoNode);
  suspected_.assign(n, false);
  epochs_.assign(grid_.node_count(), 0);
  for (const core::GridCoord& cell : grid_.all_coords()) {
    build_cell_tree(cell);
  }

  for (net::NodeId i = 0; i < n; ++i) {
    link_.set_receiver(
        i, [this, i](const net::Packet& pkt) { on_receive(i, pkt); });
  }
}

core::GridCoord OverlayNetwork::cell_view(net::NodeId id) const {
  return membership_ != nullptr ? membership_->cell_of(id)
                                : mapper_.cell_of(id);
}

bool OverlayNetwork::is_dst_leader(net::NodeId at,
                                   const core::GridCoord& dst) const {
  if (at != bound_node(dst)) return false;
  // A proxy leader serves a vacated cell from elsewhere, so the geometric
  // same-cell check only applies when no membership view is live.
  return membership_ != nullptr || mapper_.cell_of(at) == dst;
}

std::vector<net::NodeId> OverlayNetwork::members_view(
    const core::GridCoord& cell) const {
  if (membership_ != nullptr) return membership_->roster(cell);
  auto span = mapper_.members(cell);
  return {span.begin(), span.end()};
}

void OverlayNetwork::build_cell_tree(const core::GridCoord& cell) {
  const auto& graph = link_.graph();
  const std::size_t n = graph.node_count();
  const std::vector<net::NodeId> members = members_view(cell);
  for (net::NodeId m : members) toward_leader_[m] = net::kNoNode;
  const net::NodeId root = binding_.leader_of(cell, mapper_.grid_side());
  if (root == net::kNoNode || link_.is_down(root) || suspected_[root]) return;
  toward_leader_[root] = root;
  std::vector<bool> in_cell(n, false);
  for (net::NodeId m : members) {
    in_cell[m] = !link_.is_down(m) && !suspected_[m];
  }
  std::deque<net::NodeId> frontier{root};
  while (!frontier.empty()) {
    const net::NodeId u = frontier.front();
    frontier.pop_front();
    for (net::NodeId v : graph.neighbors(u)) {
      if (in_cell[v] && toward_leader_[v] == net::kNoNode) {
        toward_leader_[v] = u;
        frontier.push_back(v);
      }
    }
  }
}

void OverlayNetwork::attach_arq(net::ReliableChannel& arq) {
  arq_ = &arq;
  const std::size_t n = link_.graph().node_count();
  for (net::NodeId i = 0; i < n; ++i) {
    arq.set_receiver(
        i, [this, i](const net::Packet& pkt) { on_receive(i, pkt); });
  }
}

void OverlayNetwork::on_hop_give_up(net::NodeId from, net::NodeId to) {
  (void)from;
  if (suspected_[to]) return;
  suspected_[to] = true;
  const RerouteStats stats = reroute_entries_via(
      emulation_.tables, to, link_, mapper_,
      [this](net::NodeId n) { return suspected_[n]; });
  rerouted_entries_ += stats.rerouted;
  purged_entries_ += stats.unroutable;
  build_cell_tree(cell_view(to));
}

void OverlayNetwork::evacuate_relay(net::NodeId id) {
  evacuated_entries_ += evacuate_entries_via(
      emulation_.tables, id, link_, mapper_,
      [this](net::NodeId n) { return suspected_[n]; });
}

std::size_t OverlayNetwork::scramble_routes(net::NodeId id, sim::Rng& rng) {
  const auto& nbrs = link_.graph().neighbors(id);
  if (nbrs.empty()) return 0;
  std::size_t scrambled = 0;
  for (core::Direction d : core::kAllDirections) {
    emulation_.tables[id][d] = nbrs[rng.below(nbrs.size())];
    ++scrambled;
  }
  corrupted_entries_ += scrambled;
  return scrambled;
}

std::size_t OverlayNetwork::repair_routes(net::NodeId id) {
  const auto& graph = link_.graph();
  const core::GridCoord here = mapper_.cell_of(id);
  std::size_t repaired = 0;
  for (core::Direction d : core::kAllDirections) {
    const net::NodeId cur = emulation_.tables[id][d];
    if (cur == net::kNoNode) continue;  // cleared entries stay cleared
    const core::GridCoord target = core::GridTopology::step(here, d);
    if (grid_.contains(target)) {
      // Legitimate entries are radio neighbors that are either direct
      // gateways into the target cell or same-cell chain hops whose table
      // chain still leaves the cell (exactly what the emulation protocol
      // writes and follow_chain verifies). Liveness is deliberately not
      // checked: entries at down/suspected nodes belong to the give-up
      // machinery, so on uncorrupted tables this loop changes nothing.
      bool neighbor = false;
      for (net::NodeId v : graph.neighbors(id)) {
        if (v == cur) {
          neighbor = true;
          break;
        }
      }
      if (neighbor) {
        const core::GridCoord cur_cell = mapper_.cell_of(cur);
        if (cur_cell == target) continue;
        if (cur_cell == here &&
            !follow_chain(mapper_, emulation_.tables, id, d).empty()) {
          continue;
        }
      }
      // Corrupt entry: re-point at a live gateway when one exists (no
      // same-cell chaining, mirroring reroute_entries_via), else clear.
      net::NodeId fresh = net::kNoNode;
      for (net::NodeId v : graph.neighbors(id)) {
        if (mapper_.cell_of(v) == target && !link_.is_down(v) &&
            !suspected_[v]) {
          fresh = v;
          break;
        }
      }
      emulation_.tables[id][d] = fresh;
    } else {
      // No cell in this direction: no protocol execution ever writes an
      // entry here, so any value is corruption.
      emulation_.tables[id][d] = net::kNoNode;
    }
    ++repaired;
  }
  repaired_entries_ += repaired;
  return repaired;
}

void OverlayNetwork::rebind(const core::GridCoord& cell, net::NodeId leader) {
  rebind(cell, leader, epochs_[grid_.index_of(cell)] + 1);
}

void OverlayNetwork::rebind(const core::GridCoord& cell, net::NodeId leader,
                            std::uint64_t epoch) {
  obs::ProfSpan prof(obs::ProfCat::kBinding);
  const std::size_t idx =
      static_cast<std::size_t>(cell.row) * mapper_.grid_side() +
      static_cast<std::size_t>(cell.col);
  binding_.leaders[idx] = leader;
  epochs_[grid_.index_of(cell)] = epoch;
  ++rebinds_;
  build_cell_tree(cell);
  // Route-table repair on rebind: a rebind is the moment the cell's members
  // re-learn who anchors their routing, so scrub any corrupted inter-cell
  // entries they hold. No-op unless state corruption actually struck.
  for (net::NodeId m : members_view(cell)) repair_routes(m);
}

void OverlayNetwork::clear_suspected(net::NodeId id) {
  if (!suspected_[id]) return;
  suspected_[id] = false;
  // Restore routing through the proven-live node: fill any purged
  // (unroutable) inter-cell entries for which it is a valid gateway again,
  // then rebuild its cell's tree so it can relay intra-cell traffic.
  // Entries that were successfully rerouted elsewhere keep their working
  // alternative; only black holes are repaired.
  const auto& graph = link_.graph();
  const core::GridCoord cell = cell_view(id);
  for (net::NodeId i : graph.neighbors(id)) {
    for (core::Direction d : core::kAllDirections) {
      if (emulation_.tables[i][d] != net::kNoNode) continue;
      if (core::GridTopology::step(mapper_.cell_of(i), d) == cell) {
        emulation_.tables[i][d] = id;
        ++restored_entries_;
      }
    }
  }
  build_cell_tree(cell);
}

void OverlayNetwork::send_control(net::NodeId from, net::NodeId to,
                                  std::any payload, double size_units) {
  if (arq_ != nullptr) {
    arq_->send(from, to, std::move(payload), size_units, /*flow=*/0);
  } else {
    link_.unicast(from, to, std::move(payload), size_units, /*flow=*/0);
  }
}

void OverlayNetwork::send(const core::GridCoord& from, const core::GridCoord& to,
                          std::any payload, double size_units) {
  virtual_hops_ += manhattan(from, to);
  const net::NodeId origin = bound_node(from);
  if (origin == net::kNoNode) {
    ++failed_;
    return;
  }
  auto& tr = obs::tracer();
  std::uint64_t flow = 0;
  // Allocate a flow id if any layer below will emit with it: the overlay's
  // own events or the physical hops serving this send.
  if (tr.enabled(obs::Category::kOverlay) ||
      tr.enabled(obs::Category::kLink)) {
    flow = tr.next_flow();
  }
  if (tr.enabled(obs::Category::kOverlay)) {
    tr.emit({simulator().now(), static_cast<std::int64_t>(origin),
             obs::Category::kOverlay, 'i', from == to ? "self_send" : "send",
             flow,
             {{"src", static_cast<std::uint64_t>(grid_.index_of(from))},
              {"dst", static_cast<std::uint64_t>(grid_.index_of(to))},
              {"vhops", static_cast<std::uint64_t>(manhattan(from, to))},
              {"size", size_units}}});
  }
  OverlayPacket pkt{from, to, size_units,
                    std::make_shared<std::any>(std::move(payload)), flow};
  if (from == to) {
    // Self-delivery at the bound node: free, as on the virtual layer.
    simulator().post([this, origin, pkt]() { deliver_local(origin, pkt); });
    return;
  }
  forward(origin, pkt);
}

void OverlayNetwork::deliver_local(net::NodeId at, const OverlayPacket& pkt) {
  if (obs::tracer().enabled(obs::Category::kOverlay)) {
    obs::tracer().emit(
        {simulator().now(), static_cast<std::int64_t>(at),
         obs::Category::kOverlay, 'i', "deliver", pkt.flow,
         {{"src", static_cast<std::uint64_t>(grid_.index_of(pkt.src))},
          {"dst", static_cast<std::uint64_t>(grid_.index_of(pkt.dst))}}});
  }
  const std::size_t idx = grid_.index_of(pkt.dst);
  if (handlers_[idx]) {
    handlers_[idx](core::VirtualMessage{pkt.src, pkt.size_units, *pkt.payload});
  }
}

net::NodeId OverlayNetwork::next_hop(net::NodeId at,
                                     const core::GridCoord& dst_cell,
                                     net::NodeId from, RouteState* rs) const {
  // With a live membership view, a virtual node may be served by a proxy
  // leader physically living in a *different* cell (a vacated cell adopted
  // by a neighbor). Route toward the cell the serving node believes it is
  // in — its own cell's tree climbs to it — instead of the empty geometric
  // destination.
  core::GridCoord target = dst_cell;
  if (membership_ != nullptr) {
    const net::NodeId anchor = bound_node(dst_cell);
    if (anchor != net::kNoNode) target = membership_->cell_of(anchor);
  }
  const core::GridCoord here = cell_view(at);
  if (here == target) {
    // Climb the intra-cell tree toward the bound leader.
    const net::NodeId up = toward_leader_[at];
    return up == at ? net::kNoNode : up;  // at the leader already: no hop
  }
  // Dimension-order cell routing: fix the column first, then the row,
  // mirroring GridTopology::route so virtual and physical paths cross the
  // same cells.
  const core::Direction pref =
      here.col != target.col
          ? (here.col < target.col ? core::Direction::kEast
                                   : core::Direction::kWest)
          : (here.row < target.row ? core::Direction::kSouth
                                   : core::Direction::kNorth);
  if (membership_ == nullptr || rs == nullptr) {
    return emulation_.tables[at][pref];
  }
  // Membership mode: greedy dimension-order with a perimeter fallback.
  // A vacated cell is a hole in the grid that greedy routing cannot see
  // past — dimension-order walks frames straight into pockets it can
  // never leave (a cell whose only live exit is the way the frame came).
  // When the greedy port is unusable the frame switches to a right-hand
  // wall walk around the hole, carried in its RouteState, and resumes
  // greedy the moment it stands strictly closer to the target than where
  // the walk began (the face-routing exit rule). The walk visits each
  // boundary cell a bounded number of times, and every greedy resumption
  // strictly shrinks the entry distance, so delivery terminates whenever
  // the target's component is reachable at all; `ttl` bounds the rest.
  const auto usable = [&](core::Direction d) -> net::NodeId {
    const net::NodeId hop = emulation_.tables[at][d];
    if (hop == net::kNoNode || suspected_[hop]) return net::kNoNode;
    const core::GridCoord next = core::GridTopology::step(here, d);
    if (!(next == target)) {
      // A cell served by an out-of-cell proxy has nothing live to relay
      // through: never use it for transit (this also covers cells `at`
      // itself proxies).
      const net::NodeId a = bound_node(next);
      if (a != net::kNoNode && !(membership_->cell_of(a) == next)) {
        return net::kNoNode;
      }
    }
    return hop;
  };
  // Incoming geometry. A same-cell sender means this node is a chain hop
  // (the emulation's tables may cross a boundary through several same-cell
  // relays) and must keep the frame's direction; an adjacent-cell sender
  // bans the U-turn back into its cell, except as the perimeter walk's
  // last resort — backtracking out of a true cul-de-sac.
  bool has_banned = false;
  core::Direction banned = core::Direction::kNorth;
  bool chain_hop = false;
  if (from != net::kNoNode) {
    const core::GridCoord from_cell = cell_view(from);
    if (from_cell == here) {
      chain_hop = true;
    } else {
      for (const core::Direction dd : core::kAllDirections) {
        if (core::GridTopology::step(here, dd) == from_cell) {
          has_banned = true;
          banned = dd;
          break;
        }
      }
    }
  }
  const bool perimeter = rs->detour != 0;
  const core::Direction travel =
      perimeter ? static_cast<core::Direction>(rs->detour - 1) : pref;
  if (chain_hop) {
    const net::NodeId hop = usable(travel);
    if (hop != net::kNoNode) return hop;
    // The chain broke beneath us (its gateway died): reselect from here.
  }
  const std::uint32_t dist = core::manhattan(here, target);
  if (!(has_banned && pref == banned)) {
    const net::NodeId hop = usable(pref);
    if (hop != net::kNoNode && (!perimeter || dist < rs->entry_dist)) {
      rs->detour = 0;
      return hop;
    }
  }
  if (!perimeter) {
    rs->entry_dist =
        static_cast<std::uint8_t>(std::min<std::uint32_t>(dist, 255));
    rs->ttl = static_cast<std::uint8_t>(
        std::min<std::size_t>(4 * grid_.side() + 8, 255));
  } else if (rs->ttl == 0) {
    return net::kNoNode;  // walked the budget out: target unreachable
  } else {
    --rs->ttl;
  }
  // Right-hand wall walk: try the direction right of travel first, then
  // ahead, then left, then (only if everything else is banned or dead) the
  // U-turn. Direction enum order is clockwise, so right-of is +1 mod 4.
  const auto right_of = [](core::Direction d) {
    return static_cast<core::Direction>(
        (static_cast<std::uint8_t>(d) + 1) % 4);
  };
  const core::Direction order[4] = {right_of(travel), travel,
                                    core::opposite(right_of(travel)),
                                    core::opposite(travel)};
  for (int pass = 0; pass < 2; ++pass) {
    for (const core::Direction d : order) {
      const bool is_banned = has_banned && d == banned;
      if ((pass == 0) == is_banned) continue;
      const net::NodeId hop = usable(d);
      if (hop != net::kNoNode) {
        rs->detour = static_cast<std::uint8_t>(d) + 1;
        return hop;
      }
    }
  }
  return net::kNoNode;
}

void OverlayNetwork::forward(net::NodeId at, const OverlayPacket& pkt,
                             net::NodeId from) {
  OverlayPacket p = pkt;  // next_hop updates the frame's routing state
  const net::NodeId nh = next_hop(at, p.dst, from, &p.route);
  if (nh == net::kNoNode) {
    // Either routing is impossible or `at` is already the destination
    // leader (self-send handled earlier, so reaching here with no hop and
    // the right cell means delivery).
    if (is_dst_leader(at, pkt.dst)) {
      deliver_local(at, pkt);
    } else {
      ++failed_;
      // Purged tables (suspected/crashed gateway) can leave no route; the
      // drop event keeps the flow explicable offline.
      if (obs::tracer().enabled(obs::Category::kOverlay)) {
        obs::tracer().emit(
            {simulator().now(), static_cast<std::int64_t>(at),
             obs::Category::kOverlay, 'i', "drop", pkt.flow,
             {{"dst", static_cast<std::uint64_t>(grid_.index_of(pkt.dst))},
              {"why", std::string("no_route")}}});
      }
    }
    return;
  }
  ++physical_hops_;
  if (arq_ != nullptr) {
    arq_->send(at, nh, p, p.size_units, p.flow);
  } else {
    link_.unicast(at, nh, p, p.size_units, p.flow);
  }
}

void OverlayNetwork::on_receive(net::NodeId at, const net::Packet& raw) {
  const auto* pkt = std::any_cast<OverlayPacket>(&raw.payload);
  if (pkt == nullptr) {
    // Not the overlay's wire format: control-plane traffic (failure
    // detection leases, elections) multiplexed onto the same transport.
    if (control_receiver_) control_receiver_(at, raw);
    return;
  }
  if (is_dst_leader(at, pkt->dst)) {
    deliver_local(at, *pkt);
    return;
  }
  forward(at, *pkt, raw.sender);
}

}  // namespace wsn::emulation
