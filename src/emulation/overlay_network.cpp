#include "emulation/overlay_network.h"

#include <deque>
#include <stdexcept>

#include "net/reliable_link.h"
#include "obs/profiler.h"

namespace wsn::emulation {

OverlayNetwork::OverlayNetwork(net::LinkLayer& link, const CellMapper& mapper,
                               EmulationResult emulation, BindingResult binding,
                               core::LeaderPlacement placement)
    : link_(link),
      mapper_(mapper),
      emulation_(std::move(emulation)),
      binding_(std::move(binding)),
      grid_(mapper.grid_side()),
      groups_(grid_, placement),
      handlers_(grid_.node_count()) {
  const std::size_t n = link_.graph().node_count();

  // Intra-cell BFS trees rooted at each cell's bound leader: every member
  // learns its next hop toward the leader.
  toward_leader_.assign(n, net::kNoNode);
  suspected_.assign(n, false);
  epochs_.assign(grid_.node_count(), 0);
  for (const core::GridCoord& cell : grid_.all_coords()) {
    build_cell_tree(cell);
  }

  for (net::NodeId i = 0; i < n; ++i) {
    link_.set_receiver(
        i, [this, i](const net::Packet& pkt) { on_receive(i, pkt); });
  }
}

void OverlayNetwork::build_cell_tree(const core::GridCoord& cell) {
  const auto& graph = link_.graph();
  const std::size_t n = graph.node_count();
  auto members = mapper_.members(cell);
  for (net::NodeId m : members) toward_leader_[m] = net::kNoNode;
  const net::NodeId root = binding_.leader_of(cell, mapper_.grid_side());
  if (root == net::kNoNode || link_.is_down(root) || suspected_[root]) return;
  toward_leader_[root] = root;
  std::vector<bool> in_cell(n, false);
  for (net::NodeId m : members) {
    in_cell[m] = !link_.is_down(m) && !suspected_[m];
  }
  std::deque<net::NodeId> frontier{root};
  while (!frontier.empty()) {
    const net::NodeId u = frontier.front();
    frontier.pop_front();
    for (net::NodeId v : graph.neighbors(u)) {
      if (in_cell[v] && toward_leader_[v] == net::kNoNode) {
        toward_leader_[v] = u;
        frontier.push_back(v);
      }
    }
  }
}

void OverlayNetwork::attach_arq(net::ReliableChannel& arq) {
  arq_ = &arq;
  const std::size_t n = link_.graph().node_count();
  for (net::NodeId i = 0; i < n; ++i) {
    arq.set_receiver(
        i, [this, i](const net::Packet& pkt) { on_receive(i, pkt); });
  }
}

void OverlayNetwork::on_hop_give_up(net::NodeId from, net::NodeId to) {
  (void)from;
  if (suspected_[to]) return;
  suspected_[to] = true;
  const RerouteStats stats = reroute_entries_via(
      emulation_.tables, to, link_, mapper_,
      [this](net::NodeId n) { return suspected_[n]; });
  rerouted_entries_ += stats.rerouted;
  purged_entries_ += stats.unroutable;
  build_cell_tree(mapper_.cell_of(to));
}

void OverlayNetwork::evacuate_relay(net::NodeId id) {
  evacuated_entries_ += evacuate_entries_via(
      emulation_.tables, id, link_, mapper_,
      [this](net::NodeId n) { return suspected_[n]; });
}

std::size_t OverlayNetwork::scramble_routes(net::NodeId id, sim::Rng& rng) {
  const auto& nbrs = link_.graph().neighbors(id);
  if (nbrs.empty()) return 0;
  std::size_t scrambled = 0;
  for (core::Direction d : core::kAllDirections) {
    emulation_.tables[id][d] = nbrs[rng.below(nbrs.size())];
    ++scrambled;
  }
  corrupted_entries_ += scrambled;
  return scrambled;
}

std::size_t OverlayNetwork::repair_routes(net::NodeId id) {
  const auto& graph = link_.graph();
  const core::GridCoord here = mapper_.cell_of(id);
  std::size_t repaired = 0;
  for (core::Direction d : core::kAllDirections) {
    const net::NodeId cur = emulation_.tables[id][d];
    if (cur == net::kNoNode) continue;  // cleared entries stay cleared
    const core::GridCoord target = core::GridTopology::step(here, d);
    if (grid_.contains(target)) {
      // Legitimate entries are radio neighbors that are either direct
      // gateways into the target cell or same-cell chain hops whose table
      // chain still leaves the cell (exactly what the emulation protocol
      // writes and follow_chain verifies). Liveness is deliberately not
      // checked: entries at down/suspected nodes belong to the give-up
      // machinery, so on uncorrupted tables this loop changes nothing.
      bool neighbor = false;
      for (net::NodeId v : graph.neighbors(id)) {
        if (v == cur) {
          neighbor = true;
          break;
        }
      }
      if (neighbor) {
        const core::GridCoord cur_cell = mapper_.cell_of(cur);
        if (cur_cell == target) continue;
        if (cur_cell == here &&
            !follow_chain(mapper_, emulation_.tables, id, d).empty()) {
          continue;
        }
      }
      // Corrupt entry: re-point at a live gateway when one exists (no
      // same-cell chaining, mirroring reroute_entries_via), else clear.
      net::NodeId fresh = net::kNoNode;
      for (net::NodeId v : graph.neighbors(id)) {
        if (mapper_.cell_of(v) == target && !link_.is_down(v) &&
            !suspected_[v]) {
          fresh = v;
          break;
        }
      }
      emulation_.tables[id][d] = fresh;
    } else {
      // No cell in this direction: no protocol execution ever writes an
      // entry here, so any value is corruption.
      emulation_.tables[id][d] = net::kNoNode;
    }
    ++repaired;
  }
  repaired_entries_ += repaired;
  return repaired;
}

void OverlayNetwork::rebind(const core::GridCoord& cell, net::NodeId leader) {
  rebind(cell, leader, epochs_[grid_.index_of(cell)] + 1);
}

void OverlayNetwork::rebind(const core::GridCoord& cell, net::NodeId leader,
                            std::uint64_t epoch) {
  obs::ProfSpan prof(obs::ProfCat::kBinding);
  const std::size_t idx =
      static_cast<std::size_t>(cell.row) * mapper_.grid_side() +
      static_cast<std::size_t>(cell.col);
  binding_.leaders[idx] = leader;
  epochs_[grid_.index_of(cell)] = epoch;
  ++rebinds_;
  build_cell_tree(cell);
  // Route-table repair on rebind: a rebind is the moment the cell's members
  // re-learn who anchors their routing, so scrub any corrupted inter-cell
  // entries they hold. No-op unless state corruption actually struck.
  for (net::NodeId m : mapper_.members(cell)) repair_routes(m);
}

void OverlayNetwork::clear_suspected(net::NodeId id) {
  if (!suspected_[id]) return;
  suspected_[id] = false;
  // Restore routing through the proven-live node: fill any purged
  // (unroutable) inter-cell entries for which it is a valid gateway again,
  // then rebuild its cell's tree so it can relay intra-cell traffic.
  // Entries that were successfully rerouted elsewhere keep their working
  // alternative; only black holes are repaired.
  const auto& graph = link_.graph();
  const core::GridCoord cell = mapper_.cell_of(id);
  for (net::NodeId i : graph.neighbors(id)) {
    for (core::Direction d : core::kAllDirections) {
      if (emulation_.tables[i][d] != net::kNoNode) continue;
      if (core::GridTopology::step(mapper_.cell_of(i), d) == cell) {
        emulation_.tables[i][d] = id;
        ++restored_entries_;
      }
    }
  }
  build_cell_tree(cell);
}

void OverlayNetwork::send_control(net::NodeId from, net::NodeId to,
                                  std::any payload, double size_units) {
  if (arq_ != nullptr) {
    arq_->send(from, to, std::move(payload), size_units, /*flow=*/0);
  } else {
    link_.unicast(from, to, std::move(payload), size_units, /*flow=*/0);
  }
}

void OverlayNetwork::send(const core::GridCoord& from, const core::GridCoord& to,
                          std::any payload, double size_units) {
  virtual_hops_ += manhattan(from, to);
  const net::NodeId origin = bound_node(from);
  if (origin == net::kNoNode) {
    ++failed_;
    return;
  }
  auto& tr = obs::tracer();
  std::uint64_t flow = 0;
  // Allocate a flow id if any layer below will emit with it: the overlay's
  // own events or the physical hops serving this send.
  if (tr.enabled(obs::Category::kOverlay) ||
      tr.enabled(obs::Category::kLink)) {
    flow = tr.next_flow();
  }
  if (tr.enabled(obs::Category::kOverlay)) {
    tr.emit({simulator().now(), static_cast<std::int64_t>(origin),
             obs::Category::kOverlay, 'i', from == to ? "self_send" : "send",
             flow,
             {{"src", static_cast<std::uint64_t>(grid_.index_of(from))},
              {"dst", static_cast<std::uint64_t>(grid_.index_of(to))},
              {"vhops", static_cast<std::uint64_t>(manhattan(from, to))},
              {"size", size_units}}});
  }
  OverlayPacket pkt{from, to, size_units,
                    std::make_shared<std::any>(std::move(payload)), flow};
  if (from == to) {
    // Self-delivery at the bound node: free, as on the virtual layer.
    simulator().post([this, origin, pkt]() { deliver_local(origin, pkt); });
    return;
  }
  forward(origin, pkt);
}

void OverlayNetwork::deliver_local(net::NodeId at, const OverlayPacket& pkt) {
  if (obs::tracer().enabled(obs::Category::kOverlay)) {
    obs::tracer().emit(
        {simulator().now(), static_cast<std::int64_t>(at),
         obs::Category::kOverlay, 'i', "deliver", pkt.flow,
         {{"src", static_cast<std::uint64_t>(grid_.index_of(pkt.src))},
          {"dst", static_cast<std::uint64_t>(grid_.index_of(pkt.dst))}}});
  }
  const std::size_t idx = grid_.index_of(pkt.dst);
  if (handlers_[idx]) {
    handlers_[idx](core::VirtualMessage{pkt.src, pkt.size_units, *pkt.payload});
  }
}

net::NodeId OverlayNetwork::next_hop(net::NodeId at,
                                     const core::GridCoord& dst_cell) const {
  const core::GridCoord here = mapper_.cell_of(at);
  if (here == dst_cell) {
    // Climb the intra-cell tree toward the bound leader.
    const net::NodeId up = toward_leader_[at];
    return up == at ? net::kNoNode : up;  // at the leader already: no hop
  }
  // Dimension-order cell routing: fix the column first, then the row,
  // mirroring GridTopology::route so virtual and physical paths cross the
  // same cells.
  core::Direction d;
  if (here.col != dst_cell.col) {
    d = here.col < dst_cell.col ? core::Direction::kEast
                                : core::Direction::kWest;
  } else {
    d = here.row < dst_cell.row ? core::Direction::kSouth
                                : core::Direction::kNorth;
  }
  return emulation_.tables[at][d];
}

void OverlayNetwork::forward(net::NodeId at, const OverlayPacket& pkt) {
  const net::NodeId nh = next_hop(at, pkt.dst);
  if (nh == net::kNoNode) {
    // Either routing is impossible or `at` is already the destination
    // leader (self-send handled earlier, so reaching here with no hop and
    // the right cell means delivery).
    if (mapper_.cell_of(at) == pkt.dst && at == bound_node(pkt.dst)) {
      deliver_local(at, pkt);
    } else {
      ++failed_;
      // Purged tables (suspected/crashed gateway) can leave no route; the
      // drop event keeps the flow explicable offline.
      if (obs::tracer().enabled(obs::Category::kOverlay)) {
        obs::tracer().emit(
            {simulator().now(), static_cast<std::int64_t>(at),
             obs::Category::kOverlay, 'i', "drop", pkt.flow,
             {{"dst", static_cast<std::uint64_t>(grid_.index_of(pkt.dst))},
              {"why", std::string("no_route")}}});
      }
    }
    return;
  }
  ++physical_hops_;
  if (arq_ != nullptr) {
    arq_->send(at, nh, pkt, pkt.size_units, pkt.flow);
  } else {
    link_.unicast(at, nh, pkt, pkt.size_units, pkt.flow);
  }
}

void OverlayNetwork::on_receive(net::NodeId at, const net::Packet& raw) {
  const auto* pkt = std::any_cast<OverlayPacket>(&raw.payload);
  if (pkt == nullptr) {
    // Not the overlay's wire format: control-plane traffic (failure
    // detection leases, elections) multiplexed onto the same transport.
    if (control_receiver_) control_receiver_(at, raw);
    return;
  }
  if (mapper_.cell_of(at) == pkt->dst && at == bound_node(pkt->dst)) {
    deliver_local(at, *pkt);
    return;
  }
  forward(at, *pkt);
}

}  // namespace wsn::emulation
