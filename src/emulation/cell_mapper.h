// Cell mapping VP : V_R -> [m] x [m] (Section 5.1).
//
// The square terrain of side L is partitioned into m x m non-overlapping
// equal cells of side c = L/m. Every physical node knows its own (x, y)
// coordinates and the terrain boundary, so it can compute the grid
// coordinates of its cell, the cell's geographic center, and its Euclidean
// distance to that center - all the local knowledge the Section 5 protocols
// assume.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/grid_topology.h"
#include "net/geometry.h"
#include "net/network_graph.h"

namespace wsn::emulation {

/// Immutable node-to-cell assignment for one deployment.
class CellMapper {
 public:
  /// Partitions `terrain` into `grid_side` x `grid_side` cells and assigns
  /// every node of `graph` to its containing cell.
  CellMapper(const net::NetworkGraph& graph, net::Rect terrain,
             std::size_t grid_side);

  const net::NetworkGraph& graph() const { return *graph_; }
  const net::Rect& terrain() const { return terrain_; }
  std::size_t grid_side() const { return grid_side_; }
  double cell_side() const { return terrain_.width() / static_cast<double>(grid_side_); }

  /// VP(s): the virtual grid coordinate of the cell containing node `id`.
  core::GridCoord cell_of(net::NodeId id) const { return cells_[id]; }

  /// CELL_(r,c): all nodes assigned to the cell, sorted by id.
  std::span<const net::NodeId> members(const core::GridCoord& cell) const;

  /// Geographic center of the cell (Section 5.2's ctr).
  net::Point cell_center(const core::GridCoord& cell) const;

  /// Euclidean distance from node `id` to its own cell's center.
  double distance_to_center(net::NodeId id) const;

  /// Geographic rectangle of a cell.
  net::Rect cell_rect(const core::GridCoord& cell) const;

  /// Paper precondition: at least one node per cell.
  bool all_cells_occupied() const;

  /// Paper assumption: the subgraph induced by each cell's nodes is
  /// connected.
  bool all_cells_connected() const;

  /// Cells violating either precondition (for diagnostics).
  std::vector<core::GridCoord> unoccupied_cells() const;
  std::vector<core::GridCoord> disconnected_cells() const;

 private:
  std::size_t cell_index(const core::GridCoord& cell) const {
    return static_cast<std::size_t>(cell.row) * grid_side_ +
           static_cast<std::size_t>(cell.col);
  }

  const net::NetworkGraph* graph_;
  net::Rect terrain_;
  std::size_t grid_side_;
  std::vector<core::GridCoord> cells_;            // node -> cell
  std::vector<std::vector<net::NodeId>> members_; // cell (row-major) -> nodes
};

}  // namespace wsn::emulation
