#include "emulation/tree_overlay.h"

#include <deque>
#include <limits>
#include <memory>
#include <stdexcept>

#include "emulation/emulation_protocol.h"

namespace wsn::emulation {

std::optional<std::size_t> TreeOverlay::index_of(
    const core::GridCoord& cell) const {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i] == cell) return i;
  }
  return std::nullopt;
}

TreeOverlay build_tree_overlay(const CellMapper& mapper,
                               const BindingResult& binding,
                               const core::GridCoord& root_hint) {
  const std::size_t m = mapper.grid_side();
  core::GridTopology grid(m);

  // Collect occupied cells (those with a bound leader).
  std::vector<core::GridCoord> occupied;
  for (const core::GridCoord& cell : grid.all_coords()) {
    if (binding.leader_of(cell, m) != net::kNoNode) occupied.push_back(cell);
  }
  if (occupied.empty()) {
    throw std::runtime_error("build_tree_overlay: no occupied cells");
  }

  // Root: occupied cell closest to the hint (row-major tie-break via scan
  // order).
  std::size_t root = 0;
  for (std::size_t i = 1; i < occupied.size(); ++i) {
    if (core::manhattan(occupied[i], root_hint) <
        core::manhattan(occupied[root], root_hint)) {
      root = i;
    }
  }
  std::swap(occupied[0], occupied[root]);

  TreeOverlay tree;
  auto occupied_index = [&occupied](const core::GridCoord& c)
      -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < occupied.size(); ++i) {
      if (occupied[i] == c) return i;
    }
    return std::nullopt;
  };

  std::vector<bool> reached(occupied.size(), false);
  std::vector<std::size_t> parent_of(occupied.size(), 0);
  std::vector<std::uint32_t> depth_of(occupied.size(), 0);

  // Phase 1: BFS over 4-adjacent occupied cells.
  std::deque<std::size_t> frontier{0};
  reached[0] = true;
  std::size_t reached_count = 1;
  while (!frontier.empty()) {
    const std::size_t cur = frontier.front();
    frontier.pop_front();
    for (core::Direction d : core::kAllDirections) {
      const core::GridCoord next = core::GridTopology::step(occupied[cur], d);
      if (const auto idx = occupied_index(next); idx && !reached[*idx]) {
        reached[*idx] = true;
        parent_of[*idx] = cur;
        depth_of[*idx] = depth_of[cur] + 1;
        frontier.push_back(*idx);
        ++reached_count;
      }
    }
  }

  // Phase 2: bridge detached clusters through the physically closest
  // reached leader.
  const auto& graph = mapper.graph();
  while (reached_count < occupied.size()) {
    std::size_t best_unreached = occupied.size();
    std::size_t best_anchor = occupied.size();
    std::uint32_t best_dist = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t i = 0; i < occupied.size(); ++i) {
      if (reached[i]) continue;
      const net::NodeId leader = binding.leader_of(occupied[i], m);
      const auto dist = graph.hop_distances(leader);
      for (std::size_t j = 0; j < occupied.size(); ++j) {
        if (!reached[j]) continue;
        const net::NodeId other = binding.leader_of(occupied[j], m);
        if (dist[other] < best_dist) {
          best_dist = dist[other];
          best_unreached = i;
          best_anchor = j;
        }
      }
    }
    if (best_unreached == occupied.size()) {
      throw std::runtime_error(
          "build_tree_overlay: physical network disconnects occupied cells");
    }
    reached[best_unreached] = true;
    parent_of[best_unreached] = best_anchor;
    depth_of[best_unreached] = depth_of[best_anchor] + 1;
    ++reached_count;
  }

  tree.cells = occupied;
  tree.parent = std::move(parent_of);
  tree.depth = std::move(depth_of);
  tree.leader.reserve(occupied.size());
  for (const core::GridCoord& cell : tree.cells) {
    tree.leader.push_back(binding.leader_of(cell, m));
  }
  return tree;
}

namespace {

/// Source-routed convergecast packet: `value` travels along `path` toward
/// the cell with tree index `target`.
struct TreeMsg {
  std::size_t target;
  std::shared_ptr<std::vector<net::NodeId>> path;
  std::size_t hop;
  double value;
};

constexpr double kTreeMsgUnits = 1.0;

struct TreeState {
  std::vector<double> acc;
  std::vector<std::size_t> pending;
  TreeAggregation result;
  bool done = false;
};

}  // namespace

TreeAggregation run_tree_sum(net::LinkLayer& link, const TreeOverlay& tree,
                             std::span<const double> leader_values) {
  if (leader_values.size() != tree.size()) {
    throw std::invalid_argument("run_tree_sum: values/cells size mismatch");
  }
  const auto& graph = link.graph();
  auto& sim = link.simulator();

  auto state = std::make_shared<TreeState>();
  state->acc.assign(leader_values.begin(), leader_values.end());
  state->pending.assign(tree.size(), 0);
  for (std::size_t i = 1; i < tree.size(); ++i) {
    ++state->pending[tree.parent[i]];
  }

  // Pre-computed physical routes for each tree edge (child -> parent).
  std::vector<std::shared_ptr<std::vector<net::NodeId>>> routes(tree.size());
  for (std::size_t i = 1; i < tree.size(); ++i) {
    auto path = graph.shortest_path(tree.leader[i],
                                    tree.leader[tree.parent[i]]);
    if (path.empty()) {
      throw std::runtime_error("run_tree_sum: leaders not connected");
    }
    routes[i] = std::make_shared<std::vector<net::NodeId>>(std::move(path));
  }

  // Forward declaration dance via shared function object.
  auto send_up = std::make_shared<std::function<void(std::size_t)>>();

  // `launch` must not capture send_up itself, or the shared function would
  // own itself through the closure and never free.
  auto launch = [state, &link, &tree, routes](std::size_t child) {
    const auto& path = routes[child];
    const TreeMsg msg{tree.parent[child], path, 1, state->acc[child]};
    ++state->result.messages;
    ++state->result.physical_hops;
    link.unicast((*path)[0], (*path)[1], msg, kTreeMsgUnits);
  };
  *send_up = launch;

  // Receivers: forward along the source route; fold at the target leader.
  for (net::NodeId node = 0; node < graph.node_count(); ++node) {
    link.set_receiver(node, [state, &link, &tree, node,
                             send_up](const net::Packet& pkt) {
      auto msg = std::any_cast<TreeMsg>(pkt.payload);
      const auto& path = *msg.path;
      if (path[msg.hop] != node) return;  // stale overhearing; ignore
      if (msg.hop + 1 < path.size()) {
        TreeMsg next = msg;
        ++next.hop;
        ++state->result.physical_hops;
        link.unicast(node, path[msg.hop + 1], next, kTreeMsgUnits);
        return;
      }
      // Arrived at the target cell's leader: fold.
      const std::size_t cell = msg.target;
      const sim::Time lat = link.compute(node, 1.0);
      link.simulator().schedule_in(lat, [state, &link, cell, value = msg.value,
                                         send_up]() {
        state->acc[cell] += value;
        if (--state->pending[cell] == 0) {
          if (cell == 0) {
            state->result.value = state->acc[0];
            state->result.finished = link.simulator().now();
            state->done = true;
          } else {
            (*send_up)(cell);
          }
        }
      });
    });
  }

  // Leaves start immediately; the root of a singleton tree finishes now.
  if (tree.size() == 1) {
    state->result.value = state->acc[0];
    state->done = true;
  } else {
    for (std::size_t i = 1; i < tree.size(); ++i) {
      if (state->pending[i] == 0) launch(i);
    }
  }

  sim.run();
  for (net::NodeId node = 0; node < graph.node_count(); ++node) {
    link.set_receiver(node, nullptr);
  }
  if (!state->done) {
    throw std::runtime_error("run_tree_sum: aggregation did not complete");
  }
  return state->result;
}

}  // namespace wsn::emulation
