// OverlayNetwork: the runtime system made executable.
//
// Implements core::MessageFabric on top of the physical network: a message
// from virtual node (r,c) to virtual node (r',c') leaves the physical node
// bound to cell (r,c), crosses cells in dimension-order using the routing
// tables built by the Section 5.1 emulation protocol (hop-by-hop, each relay
// consulting only its own table), and finally climbs the intra-cell tree to
// the bound leader of the destination cell.
//
// Every physical hop is a real LinkLayer unicast: energy lands in the
// physical ledger and latency accumulates per hop, so measurements taken
// here are the "actual performance on the underlying network" that the
// paper's methodology promises will track the virtual-architecture analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/fabric.h"
#include "emulation/cell_mapper.h"
#include "emulation/emulation_protocol.h"
#include "emulation/leader_binding.h"
#include "net/link_layer.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/rng.h"

namespace wsn::net {
class ReliableChannel;
}

namespace wsn::emulation {

class MembershipView;

class OverlayNetwork final : public core::MessageFabric {
 public:
  /// Binds the overlay to a completed emulation + binding. The grid side of
  /// `mapper` must match the virtual topology used by programs. The overlay
  /// owns the LinkLayer receivers of every physical node.
  OverlayNetwork(net::LinkLayer& link, const CellMapper& mapper,
                 EmulationResult emulation, BindingResult binding,
                 core::LeaderPlacement placement = core::LeaderPlacement::kNorthWest);

  sim::Simulator& simulator() override { return link_.simulator(); }
  const core::GridTopology& grid() const override { return grid_; }
  const core::GroupHierarchy& groups() const override { return groups_; }

  void set_receiver(const core::GridCoord& c, Handler h) override {
    handlers_[grid_.index_of(c)] = std::move(h);
  }

  void send(const core::GridCoord& from, const core::GridCoord& to,
            std::any payload, double size_units) override;

  /// Charges `ops` to the physical node bound to `c`.
  sim::Time compute(const core::GridCoord& c, double ops) override {
    return link_.compute(bound_node(c), ops);
  }

  /// Physical node executing virtual node `c`.
  net::NodeId bound_node(const core::GridCoord& c) const {
    return binding_.leader_of(c, mapper_.grid_side());
  }

  net::LinkLayer& link() { return link_; }
  const CellMapper& mapper() const { return mapper_; }
  /// The attached ARQ channel, or nullptr before attach_arq.
  net::ReliableChannel* arq() { return arq_; }

  /// Attaches (or detaches, with nullptr) a live membership view: cell
  /// trees, routing anchors, and delivery checks consult the view's cell
  /// beliefs/rosters instead of the immutable geometric CellMapper, so
  /// adopted orphans relay and receive for their adopter cell. Without a
  /// view (the default) behavior is byte-identical to the geometric
  /// mapping. Owned by the FailureDetector when its membership mode is on.
  void set_membership_view(const MembershipView* view) {
    membership_ = view;
  }
  const MembershipView* membership_view() const { return membership_; }

  /// Rebuilds `cell`'s intra-cell tree without changing its binding — the
  /// adoption path uses this when a cell's member set changed (an orphan
  /// joined) but its leader did not.
  void refresh_cell_tree(const core::GridCoord& cell) {
    build_cell_tree(cell);
  }

  /// Routes every subsequent physical hop through `arq` (per-hop ack +
  /// retransmit) instead of raw unicast. The channel must wrap this
  /// overlay's LinkLayer; calling this hands the channel's receivers to the
  /// overlay (the channel already owns the raw link receivers). While
  /// attached, no other component may inject raw (non-ARQ) link traffic.
  void attach_arq(net::ReliableChannel& arq);

  /// Whether a node has been marked unresponsive by on_hop_give_up.
  bool is_suspected(net::NodeId id) const { return suspected_[id]; }

  /// Clears a suspicion (the node proved itself alive — e.g. a heartbeat or
  /// lease arrived from it) and restores routing through it: inter-cell
  /// entries are rebuilt where the node is again the best gateway and its
  /// cell's intra-cell tree is recomputed. No-op if not suspected.
  void clear_suspected(net::NodeId id);

  /// Per-frame routing state, carried inside each routed frame (membership
  /// mode only; stays all-zero otherwise). Greedy dimension-order routing
  /// needs no state, but escaping a pocket of dead cells does: `detour` is
  /// 0 while greedy and Direction+1 of the travel direction while walking
  /// the perimeter of a hole, `entry_dist` is the Manhattan distance to
  /// the target where the walk began (the face-routing exit threshold),
  /// and `ttl` bounds the walk against unreachable targets.
  struct RouteState {
    std::uint8_t detour = 0;
    std::uint8_t entry_dist = 0;
    std::uint8_t ttl = 0;
  };

  /// Next physical hop from `at` toward the bound leader of `dst_cell`, or
  /// kNoNode when no route exists (also when `at` IS that leader). Exposed
  /// so control-plane protocols (failure detection leases) can ride the
  /// same hop-by-hop tables as data instead of consulting global state.
  /// `from` is the physical sender the frame arrived from (kNoNode at the
  /// source); relays never forward back into the cell it came from, which
  /// keeps the dead-cell detours loop-free. `rs` is the frame's routing
  /// state, updated in place.
  net::NodeId route_next_hop(net::NodeId at, const core::GridCoord& dst_cell,
                             net::NodeId from = net::kNoNode,
                             RouteState* rs = nullptr) const {
    return next_hop(at, dst_cell, from, rs);
  }

  /// Control-plane escape hatch: sends `payload` one physical hop
  /// `from` -> `to` through the same transport the overlay's data takes
  /// (the ARQ channel when attached, the raw link otherwise), charging
  /// energy normally. On arrival the packet is handed to the control
  /// receiver instead of the overlay forwarding logic. Control traffic is
  /// uncorrelated (flow 0): it serves no single logical message.
  void send_control(net::NodeId from, net::NodeId to, std::any payload,
                    double size_units);

  /// Installs the handler for packets sent via send_control. Any payload
  /// that is not the overlay's own wire format is dispatched here, so one
  /// protocol at a time may own the control channel.
  void set_control_receiver(
      std::function<void(net::NodeId at, const net::Packet&)> handler) {
    control_receiver_ = std::move(handler);
  }

  /// Binding generation of `cell`: starts at 0 and bumps on every rebind.
  /// Collectives stamp contributions with it (core::MessageFabric docs).
  std::uint64_t binding_epoch(const core::GridCoord& c) const override {
    return epochs_[grid_.index_of(c)];
  }

  /// Liveness suspicion hook, intended for ReliableChannel::on_give_up:
  /// marks `to` suspected, re-points every inter-cell table entry routing
  /// via `to` at an alternate gateway where one exists (clearing the rest),
  /// and rebuilds the intra-cell tree of `to`'s cell around it. Subsequent
  /// sends route around the suspect; sends with no alternate route fail
  /// fast instead of black-holing.
  void on_hop_give_up(net::NodeId from, net::NodeId to);

  /// Relay-load shedding for a node that is still alive but running out of
  /// battery (a leader that just handed off): inter-cell entries routing
  /// via `id` move to an alternate gateway where one exists, but entries
  /// with no alternative keep `id` — it can still carry them, so nothing
  /// black-holes. When the node's battery finally dies, only the
  /// unavoidable entries break and the ARQ give-up path repairs those.
  void evacuate_relay(net::NodeId id);

  /// State-corruption hook (fault kind state_corruption, target "routes"):
  /// re-points every routing-table entry of `id` at a random radio neighbor
  /// drawn from `rng`, regardless of direction — the entries stay physical
  /// links (frames still transmit), but traffic through `id` misroutes
  /// until repair_routes undoes the damage. Returns entries scrambled.
  std::size_t scramble_routes(net::NodeId id, sim::Rng& rng);

  /// Local route-table validation for node `id`, the self-stabilization
  /// counterpart of scramble_routes: an entry is legitimate only if it
  /// points at a radio neighbor that is either a gateway in the direction's
  /// adjacent cell or a same-cell chain hop whose table chain still reaches
  /// that cell (what the Section 5.1 protocol builds). Anything else — a
  /// non-neighbor, a wrong-cell hop, a looping chain, an entry for an
  /// off-grid direction — is replaced with a live gateway neighbor when one
  /// exists and cleared otherwise. Entries merely pointing at down or
  /// suspected nodes are left alone (the give-up/suspicion machinery owns
  /// those), so this is a no-op on every uncorrupted table. Runs on every
  /// rebind for the rebinding cell's members and on every audit round.
  /// Returns the number of entries repaired.
  std::size_t repair_routes(net::NodeId id);

  /// Re-points virtual node `cell` at a new physical leader (failover after
  /// the bound node crashed) and rebuilds the cell's intra-cell tree toward
  /// it. Handlers installed via set_receiver are keyed by virtual coord and
  /// survive the rebind unchanged. Bumps the cell's binding epoch by one;
  /// the overload takes the epoch the distributed election agreed on.
  void rebind(const core::GridCoord& cell, net::NodeId leader);
  void rebind(const core::GridCoord& cell, net::NodeId leader,
              std::uint64_t epoch);

  /// Total physical hops taken by overlay messages.
  std::uint64_t physical_hops() const { return physical_hops_; }
  /// Total virtual (manhattan) hops the same messages would take on the
  /// virtual grid; physical/virtual is the emulation stretch.
  std::uint64_t virtual_hops() const { return virtual_hops_; }
  /// Messages that could not be routed (missing table entry / no leader).
  std::uint64_t failed_sends() const { return failed_; }

  /// Registers the overlay's instruments plus its LinkLayer's under
  /// `prefix` / `prefix`.link in the unified registry.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "overlay") const {
    registry.add_gauge(prefix + ".physical_hops", [this] {
      return static_cast<double>(physical_hops_);
    });
    registry.add_gauge(prefix + ".virtual_hops", [this] {
      return static_cast<double>(virtual_hops_);
    });
    registry.add_gauge(prefix + ".failed_sends",
                       [this] { return static_cast<double>(failed_); });
    registry.add_gauge(prefix + ".suspected", [this] {
      std::size_t n = 0;
      for (bool s : suspected_) n += s ? 1 : 0;
      return static_cast<double>(n);
    });
    registry.add_gauge(prefix + ".purged_entries", [this] {
      return static_cast<double>(purged_entries_);
    });
    registry.add_gauge(prefix + ".rerouted_entries", [this] {
      return static_cast<double>(rerouted_entries_);
    });
    registry.add_gauge(prefix + ".restored_entries", [this] {
      return static_cast<double>(restored_entries_);
    });
    registry.add_gauge(prefix + ".evacuated_entries", [this] {
      return static_cast<double>(evacuated_entries_);
    });
    registry.add_gauge(prefix + ".corrupted_entries", [this] {
      return static_cast<double>(corrupted_entries_);
    });
    registry.add_gauge(prefix + ".repaired_entries", [this] {
      return static_cast<double>(repaired_entries_);
    });
    registry.add_gauge(prefix + ".rebinds",
                       [this] { return static_cast<double>(rebinds_); });
    link_.register_metrics(registry, prefix + ".link");
  }

 private:
  struct OverlayPacket {
    core::GridCoord src;
    core::GridCoord dst;
    double size_units;
    std::shared_ptr<std::any> payload;
    /// Trace correlation id of the originating virtual send; carried into
    /// every physical LinkLayer hop beneath it (Section 5 emulation
    /// boundary provenance). 0 when tracing was off at send time.
    std::uint64_t flow = 0;
    /// Detour-routing state (membership mode; all-zero otherwise).
    RouteState route{};
  };

  void on_receive(net::NodeId at, const net::Packet& pkt);
  void forward(net::NodeId at, const OverlayPacket& pkt,
               net::NodeId from = net::kNoNode);
  void deliver_local(net::NodeId at, const OverlayPacket& pkt);

  /// Next physical hop from `at` toward the destination cell/leader, or
  /// kNoNode if routing is impossible. In membership mode routes greedily
  /// (dimension-order) and falls back to a right-hand perimeter walk
  /// around dead cells, using `from` (the physical sender; kNoNode at the
  /// source) and the frame's `rs` state to stay loop-free.
  net::NodeId next_hop(net::NodeId at, const core::GridCoord& dst_cell,
                       net::NodeId from = net::kNoNode,
                       RouteState* rs = nullptr) const;

  /// (Re)builds the intra-cell BFS tree of `cell` toward its bound leader,
  /// routing around down, depleted, and suspected nodes.
  void build_cell_tree(const core::GridCoord& cell);

  /// Whether `at` is the node currently serving virtual node `dst`.
  bool is_dst_leader(net::NodeId at, const core::GridCoord& dst) const;

  /// Node's cell for routing purposes: the live belief when a membership
  /// view is attached, the geometric cell otherwise.
  core::GridCoord cell_view(net::NodeId id) const;
  /// `cell`'s members for tree building: the live roster when a membership
  /// view is attached, the geometric member list otherwise.
  std::vector<net::NodeId> members_view(const core::GridCoord& cell) const;

  net::LinkLayer& link_;
  const CellMapper& mapper_;
  EmulationResult emulation_;
  BindingResult binding_;
  core::GridTopology grid_;
  core::GroupHierarchy groups_;
  std::vector<Handler> handlers_;
  /// Per-node next hop toward the bound leader of its own cell (BFS tree,
  /// standing in for intra-cell routing on local neighborhood knowledge).
  std::vector<net::NodeId> toward_leader_;
  /// Nodes an ARQ give-up has flagged unresponsive; routing avoids them
  /// until a repair clears the flag (fresh construction starts clean).
  std::vector<bool> suspected_;
  /// Binding generation per virtual cell; bumped on every rebind.
  std::vector<std::uint64_t> epochs_;
  std::function<void(net::NodeId, const net::Packet&)> control_receiver_;
  net::ReliableChannel* arq_ = nullptr;
  const MembershipView* membership_ = nullptr;
  std::uint64_t physical_hops_ = 0;
  std::uint64_t virtual_hops_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t purged_entries_ = 0;
  std::uint64_t rerouted_entries_ = 0;
  std::uint64_t restored_entries_ = 0;
  std::uint64_t evacuated_entries_ = 0;
  std::uint64_t corrupted_entries_ = 0;
  std::uint64_t repaired_entries_ = 0;
  std::uint64_t rebinds_ = 0;
};

}  // namespace wsn::emulation
