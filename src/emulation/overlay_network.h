// OverlayNetwork: the runtime system made executable.
//
// Implements core::MessageFabric on top of the physical network: a message
// from virtual node (r,c) to virtual node (r',c') leaves the physical node
// bound to cell (r,c), crosses cells in dimension-order using the routing
// tables built by the Section 5.1 emulation protocol (hop-by-hop, each relay
// consulting only its own table), and finally climbs the intra-cell tree to
// the bound leader of the destination cell.
//
// Every physical hop is a real LinkLayer unicast: energy lands in the
// physical ledger and latency accumulates per hop, so measurements taken
// here are the "actual performance on the underlying network" that the
// paper's methodology promises will track the virtual-architecture analysis.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/fabric.h"
#include "emulation/cell_mapper.h"
#include "emulation/emulation_protocol.h"
#include "emulation/leader_binding.h"
#include "net/link_layer.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace wsn::emulation {

class OverlayNetwork final : public core::MessageFabric {
 public:
  /// Binds the overlay to a completed emulation + binding. The grid side of
  /// `mapper` must match the virtual topology used by programs. The overlay
  /// owns the LinkLayer receivers of every physical node.
  OverlayNetwork(net::LinkLayer& link, const CellMapper& mapper,
                 EmulationResult emulation, BindingResult binding,
                 core::LeaderPlacement placement = core::LeaderPlacement::kNorthWest);

  sim::Simulator& simulator() override { return link_.simulator(); }
  const core::GridTopology& grid() const override { return grid_; }
  const core::GroupHierarchy& groups() const override { return groups_; }

  void set_receiver(const core::GridCoord& c, Handler h) override {
    handlers_[grid_.index_of(c)] = std::move(h);
  }

  void send(const core::GridCoord& from, const core::GridCoord& to,
            std::any payload, double size_units) override;

  /// Charges `ops` to the physical node bound to `c`.
  sim::Time compute(const core::GridCoord& c, double ops) override {
    return link_.compute(bound_node(c), ops);
  }

  /// Physical node executing virtual node `c`.
  net::NodeId bound_node(const core::GridCoord& c) const {
    return binding_.leader_of(c, mapper_.grid_side());
  }

  net::LinkLayer& link() { return link_; }
  const CellMapper& mapper() const { return mapper_; }

  /// Total physical hops taken by overlay messages.
  std::uint64_t physical_hops() const { return physical_hops_; }
  /// Total virtual (manhattan) hops the same messages would take on the
  /// virtual grid; physical/virtual is the emulation stretch.
  std::uint64_t virtual_hops() const { return virtual_hops_; }
  /// Messages that could not be routed (missing table entry / no leader).
  std::uint64_t failed_sends() const { return failed_; }

  /// Registers the overlay's instruments plus its LinkLayer's under
  /// `prefix` / `prefix`.link in the unified registry.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "overlay") const {
    registry.add_gauge(prefix + ".physical_hops", [this] {
      return static_cast<double>(physical_hops_);
    });
    registry.add_gauge(prefix + ".virtual_hops", [this] {
      return static_cast<double>(virtual_hops_);
    });
    registry.add_gauge(prefix + ".failed_sends",
                       [this] { return static_cast<double>(failed_); });
    link_.register_metrics(registry, prefix + ".link");
  }

 private:
  struct OverlayPacket {
    core::GridCoord src;
    core::GridCoord dst;
    double size_units;
    std::shared_ptr<std::any> payload;
    /// Trace correlation id of the originating virtual send; carried into
    /// every physical LinkLayer hop beneath it (Section 5 emulation
    /// boundary provenance). 0 when tracing was off at send time.
    std::uint64_t flow = 0;
  };

  void on_receive(net::NodeId at, const net::Packet& pkt);
  void forward(net::NodeId at, const OverlayPacket& pkt);
  void deliver_local(net::NodeId at, const OverlayPacket& pkt);

  /// Next physical hop from `at` toward the destination cell/leader, or
  /// kNoNode if routing is impossible.
  net::NodeId next_hop(net::NodeId at, const core::GridCoord& dst_cell) const;

  net::LinkLayer& link_;
  const CellMapper& mapper_;
  EmulationResult emulation_;
  BindingResult binding_;
  core::GridTopology grid_;
  core::GroupHierarchy groups_;
  std::vector<Handler> handlers_;
  /// Per-node next hop toward the bound leader of its own cell (BFS tree,
  /// standing in for intra-cell routing on local neighborhood knowledge).
  std::vector<net::NodeId> toward_leader_;
  std::uint64_t physical_hops_ = 0;
  std::uint64_t virtual_hops_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace wsn::emulation
