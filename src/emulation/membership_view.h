// Live cell membership: the runtime-maintained counterpart of CellMapper.
//
// CellMapper is an immutable geometric fact — node (x, y) plus the terrain
// determines the cell. What the *protocol* acts on, however, is soft state:
// each node caches a belief about which cell it currently serves, and each
// cell's leader keeps a roster of who its members are. Both are maintained
// purely by messages (beats carry the sender's cell belief, the kAudit
// flood carries a roster digest, kJoin announces adoptions), which makes
// them corruptible by `state_corruption` faults with target "membership"
// and repairable by the failure detector's self-stabilization machinery.
//
// The view is shared between the nodes of one deployment in the same way
// `FailureDetector::cell_leader_` is: a single structure whose entries are
// only read and written at message-handling points, standing in for the
// per-node copies a distributed implementation would carry. The roster of
// cell C is by construction the inverse image of the belief map — except
// while a roster_drop / roster_insert corruption has broken that inverse,
// which is exactly the disagreement the audit digest exists to detect.
//
// Orphan adoption (the component-based re-formation scheme of the
// clustering paper in PAPERS.md) moves a belief *away* from geometry on
// purpose: a node stranded in an empty or disconnected cell re-registers
// with the nearest reachable neighboring cell. Such a deliberate move is
// recorded by the failure detector (its `adopted_` flag), so belief
// self-healing — every node can always recompute its true cell from local
// knowledge — never undoes an adoption.
#pragma once

#include <cstdint>
#include <vector>

#include "core/grid_topology.h"
#include "emulation/cell_mapper.h"
#include "net/network_graph.h"

namespace wsn::emulation {

/// Mutable per-node cell belief + per-cell member roster, seeded from a
/// CellMapper's geometric assignment.
class MembershipView {
 public:
  explicit MembershipView(const CellMapper& mapper);

  std::size_t grid_side() const { return grid_side_; }

  /// Node's current cell belief (geometric cell until corrupted/adopted).
  const core::GridCoord& cell_of(net::NodeId id) const {
    return belief_[id];
  }

  /// The member roster kept for `cell`, sorted by id. While uncorrupted
  /// this is exactly { n : cell_of(n) == cell }.
  const std::vector<net::NodeId>& roster(const core::GridCoord& cell) const {
    return roster_[index(cell)];
  }

  bool roster_contains(const core::GridCoord& cell, net::NodeId id) const;

  /// Moves `id`'s belief to `cell`, keeping the roster inverse consistent
  /// (removed from the old cell's roster, inserted into the new one).
  /// Returns false when the belief already pointed there.
  bool set_cell_of(net::NodeId id, const core::GridCoord& cell);

  /// Roster-only mutations, used by membership corruption (and by audit
  /// repair): they deliberately break / restore the belief-roster inverse
  /// without touching any belief.
  bool roster_drop(const core::GridCoord& cell, net::NodeId id);
  bool roster_insert(const core::GridCoord& cell, net::NodeId id);

  /// FNV-1a digest over the roster size and sorted ids — small enough to
  /// ride in every kAudit flood, collision-resistant enough that a member
  /// dropped from (or spliced into) a roster flips it.
  std::uint64_t digest(const core::GridCoord& cell) const;

  /// Cells whose roster is empty — dark until adoption proxies them.
  std::vector<core::GridCoord> unoccupied_cells() const;

 private:
  std::size_t index(const core::GridCoord& cell) const {
    return static_cast<std::size_t>(cell.row) * grid_side_ +
           static_cast<std::size_t>(cell.col);
  }

  std::size_t grid_side_;
  std::vector<core::GridCoord> belief_;            // node -> believed cell
  std::vector<std::vector<net::NodeId>> roster_;   // cell (row-major) -> nodes
};

}  // namespace wsn::emulation
