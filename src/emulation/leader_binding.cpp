#include "emulation/leader_binding.h"

#include <memory>
#include <utility>

#include "emulation/overlay_network.h"
#include "net/reliable_link.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace wsn::emulation {
namespace {

/// Election key: (score, id), minimized lexicographically. Lower score wins;
/// node id breaks exact ties deterministically.
struct Key {
  double score;
  net::NodeId id;

  bool operator<(const Key& o) const {
    if (score != o.score) return score < o.score;
    return id < o.id;
  }
};

struct DeltaMsg {
  net::NodeId sender;
  Key best;
};

constexpr double kDeltaMsgUnits = 1.0;

double score_of(net::NodeId id, const CellMapper& mapper, BindingMetric metric,
                const net::EnergyLedger& ledger) {
  return binding_score(id, mapper, metric, ledger);
}

}  // namespace

double binding_score(net::NodeId id, const CellMapper& mapper,
                     BindingMetric metric, const net::EnergyLedger& ledger) {
  switch (metric) {
    case BindingMetric::kDistanceToCenter:
      return mapper.distance_to_center(id);
    case BindingMetric::kResidualEnergy:
      // Minimizing the negated residual elects the most-charged node.
      return -ledger.remaining(id);
  }
  return 0.0;
}

namespace {

struct ElectionState {
  std::vector<Key> best;           // best key heard so far, per node
  std::vector<bool> ldr;           // paper's ldr flag
  std::vector<bool> pending;       // broadcast scheduled
  std::uint64_t broadcasts = 0;
  std::uint64_t suppressed = 0;
};

}  // namespace

namespace {

/// Shared election engine: only nodes for which `participates` holds start
/// broadcasting (all live nodes still relay/suppress per the rules); cells
/// outside `cell_in_scope` keep kNoNode in the result.
BindingResult run_election(net::LinkLayer& link, const CellMapper& mapper,
                           BindingMetric metric, double jitter,
                           const std::vector<bool>& participates) {
  auto& sim = link.simulator();
  const auto& graph = link.graph();
  const std::size_t n = graph.node_count();
  const std::size_t m = mapper.grid_side();

  auto state = std::make_shared<ElectionState>();
  state->best.reserve(n);
  for (net::NodeId i = 0; i < n; ++i) {
    state->best.push_back(Key{score_of(i, mapper, metric, link.ledger()), i});
  }
  state->ldr.assign(n, true);
  state->pending.assign(n, false);

  auto schedule_broadcast = [state, &link](net::NodeId i) {
    if (state->pending[i]) return;
    state->pending[i] = true;
    link.simulator().post([state, &link, i]() {
      state->pending[i] = false;
      ++state->broadcasts;
      link.broadcast(i, DeltaMsg{i, state->best[i]}, kDeltaMsgUnits);
    });
  };

  for (net::NodeId i = 0; i < n; ++i) {
    const Key own{score_of(i, mapper, metric, link.ledger()), i};
    link.set_receiver(i, [state, &mapper, schedule_broadcast, own,
                          i](const net::Packet& pkt) {
      const auto msg = std::any_cast<DeltaMsg>(pkt.payload);
      if (mapper.cell_of(msg.sender) != mapper.cell_of(i)) {
        ++state->suppressed;  // crossed one boundary; go no further
        return;
      }
      if (msg.best < own) state->ldr[i] = false;
      if (msg.best < state->best[i]) {
        state->best[i] = msg.best;
        schedule_broadcast(i);  // flood the smaller value onward
      }
    });
  }

  for (net::NodeId i = 0; i < n; ++i) {
    if (!participates[i] || link.is_down(i)) continue;
    const double delay = jitter > 0 ? sim.rng().uniform(0.0, jitter) : 0.0;
    sim.schedule_in(delay, [schedule_broadcast, i]() { schedule_broadcast(i); });
  }

  sim.run();

  BindingResult result;
  result.leaders.assign(m * m, net::kNoNode);
  result.broadcasts = state->broadcasts;
  result.suppressed = state->suppressed;
  result.converged_at = sim.now();
  for (net::NodeId i = 0; i < n; ++i) {
    if (!state->ldr[i] || !participates[i] || link.is_down(i)) continue;
    const core::GridCoord cell = mapper.cell_of(i);
    const std::size_t idx = static_cast<std::size_t>(cell.row) * m +
                            static_cast<std::size_t>(cell.col);
    if (result.leaders[idx] != net::kNoNode) result.unique_leaders = false;
    result.leaders[idx] = i;
    if (obs::tracer().enabled(obs::Category::kProtocol)) {
      obs::tracer().emit({sim.now(), static_cast<std::int64_t>(i),
                          obs::Category::kProtocol, 'i', "binding.elected", 0,
                          {{"row", static_cast<std::int64_t>(cell.row)},
                           {"col", static_cast<std::int64_t>(cell.col)}}});
    }
  }
  if (obs::tracer().enabled(obs::Category::kProtocol)) {
    obs::tracer().emit({sim.now(), -1, obs::Category::kProtocol, 'i',
                        "binding.converged", 0,
                        {{"broadcasts", result.broadcasts},
                         {"suppressed", result.suppressed},
                         {"unique",
                          static_cast<std::uint64_t>(
                              result.unique_leaders ? 1 : 0)}}});
  }
  for (net::NodeId i = 0; i < n; ++i) link.set_receiver(i, nullptr);
  return result;
}

}  // namespace

BindingResult run_leader_binding(net::LinkLayer& link, const CellMapper& mapper,
                                 BindingMetric metric, double jitter) {
  obs::ProfSpan prof(obs::ProfCat::kBinding);
  std::vector<bool> everyone(link.graph().node_count(), true);
  return run_election(link, mapper, metric, jitter, everyone);
}

BindingResult run_binding_repair(net::LinkLayer& link, const CellMapper& mapper,
                                 const BindingResult& previous,
                                 BindingMetric metric, double jitter) {
  const std::size_t m = mapper.grid_side();
  // Scope: members of cells whose bound leader is gone.
  std::vector<bool> participates(link.graph().node_count(), false);
  std::vector<bool> affected(m * m, false);
  for (std::size_t idx = 0; idx < previous.leaders.size(); ++idx) {
    const net::NodeId leader = previous.leaders[idx];
    if (leader == net::kNoNode || link.is_down(leader)) {
      affected[idx] = true;
      const core::GridCoord cell{static_cast<std::int32_t>(idx / m),
                                 static_cast<std::int32_t>(idx % m)};
      for (net::NodeId member : mapper.members(cell)) {
        participates[member] = true;
      }
    }
  }
  BindingResult repaired =
      run_election(link, mapper, metric, jitter, participates);
  // Healthy cells keep their previous leader.
  for (std::size_t idx = 0; idx < previous.leaders.size(); ++idx) {
    if (!affected[idx]) repaired.leaders[idx] = previous.leaders[idx];
  }
  return repaired;
}

std::vector<net::NodeId> oracle_leaders(const CellMapper& mapper,
                                        BindingMetric metric,
                                        const net::EnergyLedger& ledger,
                                        const net::LinkLayer* link) {
  const std::size_t m = mapper.grid_side();
  std::vector<net::NodeId> leaders(m * m, net::kNoNode);
  std::vector<Key> best(m * m, Key{0.0, net::kNoNode});
  for (net::NodeId i = 0; i < mapper.graph().node_count(); ++i) {
    if (link != nullptr && link->is_down(i)) continue;
    const core::GridCoord cell = mapper.cell_of(i);
    const std::size_t idx = static_cast<std::size_t>(cell.row) * m +
                            static_cast<std::size_t>(cell.col);
    const Key k{score_of(i, mapper, metric, ledger), i};
    if (leaders[idx] == net::kNoNode || k < best[idx]) {
      leaders[idx] = i;
      best[idx] = k;
    }
  }
  return leaders;
}

FailoverBinder::FailoverBinder(net::ReliableChannel& arq,
                               OverlayNetwork& overlay, BindingMetric metric)
    : overlay_(overlay), metric_(metric) {
  arq.set_on_give_up([this](net::NodeId from, net::NodeId to, std::uint64_t,
                            std::uint32_t) { on_give_up(from, to); });
}

void FailoverBinder::on_give_up(net::NodeId from, net::NodeId to) {
  counters_.add("failover.give_up_seen");
  overlay_.on_hop_give_up(from, to);
  // Either endpoint may be the casualty: a dead receiver never acks, and a
  // dead sender's frames go nowhere while its armed timers still fire.
  maybe_rebind(to);
  maybe_rebind(from);
}

void FailoverBinder::maybe_rebind(net::NodeId node) {
  const CellMapper& mapper = overlay_.mapper();
  const core::GridCoord cell = mapper.cell_of(node);
  if (overlay_.bound_node(cell) != node) return;
  net::LinkLayer& link = overlay_.link();
  if (!link.is_down(node) && !link.ledger().depleted(node)) {
    // Suspicion without a confirmed failure (loss burst, congestion): keep
    // the binding, remember we almost pulled the trigger.
    counters_.add("failover.false_suspicion");
    return;
  }
  // Local deterministic re-election: the minimum (score, id) key among the
  // cell's usable members — exactly the winner the distributed election
  // (and oracle_leaders) would pick among the survivors.
  net::NodeId winner = net::kNoNode;
  Key best{0.0, net::kNoNode};
  for (net::NodeId m : mapper.members(cell)) {
    if (link.is_down(m) || link.ledger().depleted(m) ||
        overlay_.is_suspected(m)) {
      continue;
    }
    const Key k{score_of(m, mapper, metric_, link.ledger()), m};
    if (winner == net::kNoNode || k < best) {
      winner = m;
      best = k;
    }
  }
  if (winner == net::kNoNode) {
    counters_.add("failover.no_candidate");
    return;
  }
  overlay_.rebind(cell, winner);
  ++failovers_;
  counters_.add("failover.count");
  if (obs::tracer().enabled(obs::Category::kProtocol)) {
    obs::tracer().emit({link.simulator().now(),
                        static_cast<std::int64_t>(winner),
                        obs::Category::kProtocol, 'i', "binding.failover", 0,
                        {{"row", static_cast<std::int64_t>(cell.row)},
                         {"col", static_cast<std::int64_t>(cell.col)},
                         {"old", static_cast<std::uint64_t>(node)},
                         {"new", static_cast<std::uint64_t>(winner)}}});
  }
}

}  // namespace wsn::emulation
