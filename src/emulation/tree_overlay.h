// Tree virtual topology for non-uniform deployments (Section 3.2): "a grid
// will be an appropriate choice of virtual topology for uniform node
// deployment over the terrain. For non-uniform deployments, other virtual
// topologies such as a tree could be more appropriate."
//
// When a clustered deployment leaves grid cells empty, the grid emulation
// precondition fails. The tree overlay instead spans only the OCCUPIED
// cells: a BFS spanning tree over the occupied-cell adjacency graph, each
// cell represented by its bound leader. Convergecast aggregation (sum /
// count / max of per-cell readings) then works on any deployment whose
// occupied cells are mutually reachable, at a cost proportional to the sum
// of tree-edge path lengths.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "emulation/cell_mapper.h"
#include "emulation/leader_binding.h"
#include "net/link_layer.h"

namespace wsn::emulation {

/// A spanning tree over the occupied cells of a deployment.
struct TreeOverlay {
  /// Occupied cells in BFS discovery order; [0] is the root.
  std::vector<core::GridCoord> cells;
  /// parent[i] = index into `cells` of cell i's parent; root points at
  /// itself.
  std::vector<std::size_t> parent;
  /// depth[i] = tree hops from the root.
  std::vector<std::uint32_t> depth;
  /// Physical node bound to each cell (its elected leader).
  std::vector<net::NodeId> leader;

  std::size_t size() const { return cells.size(); }
  std::uint32_t height() const {
    std::uint32_t h = 0;
    for (std::uint32_t d : depth) h = std::max(h, d);
    return h;
  }
  std::optional<std::size_t> index_of(const core::GridCoord& cell) const;
};

/// Builds the BFS spanning tree over occupied cells, rooted at the occupied
/// cell nearest to `root_hint` (4-adjacency between occupied cells; cells
/// reachable only diagonally are bridged through the physically shortest
/// leader-to-leader route, so the tree exists whenever the physical network
/// is connected). Throws std::runtime_error if no cell is occupied.
TreeOverlay build_tree_overlay(const CellMapper& mapper,
                               const BindingResult& binding,
                               const core::GridCoord& root_hint = {0, 0});

/// Result of one convergecast aggregation over the tree.
struct TreeAggregation {
  double value = 0.0;
  sim::Time finished = 0.0;
  std::uint64_t messages = 0;       // one per non-root cell
  std::uint64_t physical_hops = 0;  // total single-hop transmissions
};

/// Sums `leader_values[i]` (one reading per occupied cell, aligned with
/// `tree.cells`) at the root by convergecast: leaves send first, interior
/// cells fold children then forward, each tree edge realized as the
/// shortest physical path between the two cell leaders. Runs the simulator
/// to quiescence; energy lands in the link's ledger.
TreeAggregation run_tree_sum(net::LinkLayer& link, const TreeOverlay& tree,
                             std::span<const double> leader_values);

}  // namespace wsn::emulation
