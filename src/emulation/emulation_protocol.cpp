#include "emulation/emulation_protocol.h"

#include <memory>
#include <unordered_set>

#include "obs/trace.h"

namespace wsn::emulation {
namespace {

/// Table advertisement: which directions the sender can already route to.
/// The table is "small" (Section 5.1): four booleans plus the sender id,
/// well within one data unit.
struct TableMsg {
  net::NodeId sender;
  std::array<bool, 4> has;
};

constexpr double kTableMsgUnits = 1.0;

struct ProtocolState {
  std::vector<RoutingTable> tables;
  std::vector<bool> broadcast_pending;
  std::uint64_t broadcasts = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t adoptions = 0;
  bool boundary_audit_passed = true;
};

std::array<bool, 4> known_directions(const RoutingTable& t) {
  std::array<bool, 4> has{};
  for (core::Direction d : core::kAllDirections) {
    has[static_cast<std::size_t>(d)] = t.has(d);
  }
  return has;
}

}  // namespace

std::optional<core::Direction> adjacent_direction(const core::GridCoord& from,
                                                  const core::GridCoord& to) {
  for (core::Direction d : core::kAllDirections) {
    if (core::GridTopology::step(from, d) == to) return d;
  }
  return std::nullopt;
}

namespace {

/// Fills direct (one-hop) entries from live neighbors lying in an adjacent
/// cell. "Some entries of the routing table can be filled in using the
/// initially available information."
void fill_direct_entries(const net::LinkLayer& link, const CellMapper& mapper,
                         std::vector<RoutingTable>& tables) {
  const auto& graph = link.graph();
  for (net::NodeId i = 0; i < graph.node_count(); ++i) {
    if (link.is_down(i)) continue;
    const core::GridCoord my_cell = mapper.cell_of(i);
    for (net::NodeId j : graph.neighbors(i)) {
      if (link.is_down(j)) continue;
      const core::GridCoord their_cell = mapper.cell_of(j);
      if (their_cell == my_cell) continue;
      if (auto d = adjacent_direction(my_cell, their_cell);
          d && !tables[i].has(*d)) {
        tables[i][*d] = j;
      }
    }
  }
}

EmulationResult run_protocol(net::LinkLayer& link, const CellMapper& mapper,
                             std::vector<RoutingTable> initial, double jitter);

}  // namespace

EmulationResult run_topology_emulation(net::LinkLayer& link,
                                       const CellMapper& mapper,
                                       double jitter) {
  std::vector<RoutingTable> tables(link.graph().node_count());
  fill_direct_entries(link, mapper, tables);
  return run_protocol(link, mapper, std::move(tables), jitter);
}

EmulationResult run_topology_repair(net::LinkLayer& link,
                                    const CellMapper& mapper,
                                    std::vector<RoutingTable> previous,
                                    double jitter) {
  // Purge to a fixpoint every entry whose full chain no longer reaches the
  // adjacent cell through live nodes (nodes probing their routes). Clearing
  // one entry can break upstream chains, hence the loop. Starting the
  // protocol from verified chains only is what precludes adoption cycles:
  // an advertised direction always terminates at a live gateway.
  for (net::NodeId i = 0; i < previous.size(); ++i) {
    if (link.is_down(i)) previous[i] = RoutingTable{};
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (net::NodeId i = 0; i < previous.size(); ++i) {
      if (link.is_down(i)) continue;
      for (core::Direction d : core::kAllDirections) {
        if (!previous[i].has(d)) continue;
        const auto chain = follow_chain(mapper, previous, i, d);
        bool valid = !chain.empty();
        if (valid) {
          for (net::NodeId hop : chain) {
            if (link.is_down(hop)) valid = false;
          }
          if (valid &&
              mapper.cell_of(chain.back()) !=
                  core::GridTopology::step(mapper.cell_of(i), d)) {
            valid = false;
          }
        }
        if (!valid) {
          previous[i][d] = net::kNoNode;
          changed = true;
        }
      }
    }
  }
  fill_direct_entries(link, mapper, previous);
  return run_protocol(link, mapper, std::move(previous), jitter);
}

namespace {

EmulationResult run_protocol(net::LinkLayer& link, const CellMapper& mapper,
                             std::vector<RoutingTable> initial, double jitter) {
  auto& sim = link.simulator();
  const auto& graph = link.graph();
  const std::size_t n = graph.node_count();

  auto state = std::make_shared<ProtocolState>();
  state->tables = std::move(initial);
  state->broadcast_pending.assign(n, false);

  auto schedule_broadcast = [state, &link](net::NodeId i) {
    if (state->broadcast_pending[i]) return;
    state->broadcast_pending[i] = true;
    link.simulator().post([state, &link, i]() {
      state->broadcast_pending[i] = false;
      ++state->broadcasts;
      link.broadcast(i, TableMsg{i, known_directions(state->tables[i])},
                     kTableMsgUnits);
    });
  };

  // Receive rule: suppress foreign-cell tables; adopt unseen directions from
  // same-cell neighbors and rebroadcast on change.
  for (net::NodeId i = 0; i < n; ++i) {
    link.set_receiver(i, [state, &link, &mapper, schedule_broadcast,
                          i](const net::Packet& pkt) {
      ++state->deliveries;
      const auto msg = std::any_cast<TableMsg>(pkt.payload);
      if (mapper.cell_of(msg.sender) != mapper.cell_of(i)) {
        // Crossed one cell boundary; suppressed, never forwarded further.
        ++state->suppressed;
        return;
      }
      bool changed = false;
      for (core::Direction d : core::kAllDirections) {
        if (msg.has[static_cast<std::size_t>(d)] && !state->tables[i].has(d)) {
          state->tables[i][d] = msg.sender;
          ++state->adoptions;
          changed = true;
        }
      }
      if (changed) {
        if (obs::tracer().enabled(obs::Category::kProtocol)) {
          obs::tracer().emit({link.simulator().now(),
                              static_cast<std::int64_t>(i),
                              obs::Category::kProtocol, 'i', "emulation.adopt",
                              0,
                              {{"from",
                                static_cast<std::uint64_t>(msg.sender)}}});
        }
        schedule_broadcast(i);
      }
    });
  }

  // Kickoff: every live node broadcasts its initial table, optionally
  // jittered.
  for (net::NodeId i = 0; i < n; ++i) {
    if (link.is_down(i)) continue;
    const double delay = jitter > 0 ? sim.rng().uniform(0.0, jitter) : 0.0;
    sim.schedule_in(delay, [schedule_broadcast, i]() { schedule_broadcast(i); });
  }

  sim.run();

  EmulationResult result;
  result.tables = std::move(state->tables);
  result.broadcasts = state->broadcasts;
  result.deliveries = state->deliveries;
  result.suppressed = state->suppressed;
  result.adoptions = state->adoptions;
  result.converged_at = sim.now();
  result.boundary_audit_passed = state->boundary_audit_passed;
  if (obs::tracer().enabled(obs::Category::kProtocol)) {
    obs::tracer().emit({sim.now(), -1, obs::Category::kProtocol, 'i',
                        "emulation.converged", 0,
                        {{"broadcasts", result.broadcasts},
                         {"deliveries", result.deliveries},
                         {"suppressed", result.suppressed},
                         {"adoptions", result.adoptions}}});
  }

  // Release the receiver closures (they hold the shared state).
  for (net::NodeId i = 0; i < n; ++i) link.set_receiver(i, nullptr);
  return result;
}

}  // namespace

std::size_t purge_entries_via(std::vector<RoutingTable>& tables,
                              net::NodeId via) {
  std::size_t cleared = 0;
  for (RoutingTable& t : tables) {
    for (core::Direction d : core::kAllDirections) {
      if (t[d] == via) {
        t[d] = net::kNoNode;
        ++cleared;
      }
    }
  }
  return cleared;
}

RerouteStats reroute_entries_via(
    std::vector<RoutingTable>& tables, net::NodeId via,
    const net::LinkLayer& link, const CellMapper& mapper,
    const std::function<bool(net::NodeId)>& excluded) {
  RerouteStats stats;
  const auto& graph = link.graph();
  for (net::NodeId i = 0; i < tables.size(); ++i) {
    for (core::Direction d : core::kAllDirections) {
      if (tables[i][d] != via) continue;
      tables[i][d] = net::kNoNode;
      // The entry pointed toward the adjacent cell in direction d; promote
      // another neighbor already inside that cell, if any survives.
      const core::GridCoord target =
          core::GridTopology::step(mapper.cell_of(i), d);
      for (net::NodeId j : graph.neighbors(i)) {
        if (j == via || link.is_down(j) || excluded(j)) continue;
        if (mapper.cell_of(j) == target) {
          tables[i][d] = j;
          break;
        }
      }
      ++(tables[i][d] == net::kNoNode ? stats.unroutable : stats.rerouted);
    }
  }
  return stats;
}

std::size_t evacuate_entries_via(
    std::vector<RoutingTable>& tables, net::NodeId via,
    const net::LinkLayer& link, const CellMapper& mapper,
    const std::function<bool(net::NodeId)>& excluded) {
  std::size_t moved = 0;
  const auto& graph = link.graph();
  for (net::NodeId i = 0; i < tables.size(); ++i) {
    for (core::Direction d : core::kAllDirections) {
      if (tables[i][d] != via) continue;
      const core::GridCoord target =
          core::GridTopology::step(mapper.cell_of(i), d);
      for (net::NodeId j : graph.neighbors(i)) {
        if (j == via || link.is_down(j) || excluded(j)) continue;
        if (mapper.cell_of(j) == target) {
          tables[i][d] = j;  // alternative found; otherwise keep `via`
          ++moved;
          break;
        }
      }
    }
  }
  return moved;
}

std::vector<net::NodeId> follow_chain(const CellMapper& mapper,
                                      const std::vector<RoutingTable>& tables,
                                      net::NodeId start, core::Direction d) {
  const core::GridCoord home = mapper.cell_of(start);
  std::vector<net::NodeId> path{start};
  std::unordered_set<net::NodeId> visited{start};
  net::NodeId cur = start;
  while (true) {
    const net::NodeId next = tables[cur][d];
    if (next == net::kNoNode) return {};  // dead end: no route this way
    path.push_back(next);
    if (mapper.cell_of(next) != home) return path;  // crossed the boundary
    if (!visited.insert(next).second) return {};    // cycle guard
    cur = next;
  }
}

}  // namespace wsn::emulation
