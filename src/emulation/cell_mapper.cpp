#include "emulation/cell_mapper.h"

#include <stdexcept>

#include "net/deployment.h"

namespace wsn::emulation {

CellMapper::CellMapper(const net::NetworkGraph& graph, net::Rect terrain,
                       std::size_t grid_side)
    : graph_(&graph), terrain_(terrain), grid_side_(grid_side) {
  if (grid_side == 0) {
    throw std::invalid_argument("CellMapper: grid side must be >= 1");
  }
  const std::size_t n = graph.node_count();
  cells_.reserve(n);
  members_.resize(grid_side * grid_side);
  for (net::NodeId id = 0; id < n; ++id) {
    const std::size_t flat =
        net::cell_of(graph.position(id), terrain_, grid_side_);
    const core::GridCoord cell{
        static_cast<std::int32_t>(flat / grid_side_),
        static_cast<std::int32_t>(flat % grid_side_)};
    cells_.push_back(cell);
    members_[flat].push_back(id);
  }
}

std::span<const net::NodeId> CellMapper::members(
    const core::GridCoord& cell) const {
  return members_[cell_index(cell)];
}

net::Point CellMapper::cell_center(const core::GridCoord& cell) const {
  return cell_rect(cell).center();
}

net::Rect CellMapper::cell_rect(const core::GridCoord& cell) const {
  const double side = cell_side();
  const double x0 = terrain_.x0 + static_cast<double>(cell.col) * side;
  const double y0 = terrain_.y0 + static_cast<double>(cell.row) * side;
  return net::Rect{x0, y0, x0 + side, y0 + side};
}

double CellMapper::distance_to_center(net::NodeId id) const {
  return net::distance(graph_->position(id), cell_center(cells_[id]));
}

bool CellMapper::all_cells_occupied() const {
  return unoccupied_cells().empty();
}

bool CellMapper::all_cells_connected() const {
  return disconnected_cells().empty();
}

std::vector<core::GridCoord> CellMapper::unoccupied_cells() const {
  std::vector<core::GridCoord> out;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].empty()) {
      out.push_back({static_cast<std::int32_t>(i / grid_side_),
                     static_cast<std::int32_t>(i % grid_side_)});
    }
  }
  return out;
}

std::vector<core::GridCoord> CellMapper::disconnected_cells() const {
  std::vector<core::GridCoord> out;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (!members_[i].empty() && !graph_->induced_connected(members_[i])) {
      out.push_back({static_cast<std::int32_t>(i / grid_side_),
                     static_cast<std::int32_t>(i % grid_side_)});
    }
  }
  return out;
}

}  // namespace wsn::emulation
