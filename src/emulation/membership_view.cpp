#include "emulation/membership_view.h"

#include <algorithm>

namespace wsn::emulation {

MembershipView::MembershipView(const CellMapper& mapper)
    : grid_side_(mapper.grid_side()),
      belief_(mapper.graph().node_count()),
      roster_(grid_side_ * grid_side_) {
  for (net::NodeId id = 0; id < mapper.graph().node_count(); ++id) {
    belief_[id] = mapper.cell_of(id);
    roster_[index(belief_[id])].push_back(id);
  }
  // CellMapper emits members sorted by id; the loop above preserves that.
}

bool MembershipView::roster_contains(const core::GridCoord& cell,
                                     net::NodeId id) const {
  const auto& r = roster_[index(cell)];
  return std::binary_search(r.begin(), r.end(), id);
}

bool MembershipView::set_cell_of(net::NodeId id, const core::GridCoord& cell) {
  if (belief_[id] == cell) return false;
  roster_drop(belief_[id], id);
  belief_[id] = cell;
  roster_insert(cell, id);
  return true;
}

bool MembershipView::roster_drop(const core::GridCoord& cell, net::NodeId id) {
  auto& r = roster_[index(cell)];
  auto it = std::lower_bound(r.begin(), r.end(), id);
  if (it == r.end() || *it != id) return false;
  r.erase(it);
  return true;
}

bool MembershipView::roster_insert(const core::GridCoord& cell,
                                   net::NodeId id) {
  auto& r = roster_[index(cell)];
  auto it = std::lower_bound(r.begin(), r.end(), id);
  if (it != r.end() && *it == id) return false;
  r.insert(it, id);
  return true;
}

std::uint64_t MembershipView::digest(const core::GridCoord& cell) const {
  const auto& r = roster_[index(cell)];
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;  // FNV prime
    }
  };
  mix(static_cast<std::uint64_t>(r.size()));
  for (net::NodeId id : r) mix(static_cast<std::uint64_t>(id));
  return h;
}

std::vector<core::GridCoord> MembershipView::unoccupied_cells() const {
  std::vector<core::GridCoord> out;
  for (std::size_t i = 0; i < roster_.size(); ++i) {
    if (roster_[i].empty()) {
      out.push_back(core::GridCoord{
          static_cast<std::int32_t>(i / grid_side_),
          static_cast<std::int32_t>(i % grid_side_)});
    }
  }
  return out;
}

}  // namespace wsn::emulation
