// Role assignment (Section 4.2): mapping tasks of the application graph to
// nodes of the virtual topology, subject to the design-time constraints of
// Section 4.1, optimizing energy-oriented metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/grid_topology.h"
#include "core/groups.h"
#include "sim/rng.h"
#include "taskgraph/quadtree.h"
#include "taskgraph/task_graph.h"

namespace wsn::taskgraph {

/// A task-to-virtual-node mapping.
struct RoleAssignment {
  /// coord_of[task id] = virtual grid node executing the task.
  std::vector<core::GridCoord> coord_of;

  const core::GridCoord& operator[](TaskId id) const { return coord_of[id]; }
  core::GridCoord& operator[](TaskId id) { return coord_of[id]; }
};

/// One violated constraint, for diagnostics.
struct ConstraintViolation {
  TaskId task = kNoTask;
  std::string reason;
};

/// Coverage constraint (Section 4.1): "each leaf node of the task graph ...
/// should be mapped to a distinct node of the virtual topology" and every
/// virtual node receives exactly one sampling task.
std::vector<ConstraintViolation> check_coverage(const TaskGraph& graph,
                                                const RoleAssignment& mapping,
                                                const core::GridTopology& grid);

/// Spatial-correlation constraint (Section 4.1): "all children of a given
/// node should represent information about a single contiguous geographic
/// extent". Each child subtree's leaf cells must form a 4-connected region,
/// and the union over all children of a parent must also be contiguous.
std::vector<ConstraintViolation> check_spatial_correlation(
    const TaskGraph& graph, const RoleAssignment& mapping,
    const core::GridTopology& grid);

/// Convenience: true iff both constraints hold.
bool satisfies_constraints(const TaskGraph& graph, const RoleAssignment& mapping,
                           const core::GridTopology& grid);

/// The paper's mapping (Figures 2-3): leaf with Morton index k is mapped to
/// the grid cell with Morton index k; the level-l interior task of a block
/// is mapped to that block's level-l group leader (north-west corner under
/// the default placement), so the root lands at location 0 and the level-1
/// tasks at 0, 4, 8 and 12, exactly as in the figures.
RoleAssignment paper_mapping(const QuadTree& tree,
                             const core::GroupHierarchy& groups);

/// Ablation variant: leaves as in paper_mapping, interior tasks placed
/// uniformly at random within their own extent (keeps both constraints).
RoleAssignment random_interior_mapping(const QuadTree& tree, sim::Rng& rng);

/// Deliberately constraint-violating mapping (random leaf permutation
/// destroys spatial correlation); used by tests and the constraint-checking
/// demo.
RoleAssignment scrambled_leaf_mapping(const QuadTree& tree, sim::Rng& rng);

/// Estimated costs of executing one activation of every task under a
/// mapping, per the uniform cost model. This is the "rapid first-order
/// performance estimation" the virtual architecture promises.
struct MappingCost {
  double total_energy = 0.0;     // tx+rx+compute over all tasks
  double critical_latency = 0.0; // longest compute+transfer chain to root
  double max_node_energy = 0.0;  // hottest virtual node (balance indicator)
  double energy_stddev = 0.0;    // spread of per-node energy
  std::uint64_t total_hops = 0;  // sum of per-edge hop counts
};

/// Evaluates `mapping` analytically (no simulation): communication cost per
/// edge is manhattan hops x message units (Section 4.2), relays included;
/// computation cost per task from its annotations.
MappingCost evaluate_mapping(const TaskGraph& graph,
                             const RoleAssignment& mapping,
                             const core::GridTopology& grid,
                             const core::CostModel& cost);

/// Objectives for local-search improvement.
enum class MappingObjective : std::uint8_t {
  kTotalEnergy,
  kCriticalLatency,
  kEnergyBalance,  // minimize hottest-node energy
};

/// Hill-climbing improvement: repeatedly proposes moving one interior task
/// to a random grid node (leaves stay fixed by the coverage constraint) and
/// keeps the move if the objective improves and constraints still hold.
/// Returns the improved assignment; `iterations` proposals are made.
RoleAssignment improve_mapping(const TaskGraph& graph, RoleAssignment mapping,
                               const core::GridTopology& grid,
                               const core::CostModel& cost,
                               MappingObjective objective,
                               std::size_t iterations, sim::Rng& rng);

}  // namespace wsn::taskgraph
