#include "taskgraph/mapping.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <deque>
#include <numeric>
#include <set>
#include <sstream>

namespace wsn::taskgraph {
namespace {

std::vector<core::GridCoord> leaf_cells(const TaskGraph& graph,
                                        const RoleAssignment& mapping,
                                        TaskId id) {
  std::vector<core::GridCoord> cells;
  for (TaskId leaf : graph.leaf_descendants(id)) {
    cells.push_back(mapping.coord_of[leaf]);
  }
  return cells;
}

bool region_connected(const std::vector<core::GridCoord>& cells) {
  if (cells.empty()) return true;
  std::set<core::GridCoord> pending(cells.begin(), cells.end());
  std::deque<core::GridCoord> frontier{*pending.begin()};
  pending.erase(pending.begin());
  while (!frontier.empty()) {
    const core::GridCoord c = frontier.front();
    frontier.pop_front();
    for (core::Direction d : core::kAllDirections) {
      const core::GridCoord n = core::GridTopology::step(c, d);
      auto it = pending.find(n);
      if (it != pending.end()) {
        frontier.push_back(n);
        pending.erase(it);
      }
    }
  }
  return pending.empty();
}

std::string coord_str(const core::GridCoord& c) {
  std::ostringstream os;
  os << c;
  return os.str();
}

}  // namespace

std::vector<ConstraintViolation> check_coverage(const TaskGraph& graph,
                                                const RoleAssignment& mapping,
                                                const core::GridTopology& grid) {
  std::vector<ConstraintViolation> out;
  std::vector<int> hits(grid.node_count(), 0);
  const auto leaves = graph.leaves();
  if (leaves.size() != grid.node_count()) {
    out.push_back({kNoTask, "leaf count != virtual node count"});
  }
  for (TaskId leaf : leaves) {
    const core::GridCoord c = mapping.coord_of[leaf];
    if (!grid.contains(c)) {
      out.push_back({leaf, "leaf mapped off-grid at " + coord_str(c)});
      continue;
    }
    if (++hits[grid.index_of(c)] > 1) {
      out.push_back({leaf, "second sampling task at " + coord_str(c)});
    }
  }
  return out;
}

std::vector<ConstraintViolation> check_spatial_correlation(
    const TaskGraph& graph, const RoleAssignment& mapping,
    const core::GridTopology& grid) {
  (void)grid;
  std::vector<ConstraintViolation> out;
  for (const Task& t : graph.tasks()) {
    if (t.children.empty()) continue;
    std::vector<core::GridCoord> parent_extent;
    for (TaskId child : t.children) {
      auto child_extent = leaf_cells(graph, mapping, child);
      if (!region_connected(child_extent)) {
        out.push_back(
            {child, "child extent is not a contiguous geographic region"});
      }
      parent_extent.insert(parent_extent.end(), child_extent.begin(),
                           child_extent.end());
    }
    if (!region_connected(parent_extent)) {
      out.push_back(
          {t.id, "children do not cover a single contiguous extent"});
    }
  }
  return out;
}

bool satisfies_constraints(const TaskGraph& graph, const RoleAssignment& mapping,
                           const core::GridTopology& grid) {
  return check_coverage(graph, mapping, grid).empty() &&
         check_spatial_correlation(graph, mapping, grid).empty();
}

RoleAssignment paper_mapping(const QuadTree& tree,
                             const core::GroupHierarchy& groups) {
  RoleAssignment mapping;
  mapping.coord_of.resize(tree.graph.size());
  // Leaves: Morton index k -> cell with Morton index k (identity placement,
  // satisfying coverage by construction).
  for (std::uint64_t k = 0; k < tree.leaf_by_morton.size(); ++k) {
    mapping.coord_of[tree.leaf_by_morton[k]] = core::morton_coord(k);
  }
  // Interior tasks: the group leader of their extent at their level. The
  // extent's NW corner is the minimum coordinate over leaf descendants.
  for (const Task& t : tree.graph.tasks()) {
    if (t.children.empty()) continue;
    core::GridCoord nw{std::numeric_limits<std::int32_t>::max(),
                       std::numeric_limits<std::int32_t>::max()};
    for (TaskId leaf : tree.graph.leaf_descendants(t.id)) {
      const core::GridCoord c = mapping.coord_of[leaf];
      nw.row = std::min(nw.row, c.row);
      nw.col = std::min(nw.col, c.col);
    }
    mapping.coord_of[t.id] = groups.leader_of(nw, t.level);
  }
  return mapping;
}

RoleAssignment random_interior_mapping(const QuadTree& tree, sim::Rng& rng) {
  core::GridTopology grid(tree.grid_side);
  core::GroupHierarchy groups(grid);
  RoleAssignment mapping = paper_mapping(tree, groups);
  for (const Task& t : tree.graph.tasks()) {
    if (t.children.empty()) continue;
    // Uniform cell within the task's own extent (a level-sized block).
    const auto leaves = tree.graph.leaf_descendants(t.id);
    const std::size_t pick = rng.below(leaves.size());
    mapping.coord_of[t.id] = mapping.coord_of[leaves[pick]];
  }
  return mapping;
}

RoleAssignment scrambled_leaf_mapping(const QuadTree& tree, sim::Rng& rng) {
  core::GridTopology grid(tree.grid_side);
  core::GroupHierarchy groups(grid);
  RoleAssignment mapping = paper_mapping(tree, groups);
  auto leaves = tree.graph.leaves();
  // Fisher-Yates over the leaf placements.
  for (std::size_t i = leaves.size(); i > 1; --i) {
    const std::size_t j = rng.below(i);
    std::swap(mapping.coord_of[leaves[i - 1]], mapping.coord_of[leaves[j]]);
  }
  return mapping;
}

MappingCost evaluate_mapping(const TaskGraph& graph,
                             const RoleAssignment& mapping,
                             const core::GridTopology& grid,
                             const core::CostModel& cost) {
  MappingCost result;
  std::vector<double> node_energy(grid.node_count(), 0.0);
  std::vector<double> finish(graph.size(), 0.0);

  for (TaskId id : graph.bottom_up_order()) {
    const Task& t = graph.task(id);
    // Computation at the executing node.
    const double ops = t.annotations.compute_ops;
    node_energy[grid.index_of(mapping.coord_of[id])] +=
        cost.compute_energy(ops);
    result.total_energy += cost.compute_energy(ops);

    double ready = 0.0;  // when all inputs have arrived
    for (TaskId c : t.children) {
      const Task& child = graph.task(c);
      const double units = child.annotations.output_units;
      const core::GridCoord from = mapping.coord_of[c];
      const core::GridCoord to = mapping.coord_of[id];
      const std::uint32_t hops = core::manhattan(from, to);
      result.total_hops += hops;
      result.total_energy += cost.path_energy(hops, units);
      // Charge endpoints and relays along the dimension-order route.
      if (hops > 0) {
        const auto path = grid.route(from, to);
        node_energy[grid.index_of(from)] += cost.tx_energy(units);
        for (std::size_t i = 1; i + 1 < path.size(); ++i) {
          node_energy[grid.index_of(path[i])] +=
              cost.tx_energy(units) + cost.rx_energy(units);
        }
        node_energy[grid.index_of(to)] += cost.rx_energy(units);
      }
      ready = std::max(ready, finish[c] + cost.path_latency(hops, units));
    }
    finish[id] = ready + cost.compute_latency(ops);
  }
  result.critical_latency = finish[graph.root()];

  double sum = 0.0;
  for (double e : node_energy) {
    sum += e;
    result.max_node_energy = std::max(result.max_node_energy, e);
  }
  const double mean = sum / static_cast<double>(node_energy.size());
  double var = 0.0;
  for (double e : node_energy) var += (e - mean) * (e - mean);
  result.energy_stddev =
      std::sqrt(var / static_cast<double>(node_energy.size()));
  return result;
}

namespace {

double objective_value(const MappingCost& c, MappingObjective obj) {
  switch (obj) {
    case MappingObjective::kTotalEnergy: return c.total_energy;
    case MappingObjective::kCriticalLatency: return c.critical_latency;
    case MappingObjective::kEnergyBalance: return c.max_node_energy;
  }
  return c.total_energy;
}

}  // namespace

RoleAssignment improve_mapping(const TaskGraph& graph, RoleAssignment mapping,
                               const core::GridTopology& grid,
                               const core::CostModel& cost,
                               MappingObjective objective,
                               std::size_t iterations, sim::Rng& rng) {
  double best = objective_value(evaluate_mapping(graph, mapping, grid, cost),
                                objective);
  std::vector<TaskId> interior;
  for (const Task& t : graph.tasks()) {
    if (!t.children.empty()) interior.push_back(t.id);
  }
  if (interior.empty()) return mapping;

  for (std::size_t it = 0; it < iterations; ++it) {
    const TaskId victim = interior[rng.below(interior.size())];
    const core::GridCoord old = mapping.coord_of[victim];
    mapping.coord_of[victim] =
        grid.coord_of(rng.below(grid.node_count()));
    const double candidate = objective_value(
        evaluate_mapping(graph, mapping, grid, cost), objective);
    if (candidate < best &&
        check_spatial_correlation(graph, mapping, grid).empty()) {
      best = candidate;
    } else {
      mapping.coord_of[victim] = old;
    }
  }
  return mapping;
}

}  // namespace wsn::taskgraph
