// Architecture-independent application model: the annotated task graph of
// Section 4.1 ("the algorithm is specified using an architecture-independent
// application model such as an annotated task graph").
//
// Tasks form a rooted tree (the paper's case study is a quad-tree; the
// design flow text also mentions general k-ary trees). Each task carries the
// annotations the mapping stage needs: how much data it emits to its parent
// and how much computation one activation costs.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace wsn::taskgraph {

using TaskId = std::uint32_t;
inline constexpr TaskId kNoTask = static_cast<TaskId>(-1);

/// Role of a task in the data flow.
enum class TaskKind : std::uint8_t {
  kSense,  // leaf: linked to the sensing interface
  kMerge,  // interior: in-network processing on children's data
};

/// Designer-provided annotations driving cost estimation and mapping.
struct TaskAnnotations {
  /// Units of data this task transmits to its parent per activation.
  double output_units = 1.0;
  /// Computation (ops) one activation performs.
  double compute_ops = 1.0;
};

struct Task {
  TaskId id = kNoTask;
  TaskKind kind = TaskKind::kSense;
  /// Height in the tree: leaves are level 0 (the paper's "level of
  /// recursion" starts at 0 at the sensing tasks).
  std::uint32_t level = 0;
  TaskId parent = kNoTask;
  std::vector<TaskId> children;
  TaskAnnotations annotations;
};

/// A rooted task tree with validation and traversal helpers.
class TaskGraph {
 public:
  /// Adds a task and returns its id. `parent` must already exist or be
  /// kNoTask (at most one root).
  TaskId add_task(TaskKind kind, TaskId parent, TaskAnnotations ann = {});

  std::size_t size() const { return tasks_.size(); }
  const Task& task(TaskId id) const { return tasks_.at(id); }
  Task& task(TaskId id) { return tasks_.at(id); }

  TaskId root() const { return root_; }
  bool has_root() const { return root_ != kNoTask; }

  /// All leaf (sense) tasks, in id order.
  std::vector<TaskId> leaves() const;

  /// All tasks at the given level, in id order.
  std::vector<TaskId> at_level(std::uint32_t level) const;

  /// Leaf descendants of `id` (the task's "geographic oversight").
  std::vector<TaskId> leaf_descendants(TaskId id) const;

  /// Height of the tree: max level over all tasks.
  std::uint32_t height() const;

  /// Ids in topological (children-before-parents) order.
  std::vector<TaskId> bottom_up_order() const;

  /// Validates tree shape: exactly one root, acyclic parent chains,
  /// children/parent links consistent, levels = 1 + max child level.
  /// Throws std::logic_error describing the first violation.
  void validate() const;

  const std::vector<Task>& tasks() const { return tasks_; }

 private:
  std::vector<Task> tasks_;
  TaskId root_ = kNoTask;
};

}  // namespace wsn::taskgraph
