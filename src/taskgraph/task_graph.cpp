#include "taskgraph/task_graph.h"

#include <algorithm>

namespace wsn::taskgraph {

TaskId TaskGraph::add_task(TaskKind kind, TaskId parent, TaskAnnotations ann) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  Task t;
  t.id = id;
  t.kind = kind;
  t.parent = parent;
  t.annotations = ann;
  if (parent == kNoTask) {
    if (root_ != kNoTask) {
      throw std::logic_error("TaskGraph: second root added");
    }
    root_ = id;
  } else {
    if (parent >= tasks_.size()) {
      throw std::out_of_range("TaskGraph: parent does not exist");
    }
    tasks_[parent].children.push_back(id);
  }
  tasks_.push_back(std::move(t));
  // Recompute levels along the ancestor chain (levels = height of subtree).
  TaskId cur = parent;
  std::uint32_t child_level = 0;
  while (cur != kNoTask) {
    Task& p = tasks_[cur];
    if (p.level >= child_level + 1) break;
    p.level = child_level + 1;
    child_level = p.level;
    cur = p.parent;
  }
  return id;
}

std::vector<TaskId> TaskGraph::leaves() const {
  std::vector<TaskId> out;
  for (const Task& t : tasks_) {
    if (t.kind == TaskKind::kSense) out.push_back(t.id);
  }
  return out;
}

std::vector<TaskId> TaskGraph::at_level(std::uint32_t level) const {
  std::vector<TaskId> out;
  for (const Task& t : tasks_) {
    if (t.level == level) out.push_back(t.id);
  }
  return out;
}

std::vector<TaskId> TaskGraph::leaf_descendants(TaskId id) const {
  std::vector<TaskId> out;
  std::vector<TaskId> stack{id};
  while (!stack.empty()) {
    const TaskId cur = stack.back();
    stack.pop_back();
    const Task& t = tasks_.at(cur);
    if (t.children.empty()) {
      out.push_back(cur);
    } else {
      stack.insert(stack.end(), t.children.begin(), t.children.end());
    }
  }
  std::ranges::sort(out);
  return out;
}

std::uint32_t TaskGraph::height() const {
  std::uint32_t h = 0;
  for (const Task& t : tasks_) h = std::max(h, t.level);
  return h;
}

std::vector<TaskId> TaskGraph::bottom_up_order() const {
  std::vector<TaskId> order(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    order[i] = static_cast<TaskId>(i);
  }
  std::ranges::stable_sort(order, [this](TaskId a, TaskId b) {
    return tasks_[a].level < tasks_[b].level;
  });
  return order;
}

void TaskGraph::validate() const {
  if (tasks_.empty()) throw std::logic_error("TaskGraph: empty");
  if (root_ == kNoTask) throw std::logic_error("TaskGraph: no root");
  std::size_t rootless = 0;
  for (const Task& t : tasks_) {
    if (t.parent == kNoTask) {
      ++rootless;
      continue;
    }
    const Task& p = tasks_.at(t.parent);
    if (!std::ranges::count(p.children, t.id)) {
      throw std::logic_error("TaskGraph: parent/child link inconsistent");
    }
  }
  if (rootless != 1) throw std::logic_error("TaskGraph: multiple roots");
  for (const Task& t : tasks_) {
    if (t.children.empty()) {
      if (t.level != 0) throw std::logic_error("TaskGraph: leaf level != 0");
      if (t.kind != TaskKind::kSense) {
        throw std::logic_error("TaskGraph: childless task is not a leaf");
      }
      continue;
    }
    std::uint32_t max_child = 0;
    for (TaskId c : t.children) {
      max_child = std::max(max_child, tasks_.at(c).level);
      if (tasks_.at(c).parent != t.id) {
        throw std::logic_error("TaskGraph: child has wrong parent");
      }
    }
    if (t.level != max_child + 1) {
      throw std::logic_error("TaskGraph: level is not 1 + max child level");
    }
  }
  // Acyclicity: parent chains must terminate at the root within |V| steps.
  for (const Task& t : tasks_) {
    TaskId cur = t.id;
    std::size_t steps = 0;
    while (cur != kNoTask) {
      cur = tasks_.at(cur).parent;
      if (++steps > tasks_.size()) {
        throw std::logic_error("TaskGraph: cycle in parent chain");
      }
    }
  }
}

}  // namespace wsn::taskgraph
