#include "taskgraph/quadtree.h"

#include <sstream>
#include <stdexcept>

namespace wsn::taskgraph {
namespace {

struct Builder {
  QuadTree* tree;
  TaskAnnotations leaf_ann;
  TaskAnnotations merge_ann;
  std::vector<core::GridCoord> origins;
  std::vector<std::uint32_t> sides;

  TaskId build(core::GridCoord origin, std::uint32_t side, TaskId parent) {
    if (side == 1) {
      const TaskId id = tree->graph.add_task(TaskKind::kSense, parent, leaf_ann);
      record(id, origin, side);
      tree->leaf_by_morton[core::morton_index(origin)] = id;
      return id;
    }
    const TaskId id = tree->graph.add_task(TaskKind::kMerge, parent, merge_ann);
    record(id, origin, side);
    const auto half = static_cast<std::int32_t>(side / 2);
    // Morton (NW, NE, SW, SE) order, matching Figures 2-3.
    build(origin, side / 2, id);
    build({origin.row, origin.col + half}, side / 2, id);
    build({origin.row + half, origin.col}, side / 2, id);
    build({origin.row + half, origin.col + half}, side / 2, id);
    return id;
  }

  void record(TaskId id, core::GridCoord origin, std::uint32_t side) {
    if (origins.size() <= id) {
      origins.resize(id + 1);
      sides.resize(id + 1);
    }
    origins[id] = origin;
    sides[id] = side;
  }
};

// Extents are reconstructed on demand from leaf descendants; the builder's
// record of origins is only needed during figure_label rendering, so QuadTree
// stores labels directly instead of a second parallel structure.

}  // namespace

std::uint64_t QuadTree::figure_label(TaskId id) const {
  // The label is the Morton index of the north-west corner of the task's
  // extent = the minimum Morton index over its leaf cells (Z-order visits
  // the NW corner of any aligned block first).
  const auto leaves = graph.leaf_descendants(id);
  std::uint64_t best = ~0ULL;
  for (TaskId leaf : leaves) {
    for (std::uint64_t k = 0; k < leaf_by_morton.size(); ++k) {
      if (leaf_by_morton[k] == leaf && k < best) best = k;
    }
  }
  return best;
}

QuadTree build_quad_tree(std::size_t grid_side, TaskAnnotations leaf_ann,
                         TaskAnnotations merge_ann) {
  if (!core::GridTopology::is_power_of_two(grid_side)) {
    throw std::invalid_argument(
        "build_quad_tree: grid side must be a power of two");
  }
  QuadTree tree;
  tree.grid_side = grid_side;
  tree.leaf_by_morton.assign(grid_side * grid_side, kNoTask);
  Builder b{&tree, leaf_ann, merge_ann, {}, {}};
  b.build({0, 0}, static_cast<std::uint32_t>(grid_side), kNoTask);
  tree.graph.validate();
  return tree;
}

std::string render_figure2(const QuadTree& tree) {
  std::ostringstream os;
  const std::uint32_t height = tree.graph.height();
  for (std::uint32_t level = height; level + 1 > 0; --level) {
    os << "Level " << level << ":";
    for (TaskId id : tree.graph.at_level(level)) {
      os << ' ' << tree.figure_label(id);
    }
    os << '\n';
    if (level == 0) break;
  }
  os << "Sensor data feeds the " << tree.graph.leaves().size()
     << " level-0 tasks.\n";
  return os.str();
}

std::string render_figure3(std::size_t grid_side) {
  std::ostringstream os;
  for (std::int32_t r = 0; r < static_cast<std::int32_t>(grid_side); ++r) {
    for (std::int32_t c = 0; c < static_cast<std::int32_t>(grid_side); ++c) {
      if (c) os << ' ';
      os.width(3);
      os << core::morton_index({r, c});
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace wsn::taskgraph
