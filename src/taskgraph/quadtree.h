// The quad-tree task graph of the case study (Figure 2).
//
// "A leaf node corresponds to a task that is linked to the sensing
// interface, and interior nodes represent in-network processing on the
// sampled data. At each level of the tree, every node transmits its
// information to its parent at the next higher level."
//
// Leaves are ordered by Morton (Z-order) index over the grid so that sibling
// groups of four cover exactly the 2x2 sub-blocks the figure shows; the
// Figure 2 labels (0..15 at the leaves, 0/4/8/12 at level 1, 0 at the root)
// are the Morton indices of the north-west corners of each task's extent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/grid_topology.h"
#include "taskgraph/task_graph.h"

namespace wsn::taskgraph {

/// A quad-tree over a power-of-two grid plus the leaf ordering used by the
/// paper's figures.
struct QuadTree {
  TaskGraph graph;
  std::size_t grid_side = 0;
  /// leaf_by_morton[k] = task id of the leaf whose grid cell has Morton
  /// index k.
  std::vector<TaskId> leaf_by_morton;

  /// Morton index of the north-west corner of `id`'s extent - the label the
  /// paper's Figure 2 prints on the node.
  std::uint64_t figure_label(TaskId id) const;
};

/// Builds the quad-tree for a `grid_side` x `grid_side` grid (side must be a
/// power of two). Leaf annotations come from `leaf_ann`, interior ones from
/// `merge_ann`; interior compute_ops scale with the number of children
/// merged (one op per incoming boundary description by default).
QuadTree build_quad_tree(std::size_t grid_side,
                         TaskAnnotations leaf_ann = {1.0, 1.0},
                         TaskAnnotations merge_ann = {1.0, 3.0});

/// Renders the levels of the tree with figure labels, reproducing the
/// structure of Figure 2 as text.
std::string render_figure2(const QuadTree& tree);

/// Renders the grid of Morton labels (the region labeling of Figure 3).
std::string render_figure3(std::size_t grid_side);

}  // namespace wsn::taskgraph
