// End-to-end integration: the same synthesized program produces identical
// results on the virtual grid and on the emulated physical network, and the
// analytical predictions match the virtual-layer measurements exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "analysis/analytical.h"
#include "analysis/metrics.h"
#include "app/centralized.h"
#include "app/dnc.h"
#include "app/field.h"
#include "app/topographic.h"
#include "core/virtual_network.h"
#include "emulation/overlay_network.h"
#include "net/deployment.h"

namespace wsn {
namespace {

std::vector<std::uint64_t> sorted_areas(
    const std::vector<app::RegionInfo>& regions) {
  std::vector<std::uint64_t> areas;
  for (const app::RegionInfo& r : regions) areas.push_back(r.area);
  std::ranges::sort(areas);
  return areas;
}

/// Builds a full physical stack (deployment, emulation, binding, overlay)
/// for a `grid_side` virtual grid.
struct PhysicalStack {
  PhysicalStack(std::size_t grid_side, std::size_t nodes, std::uint64_t seed)
      : sim(seed) {
    const net::Rect terrain =
        net::square_terrain(static_cast<double>(grid_side));
    net::DeploymentConfig cfg;
    cfg.kind = net::DeploymentKind::kOnePerCellPlus;
    cfg.node_count = nodes;
    cfg.terrain = terrain;
    cfg.cells_per_side = grid_side;
    auto positions = net::deploy(cfg, sim.rng());
    graph = std::make_unique<net::NetworkGraph>(std::move(positions), 1.3);
    mapper = std::make_unique<emulation::CellMapper>(*graph, terrain, grid_side);
    ledger = std::make_unique<net::EnergyLedger>(graph->node_count());
    link = std::make_unique<net::LinkLayer>(
        sim, *graph, net::RadioModel{1.3, 1.0, 1.0, 1.0}, net::CpuModel{},
        *ledger);
    auto emu = emulation::run_topology_emulation(*link, *mapper);
    auto bind = emulation::run_leader_binding(*link, *mapper);
    setup_energy = ledger->total();
    overlay = std::make_unique<emulation::OverlayNetwork>(
        *link, *mapper, std::move(emu), std::move(bind));
  }

  sim::Simulator sim;
  std::unique_ptr<net::NetworkGraph> graph;
  std::unique_ptr<emulation::CellMapper> mapper;
  std::unique_ptr<net::EnergyLedger> ledger;
  std::unique_ptr<net::LinkLayer> link;
  std::unique_ptr<emulation::OverlayNetwork> overlay;
  double setup_energy = 0.0;
};

TEST(Integration, VirtualRunMatchesReferenceLabeling) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    sim::Rng field_rng(seed);
    const app::FeatureGrid grid = app::random_grid(16, 0.45, field_rng);
    sim::Simulator sim(seed);
    core::VirtualNetwork vnet(sim, core::GridTopology(16),
                              core::uniform_cost_model());
    const auto outcome = app::run_topographic_query(vnet, grid);
    const app::Labeling reference = app::label_regions(grid);
    EXPECT_EQ(outcome.regions.size(), reference.region_count());
    EXPECT_EQ(sorted_areas(outcome.regions),
              sorted_areas(app::dnc_label(grid)));
  }
}

TEST(Integration, PhysicalRunMatchesVirtualResult) {
  sim::Rng field_rng(77);
  const app::FeatureGrid grid = app::random_grid(4, 0.5, field_rng);

  // Virtual layer.
  sim::Simulator vsim(5);
  core::VirtualNetwork vnet(vsim, core::GridTopology(4),
                            core::uniform_cost_model());
  const auto virtual_outcome = app::run_topographic_query(vnet, grid);

  // Physical layer.
  PhysicalStack phys(4, 160, 5);
  const auto physical_outcome = app::run_topographic_query(*phys.overlay, grid);

  EXPECT_EQ(sorted_areas(virtual_outcome.regions),
            sorted_areas(physical_outcome.regions));
  EXPECT_EQ(virtual_outcome.round.messages_sent,
            physical_outcome.round.messages_sent);
  // The overlay pays at least the virtual hop count per message.
  EXPECT_GE(phys.overlay->physical_hops(), phys.overlay->virtual_hops());
  EXPECT_EQ(phys.overlay->failed_sends(), 0u);
}

TEST(Integration, AnalyticalPredictionMatchesVirtualMeasurementExactly) {
  for (std::size_t side : {2u, 4u, 8u, 16u}) {
    const app::FeatureGrid grid = app::full_grid(side);
    sim::Simulator sim(1);
    core::VirtualNetwork vnet(sim, core::GridTopology(side),
                              core::uniform_cost_model());
    const auto outcome = app::run_topographic_query(vnet, grid);
    const auto predicted =
        analysis::predict_quadtree(side, core::uniform_cost_model());
    EXPECT_EQ(outcome.round.messages_sent, predicted.messages);
    EXPECT_EQ(vnet.total_hops(), predicted.total_hops);
    EXPECT_DOUBLE_EQ(outcome.round.finished_at, predicted.latency);
    const auto report = analysis::energy_report(vnet.ledger());
    EXPECT_DOUBLE_EQ(report.total, predicted.total_energy);
  }
}

TEST(Integration, CentralizedPredictionMatchesVirtualMeasurement) {
  for (std::size_t side : {4u, 8u}) {
    const app::FeatureGrid grid = app::checkerboard_grid(side);
    sim::Simulator sim(2);
    core::VirtualNetwork vnet(sim, core::GridTopology(side),
                              core::uniform_cost_model());
    const auto outcome = app::run_centralized_query(vnet, grid);
    const auto predicted =
        analysis::predict_centralized(side, core::uniform_cost_model());
    EXPECT_EQ(outcome.messages, predicted.messages);
    EXPECT_EQ(vnet.total_hops(), predicted.total_hops);
    EXPECT_DOUBLE_EQ(outcome.finished_at, predicted.latency);
    EXPECT_DOUBLE_EQ(analysis::energy_report(vnet.ledger()).total,
                     predicted.total_energy);
    // And it labels correctly.
    EXPECT_EQ(outcome.regions.size(), side * side / 2);
  }
}

TEST(Integration, CentralizedAndQuadtreeAgreeOnRegions) {
  sim::Rng field_rng(31);
  const app::FeatureGrid grid = app::random_grid(8, 0.4, field_rng);
  sim::Simulator sim_a(3);
  core::VirtualNetwork vnet_a(sim_a, core::GridTopology(8),
                              core::uniform_cost_model());
  const auto quadtree = app::run_topographic_query(vnet_a, grid);
  sim::Simulator sim_b(4);
  core::VirtualNetwork vnet_b(sim_b, core::GridTopology(8),
                              core::uniform_cost_model());
  const auto centralized = app::run_centralized_query(vnet_b, grid);
  EXPECT_EQ(sorted_areas(quadtree.regions), sorted_areas(centralized.regions));
}

TEST(Integration, QuadtreeBeatsCentralizedOnTotalEnergyAtScale) {
  // The design-flow trade-off of Section 2: in-network merging avoids
  // shipping every status across the grid.
  const std::size_t side = 16;
  const app::FeatureGrid grid = app::ring_grid(side);

  sim::Simulator sim_a(5);
  core::VirtualNetwork vnet_a(sim_a, core::GridTopology(side),
                              core::uniform_cost_model());
  app::run_topographic_query(vnet_a, grid);
  const double dnc_energy = vnet_a.ledger().total();

  sim::Simulator sim_b(6);
  core::VirtualNetwork vnet_b(sim_b, core::GridTopology(side),
                              core::uniform_cost_model());
  app::run_centralized_query(vnet_b, grid);
  const double central_energy = vnet_b.ledger().total();

  EXPECT_LT(dnc_energy, central_energy);
}

TEST(Integration, StretchIsModestOnDenseDeployments) {
  PhysicalStack phys(4, 240, 11);
  sim::Rng field_rng(11);
  const app::FeatureGrid grid = app::random_grid(4, 0.5, field_rng);
  app::run_topographic_query(*phys.overlay, grid);
  const double stretch = static_cast<double>(phys.overlay->physical_hops()) /
                         static_cast<double>(phys.overlay->virtual_hops());
  EXPECT_GE(stretch, 1.0);
  EXPECT_LE(stretch, 6.0);  // dense cells keep detours short
}

TEST(Integration, ExfiltrationLandsOnRootLeader) {
  const app::FeatureGrid grid = app::full_grid(8);
  sim::Simulator sim(7);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  const auto outcome = app::run_topographic_query(vnet, grid);
  EXPECT_EQ(outcome.round.exfiltration_node, (core::GridCoord{0, 0}));
  EXPECT_EQ(outcome.regions.size(), 1u);
  EXPECT_EQ(outcome.regions[0].area, 64u);
}

TEST(Integration, EnergyConservationOnVirtualLayer) {
  // Ledger total must equal hops * (tx+rx) * units + compute charges when
  // all messages have unit size.
  const app::FeatureGrid grid = app::checkerboard_grid(8);
  sim::Simulator sim(8);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  const auto outcome = app::run_topographic_query(vnet, grid);
  const auto report = analysis::energy_report(vnet.ledger());
  const double comm = static_cast<double>(vnet.total_hops()) * 2.0;
  EXPECT_DOUBLE_EQ(report.tx + report.rx, comm);
  const double sense = 64.0;
  const double merges = static_cast<double>(outcome.round.self_merges +
                                            outcome.round.remote_merges);
  EXPECT_DOUBLE_EQ(report.compute, sense + merges);
}

TEST(Integration, LossyPhysicalNetworkStillSetsUpTables) {
  // With packet loss the emulation protocol may need retries in a real
  // system; here we only assert the protocol remains safe (no crash, audit
  // holds) under loss, not that it converges fully.
  sim::Simulator sim(9);
  const net::Rect terrain = net::square_terrain(4.0);
  net::DeploymentConfig cfg;
  cfg.kind = net::DeploymentKind::kOnePerCellPlus;
  cfg.node_count = 160;
  cfg.terrain = terrain;
  cfg.cells_per_side = 4;
  auto positions = net::deploy(cfg, sim.rng());
  net::NetworkGraph graph(std::move(positions), 1.3);
  net::EnergyLedger ledger(graph.node_count());
  net::LinkLayer link(sim, graph, net::RadioModel{1.3, 1.0, 1.0, 1.0},
                      net::CpuModel{}, ledger);
  link.set_loss_probability(0.2);
  emulation::CellMapper mapper(graph, terrain, 4);
  const auto result = emulation::run_topology_emulation(link, mapper);
  EXPECT_TRUE(result.boundary_audit_passed);
}

}  // namespace
}  // namespace wsn
