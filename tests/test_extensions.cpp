// Extension features: wire serialization, contour maps, protocol
// maintenance under node failure, congestion-aware virtual layer.
#include <gtest/gtest.h>

#include <algorithm>

#include "app/centralized.h"
#include "app/contours.h"
#include "app/field.h"
#include "app/serialize.h"
#include "app/topographic.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"
#include "emulation/emulation_protocol.h"
#include "emulation/leader_binding.h"

namespace wsn {
namespace {

// --------------------------- serialization --------------------------------

TEST(Serialize, RoundTripLeaf) {
  const app::BlockSummary s = app::BlockSummary::leaf({3, -2}, true);
  const auto bytes = app::encode_summary(s);
  const app::BlockSummary back = app::decode_summary(bytes);
  EXPECT_EQ(back.row0, 3);
  EXPECT_EQ(back.col0, -2);
  EXPECT_EQ(back.open, s.open);
  EXPECT_EQ(back.north, s.north);
}

TEST(Serialize, RoundTripRandomBlocks) {
  sim::Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    const app::FeatureGrid grid = app::random_grid(16, rng.uniform(0.2, 0.8), rng);
    const auto w = static_cast<std::uint32_t>(rng.between(1, 16));
    const auto h = static_cast<std::uint32_t>(rng.between(1, 16));
    const auto r0 = static_cast<std::int32_t>(rng.below(16 - h + 1));
    const auto c0 = static_cast<std::int32_t>(rng.below(16 - w + 1));
    const app::BlockSummary s = app::BlockSummary::of_rect(grid, r0, c0, w, h);
    const app::BlockSummary back = app::decode_summary(app::encode_summary(s));
    EXPECT_EQ(back.north, s.north);
    EXPECT_EQ(back.south, s.south);
    EXPECT_EQ(back.west, s.west);
    EXPECT_EQ(back.east, s.east);
    EXPECT_EQ(back.open, s.open);
    EXPECT_EQ(back.closed.size(), s.closed.size());
    EXPECT_EQ(back.total_area(), s.total_area());
  }
}

TEST(Serialize, TruncatedInputThrows) {
  const auto bytes =
      app::encode_summary(app::BlockSummary::leaf({0, 0}, true));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(app::decode_summary(std::span(bytes.data(), cut)),
                 std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(Serialize, TrailingBytesRejected) {
  auto bytes = app::encode_summary(app::BlockSummary::leaf({0, 0}, false));
  bytes.push_back(0);
  EXPECT_THROW(app::decode_summary(bytes), std::runtime_error);
}

TEST(Serialize, CompressionGrowsSlowerThanArea) {
  // The paper's rationale for boundary summaries: their size tracks the
  // perimeter, not the area. Compare bytes for a solid block at doubling
  // sides.
  std::vector<double> bytes_per_cell;
  for (std::size_t side : {8u, 16u, 32u, 64u}) {
    const app::FeatureGrid grid = app::full_grid(side);
    const app::BlockSummary s = app::BlockSummary::of_rect(
        grid, 0, 0, static_cast<std::uint32_t>(side),
        static_cast<std::uint32_t>(side));
    bytes_per_cell.push_back(static_cast<double>(app::encoded_size(s)) /
                             static_cast<double>(side * side));
  }
  for (std::size_t i = 1; i < bytes_per_cell.size(); ++i) {
    EXPECT_LT(bytes_per_cell[i], bytes_per_cell[i - 1]);
  }
}

TEST(Serialize, ExactSizeModelDrivesCosts) {
  const app::ExactSizeModel model{16.0};
  const app::BlockSummary leaf = app::BlockSummary::leaf({0, 0}, true);
  EXPECT_GT(model.units(leaf), 0.0);
  EXPECT_LT(model.units(leaf), 2.0);  // a leaf fits in roughly a frame
}

TEST(Serialize, VirtualRunWithExactSizesStillCorrect) {
  sim::Rng rng(9);
  const app::FeatureGrid grid = app::random_grid(16, 0.5, rng);
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  app::TopographicConfig config;
  // Route payload sizing through the exact codec.
  config.size_model = app::SummarySizeModel{};  // placeholder, replaced below
  auto regions_out = std::make_shared<std::vector<app::RegionInfo>>();
  auto hooks = app::topographic_hooks(grid, config, regions_out.get());
  hooks.payload_units = [](const std::any& p) {
    return app::ExactSizeModel{}.units(std::any_cast<const app::BlockSummary&>(p));
  };
  synthesis::AggregationProgram prog(vnet, hooks);
  prog.start_round();
  sim.run();
  ASSERT_TRUE(prog.finished());
  EXPECT_EQ(regions_out->size(), app::label_regions(grid).region_count());
}

// ------------------------------ contours ----------------------------------

TEST(Contours, IsoLevelsAreInteriorAndAscending) {
  const auto levels = app::iso_levels(0.0, 1.0, 4);
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_DOUBLE_EQ(levels[0], 0.2);
  EXPECT_DOUBLE_EQ(levels[3], 0.8);
  EXPECT_THROW(app::iso_levels(1.0, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(app::iso_levels(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Contours, GradientFieldYieldsNestedBands) {
  const app::ScalarField field = app::gradient_field(0.0, 1.0);
  const app::ContourMap map =
      app::contour_map(field, 16, app::iso_levels(0.0, 1.0, 3));
  ASSERT_EQ(map.levels.size(), 3u);
  EXPECT_TRUE(app::monotone_nesting(map));
  // Each super-level set of a monotone gradient is one band.
  for (const auto& level : map.levels) {
    EXPECT_EQ(level.regions.size(), 1u);
  }
}

TEST(Contours, InNetworkMatchesSequential) {
  sim::Rng rng(3);
  const app::ScalarField field = app::hotspot_field(3, rng);
  const auto thresholds = app::iso_levels(0.1, 0.9, 4);
  const app::ContourMap reference = app::contour_map(field, 16, thresholds);

  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  const auto in_network =
      app::contour_map_in_network(vnet, field, thresholds);
  ASSERT_EQ(in_network.map.levels.size(), reference.levels.size());
  for (std::size_t i = 0; i < reference.levels.size(); ++i) {
    EXPECT_EQ(in_network.map.levels[i].regions.size(),
              reference.levels[i].regions.size());
    EXPECT_EQ(in_network.map.levels[i].feature_area,
              reference.levels[i].feature_area);
  }
  EXPECT_GT(in_network.total_latency, 0.0);
  EXPECT_EQ(in_network.total_messages,
            thresholds.size() * (16 * 16 - 1));
}

TEST(Contours, RenderDepthsAreDigits) {
  const app::ScalarField field = app::gradient_field(0.0, 1.0);
  const app::ContourMap map =
      app::contour_map(field, 8, app::iso_levels(0.0, 1.0, 2));
  const std::string art = map.render(field, 8);
  EXPECT_NE(art.find('.'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
}

// --------------------------- maintenance ----------------------------------

class MaintenanceTest : public ::testing::Test {
 protected:
  MaintenanceTest() : stack_(4, 200, 1.3, 77) {
    EXPECT_TRUE(stack_.healthy());
  }
  bench::PhysicalStack stack_;
};

TEST_F(MaintenanceTest, RepairRestoresRoutesAfterFailures) {
  // Kill 10% of nodes (never a whole cell - check after).
  sim::Rng rng(5);
  std::size_t killed = 0;
  while (killed < 20) {
    const auto victim = static_cast<net::NodeId>(
        rng.below(stack_.graph->node_count()));
    if (!stack_.link->is_down(victim)) {
      stack_.link->set_down(victim, true);
      ++killed;
    }
  }
  // Preconditions may degrade; only require occupied cells with live nodes.
  core::GridTopology grid(4);
  for (const core::GridCoord& cell : grid.all_coords()) {
    bool any_live = false;
    for (net::NodeId m : stack_.mapper->members(cell)) {
      any_live |= !stack_.link->is_down(m);
    }
    ASSERT_TRUE(any_live);
  }

  const auto repaired = emulation::run_topology_repair(
      *stack_.link, *stack_.mapper, stack_.emulation_result.tables);

  // Every live node's surviving chains must route through live nodes only.
  for (net::NodeId i = 0; i < stack_.graph->node_count(); ++i) {
    if (stack_.link->is_down(i)) continue;
    for (core::Direction d : core::kAllDirections) {
      if (!grid.neighbor(stack_.mapper->cell_of(i), d)) continue;
      const auto chain =
          emulation::follow_chain(*stack_.mapper, repaired.tables, i, d);
      if (chain.empty()) continue;  // direction may be legitimately lost
      for (net::NodeId hop : chain) {
        EXPECT_FALSE(stack_.link->is_down(hop));
      }
    }
  }
  // Repair involves only the surviving nodes: strictly fewer broadcasts
  // than the cold start, which had 20 more participants.
  EXPECT_LT(repaired.broadcasts, stack_.emulation_result.broadcasts);
}

TEST_F(MaintenanceTest, RepairWithoutFailuresIsQuiet) {
  const auto repaired = emulation::run_topology_repair(
      *stack_.link, *stack_.mapper, stack_.emulation_result.tables);
  EXPECT_EQ(repaired.adoptions, 0u);
  EXPECT_EQ(repaired.tables.size(), stack_.emulation_result.tables.size());
  for (std::size_t i = 0; i < repaired.tables.size(); ++i) {
    for (core::Direction d : core::kAllDirections) {
      EXPECT_EQ(repaired.tables[i][d], stack_.emulation_result.tables[i][d]);
    }
  }
}

TEST_F(MaintenanceTest, BindingFailoverReelectsOnlyAffectedCells) {
  // Kill two bound leaders.
  const net::NodeId dead1 = stack_.binding_result.leader_of({0, 0}, 4);
  const net::NodeId dead2 = stack_.binding_result.leader_of({2, 3}, 4);
  stack_.link->set_down(dead1, true);
  stack_.link->set_down(dead2, true);

  const auto repaired = emulation::run_binding_repair(
      *stack_.link, *stack_.mapper, stack_.binding_result);
  EXPECT_TRUE(repaired.unique_leaders);

  core::GridTopology grid(4);
  for (const core::GridCoord& cell : grid.all_coords()) {
    const net::NodeId before = stack_.binding_result.leader_of(cell, 4);
    const net::NodeId after = repaired.leader_of(cell, 4);
    if (before == dead1 || before == dead2) {
      EXPECT_NE(after, before);
      EXPECT_NE(after, net::kNoNode);
      EXPECT_FALSE(stack_.link->is_down(after));
      // The new leader is the live node closest to the center.
      const auto oracle = emulation::oracle_leaders(
          *stack_.mapper, emulation::BindingMetric::kDistanceToCenter,
          *stack_.ledger, stack_.link.get());
      EXPECT_EQ(after, oracle[static_cast<std::size_t>(cell.row) * 4 +
                              static_cast<std::size_t>(cell.col)]);
    } else {
      EXPECT_EQ(after, before);
    }
  }
}

TEST_F(MaintenanceTest, QueryStillCorrectAfterRepair) {
  const net::NodeId dead = stack_.binding_result.leader_of({1, 1}, 4);
  stack_.link->set_down(dead, true);
  auto emu = emulation::run_topology_repair(*stack_.link, *stack_.mapper,
                                            stack_.emulation_result.tables);
  auto bind = emulation::run_binding_repair(*stack_.link, *stack_.mapper,
                                            stack_.binding_result);
  emulation::OverlayNetwork overlay(*stack_.link, *stack_.mapper,
                                    std::move(emu), std::move(bind));
  sim::Rng rng(4);
  const app::FeatureGrid grid = app::random_grid(4, 0.5, rng);
  const auto outcome = app::run_topographic_query(overlay, grid);
  EXPECT_EQ(outcome.regions.size(), app::label_regions(grid).region_count());
  EXPECT_EQ(overlay.failed_sends(), 0u);
}

// ---------------------------- congestion ----------------------------------

TEST(Congestion, SerializedRelaysDelayButPreserveResults) {
  sim::Rng rng(6);
  const app::FeatureGrid grid = app::random_grid(8, 0.5, rng);

  sim::Simulator sim_free(1);
  core::VirtualNetwork free_net(sim_free, core::GridTopology(8),
                                core::uniform_cost_model());
  const auto free = app::run_topographic_query(free_net, grid);

  sim::Simulator sim_busy(1);
  core::VirtualNetwork busy_net(sim_busy, core::GridTopology(8),
                                core::uniform_cost_model(),
                                core::LeaderPlacement::kNorthWest,
                                core::Congestion::kNodeSerialized);
  const auto busy = app::run_topographic_query(busy_net, grid);

  EXPECT_EQ(free.regions.size(), busy.regions.size());
  EXPECT_GE(busy.round.finished_at, free.round.finished_at);
  // Energy is timing-independent.
  EXPECT_DOUBLE_EQ(free_net.ledger().total(), busy_net.ledger().total());
}

TEST(Congestion, CentralizedSinkIsTheBottleneck) {
  const std::size_t side = 8;
  const app::FeatureGrid grid = app::checkerboard_grid(side);

  sim::Simulator sim_a(1);
  core::VirtualNetwork dnc_net(sim_a, core::GridTopology(side),
                               core::uniform_cost_model(),
                               core::LeaderPlacement::kNorthWest,
                               core::Congestion::kNodeSerialized);
  const auto dnc = app::run_topographic_query(dnc_net, grid);

  sim::Simulator sim_b(1);
  core::VirtualNetwork central_net(sim_b, core::GridTopology(side),
                                   core::uniform_cost_model(),
                                   core::LeaderPlacement::kNorthWest,
                                   core::Congestion::kNodeSerialized);
  const auto central = app::run_centralized_query(central_net, grid);

  // Under contention the centralized funnel serializes ~N messages through
  // the sink's neighborhood; the quad-tree keeps its parallelism.
  EXPECT_GT(central.finished_at, dnc.round.finished_at);
  EXPECT_GT(central_net.counters().get("vnet.queued"),
            dnc_net.counters().get("vnet.queued"));
}

TEST(Congestion, SingleMessageUnaffected) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model(),
                            core::LeaderPlacement::kNorthWest,
                            core::Congestion::kNodeSerialized);
  sim::Time arrival = -1;
  vnet.set_receiver({0, 7}, [&](const core::VirtualMessage&) {
    arrival = sim.now();
  });
  vnet.send({0, 0}, {0, 7}, 0, 1.0);
  sim.run();
  EXPECT_DOUBLE_EQ(arrival, 7.0);  // no other traffic: identical to kNone
}

}  // namespace
}  // namespace wsn
