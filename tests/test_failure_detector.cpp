// Distributed failure detection and in-protocol re-election
// (emulation/failure_detector.h): heartbeat/lease expiry detects a crashed
// leader from messages alone, the surviving cell members elect the same
// winner the centralized oracle would pick, recovered nodes rejoin without
// spurious elections, and epoch-stale contributions are rejected by the
// deadline collectives. The cross-check test runs the identical fault
// campaign through the distributed detector and the oracle FailoverBinder
// and demands the same final bindings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/primitives.h"
#include "emulation/failure_detector.h"
#include "emulation/leader_binding.h"
#include "net/reliable_link.h"
#include "sim/fault_plan.h"

namespace wsn {
namespace {

using core::GridCoord;

constexpr std::size_t kSide = 4;
constexpr std::size_t kNodes = 60;
constexpr double kRange = 1.3;
constexpr std::uint64_t kSeed = 7;

/// Worst-case crash -> claim latency for the default detector config
/// (mirrors ChaosSoak::detection_bound).
double detection_bound(const emulation::FailureDetectorConfig& d) {
  return 1.5 * d.lease_duration + d.lease_duration +
         1.5 * d.election_timeout + 10.0;
}

class FailureDetectorTest : public ::testing::Test {
 protected:
  FailureDetectorTest() : stack_(kSide, kNodes, kRange, kSeed) {
    EXPECT_TRUE(stack_.healthy());
    stack_.enable_arq();
    detector_ = std::make_unique<emulation::FailureDetector>(*stack_.overlay);
  }

  ~FailureDetectorTest() override {
    // Drain pending timers so no callback outlives the stack.
    detector_->stop();
    stack_.sim.run();
  }

  bench::PhysicalStack stack_;
  std::unique_ptr<emulation::FailureDetector> detector_;
};

TEST_F(FailureDetectorTest, SteadyStateElectsNobody) {
  detector_->start();
  stack_.sim.run_until(stack_.sim.now() + 120.0);
  EXPECT_TRUE(detector_->claims().empty());
  EXPECT_EQ(detector_->counters().get("fd.lease_expire"), 0u);
  EXPECT_GT(detector_->counters().get("fd.beat"), 0u);
  EXPECT_TRUE(detector_->split_brains().empty());
  // Every node still believes the setup binding.
  for (const GridCoord& c : stack_.overlay->grid().all_coords()) {
    const net::NodeId leader = stack_.overlay->bound_node(c);
    for (const net::NodeId m : stack_.mapper->members(c)) {
      EXPECT_EQ(detector_->believed_leader(m), leader);
    }
  }
}

TEST_F(FailureDetectorTest, DetectsLeaderCrashAndReElectsOracleWinner) {
  const GridCoord cell{1, 1};
  const net::NodeId old_leader = stack_.overlay->bound_node(cell);
  ASSERT_NE(old_leader, net::kNoNode);
  ASSERT_GE(stack_.mapper->members(cell).size(), 2u);

  detector_->start();
  stack_.sim.run_until(stack_.sim.now() + 40.0);
  ASSERT_TRUE(detector_->claims().empty());

  const double t0 = stack_.sim.now();
  stack_.link->set_down(old_leader, true);
  const double bound = detection_bound(emulation::FailureDetectorConfig{});
  stack_.sim.run_until(t0 + bound);

  ASSERT_EQ(detector_->claims().size(), 1u);
  const emulation::ClaimRecord& claim = detector_->claims().front();
  EXPECT_EQ(claim.cell.row, cell.row);
  EXPECT_EQ(claim.cell.col, cell.col);
  EXPECT_NE(claim.winner, old_leader);
  EXPECT_GE(claim.at, t0);
  EXPECT_LE(claim.at - t0, bound);
  EXPECT_GE(claim.epoch, 1u);

  // The winner is the oracle's pick: minimum (score, id) over live members.
  const auto oracle = emulation::oracle_leaders(
      *stack_.mapper, emulation::BindingMetric::kDistanceToCenter,
      *stack_.ledger, stack_.link.get());
  EXPECT_EQ(claim.winner,
            oracle[static_cast<std::size_t>(cell.row) * kSide +
                   static_cast<std::size_t>(cell.col)]);

  // Leadership actually re-bound in the overlay, with a bumped epoch, and
  // every surviving member converged on the new leader.
  EXPECT_EQ(stack_.overlay->bound_node(cell), claim.winner);
  EXPECT_EQ(stack_.overlay->binding_epoch(cell), claim.epoch);
  EXPECT_EQ(detector_->epoch_view(claim.winner), claim.epoch);
  for (const net::NodeId m : stack_.mapper->members(cell)) {
    if (m == old_leader) continue;
    EXPECT_EQ(detector_->believed_leader(m), claim.winner);
  }
  EXPECT_TRUE(detector_->split_brains().empty());
}

TEST_F(FailureDetectorTest, MemberCrashDoesNotDeposeLeader) {
  const GridCoord cell{2, 1};
  const net::NodeId leader = stack_.overlay->bound_node(cell);
  net::NodeId victim = net::kNoNode;
  for (const net::NodeId m : stack_.mapper->members(cell)) {
    if (m != leader) victim = m;
  }
  ASSERT_NE(victim, net::kNoNode);

  detector_->start();
  stack_.sim.run_until(stack_.sim.now() + 20.0);
  stack_.link->set_down(victim, true);
  stack_.sim.run_until(stack_.sim.now() +
                       detection_bound(emulation::FailureDetectorConfig{}));

  EXPECT_TRUE(detector_->claims().empty());
  EXPECT_EQ(stack_.overlay->bound_node(cell), leader);
}

TEST_F(FailureDetectorTest, RecoveredLeaderRejoinsAsFollower) {
  const GridCoord cell{3, 1};
  ASSERT_GE(stack_.mapper->members(cell).size(), 2u);
  const net::NodeId old_leader = stack_.overlay->bound_node(cell);
  const emulation::FailureDetectorConfig cfg{};
  const double bound = detection_bound(cfg);

  detector_->start();
  stack_.sim.run_until(stack_.sim.now() + 20.0);
  const double t0 = stack_.sim.now();
  stack_.link->set_down(old_leader, true);
  stack_.sim.run_until(t0 + bound);
  ASSERT_EQ(detector_->claims().size(), 1u);
  const net::NodeId winner = detector_->claims().front().winner;

  stack_.link->set_down(old_leader, false);
  // Give the rejoin hello, the new leader's beats, and the stale-beat
  // demote path time to converge (several lease intervals).
  stack_.sim.run_until(stack_.sim.now() + 6.0 * cfg.lease_duration);

  EXPECT_EQ(detector_->claims().size(), 1u)
      << "rejoin must not trigger another election";
  EXPECT_EQ(detector_->believed_leader(old_leader), winner);
  EXPECT_GT(detector_->counters().get("fd.rejoin") +
                detector_->counters().get("fd.demote"),
            0u);
  EXPECT_TRUE(detector_->split_brains().empty());
  EXPECT_EQ(stack_.overlay->bound_node(cell), winner);
}

TEST_F(FailureDetectorTest, CellOutageSuspectedThenResumed) {
  const GridCoord cell{3, 3};
  std::vector<net::NodeId> members(stack_.mapper->members(cell).begin(),
                                   stack_.mapper->members(cell).end());
  ASSERT_FALSE(members.empty());
  const emulation::FailureDetectorConfig cfg{};

  detector_->start();
  stack_.sim.run_until(stack_.sim.now() + 2.0 * cfg.uplease_period);
  for (const net::NodeId m : members) stack_.link->set_down(m, true);
  stack_.sim.run_until(stack_.sim.now() + 2.5 * cfg.uplease_duration);
  EXPECT_GE(detector_->counters().get("fd.cell_suspect"), 1u)
      << "the hierarchy should suspect a fully dark cell";

  for (const net::NodeId m : members) stack_.link->set_down(m, false);
  stack_.sim.run_until(stack_.sim.now() + 3.0 * cfg.uplease_period +
                       2.0 * cfg.lease_duration);
  EXPECT_GE(detector_->counters().get("fd.cell_resume"), 1u)
      << "upleases after recovery should clear the suspicion";
}

TEST_F(FailureDetectorTest, HeartbeatsCostRealEnergy) {
  detector_->start();
  const double e0 = stack_.ledger->total();
  stack_.sim.run_until(stack_.sim.now() + 60.0);
  EXPECT_GT(stack_.ledger->total(), e0)
      << "heartbeat traffic must be charged to the energy ledger";
  EXPECT_GT(detector_->counters().get("fd.beat"), 0u);
  EXPECT_GT(detector_->counters().get("fd.uplease"), 0u);
}

// ---- Oracle cross-check: distributed detector vs FailoverBinder ---------

TEST(FailureDetectorOracle, SameCampaignSameFinalBindings) {
  // Identical seed => identical deployment, identical initial binding, and
  // the same two leader node-ids to crash in both universes.
  bench::PhysicalStack oracle_stack(kSide, kNodes, kRange, kSeed);
  bench::PhysicalStack dist_stack(kSide, kNodes, kRange, kSeed);
  ASSERT_TRUE(oracle_stack.healthy());
  ASSERT_TRUE(dist_stack.healthy());
  oracle_stack.enable_arq();
  dist_stack.enable_arq();

  const GridCoord victims[] = {{1, 1}, {2, 3}};
  sim::FaultPlan plan;
  for (const GridCoord& c : victims) {
    sim::FaultEvent ev;
    ev.at = 10.0;
    ev.kind = sim::FaultKind::kCrash;
    ev.node = oracle_stack.overlay->bound_node(c);
    ASSERT_EQ(ev.node, dist_stack.overlay->bound_node(c));
    plan.events.push_back(ev);
  }

  emulation::FailoverBinder binder(*oracle_stack.arq, *oracle_stack.overlay);
  emulation::FailureDetector detector(*dist_stack.overlay);
  detector.start();

  const std::vector<GridCoord> cells =
      oracle_stack.overlay->grid().all_coords();
  const std::vector<double> values(cells.size(), 1.0);
  auto run_campaign = [&](bench::PhysicalStack& stack) {
    sim::FaultInjector injector(stack.sim, *stack.link, stack.mapper.get());
    injector.arm(plan);
    // Two deadline rounds: the first crosses the crashes (its give-ups are
    // what drives the oracle binder), the second runs on repaired routes.
    for (int round = 0; round < 2; ++round) {
      const double t0 = stack.sim.now();
      core::group_reduce_deadline(
          *stack.overlay, cells, {0, 0}, values, core::ReduceOp::kSum, 1.0,
          100.0, [](const core::PartialResult&) {});
      stack.sim.run_until(t0 + 110.0);
    }
    stack.sim.run_until(stack.sim.now() + 120.0);
  };
  run_campaign(oracle_stack);
  run_campaign(dist_stack);
  detector.stop();
  dist_stack.sim.run();
  oracle_stack.sim.run();

  EXPECT_EQ(binder.failovers(), 2u);
  EXPECT_EQ(detector.claims().size(), 2u);
  for (const GridCoord& c : cells) {
    EXPECT_EQ(oracle_stack.overlay->bound_node(c),
              dist_stack.overlay->bound_node(c))
        << "cell (" << c.row << "," << c.col
        << "): oracle and distributed failover disagree";
  }
}

// ---- Adversarial state corruption + self-stabilization ------------------

TEST_F(FailureDetectorTest, AuditsStayOffByDefault) {
  // audit_period defaults to 0: the audit machinery must add zero traffic,
  // so pre-existing seeded runs replay byte-identically.
  detector_->start();
  stack_.sim.run_until(stack_.sim.now() + 120.0);
  EXPECT_EQ(detector_->counters().get("fd.audit"), 0u);
  EXPECT_EQ(detector_->counters().get("fd.route_repair"), 0u);
}

class SelfStabilizationTest : public ::testing::Test {
 protected:
  SelfStabilizationTest() : stack_(kSide, kNodes, kRange, kSeed) {
    EXPECT_TRUE(stack_.healthy());
    stack_.enable_arq();
    emulation::FailureDetectorConfig cfg;
    cfg.audit_period = 15.0;
    detector_ =
        std::make_unique<emulation::FailureDetector>(*stack_.overlay, cfg);
  }

  ~SelfStabilizationTest() override {
    detector_->stop();
    stack_.sim.run();
  }

  void settle(double dt) { stack_.sim.run_until(stack_.sim.now() + dt); }

  bench::PhysicalStack stack_;
  std::unique_ptr<emulation::FailureDetector> detector_;
};

TEST_F(SelfStabilizationTest, EveryCorruptionTargetReconverges) {
  detector_->start();
  settle(40.0);
  const GridCoord cells[] = {{1, 1}, {2, 3}, {3, 1}, {0, 2}};
  const sim::CorruptionTarget targets[] = {
      sim::CorruptionTarget::kEpoch, sim::CorruptionTarget::kLeader,
      sim::CorruptionTarget::kRoutes, sim::CorruptionTarget::kLeases};
  for (int i = 0; i < 4; ++i) {
    const net::NodeId victim = stack_.overlay->bound_node(cells[i]);
    ASSERT_NE(victim, net::kNoNode);
    EXPECT_TRUE(detector_->inject_corruption(victim, targets[i]));
  }
  EXPECT_EQ(detector_->counters().get("fd.corrupt"), 4u);
  settle(detector_->stabilization_bound());
  // From any of the four corrupted states the network re-converges: every
  // cell's live members agree on one (leader, epoch) and that leader is
  // live and self-believing.
  EXPECT_TRUE(detector_->unconverged_cells().empty());
  EXPECT_TRUE(detector_->split_brains().empty());
  EXPECT_GT(detector_->counters().get("fd.audit"), 0u);
}

TEST_F(SelfStabilizationTest, MemberEpochScrambleRejoinsLeaderView) {
  detector_->start();
  settle(40.0);
  const GridCoord cell{2, 2};
  const net::NodeId leader = stack_.overlay->bound_node(cell);
  ASSERT_NE(leader, net::kNoNode);
  net::NodeId member = net::kNoNode;
  for (const net::NodeId m : stack_.mapper->members(cell)) {
    if (m != leader) {
      member = m;
      break;
    }
  }
  ASSERT_NE(member, net::kNoNode);
  ASSERT_TRUE(
      detector_->inject_corruption(member, sim::CorruptionTarget::kEpoch));
  settle(detector_->stabilization_bound());
  // Regressed epochs are dragged forward by the pre-dedup kSync answer;
  // jumped epochs either propagate (the cell agrees at the higher epoch)
  // or force one election — both end with member and leader sharing a view.
  EXPECT_EQ(detector_->believed_leader(member),
            detector_->believed_leader(leader));
  EXPECT_EQ(detector_->epoch_view(member), detector_->epoch_view(leader));
  EXPECT_TRUE(detector_->unconverged_cells().empty());
}

TEST_F(SelfStabilizationTest, RouteScrambleIsRepairedByAuditRound) {
  detector_->start();
  settle(40.0);
  const net::NodeId victim = stack_.overlay->bound_node({1, 2});
  ASSERT_NE(victim, net::kNoNode);
  ASSERT_TRUE(
      detector_->inject_corruption(victim, sim::CorruptionTarget::kRoutes));
  settle(detector_->stabilization_bound());
  EXPECT_GT(detector_->counters().get("fd.route_repair"), 0u);
  EXPECT_TRUE(detector_->unconverged_cells().empty());
}

TEST_F(SelfStabilizationTest, InjectRefusesWhenStoppedOrDown) {
  // Before start() there is no live protocol state to scramble.
  EXPECT_FALSE(
      detector_->inject_corruption(5, sim::CorruptionTarget::kEpoch));
  detector_->start();
  settle(20.0);
  const net::NodeId victim = stack_.overlay->bound_node({3, 3});
  ASSERT_NE(victim, net::kNoNode);
  stack_.link->set_down(victim, true);
  EXPECT_FALSE(
      detector_->inject_corruption(victim, sim::CorruptionTarget::kLeases));
  EXPECT_EQ(detector_->counters().get("fd.corrupt"), 0u);
  stack_.link->set_down(victim, false);
}

// ---- Live membership: corruption, healing, orphan adoption --------------

class MembershipTest : public ::testing::Test {
 protected:
  MembershipTest() : stack_(kSide, kNodes, kRange, kSeed) {
    EXPECT_TRUE(stack_.healthy());
    stack_.enable_arq();
    emulation::FailureDetectorConfig cfg;
    cfg.audit_period = 15.0;
    cfg.membership = true;
    detector_ =
        std::make_unique<emulation::FailureDetector>(*stack_.overlay, cfg);
  }

  ~MembershipTest() override {
    detector_->stop();
    stack_.sim.run();
  }

  void settle(double dt) { stack_.sim.run_until(stack_.sim.now() + dt); }

  /// A vacancy victim: every member of `cell` except one non-leader
  /// follower with a radio edge into another cell. Returns the survivor
  /// (kNoNode when the cell cannot stage the scenario).
  net::NodeId stage_vacancy(const GridCoord& cell) {
    const net::NodeId leader = stack_.overlay->bound_node(cell);
    net::NodeId survivor = net::kNoNode;
    for (const net::NodeId m : stack_.mapper->members(cell)) {
      if (m == leader) continue;
      for (const net::NodeId v : stack_.graph->neighbors(m)) {
        if (!(stack_.mapper->cell_of(v) == cell)) {
          survivor = m;
          break;
        }
      }
      if (survivor != net::kNoNode) break;
    }
    if (survivor == net::kNoNode) return net::kNoNode;
    for (const net::NodeId m : stack_.mapper->members(cell)) {
      if (m != survivor) stack_.link->set_down(m, true);
    }
    return survivor;
  }

  bench::PhysicalStack stack_;
  std::unique_ptr<emulation::FailureDetector> detector_;
};

TEST_F(MembershipTest, ViewSeedsFromGeometryAndStaysConsistent) {
  detector_->start();
  const emulation::MembershipView* view = detector_->membership_view();
  ASSERT_NE(view, nullptr);
  for (net::NodeId i = 0; i < stack_.graph->node_count(); ++i) {
    EXPECT_EQ(view->cell_of(i), stack_.mapper->cell_of(i));
    EXPECT_TRUE(view->roster_contains(stack_.mapper->cell_of(i), i));
  }
  settle(120.0);
  // A quiet network stays violation-free and adopts nobody.
  EXPECT_TRUE(detector_->membership_violations().empty());
  EXPECT_TRUE(detector_->adoptions().empty());
  EXPECT_EQ(detector_->adopt_binds(), 0u);
}

TEST_F(MembershipTest, MembershipCorruptionHealsWithinBound) {
  detector_->start();
  settle(40.0);
  // Scramble both flavors: a leader victim gets its roster corrupted, a
  // follower victim gets its cell belief defected.
  const net::NodeId leader = stack_.overlay->bound_node({1, 2});
  ASSERT_NE(leader, net::kNoNode);
  ASSERT_TRUE(detector_->inject_corruption(
      leader, sim::CorruptionTarget::kMembership));
  net::NodeId follower = net::kNoNode;
  const net::NodeId l33 = stack_.overlay->bound_node({3, 3});
  for (const net::NodeId m : stack_.mapper->members({3, 3})) {
    if (m != l33) {
      follower = m;
      break;
    }
  }
  ASSERT_NE(follower, net::kNoNode);
  ASSERT_TRUE(detector_->inject_corruption(
      follower, sim::CorruptionTarget::kMembership));
  EXPECT_EQ(detector_->counters().get("fd.corrupt"), 2u);
  settle(detector_->stabilization_bound());
  // Reconciliation (belief self-heal + audit-digest roster repair) pulls
  // every belief and roster back to the geometric truth.
  EXPECT_TRUE(detector_->membership_violations().empty());
  EXPECT_TRUE(detector_->unconverged_cells().empty());
  EXPECT_GT(detector_->counters().get("fd.member_heal") +
                detector_->counters().get("fd.roster_heal"),
            0u);
  const emulation::MembershipView* view = detector_->membership_view();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->cell_of(follower), stack_.mapper->cell_of(follower));
}

TEST_F(MembershipTest, VacancyTriggersAdoptionAndProxyBind) {
  detector_->start();
  settle(40.0);
  const GridCoord cell{2, 1};
  const net::NodeId survivor = stage_vacancy(cell);
  ASSERT_NE(survivor, net::kNoNode)
      << "seeded deployment cannot stage a vacancy at (2,1)";
  settle(detector_->stabilization_bound());
  // The orphan defected to a neighboring cell...
  ASSERT_FALSE(detector_->adoptions().empty());
  bool survivor_adopted = false;
  for (const emulation::AdoptionRecord& a : detector_->adoptions()) {
    if (a.node == survivor) {
      survivor_adopted = true;
      EXPECT_EQ(a.from, cell);
      EXPECT_NE(a.to, cell);
    }
  }
  EXPECT_TRUE(survivor_adopted);
  const emulation::MembershipView* view = detector_->membership_view();
  ASSERT_NE(view, nullptr);
  EXPECT_NE(view->cell_of(survivor), cell);
  // ...and the vacated cell is served by a live out-of-cell proxy leader,
  // so the deployment has zero dark cells.
  EXPECT_GE(detector_->adopt_binds(), 1u);
  const net::NodeId proxy = stack_.overlay->bound_node(cell);
  ASSERT_NE(proxy, net::kNoNode);
  EXPECT_FALSE(stack_.link->is_down(proxy));
  EXPECT_TRUE(detector_->membership_violations().empty());
}

TEST_F(MembershipTest, VacantCellReportedMissingBeforeAdoption) {
  // Regression: a deadline reduce racing a fresh vacancy must close by
  // timeout with the dead cell in PartialResult::missing() — not hang and
  // not silently fold a value for a cell nobody serves. After the
  // stabilization bound the adoption + proxy re-bind restore coverage and
  // the same reduce completes.
  detector_->start();
  settle(40.0);
  const GridCoord cell{1, 3};
  ASSERT_NE(stage_vacancy(cell), net::kNoNode)
      << "seeded deployment cannot stage a vacancy at (1,3)";

  const std::vector<GridCoord> cells = stack_.overlay->grid().all_coords();
  const std::vector<double> values(cells.size(), 1.0);
  std::vector<core::PartialResult> results;
  const double t0 = stack_.sim.now();
  core::group_reduce_deadline(
      *stack_.overlay, cells, {0, 0}, values, core::ReduceOp::kSum, 1.0, 30.0,
      [&results](const core::PartialResult& p) { results.push_back(p); });
  settle(40.0);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results.front().deadline_hit);
  const std::vector<GridCoord> missing = results.front().missing();
  EXPECT_NE(std::find(missing.begin(), missing.end(), cell), missing.end())
      << "the vacated cell must be on the degraded round's suspect list";

  // Post-adoption the proxy answers for the vacated virtual node.
  settle(detector_->stabilization_bound());
  results.clear();
  core::group_reduce_deadline(
      *stack_.overlay, cells, {0, 0}, values, core::ReduceOp::kSum, 1.0,
      200.0,
      [&results](const core::PartialResult& p) { results.push_back(p); });
  settle(210.0);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results.front().complete())
      << "adoption + proxy re-bind must restore full coverage; missing "
      << results.front().missing().size() << " cells";
  (void)t0;
}

// ---- Epoch-stale contributions rejected by deadline collectives ---------

TEST(BindingEpochs, StaleContributionRejected) {
  bench::PhysicalStack stack(kSide, kNodes, kRange, kSeed);
  ASSERT_TRUE(stack.healthy());
  stack.enable_arq();

  const std::vector<GridCoord> cells = stack.overlay->grid().all_coords();
  const std::vector<double> values(cells.size(), 1.0);
  const GridCoord shifted{2, 2};

  std::vector<core::PartialResult> results;
  const double t0 = stack.sim.now();
  core::group_reduce_deadline(
      *stack.overlay, cells, {0, 0}, values, core::ReduceOp::kSum, 1.0, 80.0,
      [&results](const core::PartialResult& p) { results.push_back(p); });
  // Bump the member's binding epoch while its contribution is in flight:
  // the value was stamped with the old epoch, so the leader must reject it
  // (a deposed leader's value would double-count after a re-bind).
  stack.sim.schedule_in(0.5, [&stack, shifted] {
    stack.overlay->rebind(shifted, stack.overlay->bound_node(shifted),
                          stack.overlay->binding_epoch(shifted) + 1);
  });
  stack.sim.run_until(t0 + 90.0);
  stack.sim.run();

  ASSERT_EQ(results.size(), 1u);
  const core::PartialResult& r = results.front();
  EXPECT_GE(r.stale_rejected, 1u);
  EXPECT_TRUE(r.deadline_hit);
  bool shifted_contributed = false;
  for (const GridCoord& c : r.contributors) {
    if (c.row == shifted.row && c.col == shifted.col) {
      shifted_contributed = true;
    }
  }
  EXPECT_FALSE(shifted_contributed)
      << "the stale-epoch contribution must not be folded";
  EXPECT_DOUBLE_EQ(r.value, static_cast<double>(r.contributors.size()));
}

}  // namespace
}  // namespace wsn
