// BlockSummary construction, merging, and equivalence with the reference
// labeler - the correctness core of the in-network algorithm.
#include <gtest/gtest.h>

#include <algorithm>

#include "app/boundary.h"
#include "app/dnc.h"
#include "app/field.h"
#include "app/labeling.h"

namespace wsn::app {
namespace {

std::vector<std::uint64_t> sorted_areas(const std::vector<RegionInfo>& regions) {
  std::vector<std::uint64_t> areas;
  areas.reserve(regions.size());
  for (const RegionInfo& r : regions) areas.push_back(r.area);
  std::ranges::sort(areas);
  return areas;
}

std::vector<std::uint64_t> sorted_areas(const Labeling& labeling) {
  std::vector<std::uint64_t> areas;
  for (const Region& r : labeling.regions) areas.push_back(r.area);
  std::ranges::sort(areas);
  return areas;
}

void expect_matches_reference(const FeatureGrid& grid) {
  const Labeling reference = label_regions(grid);
  const auto regions = dnc_label(grid);
  ASSERT_EQ(regions.size(), reference.region_count())
      << "grid:\n"
      << grid.render();
  EXPECT_EQ(sorted_areas(regions), sorted_areas(reference));
}

TEST(BlockSummary, LeafFeature) {
  const BlockSummary s = BlockSummary::leaf({3, 5}, true);
  s.validate();
  EXPECT_EQ(s.open_count(), 1u);
  EXPECT_EQ(s.closed_count(), 0u);
  EXPECT_EQ(s.total_area(), 1u);
  EXPECT_EQ(s.boundary_feature_cells(), 1u);
  EXPECT_EQ(s.open.at(1).bounds.row_min, 3);
  EXPECT_EQ(s.open.at(1).bounds.col_min, 5);
}

TEST(BlockSummary, LeafBackground) {
  const BlockSummary s = BlockSummary::leaf({0, 0}, false);
  s.validate();
  EXPECT_EQ(s.open_count(), 0u);
  EXPECT_EQ(s.total_area(), 0u);
  EXPECT_EQ(s.boundary_feature_cells(), 0u);
}

TEST(BlockSummary, MergeTwoFeatureLeavesHorizontally) {
  const BlockSummary a = BlockSummary::leaf({0, 0}, true);
  const BlockSummary b = BlockSummary::leaf({0, 1}, true);
  const BlockSummary m = merge(a, b);
  m.validate();
  EXPECT_EQ(m.width, 2u);
  EXPECT_EQ(m.height, 1u);
  EXPECT_EQ(m.open_count(), 1u);  // joined across the seam
  EXPECT_EQ(m.open.at(1).area, 2u);
}

TEST(BlockSummary, MergeTwoFeatureLeavesVertically) {
  const BlockSummary a = BlockSummary::leaf({0, 0}, true);
  const BlockSummary b = BlockSummary::leaf({1, 0}, true);
  const BlockSummary m = merge(a, b);
  m.validate();
  EXPECT_EQ(m.width, 1u);
  EXPECT_EQ(m.height, 2u);
  EXPECT_EQ(m.open_count(), 1u);
  EXPECT_EQ(m.open.at(1).area, 2u);
}

TEST(BlockSummary, MergeArgumentOrderIrrelevant) {
  const BlockSummary a = BlockSummary::leaf({0, 0}, true);
  const BlockSummary b = BlockSummary::leaf({0, 1}, true);
  const BlockSummary m1 = merge(a, b);
  const BlockSummary m2 = merge(b, a);
  EXPECT_EQ(m1.open_count(), m2.open_count());
  EXPECT_EQ(m1.total_area(), m2.total_area());
  EXPECT_EQ(m1.north, m2.north);
}

TEST(BlockSummary, NonAdjacentMergeThrows) {
  const BlockSummary a = BlockSummary::leaf({0, 0}, true);
  const BlockSummary b = BlockSummary::leaf({1, 1}, true);  // diagonal
  EXPECT_THROW(merge(a, b), std::invalid_argument);
  EXPECT_FALSE(a.mergeable_with(b));
}

TEST(BlockSummary, SizeMismatchMergeThrows) {
  FeatureGrid g(4);
  const BlockSummary wide = BlockSummary::of_rect(g, 0, 0, 2, 1);
  const BlockSummary tall = BlockSummary::of_rect(g, 1, 0, 1, 2);
  EXPECT_THROW(merge(wide, tall), std::invalid_argument);
}

TEST(BlockSummary, RegionClosesWhenLeavingPerimeter) {
  // A single feature cell in the middle of a 4x4 block: open in the 2x2
  // quadrant summary, closed after the full merge.
  FeatureGrid g(4);
  g.set({1, 1}, true);
  const BlockSummary quadrant = BlockSummary::of_rect(g, 0, 0, 2, 2);
  EXPECT_EQ(quadrant.open_count(), 1u);  // touches the quadrant's perimeter
  const BlockSummary whole = BlockSummary::of_rect(g, 0, 0, 4, 4);
  EXPECT_EQ(whole.open_count(), 0u);
  EXPECT_EQ(whole.closed_count(), 1u);
  EXPECT_EQ(whole.closed[0].area, 1u);
}

TEST(BlockSummary, OfRectMatchesIncrementalMerge) {
  sim::Rng rng(11);
  const FeatureGrid g = random_grid(8, 0.5, rng);
  // Merge the four 4x4 quadrant references and compare with the 8x8
  // reference summary.
  const BlockSummary nw = BlockSummary::of_rect(g, 0, 0, 4, 4);
  const BlockSummary ne = BlockSummary::of_rect(g, 0, 4, 4, 4);
  const BlockSummary sw = BlockSummary::of_rect(g, 4, 0, 4, 4);
  const BlockSummary se = BlockSummary::of_rect(g, 4, 4, 4, 4);
  const BlockSummary merged = merge4(nw, ne, sw, se);
  merged.validate();
  const BlockSummary reference = BlockSummary::of_rect(g, 0, 0, 8, 8);
  EXPECT_EQ(merged.north, reference.north);
  EXPECT_EQ(merged.south, reference.south);
  EXPECT_EQ(merged.west, reference.west);
  EXPECT_EQ(merged.east, reference.east);
  EXPECT_EQ(merged.open_count(), reference.open_count());
  EXPECT_EQ(merged.total_area(), reference.total_area());
  EXPECT_EQ(sorted_areas(finalize(merged)), sorted_areas(finalize(reference)));
}

TEST(BlockSummary, SpiralRegionSurvivesManyMerges) {
  // A region that snakes across all four quadrants must stay one region.
  FeatureGrid g(8);
  for (std::int32_t c = 0; c < 8; ++c) g.set({0, c}, true);
  for (std::int32_t r = 0; r < 8; ++r) g.set({r, 7}, true);
  for (std::int32_t c = 2; c < 8; ++c) g.set({7, c}, true);
  for (std::int32_t r = 2; r < 8; ++r) g.set({r, 2}, true);
  expect_matches_reference(g);
}

TEST(Dnc, MatchesReferenceOnFixtures) {
  for (std::size_t side : {1u, 2u, 4u, 8u, 16u, 32u}) {
    expect_matches_reference(empty_grid(side));
    expect_matches_reference(full_grid(side));
    expect_matches_reference(checkerboard_grid(side));
    if (side >= 4) {
      expect_matches_reference(stripes_grid(side, 2));
      expect_matches_reference(ring_grid(side));
    }
  }
}

TEST(Dnc, StatsCountLevelsAndSteps) {
  DncStats stats;
  dnc_summary(full_grid(16), &stats);
  EXPECT_EQ(stats.levels, 4u);
  EXPECT_EQ(stats.merges, 3u * 85u);  // 85 interior nodes, 3 merges each
  // steps = sum over levels of 2^(l-1) + 1 = (16 - 1) + 4.
  EXPECT_EQ(stats.steps, 19u);
}

TEST(Dnc, NonPowerOfTwoThrows) {
  EXPECT_THROW(dnc_summary(FeatureGrid(6)), std::invalid_argument);
}

TEST(QuadAccumulator, MergesInAnyArrivalOrder) {
  sim::Rng rng(3);
  const FeatureGrid g = random_grid(4, 0.6, rng);
  const BlockSummary reference = BlockSummary::of_rect(g, 0, 0, 4, 4);
  std::vector<BlockSummary> quadrants = {
      BlockSummary::of_rect(g, 0, 0, 2, 2), BlockSummary::of_rect(g, 0, 2, 2, 2),
      BlockSummary::of_rect(g, 2, 0, 2, 2), BlockSummary::of_rect(g, 2, 2, 2, 2)};
  std::vector<std::size_t> order{0, 1, 2, 3};
  do {
    QuadAccumulator acc;
    std::uint32_t merges = 0;
    for (std::size_t i : order) merges += acc.add(quadrants[i]);
    ASSERT_TRUE(acc.complete());
    EXPECT_EQ(merges, 3u);
    const BlockSummary result = acc.take();
    EXPECT_EQ(result.open_count(), reference.open_count());
    EXPECT_EQ(result.total_area(), reference.total_area());
    EXPECT_EQ(sorted_areas(finalize(result)),
              sorted_areas(finalize(reference)));
    EXPECT_FALSE(acc.complete());  // take() resets
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(QuadAccumulator, TakeBeforeCompleteThrows) {
  QuadAccumulator acc;
  acc.add(BlockSummary::leaf({0, 0}, true));
  EXPECT_THROW(acc.take(), std::logic_error);
}

TEST(SummarySizeModel, CountsBoundaryAndRegions) {
  FeatureGrid g(4);
  g.set({0, 0}, true);
  g.set({0, 1}, true);
  g.set({3, 3}, true);
  const BlockSummary s = BlockSummary::of_rect(g, 0, 0, 4, 4);
  const SummarySizeModel model{1.0, 0.1, 0.5};
  // 3 boundary feature cells, 2 open regions.
  EXPECT_DOUBLE_EQ(model.units(s), 1.0 + 0.3 + 1.0);
  const SummarySizeModel fixed{};
  EXPECT_DOUBLE_EQ(fixed.units(s), 1.0);
}

TEST(BlockSummary, ValidateCatchesCorruption) {
  BlockSummary s = BlockSummary::leaf({0, 0}, true);
  s.north[0] = 2;  // label not in open map, corner inconsistent
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(BlockSummary, BoundsTrackRegionsAcrossMerges) {
  FeatureGrid g(8);
  // L-shaped region spanning quadrants.
  for (std::int32_t r = 2; r <= 5; ++r) g.set({r, 3}, true);
  for (std::int32_t c = 3; c <= 6; ++c) g.set({5, c}, true);
  const auto regions = dnc_label(g);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].area, 7u);
  EXPECT_EQ(regions[0].bounds.row_min, 2);
  EXPECT_EQ(regions[0].bounds.row_max, 5);
  EXPECT_EQ(regions[0].bounds.col_min, 3);
  EXPECT_EQ(regions[0].bounds.col_max, 6);
}

}  // namespace
}  // namespace wsn::app
