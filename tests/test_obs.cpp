// Observability layer: trace events, sinks, exporters, provenance
// reconstruction, and the unified metrics registry.
//
// The provenance tests are the heart: they prove a message's full path and
// queueing delay can be reconstructed from a captured trace alone — on the
// virtual layer under contention, and across the Section-5 emulation
// boundary where one overlay send fans into many physical link hops.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "analysis/metrics.h"
#include "bench/bench_common.h"
#include "core/virtual_network.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/scoped_timer.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace {

using namespace wsn;

const obs::AttrValue* find_attr(const obs::TraceEvent& ev,
                                const std::string& key) {
  for (const auto& a : ev.attrs) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

double attr_num(const obs::TraceEvent& ev, const std::string& key) {
  const obs::AttrValue* v = find_attr(ev, key);
  if (v == nullptr) ADD_FAILURE() << "missing attr " << key;
  if (v == nullptr) return 0.0;
  if (const auto* d = std::get_if<double>(v)) return *d;
  if (const auto* u = std::get_if<std::uint64_t>(v)) {
    return static_cast<double>(*u);
  }
  if (const auto* i = std::get_if<std::int64_t>(v)) {
    return static_cast<double>(*i);
  }
  ADD_FAILURE() << "attr " << key << " is not numeric";
  return 0.0;
}

TEST(RingBufferSink, KeepsMostRecentAcrossWraparound) {
  obs::RingBufferSink sink(4);
  for (int i = 0; i < 10; ++i) {
    sink.accept({static_cast<double>(i), i, obs::Category::kApp, 'i', "e",
                 static_cast<std::uint64_t>(i),
                 {}});
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest surviving first: 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].node, static_cast<std::int64_t>(6 + i));
  }
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(RingBufferSink, ZeroCapacityDropsEverything) {
  obs::RingBufferSink sink(0);
  sink.accept({0.0, 0, obs::Category::kApp, 'i', "e", 0, {}});
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 1u);
}

TEST(Tracer, DisabledCategoriesEmitNothing) {
  obs::RingBufferSink sink(16);
  obs::ScopedTrace guard(sink, 1u << static_cast<unsigned>(
                                   obs::Category::kLink));
  EXPECT_TRUE(obs::tracer().enabled(obs::Category::kLink));
  EXPECT_FALSE(obs::tracer().enabled(obs::Category::kVirtual));

  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(4),
                            core::uniform_cost_model());
  vnet.send({0, 0}, {3, 3}, 0.0);
  sim.run();
  EXPECT_EQ(sink.size(), 0u) << "kVirtual events leaked past the mask";
}

TEST(Tracer, ScopedTraceRestoresPreviousState) {
  obs::RingBufferSink outer(4);
  {
    obs::ScopedTrace a(outer, obs::kAllCategories);
    {
      obs::NullSink inner;
      obs::ScopedTrace b(inner, 0);
      EXPECT_FALSE(obs::tracer().enabled(obs::Category::kApp));
    }
    EXPECT_TRUE(obs::tracer().enabled(obs::Category::kApp));
    obs::tracer().emit({1.0, 2, obs::Category::kApp, 'i', "after", 0, {}});
  }
  EXPECT_FALSE(obs::tracer().enabled(obs::Category::kApp));
  EXPECT_EQ(outer.size(), 1u);
}

TEST(JsonlExport, RoundTripsLosslessly) {
  // Typing convention: doubles always carry '.'/exponent; negative integers
  // are int64; non-negative integers are uint64. Events that follow it
  // (as every emitter in the tree does) survive the round trip bit-exact.
  std::vector<obs::TraceEvent> events;
  events.push_back({0.5, -1, obs::Category::kProtocol, 'B', "span", 7,
                    {{"neg", static_cast<std::int64_t>(-42)},
                     {"big", std::uint64_t{1} << 63},
                     {"frac", 0.1},
                     {"whole", 3.0},
                     {"tiny", -2.5e-7},
                     {"text", std::string("q\"uo\\te\n\x01end")}}});
  events.push_back({12.25, 9, obs::Category::kCollective, 'E', "span", 7, {}});

  std::ostringstream out;
  obs::write_jsonl(events, out);
  std::istringstream in(out.str());
  const auto parsed = obs::parse_jsonl(in);
  ASSERT_EQ(parsed.size(), events.size());
  EXPECT_EQ(parsed[0], events[0]);
  EXPECT_EQ(parsed[1], events[1]);
}

TEST(JsonlExport, ParseRejectsGarbage) {
  std::istringstream in("{\"t\":1.0,\"node\":0,");
  EXPECT_THROW(obs::parse_jsonl(in), std::runtime_error);
}

TEST(JsonlExport, ParseAcceptsIntegerTypedTime) {
  // Foreign producers often emit whole-number times without a decimal
  // point; the reader must coerce instead of dying on the variant type.
  std::istringstream in(
      "{\"t\":5,\"node\":2,\"cat\":\"vnet\",\"ph\":\"i\",\"name\":\"send\","
      "\"flow\":1,\"args\":{}}\n");
  const auto events = obs::parse_jsonl(in);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].time, 5.0);
  EXPECT_EQ(events[0].node, 2);
}

TEST(JsonlExport, ParseFailuresAreCleanRuntimeErrors) {
  // Every malformed shape must surface as std::runtime_error with a line
  // number — never std::bad_variant_access or a silent skip.
  const char* bad_lines[] = {
      // string where a number is required
      "{\"t\":\"x\",\"node\":0,\"cat\":\"vnet\",\"ph\":\"i\",\"name\":\"a\","
      "\"flow\":0,\"args\":{}}",
      // truncated mid-object
      "{\"t\":1.0,\"node\":0,\"cat\":\"vnet\",\"ph\":\"i\",\"na",
      // not an object at all
      "[1,2,3]",
      // unknown category
      "{\"t\":1.0,\"node\":0,\"cat\":\"warp\",\"ph\":\"i\",\"name\":\"a\","
      "\"flow\":0,\"args\":{}}",
      // unknown top-level key
      "{\"t\":1.0,\"node\":0,\"cat\":\"vnet\",\"ph\":\"i\",\"name\":\"a\","
      "\"flow\":0,\"extra\":1,\"args\":{}}",
      // multi-char phase
      "{\"t\":1.0,\"node\":0,\"cat\":\"vnet\",\"ph\":\"BE\",\"name\":\"a\","
      "\"flow\":0,\"args\":{}}",
      // trailing garbage after a complete object
      "{\"t\":1.0,\"node\":0,\"cat\":\"vnet\",\"ph\":\"i\",\"name\":\"a\","
      "\"flow\":0,\"args\":{}} trailing",
  };
  for (const char* line : bad_lines) {
    std::istringstream in(std::string(line) + "\n");
    EXPECT_THROW(obs::parse_jsonl(in), std::runtime_error) << line;
  }
}

TEST(JsonlExport, ParseErrorsCarryLineNumbers) {
  std::istringstream in(
      "{\"t\":1.0,\"node\":0,\"cat\":\"vnet\",\"ph\":\"i\",\"name\":\"a\","
      "\"flow\":0,\"args\":{}}\n"
      "{broken\n");
  try {
    obs::parse_jsonl(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(ChromeExport, ProducesLoadableSkeleton) {
  std::vector<obs::TraceEvent> events;
  events.push_back({2.0, 5, obs::Category::kVirtual, 'i', "send", 1,
                    {{"hops", std::uint64_t{3}}}});
  std::ostringstream out;
  obs::write_chrome_trace(events, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // 1 cost-model unit = 1 ms = 1000 us.
  EXPECT_NE(json.find("\"ts\":2000"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":5"), std::string::npos);
}

// -- Provenance: virtual layer under per-node transmitter serialization --

TEST(Provenance, ReconstructsQueuedMultiHopSend) {
  obs::RingBufferSink sink(1 << 12);
  obs::ScopedTrace guard(sink, obs::kAllCategories);

  const std::size_t side = 4;
  sim::Simulator sim(1);
  core::GridTopology grid(side);
  core::VirtualNetwork vnet(sim, grid, core::uniform_cost_model(),
                            core::LeaderPlacement::kNorthWest,
                            core::Congestion::kNodeSerialized);
  // Two messages leave the same transmitter at t=0: the second must queue
  // behind the first at every shared relay.
  vnet.send({0, 0}, {0, 3}, 0.0);
  vnet.send({0, 0}, {0, 3}, 0.0);
  sim.run();

  // Group the trace by flow id.
  std::map<std::uint64_t, std::vector<obs::TraceEvent>> flows;
  for (const auto& ev : sink.events()) {
    ASSERT_NE(ev.flow, 0u);
    flows[ev.flow].push_back(ev);
  }
  ASSERT_EQ(flows.size(), 2u);

  const double hop_latency = core::uniform_cost_model().hop_latency(1.0);
  bool saw_queueing = false;
  for (const auto& [flow, events] : flows) {
    const obs::TraceEvent* send = nullptr;
    const obs::TraceEvent* deliver = nullptr;
    std::vector<const obs::TraceEvent*> hops;
    for (const auto& ev : events) {
      if (ev.name == "send") send = &ev;
      if (ev.name == "deliver") deliver = &ev;
      if (ev.name == "hop") hops.push_back(&ev);
    }
    ASSERT_NE(send, nullptr);
    ASSERT_NE(deliver, nullptr);
    const auto expected_hops = static_cast<std::size_t>(attr_num(*send, "hops"));
    ASSERT_EQ(hops.size(), expected_hops);

    // The hop chain is a connected path: send node -> ... -> deliver node.
    EXPECT_EQ(hops.front()->node, send->node);
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      EXPECT_EQ(static_cast<std::int64_t>(attr_num(*hops[i], "next")),
                hops[i + 1]->node);
    }
    EXPECT_EQ(static_cast<std::int64_t>(attr_num(*hops.back(), "next")),
              deliver->node);
    EXPECT_EQ(static_cast<std::int64_t>(attr_num(*send, "dst")),
              deliver->node);

    // The latency decomposes exactly: transit + recorded queueing waits.
    double waits = 0.0;
    for (const auto* h : hops) waits += attr_num(*h, "wait");
    EXPECT_DOUBLE_EQ(deliver->time - send->time,
                     static_cast<double>(expected_hops) * hop_latency + waits);
    if (waits > 0.0) saw_queueing = true;
  }
  EXPECT_TRUE(saw_queueing) << "test failed to provoke contention";
}

// -- Provenance: across the Section-5 emulation boundary --

TEST(Provenance, OverlaySendTracksPhysicalHops) {
  const std::size_t grid_side = 4;
  bench::PhysicalStack stack(grid_side, grid_side * grid_side * 8, 1.4, 11);
  ASSERT_TRUE(stack.healthy());

  // Arm tracing only after setup so the capture holds exactly one send.
  obs::RingBufferSink sink(1 << 12);
  obs::ScopedTrace guard(sink, obs::kAllCategories);

  const core::GridCoord src{0, 0};
  const core::GridCoord dst{3, 3};
  bool received = false;
  stack.overlay->set_receiver(dst, [&](const core::VirtualMessage&) {
    received = true;
  });
  stack.overlay->send(src, dst, std::any{1.0}, 1.0);
  stack.sim.run();
  ASSERT_TRUE(received);

  const obs::TraceEvent* overlay_send = nullptr;
  const obs::TraceEvent* overlay_deliver = nullptr;
  std::vector<const obs::TraceEvent*> unicasts;
  std::vector<const obs::TraceEvent*> link_delivers;
  const std::vector<obs::TraceEvent> captured = sink.events();
  for (const auto& ev : captured) {
    if (ev.category == obs::Category::kOverlay && ev.name == "send") {
      overlay_send = &ev;
    }
    if (ev.category == obs::Category::kOverlay && ev.name == "deliver") {
      overlay_deliver = &ev;
    }
    if (ev.category == obs::Category::kLink && ev.name == "unicast") {
      unicasts.push_back(&ev);
    }
    if (ev.category == obs::Category::kLink && ev.name == "deliver") {
      link_delivers.push_back(&ev);
    }
  }
  ASSERT_NE(overlay_send, nullptr);
  ASSERT_NE(overlay_deliver, nullptr);
  ASSERT_FALSE(unicasts.empty());

  // One flow id spans both layers: the physical hops beneath the overlay
  // send all carry the id the overlay allocated.
  const std::uint64_t flow = overlay_send->flow;
  ASSERT_NE(flow, 0u);
  EXPECT_EQ(overlay_deliver->flow, flow);
  for (const auto* u : unicasts) EXPECT_EQ(u->flow, flow);
  for (const auto* d : link_delivers) EXPECT_EQ(d->flow, flow);

  // The physical hop chain is connected end to end: it starts at the node
  // bound to the source cell, each transmission is received by its
  // addressee, and the final receiver is where the overlay delivers.
  ASSERT_EQ(link_delivers.size(), unicasts.size());
  EXPECT_EQ(unicasts.front()->node, overlay_send->node);
  for (std::size_t i = 0; i < unicasts.size(); ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(attr_num(*unicasts[i], "to")),
              link_delivers[i]->node);
    EXPECT_EQ(static_cast<std::int64_t>(attr_num(*link_delivers[i], "from")),
              unicasts[i]->node);
    if (i + 1 < unicasts.size()) {
      EXPECT_EQ(link_delivers[i]->node, unicasts[i + 1]->node);
    }
  }
  EXPECT_EQ(link_delivers.back()->node, overlay_deliver->node);
  EXPECT_EQ(overlay_deliver->node,
            static_cast<std::int64_t>(
                stack.binding_result.leader_of(dst, grid_side)));
  // Physical routing can never beat the virtual hop count.
  EXPECT_GE(unicasts.size(),
            static_cast<std::size_t>(manhattan(src, dst)));
}

// -- Unified metrics registry --

TEST(MetricsRegistry, SnapshotMatchesEnergyReportExactly) {
  sim::Simulator sim(3);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  for (std::int32_t i = 0; i < 8; ++i) {
    vnet.send({0, i}, {7, 7 - i}, 0.0, 1.0 + 0.25 * i);
    vnet.compute({static_cast<std::int32_t>(i % 8), 0}, 3.0);
  }
  sim.run();

  obs::MetricsRegistry registry;
  vnet.register_metrics(registry);

  const analysis::EnergyReport report = analysis::energy_report(vnet.ledger());
  const obs::LedgerSnapshot snap = registry.ledger_snapshot("vnet.energy");
  EXPECT_EQ(snap.total, report.total);
  EXPECT_EQ(snap.mean, report.mean);
  EXPECT_EQ(snap.stddev, report.stddev);
  EXPECT_EQ(snap.cv, report.cv);
  EXPECT_EQ(snap.max, report.max);
  EXPECT_EQ(snap.min, report.min);
  EXPECT_EQ(snap.tx, report.tx);
  EXPECT_EQ(snap.rx, report.rx);
  EXPECT_EQ(snap.compute, report.compute);

  EXPECT_EQ(registry.counter("vnet.counters", "vnet.send"), 8u);
  EXPECT_EQ(registry.gauge("vnet.total_hops"),
            static_cast<double>(vnet.total_hops()));
}

TEST(MetricsRegistry, JsonSnapshotIsCompleteAndStable) {
  sim::Simulator sim(3);
  core::VirtualNetwork vnet(sim, core::GridTopology(4),
                            core::uniform_cost_model());
  vnet.send({0, 0}, {3, 3}, 0.0);
  sim.run();

  obs::MetricsRegistry registry;
  vnet.register_metrics(registry);
  registry.add_gauge("custom.answer", [] { return 42.0; });
  registry.add_summary("custom.dist", [&vnet] {
    return vnet.ledger().distribution();
  });

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"vnet.counters\""), std::string::npos);
  EXPECT_NE(json.find("\"vnet.send\":1"), std::string::npos);
  EXPECT_NE(json.find("\"vnet.energy\""), std::string::npos);
  EXPECT_NE(json.find("\"custom.answer\":42.0"), std::string::npos);
  EXPECT_NE(json.find("\"custom.dist\""), std::string::npos);
  // Polling twice with unchanged state is byte-identical.
  EXPECT_EQ(registry.to_json(), json);
  std::ostringstream out;
  registry.write_json(out);
  EXPECT_EQ(out.str(), json + "\n");
}

TEST(MetricsRegistry, PhysicalStackRegistersWholeStack) {
  bench::PhysicalStack stack(2, 24, 1.4, 5);
  ASSERT_TRUE(stack.healthy());
  obs::MetricsRegistry registry;
  stack.register_metrics(registry);

  const obs::LedgerSnapshot link_energy =
      registry.ledger_snapshot("overlay.link.energy");
  EXPECT_EQ(link_energy.total, stack.ledger->total());
  EXPECT_EQ(registry.gauge("emulation.broadcasts"),
            static_cast<double>(stack.emulation_result.broadcasts));
  EXPECT_EQ(registry.gauge("binding.converged_at"),
            stack.binding_result.converged_at);
}

// -- Satellites: CounterSet growth, wall-clock timer --

TEST(CounterSet, MergeAccumulatesAndSortedIsOrdered) {
  sim::CounterSet a;
  a.add("x", 2);
  a.add("y");
  sim::CounterSet b;
  b.add("y", 4);
  b.add("z");
  a += b;
  EXPECT_EQ(a.get("x"), 2u);
  EXPECT_EQ(a.get("y"), 5u);
  EXPECT_EQ(a.get("z"), 1u);
  const auto sorted = a.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, "x");
  EXPECT_EQ(sorted[1].first, "y");
  EXPECT_EQ(sorted[2].first, "z");
}

TEST(ScopedTimer, MeasuresNonNegativeWallClock) {
  double ms = -1.0;
  {
    obs::ScopedTimer timer(&ms);
    volatile double sink_v = 0.0;
    for (int i = 0; i < 1000; ++i) sink_v = sink_v + static_cast<double>(i);
  }
  EXPECT_GE(ms, 0.0);

  double via_callback = -1.0;
  {
    obs::ScopedTimer timer([&](double v) { via_callback = v; });
  }
  EXPECT_GE(via_callback, 0.0);
}

}  // namespace
