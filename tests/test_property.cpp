// Parameterized property sweeps: the library's key invariants checked over
// randomized inputs and parameter grids (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "analysis/analytical.h"
#include "app/boundary.h"
#include "app/dnc.h"
#include "app/field.h"
#include "app/labeling.h"
#include "app/queries.h"
#include "app/topographic.h"
#include "core/virtual_network.h"
#include "taskgraph/mapping.h"

namespace wsn {
namespace {

std::vector<std::uint64_t> sorted_areas(
    const std::vector<app::RegionInfo>& regions) {
  std::vector<std::uint64_t> areas;
  for (const app::RegionInfo& r : regions) areas.push_back(r.area);
  std::ranges::sort(areas);
  return areas;
}

std::vector<std::uint64_t> sorted_areas(const app::Labeling& labeling) {
  std::vector<std::uint64_t> areas;
  for (const app::Region& r : labeling.regions) areas.push_back(r.area);
  std::ranges::sort(areas);
  return areas;
}

// ---------------------------------------------------------------------------
// Property: divide-and-conquer labeling == reference labeling, over a sweep
// of (grid side, feature density, seed).
// ---------------------------------------------------------------------------
class DncEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, int>> {};

TEST_P(DncEquivalence, RegionsMatchReference) {
  const auto [side, density, seed] = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + side);
  const app::FeatureGrid grid = app::random_grid(side, density, rng);
  const app::Labeling reference = app::label_regions(grid);
  const auto regions = app::dnc_label(grid);
  ASSERT_EQ(regions.size(), reference.region_count());
  EXPECT_EQ(sorted_areas(regions), sorted_areas(reference));
  // Bounding boxes must match as multisets too.
  auto key = [](const app::GridBounds& b) {
    return std::tuple{b.row_min, b.col_min, b.row_max, b.col_max};
  };
  std::vector<std::tuple<int, int, int, int>> got;
  std::vector<std::tuple<int, int, int, int>> want;
  for (const auto& r : regions) got.push_back(key(r.bounds));
  for (const auto& r : reference.regions) want.push_back(key(r.bounds));
  std::ranges::sort(got);
  std::ranges::sort(want);
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DncEquivalence,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 8, 16, 32),
                       ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Property: every pairwise summary merge equals the reference summary of the
// union rectangle (checked at random split positions).
// ---------------------------------------------------------------------------
class MergeCorrectness
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MergeCorrectness, PairwiseMergeMatchesOfRect) {
  const auto [seed, density] = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t side = 12;
  const app::FeatureGrid grid = app::random_grid(side, density, rng);
  for (int trial = 0; trial < 20; ++trial) {
    // Random rectangle split either vertically or horizontally.
    const auto w =
        static_cast<std::uint32_t>(rng.between(2, static_cast<int>(side)));
    const auto h =
        static_cast<std::uint32_t>(rng.between(2, static_cast<int>(side)));
    const auto row0 = static_cast<std::int32_t>(
        rng.below(side - h + 1));
    const auto col0 = static_cast<std::int32_t>(
        rng.below(side - w + 1));
    const bool vertical = rng.chance(0.5);
    app::BlockSummary a;
    app::BlockSummary b;
    if (vertical && h >= 2) {
      const auto cut = static_cast<std::uint32_t>(rng.between(1, h - 1));
      a = app::BlockSummary::of_rect(grid, row0, col0, w, cut);
      b = app::BlockSummary::of_rect(grid, row0 + static_cast<std::int32_t>(cut),
                                     col0, w, h - cut);
    } else {
      const auto cut = static_cast<std::uint32_t>(rng.between(1, w - 1));
      a = app::BlockSummary::of_rect(grid, row0, col0, cut, h);
      b = app::BlockSummary::of_rect(grid, row0,
                                     col0 + static_cast<std::int32_t>(cut),
                                     w - cut, h);
    }
    const app::BlockSummary merged = app::merge(a, b);
    merged.validate();
    const app::BlockSummary reference =
        app::BlockSummary::of_rect(grid, row0, col0, w, h);
    EXPECT_EQ(merged.north, reference.north);
    EXPECT_EQ(merged.south, reference.south);
    EXPECT_EQ(merged.west, reference.west);
    EXPECT_EQ(merged.east, reference.east);
    EXPECT_EQ(merged.total_area(), reference.total_area());
    EXPECT_EQ(sorted_areas(app::finalize(merged)),
              sorted_areas(app::finalize(reference)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MergeCorrectness,
                         ::testing::Combine(::testing::Range(1, 9),
                                            ::testing::Values(0.3, 0.5, 0.7)));

// ---------------------------------------------------------------------------
// Property: the full virtual-layer topographic run agrees with the reference
// labeler for every field family.
// ---------------------------------------------------------------------------
enum class FieldKind { kRandom, kHotspots, kPlume, kNoise, kRing, kStripes };

class VirtualRunEquivalence
    : public ::testing::TestWithParam<std::tuple<FieldKind, int>> {};

app::FeatureGrid make_field(FieldKind kind, std::size_t side, int seed) {
  sim::Rng rng(static_cast<std::uint64_t>(seed) + 101);
  switch (kind) {
    case FieldKind::kRandom:
      return app::random_grid(side, 0.45, rng);
    case FieldKind::kHotspots:
      return app::threshold_sample(app::hotspot_field(4, rng), side, 0.5);
    case FieldKind::kPlume:
      return app::threshold_sample(
          app::plume_field(0.2, 0.5, rng.uniform(0.0, 1.5)), side, 0.3);
    case FieldKind::kNoise:
      return app::threshold_sample(
          app::value_noise_field(static_cast<std::uint64_t>(seed)), side, 0.55);
    case FieldKind::kRing:
      return app::ring_grid(side);
    case FieldKind::kStripes:
      return app::stripes_grid(side, 1 + static_cast<std::size_t>(seed) % 3);
  }
  return app::empty_grid(side);
}

TEST_P(VirtualRunEquivalence, DistributedLabelsMatchReference) {
  const auto [kind, seed] = GetParam();
  const std::size_t side = 16;
  const app::FeatureGrid grid = make_field(kind, side, seed);
  sim::Simulator sim(static_cast<std::uint64_t>(seed) + 1);
  core::VirtualNetwork vnet(sim, core::GridTopology(side),
                            core::uniform_cost_model());
  const auto outcome = app::run_topographic_query(vnet, grid);
  const app::Labeling reference = app::label_regions(grid);
  EXPECT_EQ(outcome.regions.size(), reference.region_count());
  EXPECT_EQ(sorted_areas(outcome.regions), sorted_areas(reference));
  // Query layer consistency.
  EXPECT_EQ(app::total_feature_area(outcome.regions), grid.feature_count());
  EXPECT_EQ(app::count_regions(outcome.regions), reference.region_count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VirtualRunEquivalence,
    ::testing::Combine(::testing::Values(FieldKind::kRandom, FieldKind::kHotspots,
                                         FieldKind::kPlume, FieldKind::kNoise,
                                         FieldKind::kRing, FieldKind::kStripes),
                       ::testing::Values(1, 2, 3, 4)));

// ---------------------------------------------------------------------------
// Property: analytical quad-tree predictions match virtual measurements for
// every (grid side, cost model) combination.
// ---------------------------------------------------------------------------
class PredictionAccuracy
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, double>> {
};

TEST_P(PredictionAccuracy, VirtualMeasurementEqualsPrediction) {
  const auto [side, bandwidth, speed] = GetParam();
  core::CostModel cost;
  cost.bandwidth = bandwidth;
  cost.processing_speed = speed;
  const app::FeatureGrid grid = app::full_grid(side);
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(side), cost);
  const auto outcome = app::run_topographic_query(vnet, grid);
  const auto predicted = analysis::predict_quadtree(side, cost);
  EXPECT_EQ(outcome.round.messages_sent, predicted.messages);
  EXPECT_DOUBLE_EQ(outcome.round.finished_at, predicted.latency);
  EXPECT_DOUBLE_EQ(vnet.ledger().total(), predicted.total_energy);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PredictionAccuracy,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 8, 16),
                       ::testing::Values(0.5, 1.0, 4.0),
                       ::testing::Values(0.5, 1.0, 2.0)));

// ---------------------------------------------------------------------------
// Property: paper mapping satisfies both constraints at every size; the
// evaluator's hop count matches the closed form 2m^2 - 2m.
// ---------------------------------------------------------------------------
class MappingInvariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MappingInvariants, ConstraintsAndClosedFormHops) {
  const std::size_t side = GetParam();
  const taskgraph::QuadTree tree = taskgraph::build_quad_tree(side);
  core::GridTopology grid(side);
  core::GroupHierarchy groups(grid);
  const auto mapping = taskgraph::paper_mapping(tree, groups);
  EXPECT_TRUE(taskgraph::satisfies_constraints(tree.graph, mapping, grid));
  const auto cost = taskgraph::evaluate_mapping(tree.graph, mapping, grid,
                                                core::uniform_cost_model());
  EXPECT_EQ(cost.total_hops, 2 * side * side - 2 * side);
  const auto predicted =
      analysis::predict_quadtree(side, core::uniform_cost_model());
  EXPECT_EQ(cost.total_hops, predicted.total_hops);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MappingInvariants,
                         ::testing::Values<std::size_t>(2, 4, 8, 16, 32, 64));

// ---------------------------------------------------------------------------
// Property: query layer consistency over random fields.
// ---------------------------------------------------------------------------
class QueryConsistency : public ::testing::TestWithParam<int> {};

TEST_P(QueryConsistency, QueriesAgreeWithRegionList) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const app::FeatureGrid grid = app::random_grid(16, 0.4, rng);
  const auto regions = app::dnc_label(grid);
  EXPECT_EQ(app::total_feature_area(regions), grid.feature_count());
  const auto largest = app::largest_region(regions);
  if (!regions.empty()) {
    ASSERT_TRUE(largest.has_value());
    for (const auto& r : regions) EXPECT_LE(r.area, largest->area);
    // Area filters partition the set.
    const auto small = app::regions_with_area(regions, 0, 2);
    const auto large = app::regions_with_area(
        regions, 3, std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(small.size() + large.size(), regions.size());
    // Histogram covers every region exactly once.
    const auto hist = app::area_histogram(regions, 8);
    std::size_t total = 0;
    for (std::size_t b : hist) total += b;
    EXPECT_EQ(total, regions.size());
  } else {
    EXPECT_FALSE(largest.has_value());
  }
  // Point cover: every region's bbox corner is covered by that region.
  for (const auto& r : regions) {
    const auto covering = app::regions_covering(
        regions, {r.bounds.row_min, r.bounds.col_min});
    EXPECT_FALSE(covering.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QueryConsistency, ::testing::Range(1, 13));

}  // namespace
}  // namespace wsn
