// Application model: task graphs, the Figure 2 quad-tree, the Figure 3
// mapping, constraints, and mapping cost evaluation.
#include <gtest/gtest.h>

#include "taskgraph/mapping.h"
#include "taskgraph/quadtree.h"
#include "taskgraph/task_graph.h"

namespace wsn::taskgraph {
namespace {

TEST(TaskGraph, BuildAndValidateSmallTree) {
  TaskGraph g;
  const TaskId root = g.add_task(TaskKind::kMerge, kNoTask);
  const TaskId a = g.add_task(TaskKind::kSense, root);
  const TaskId b = g.add_task(TaskKind::kSense, root);
  g.validate();
  EXPECT_EQ(g.root(), root);
  EXPECT_EQ(g.leaves(), (std::vector<TaskId>{a, b}));
  EXPECT_EQ(g.task(root).level, 1u);
  EXPECT_EQ(g.height(), 1u);
}

TEST(TaskGraph, SecondRootRejected) {
  TaskGraph g;
  g.add_task(TaskKind::kMerge, kNoTask);
  EXPECT_THROW(g.add_task(TaskKind::kMerge, kNoTask), std::logic_error);
}

TEST(TaskGraph, MissingParentRejected) {
  TaskGraph g;
  EXPECT_THROW(g.add_task(TaskKind::kSense, 5), std::out_of_range);
}

TEST(TaskGraph, LevelsPropagateUpward) {
  TaskGraph g;
  const TaskId root = g.add_task(TaskKind::kMerge, kNoTask);
  const TaskId mid = g.add_task(TaskKind::kMerge, root);
  g.add_task(TaskKind::kSense, mid);
  g.add_task(TaskKind::kSense, root);
  g.validate();
  EXPECT_EQ(g.task(mid).level, 1u);
  EXPECT_EQ(g.task(root).level, 2u);
}

TEST(TaskGraph, BottomUpOrderChildrenFirst) {
  const QuadTree tree = build_quad_tree(4);
  const auto order = tree.graph.bottom_up_order();
  std::vector<bool> seen(tree.graph.size(), false);
  for (TaskId id : order) {
    for (TaskId c : tree.graph.task(id).children) {
      EXPECT_TRUE(seen[c]) << "child " << c << " after parent " << id;
    }
    seen[id] = true;
  }
}

TEST(TaskGraph, LeafDescendants) {
  const QuadTree tree = build_quad_tree(4);
  const auto all = tree.graph.leaf_descendants(tree.graph.root());
  EXPECT_EQ(all.size(), 16u);
  const TaskId level1 = tree.graph.task(tree.graph.root()).children[0];
  EXPECT_EQ(tree.graph.leaf_descendants(level1).size(), 4u);
}

TEST(QuadTree, StructureMatchesFigure2) {
  const QuadTree tree = build_quad_tree(4);
  tree.graph.validate();
  EXPECT_EQ(tree.graph.size(), 21u);  // 16 + 4 + 1
  EXPECT_EQ(tree.graph.height(), 2u);
  EXPECT_EQ(tree.graph.leaves().size(), 16u);
  // Figure labels: root 0; level 1 = 0,4,8,12; level 0 = 0..15.
  EXPECT_EQ(tree.figure_label(tree.graph.root()), 0u);
  std::vector<std::uint64_t> level1_labels;
  for (TaskId id : tree.graph.at_level(1)) {
    level1_labels.push_back(tree.figure_label(id));
  }
  EXPECT_EQ(level1_labels, (std::vector<std::uint64_t>{0, 4, 8, 12}));
  std::vector<std::uint64_t> leaf_labels;
  for (TaskId id : tree.graph.at_level(0)) {
    leaf_labels.push_back(tree.figure_label(id));
  }
  // DFS construction order visits quadrants NW, NE, SW, SE - i.e. Morton
  // order - so labels ascend 0..15.
  std::vector<std::uint64_t> expected(16);
  for (std::size_t i = 0; i < 16; ++i) expected[i] = i;
  EXPECT_EQ(leaf_labels, expected);
}

TEST(QuadTree, RenderFigure2) {
  const QuadTree tree = build_quad_tree(4);
  const std::string text = render_figure2(tree);
  EXPECT_NE(text.find("Level 2: 0\n"), std::string::npos);
  EXPECT_NE(text.find("Level 1: 0 4 8 12\n"), std::string::npos);
  EXPECT_NE(text.find("Level 0: 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15\n"),
            std::string::npos);
}

TEST(QuadTree, NonPowerOfTwoRejected) {
  EXPECT_THROW(build_quad_tree(3), std::invalid_argument);
  EXPECT_THROW(build_quad_tree(0), std::invalid_argument);
}

TEST(QuadTree, SingleCellDegenerates) {
  const QuadTree tree = build_quad_tree(1);
  EXPECT_EQ(tree.graph.size(), 1u);
  EXPECT_EQ(tree.graph.height(), 0u);
}

TEST(Mapping, PaperMappingMatchesFigure3) {
  const QuadTree tree = build_quad_tree(4);
  core::GridTopology grid(4);
  core::GroupHierarchy groups(grid);
  const RoleAssignment mapping = paper_mapping(tree, groups);
  // Root at location 0 = (0,0).
  EXPECT_EQ(mapping[tree.graph.root()], (core::GridCoord{0, 0}));
  // Level-1 tasks at Morton locations 0, 4, 8, 12 = the 2x2 block corners.
  const auto level1 = tree.graph.at_level(1);
  EXPECT_EQ(mapping[level1[0]], (core::GridCoord{0, 0}));
  EXPECT_EQ(mapping[level1[1]], (core::GridCoord{0, 2}));
  EXPECT_EQ(mapping[level1[2]], (core::GridCoord{2, 0}));
  EXPECT_EQ(mapping[level1[3]], (core::GridCoord{2, 2}));
  // Leaves: Morton index k -> cell with Morton index k.
  for (std::uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(mapping[tree.leaf_by_morton[k]], core::morton_coord(k));
  }
}

TEST(Mapping, PaperMappingSatisfiesConstraints) {
  for (std::size_t side : {2u, 4u, 8u, 16u}) {
    const QuadTree tree = build_quad_tree(side);
    core::GridTopology grid(side);
    core::GroupHierarchy groups(grid);
    const RoleAssignment mapping = paper_mapping(tree, groups);
    EXPECT_TRUE(check_coverage(tree.graph, mapping, grid).empty());
    EXPECT_TRUE(check_spatial_correlation(tree.graph, mapping, grid).empty());
    EXPECT_TRUE(satisfies_constraints(tree.graph, mapping, grid));
  }
}

TEST(Mapping, ScrambledLeavesViolateSpatialCorrelation) {
  const QuadTree tree = build_quad_tree(8);
  core::GridTopology grid(8);
  sim::Rng rng(1234);
  const RoleAssignment mapping = scrambled_leaf_mapping(tree, rng);
  // Coverage still holds (permutation), spatial correlation breaks.
  EXPECT_TRUE(check_coverage(tree.graph, mapping, grid).empty());
  EXPECT_FALSE(check_spatial_correlation(tree.graph, mapping, grid).empty());
}

TEST(Mapping, CoverageViolationsDetected) {
  const QuadTree tree = build_quad_tree(4);
  core::GridTopology grid(4);
  core::GroupHierarchy groups(grid);
  RoleAssignment mapping = paper_mapping(tree, groups);
  // Map two leaves to the same cell.
  const auto leaves = tree.graph.leaves();
  mapping[leaves[1]] = mapping[leaves[0]];
  const auto violations = check_coverage(tree.graph, mapping, grid);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].reason.find("second sampling task"),
            std::string::npos);
}

TEST(Mapping, OffGridLeafDetected) {
  const QuadTree tree = build_quad_tree(2);
  core::GridTopology grid(2);
  core::GroupHierarchy groups(grid);
  RoleAssignment mapping = paper_mapping(tree, groups);
  mapping[tree.graph.leaves()[0]] = {5, 5};
  EXPECT_FALSE(check_coverage(tree.graph, mapping, grid).empty());
}

TEST(Mapping, RandomInteriorKeepsConstraints) {
  const QuadTree tree = build_quad_tree(8);
  core::GridTopology grid(8);
  sim::Rng rng(77);
  const RoleAssignment mapping = random_interior_mapping(tree, rng);
  EXPECT_TRUE(satisfies_constraints(tree.graph, mapping, grid));
}

TEST(Mapping, EvaluateMatchesHandComputedCosts) {
  // 2x2 grid: root at (0,0); children at (0,0),(0,1),(1,0),(1,1) with unit
  // annotations. Hops: 0+1+1+2 = 4.
  const QuadTree tree = build_quad_tree(2);
  core::GridTopology grid(2);
  core::GroupHierarchy groups(grid);
  const RoleAssignment mapping = paper_mapping(tree, groups);
  const MappingCost cost =
      evaluate_mapping(tree.graph, mapping, grid, core::uniform_cost_model());
  EXPECT_EQ(cost.total_hops, 4u);
  // Energy: comm 4 hops * 2 + compute (4 leaves * 1 + root merge_ops(3)).
  EXPECT_DOUBLE_EQ(cost.total_energy, 8.0 + 4.0 + 3.0);
  // Latency: sense(1) + diagonal transfer(2) + merge(3) = 6.
  EXPECT_DOUBLE_EQ(cost.critical_latency, 6.0);
}

TEST(Mapping, ImproveNeverWorsensObjective) {
  const QuadTree tree = build_quad_tree(8);
  core::GridTopology grid(8);
  core::GroupHierarchy groups(grid);
  const core::CostModel cost = core::uniform_cost_model();
  RoleAssignment mapping = paper_mapping(tree, groups);
  const double before =
      evaluate_mapping(tree.graph, mapping, grid, cost).total_energy;
  sim::Rng rng(9);
  const RoleAssignment improved = improve_mapping(
      tree.graph, mapping, grid, cost, MappingObjective::kTotalEnergy, 200, rng);
  const double after =
      evaluate_mapping(tree.graph, improved, grid, cost).total_energy;
  EXPECT_LE(after, before);
  EXPECT_TRUE(check_spatial_correlation(tree.graph, improved, grid).empty());
}

TEST(Mapping, CenterPlacementShortensCriticalPath) {
  // With leaders at block centers the farthest child transfer per level is
  // 2^(l-1) hops instead of the NW corner's 2^l, halving the top-level leg
  // of the critical path. Total hops stay equal: center leaders receive 4
  // remote messages of 2^(l-1) hops where NW leaders receive 3 averaging
  // 2^(l-1) * 4/3.
  const QuadTree tree = build_quad_tree(8);
  core::GridTopology grid(8);
  const core::CostModel cost = core::uniform_cost_model();
  core::GroupHierarchy nw(grid, core::LeaderPlacement::kNorthWest);
  core::GroupHierarchy center(grid, core::LeaderPlacement::kBlockCenter);
  const MappingCost c_nw =
      evaluate_mapping(tree.graph, paper_mapping(tree, nw), grid, cost);
  const MappingCost c_center =
      evaluate_mapping(tree.graph, paper_mapping(tree, center), grid, cost);
  EXPECT_LT(c_center.critical_latency, c_nw.critical_latency);
  EXPECT_EQ(c_center.total_hops, c_nw.total_hops);
}

TEST(Figure3, RenderShowsMortonGrid) {
  const std::string text = render_figure3(4);
  // First row of Figure 3: 0 1 4 5.
  EXPECT_NE(text.find("  0   1   4   5"), std::string::npos);
  // Last row: 10 11 14 15.
  EXPECT_NE(text.find(" 10  11  14  15"), std::string::npos);
}

}  // namespace
}  // namespace wsn::taskgraph
