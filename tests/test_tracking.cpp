// Event-driven target tracking on the virtual architecture.
#include <gtest/gtest.h>

#include "app/tracking.h"

namespace wsn::app {
namespace {

TEST(Tracking, SignalFallsOffWithDistance) {
  const TrackingConfig config;
  const net::Point target{4.0, 4.0};
  const double at_target = signal_at({4, 4}, target, config);
  const double nearby = signal_at({4, 6}, target, config);
  const double far = signal_at({0, 15}, target, config);
  EXPECT_GT(at_target, nearby);
  EXPECT_GT(nearby, far);
  EXPECT_DOUBLE_EQ(at_target, config.amplitude);
}

TEST(Tracking, TrajectorySamplingHitsWaypoints) {
  const std::vector<net::Point> waypoints{{0, 0}, {10, 0}, {10, 10}};
  const auto samples = sample_trajectory(waypoints, 21);
  ASSERT_EQ(samples.size(), 21u);
  EXPECT_EQ(samples.front().x, 0.0);
  EXPECT_EQ(samples.back().x, 10.0);
  EXPECT_EQ(samples.back().y, 10.0);
  // The mid sample (arc length 10 of 20) is the corner waypoint.
  EXPECT_NEAR(samples[10].x, 10.0, 1e-9);
  EXPECT_NEAR(samples[10].y, 0.0, 1e-9);
}

TEST(Tracking, TrajectoryNeedsTwoWaypoints) {
  const std::vector<net::Point> one{{0, 0}};
  EXPECT_THROW(sample_trajectory(one, 5), std::invalid_argument);
  const std::vector<net::Point> two{{0, 0}, {1, 1}};
  EXPECT_THROW(sample_trajectory(two, 1), std::invalid_argument);
}

TEST(Tracking, EstimatesFollowTheTarget) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  const std::vector<net::Point> waypoints{{2.0, 2.0}, {13.0, 13.0}};
  const auto trajectory = sample_trajectory(waypoints, 12);
  const TrackingResult result = run_tracking(vnet, trajectory);
  ASSERT_EQ(result.rounds.size(), 12u);
  EXPECT_EQ(result.detected_rounds, 12u);
  // Weighted centroid of a symmetric falloff lands near the target.
  EXPECT_LT(result.mean_error, 1.0);
  for (const TrackEstimate& r : result.rounds) {
    EXPECT_TRUE(r.detected);
    EXPECT_LT(r.error, 2.0);
    // The head is a strong detector, i.e. close to the target.
    const net::Point head_pos{static_cast<double>(r.head.col),
                              static_cast<double>(r.head.row)};
    EXPECT_LT(net::distance(head_pos, r.true_position), 3.0);
  }
}

TEST(Tracking, HeadHandsOffAlongTheTrack) {
  sim::Simulator sim(2);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  const std::vector<net::Point> waypoints{{1.0, 1.0}, {14.0, 14.0}};
  const auto trajectory = sample_trajectory(waypoints, 20);
  const TrackingResult result = run_tracking(vnet, trajectory);
  // A target crossing the whole field must change heads several times.
  EXPECT_GE(result.head_handoffs, 5u);
}

TEST(Tracking, EnergyStaysLocalizedNearTrajectory) {
  sim::Simulator sim(3);
  core::VirtualNetwork vnet(sim, core::GridTopology(16),
                            core::uniform_cost_model());
  // Target confined to the NW quadrant.
  const std::vector<net::Point> waypoints{{2.0, 2.0}, {5.0, 5.0}};
  const auto trajectory = sample_trajectory(waypoints, 10);
  run_tracking(vnet, trajectory);
  // Nodes in the far SE quadrant never detected or relayed: zero energy.
  double se_energy = 0;
  double nw_energy = 0;
  for (std::int32_t r = 0; r < 16; ++r) {
    for (std::int32_t c = 0; c < 16; ++c) {
      const double e = vnet.ledger().spent(
          static_cast<net::NodeId>(vnet.grid().index_of({r, c})));
      if (r >= 12 && c >= 12) se_energy += e;
      if (r < 8 && c < 8) nw_energy += e;
    }
  }
  EXPECT_EQ(se_energy, 0.0);
  EXPECT_GT(nw_energy, 0.0);
}

TEST(Tracking, NoDetectionWhenTargetTooWeak) {
  sim::Simulator sim(4);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  TrackingConfig config;
  config.detection_threshold = 2.0;  // above the amplitude: never detected
  const std::vector<net::Point> waypoints{{1.0, 1.0}, {6.0, 6.0}};
  const auto trajectory = sample_trajectory(waypoints, 5);
  const TrackingResult result = run_tracking(vnet, trajectory, config);
  EXPECT_EQ(result.detected_rounds, 0u);
  EXPECT_EQ(result.messages, 0u);
  EXPECT_DOUBLE_EQ(vnet.ledger().total(), 0.0);
}

}  // namespace
}  // namespace wsn::app
