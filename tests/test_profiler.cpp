// Tests for the host-side self-profiling layer (obs/profiler) and its
// integrations: non-perturbation (simulated traces are byte-identical with
// the profiler armed or disarmed), span nesting / self-time arithmetic,
// allocation counters, phases, the span log, kernel telemetry
// (EventQueue introspection + Simulator::register_metrics), capture-health
// checking, the bench-compare wall-clock field class, the Chrome host-time
// track, and the `wsn-inspect perf` subcommand.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/grid_topology.h"
#include "obs/analyze/bench_compare.h"
#include "obs/analyze/check.h"
#include "obs/analyze/cli.h"
#include "obs/analyze/json_reader.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/sinks.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {

using namespace wsn;
using namespace wsn::obs::analyze;

/// Burns host time so a span has measurable, strictly positive duration.
void spin_at_least_ns(std::uint64_t ns) {
  const auto t0 = std::chrono::steady_clock::now();
  while (static_cast<std::uint64_t>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - t0)
                 .count()) < ns) {
  }
}

/// One deterministic full-stack run (overlay all-cells-to-collector over an
/// ARQ'd physical deployment), captured as JSONL. The profiler must not
/// change a byte of this, whatever its state.
std::string campaign_trace_jsonl() {
  obs::RingBufferSink sink(1 << 18);
  bench::PhysicalStack stack(4, 60, 1.3, 3);
  stack.enable_arq();
  {
    obs::ScopedTrace trace(sink);
    obs::tracer().reset_flows();
    for (const core::GridCoord& c : core::GridTopology(4).all_coords()) {
      if (c.row == 0 && c.col == 0) continue;
      stack.overlay->send(c, {0, 0}, int{1}, 1.0);
    }
    stack.sim.run();
  }
  std::ostringstream os;
  obs::write_jsonl(sink.events(), os);
  return os.str();
}

std::string unique_path(const std::string& name) {
  return testing::TempDir() +
         testing::UnitTest::GetInstance()->current_test_info()->name() + "." +
         name;
}

std::string write_file(const std::string& name, const std::string& text) {
  const std::string path = unique_path(name);
  std::ofstream(path) << text;
  return path;
}

// ---------------------------------------------------------------------------
// Non-perturbation: the acceptance criterion of the profiling layer.

TEST(NonPerturbation, TraceByteIdenticalProfilerOnVsOff) {
  obs::SimProfiler& prof = obs::profiler();
  prof.set_span_log_capacity(1 << 12);
  prof.arm();
  const std::string with_profiler = campaign_trace_jsonl();
  prof.disarm();
  // The profiled run must actually have recorded something, or the test
  // proves nothing.
  EXPECT_GT(prof.bucket(obs::ProfCat::kDispatch).count, 0u);
  EXPECT_GT(prof.bucket(obs::ProfCat::kLinkTx).count, 0u);
  EXPECT_GT(prof.bucket(obs::ProfCat::kArq).count, 0u);
  EXPECT_GT(prof.bucket(obs::ProfCat::kTraceEmit).count, 0u);

  const std::string without_profiler = campaign_trace_jsonl();
  EXPECT_EQ(with_profiler, without_profiler);
  EXPECT_FALSE(with_profiler.empty());
}

// ---------------------------------------------------------------------------
// Span accounting.

TEST(SimProfiler, SelfTimeExcludesNestedChildExactly) {
  obs::SimProfiler& prof = obs::profiler();
  prof.arm();
  {
    obs::ProfSpan outer(obs::ProfCat::kLinkTx);
    spin_at_least_ns(20'000);
    {
      obs::ProfSpan inner(obs::ProfCat::kSink);
      spin_at_least_ns(20'000);
    }
    spin_at_least_ns(1'000);
  }
  prof.disarm();
  const obs::ProfBucket& outer_b = prof.bucket(obs::ProfCat::kLinkTx);
  const obs::ProfBucket& inner_b = prof.bucket(obs::ProfCat::kSink);
  ASSERT_EQ(outer_b.count, 1u);
  ASSERT_EQ(inner_b.count, 1u);
  // The parent's child accumulator is exactly the inner span's duration, so
  // this identity is exact, not approximate.
  EXPECT_EQ(outer_b.self_ns + inner_b.total_ns, outer_b.total_ns);
  EXPECT_GT(inner_b.total_ns, 0u);
  EXPECT_GT(outer_b.self_ns, 0u);
  EXPECT_EQ(inner_b.self_ns, inner_b.total_ns);  // leaf span: all self
  EXPECT_LE(outer_b.min_ns, outer_b.max_ns);
}

TEST(SimProfiler, DisarmedSpansRecordNothing) {
  obs::SimProfiler& prof = obs::profiler();
  prof.arm();
  prof.disarm();
  {
    obs::ProfSpan span(obs::ProfCat::kDispatch);
    spin_at_least_ns(1'000);
  }
  EXPECT_EQ(prof.bucket(obs::ProfCat::kDispatch).count, 0u);
  const std::uint64_t frozen = prof.elapsed_ns();
  spin_at_least_ns(10'000);
  EXPECT_EQ(prof.elapsed_ns(), frozen);  // frozen at disarm, not advancing
}

TEST(SimProfiler, PhasesPartitionWindowAndAttributeAllocations) {
  obs::SimProfiler& prof = obs::profiler();
  prof.arm();
  prof.begin_phase("setup");
  {
    std::vector<char> ballast(1 << 20);
    ballast[0] = 1;
    EXPECT_EQ(ballast[0], 1);
  }
  prof.begin_phase("run");
  prof.end_phase();
  prof.disarm();
  const auto& phases = prof.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "setup");
  EXPECT_EQ(phases[1].name, "run");
  EXPECT_NE(phases[0].end_ns, 0u);
  EXPECT_LE(phases[0].end_ns, phases[1].start_ns);
  EXPECT_GE(phases[0].alloc.count, 1u);
  EXPECT_GE(phases[0].alloc.bytes, static_cast<std::uint64_t>(1 << 20));
}

TEST(SimProfiler, GlobalAllocCountersAreMonotonic) {
  const obs::AllocStats before = obs::global_alloc_stats();
  auto* p = new std::vector<int>(256);
  const obs::AllocStats after = obs::global_alloc_stats();
  delete p;
  EXPECT_GT(after.count, before.count);
  EXPECT_GE(after.bytes, before.bytes + 256 * sizeof(int));
}

TEST(SimProfiler, SpanLogKeepsPrefixAndCountsDrops) {
  obs::SimProfiler& prof = obs::profiler();
  prof.set_span_log_capacity(2);
  prof.arm();
  { obs::ProfSpan a(obs::ProfCat::kLinkTx); }
  { obs::ProfSpan b(obs::ProfCat::kLinkRx); }
  { obs::ProfSpan c(obs::ProfCat::kSink); }
  prof.disarm();
  ASSERT_EQ(prof.span_log().size(), 2u);
  EXPECT_EQ(prof.span_log()[0].cat, obs::ProfCat::kLinkTx);
  EXPECT_EQ(prof.span_log()[1].cat, obs::ProfCat::kLinkRx);
  EXPECT_EQ(prof.span_log_dropped(), 1u);
  prof.set_span_log_capacity(0);
}

TEST(SimProfiler, ToJsonRoundTripsThroughJsonReader) {
  obs::SimProfiler& prof = obs::profiler();
  prof.arm();
  {
    obs::ProfSpan span(obs::ProfCat::kDispatch);
    spin_at_least_ns(1'000);
  }
  prof.disarm();
  prof.note_sim(4.0, 1000);
  const JsonValue doc = parse_json(prof.to_json());
  const JsonValue* p = doc.find("prof");
  ASSERT_NE(p, nullptr);
  EXPECT_GT(p->find("host_ns")->number(), 0.0);
  EXPECT_DOUBLE_EQ(p->find("sim_time")->number(), 4.0);
  EXPECT_DOUBLE_EQ(p->find("sim_events")->number(), 1000.0);
  EXPECT_GT(p->find("events_per_sec")->number(), 0.0);
  const JsonValue* spans = p->find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_NE(spans->find("dispatch"), nullptr);
  EXPECT_DOUBLE_EQ(spans->find("dispatch")->find("count")->number(), 1.0);
  ASSERT_NE(p->find("alloc"), nullptr);
  ASSERT_NE(p->find("phases"), nullptr);
}

TEST(SimProfiler, RegistersProfGauges) {
  obs::SimProfiler& prof = obs::profiler();
  prof.arm();
  { obs::ProfSpan span(obs::ProfCat::kArq); }
  prof.disarm();
  prof.note_sim(1.0, 50);
  obs::MetricsRegistry registry;
  prof.register_metrics(registry);
  EXPECT_DOUBLE_EQ(registry.gauge("prof.arq.count"), 1.0);
  EXPECT_GT(registry.gauge("prof.events_per_sec"), 0.0);
  EXPECT_GE(registry.gauge("prof.host_ms"), 0.0);
  EXPECT_GE(registry.gauge("prof.alloc_count"), 0.0);
}

// ---------------------------------------------------------------------------
// Kernel telemetry.

TEST(EventQueue, IntrospectionAccessorsTrackLifecycle) {
  sim::EventQueue q;
  const sim::EventId a = q.schedule(1.0, [] {});
  const sim::EventId b = q.schedule(2.0, [] {});
  q.schedule(3.0, [] {});
  (void)a;
  EXPECT_EQ(q.live(), 3u);
  EXPECT_EQ(q.total_scheduled(), 3u);
  EXPECT_EQ(q.peak_size(), 3u);
  EXPECT_TRUE(q.cancel(b));
  EXPECT_EQ(q.live(), 2u);
  EXPECT_EQ(q.tombstones(), 1u);
  q.pop();  // t=1.0
  q.pop();  // t=3.0, lazily skipping the tombstoned t=2.0 entry
  EXPECT_EQ(q.cancelled_skips(), 1u);
  EXPECT_EQ(q.tombstones(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peak_size(), 3u);  // high-water mark survives the drain
}

TEST(EventQueue, FiredClearHeuristicIsObservableAndHasKnownEdge) {
  sim::EventQueue q;
  const std::size_t n = (1u << 20) + 2;
  for (std::size_t i = 0; i < n; ++i) {
    q.schedule(static_cast<double>(i), [] {});
    q.pop();
  }
  EXPECT_EQ(q.fired_clears(), 1u);
  // The documented edge: after a clear, an id that fired *before* the clear
  // is no longer remembered, so cancelling it "succeeds" (and leaves an
  // unreachable tombstone). The counter exists precisely so this is
  // observable rather than mysterious.
  EXPECT_TRUE(q.cancel(0));
}

TEST(Simulator, KernelGaugesReflectQueueState) {
  sim::Simulator sim;
  obs::MetricsRegistry registry;
  sim.register_metrics(registry);
  sim.schedule_in(1.0, [] {});
  const sim::EventId doomed = sim.schedule_in(2.0, [] {});
  // A live event *behind* the tombstone, so popping it exercises the lazy
  // skip (a tombstone at the tail of the heap is never popped past).
  sim.schedule_in(3.0, [] {});
  sim.cancel(doomed);
  EXPECT_DOUBLE_EQ(registry.gauge("kernel.queue_depth"), 2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("kernel.tombstones"), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("kernel.total_scheduled"), 3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("kernel.peak_depth"), 3.0);
  sim.run();
  EXPECT_DOUBLE_EQ(registry.gauge("kernel.queue_depth"), 0.0);
  EXPECT_DOUBLE_EQ(registry.gauge("kernel.events_processed"), 2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("kernel.cancelled_skips"), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("kernel.fired_clears"), 0.0);
}

// ---------------------------------------------------------------------------
// Capture health.

TEST(CheckCapture, FlagsDroppedEventsAndPassesCleanCaptures) {
  obs::RingBufferSink sink(2);
  obs::TraceEvent ev;
  sink.accept(ev);
  sink.accept(ev);
  obs::MetricsRegistry clean;
  sink.register_metrics(clean);
  EXPECT_TRUE(check_capture(parse_json(clean.to_json())).ok());

  sink.accept(ev);  // wraps: oldest dropped
  EXPECT_EQ(sink.dropped(), 1u);
  obs::MetricsRegistry dirty;
  sink.register_metrics(dirty);
  const CheckReport report = check_capture(parse_json(dirty.to_json()));
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues[0].find("dropped 1"), std::string::npos);
  EXPECT_NE(report.issues[0].find("suffix"), std::string::npos);

  // No sink registered => vacuous pass.
  obs::MetricsRegistry none;
  EXPECT_TRUE(check_capture(parse_json(none.to_json())).ok());
}

TEST(InspectCheck, SurfacesCaptureDropsViaMetrics) {
  obs::RingBufferSink sink(1);
  obs::TraceEvent ev;
  ev.name = "x";
  sink.accept(ev);
  sink.accept(ev);
  obs::MetricsRegistry registry;
  sink.register_metrics(registry);
  const std::string trace_path = write_file("trace.jsonl", "");
  const std::string metrics_path = write_file("metrics.json",
                                              registry.to_json() + "\n");
  std::ostringstream out, err;
  const int rc = run_inspect(
      {"check", trace_path, "--metrics", metrics_path}, out, err);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.str().find("suffix"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Percentiles.

TEST(Histogram, P90BetweenP50AndP99) {
  obs::Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.p90(), 90.0, 1.5);
  EXPECT_LT(h.p50(), h.p90());
  EXPECT_LT(h.p90(), h.p99());
}

TEST(Histogram, SnapshotJsonCarriesP90) {
  obs::Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i));
  obs::MetricsRegistry registry;
  registry.add_histogram("lat", &h);
  const JsonValue doc = parse_json(registry.to_json());
  const JsonValue* lat = doc.find("lat");
  ASSERT_NE(lat, nullptr);
  ASSERT_NE(lat->find("p90"), nullptr);
  EXPECT_NEAR(lat->find("p90")->number(), 9.0, 1.0);
}

// ---------------------------------------------------------------------------
// Wall-clock field class in bench-compare.

TEST(BenchCompare, WallClockFieldsSkippedByDefault) {
  const std::string base =
      "{\"bench\":\"kernel\",\"depth\":256,\"events_per_sec\":1e6,"
      "\"mean_event_ns\":1000.0}\n";
  const std::string cur =
      "{\"bench\":\"kernel\",\"depth\":256,\"events_per_sec\":1e3,"
      "\"mean_event_ns\":9000.0}\n";
  const CompareReport r = compare_bench(base, cur, 0.10);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.fields_compared, 1u);  // only "depth"
}

TEST(BenchCompare, WallClockToleranceIsOneSided) {
  const std::string base =
      "{\"bench\":\"kernel\",\"events_per_sec\":1000.0,"
      "\"mean_event_ns\":1000.0}\n";
  CompareOptions opts;
  opts.wallclock_tolerance = 0.50;
  // Much faster: higher rate, lower ns. Never a regression.
  const CompareReport faster = compare_bench(
      base,
      "{\"bench\":\"kernel\",\"events_per_sec\":9000.0,"
      "\"mean_event_ns\":100.0}\n",
      opts);
  EXPECT_TRUE(faster.ok());
  // Much slower: rate collapsed, ns ballooned. Both flagged.
  const CompareReport slower = compare_bench(
      base,
      "{\"bench\":\"kernel\",\"events_per_sec\":100.0,"
      "\"mean_event_ns\":9000.0}\n",
      opts);
  EXPECT_EQ(slower.regressions.size(), 2u);
}

TEST(BenchCompare, BenchFilterRestrictsComparison) {
  const std::string base =
      "{\"bench\":\"kernel\",\"depth\":256}\n"
      "{\"bench\":\"other\",\"x\":1.0}\n";
  const std::string cur = "{\"bench\":\"kernel\",\"depth\":256}\n";
  CompareOptions opts;
  opts.bench_filter = "kernel";
  // 'other' missing from current would be a mismatch without the filter.
  EXPECT_TRUE(compare_bench(base, cur, opts).ok());
  opts.bench_filter = "absent";
  EXPECT_FALSE(compare_bench(base, cur, opts).ok());
}

// ---------------------------------------------------------------------------
// Chrome host-time track.

TEST(ChromeExport, HostTrackRendersSpanLog) {
  obs::SimProfiler& prof = obs::profiler();
  prof.set_span_log_capacity(8);
  prof.arm();
  {
    obs::ProfSpan span(obs::ProfCat::kDispatch);
    spin_at_least_ns(1'000);
  }
  prof.disarm();
  std::ostringstream with_track;
  obs::write_chrome_trace({}, with_track, &prof);
  EXPECT_NE(with_track.str().find("host (profiler)"), std::string::npos);
  EXPECT_NE(with_track.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(with_track.str().find("\"dispatch\""), std::string::npos);

  std::ostringstream without_track;
  obs::write_chrome_trace({}, without_track);
  EXPECT_EQ(without_track.str().find("host (profiler)"), std::string::npos);
  prof.set_span_log_capacity(0);
}

// ---------------------------------------------------------------------------
// wsn-inspect perf.

constexpr const char* kPerfDoc =
    "{\"prof\":{\"host_ns\":2000000,\"sim_time\":4.0,\"sim_events\":1000,"
    "\"events_per_sec\":500000.0,"
    "\"spans\":{"
    "\"dispatch\":{\"count\":1000,\"total_ns\":1500000,\"self_ns\":900000,"
    "\"min_ns\":100,\"max_ns\":5000},"
    "\"link_tx\":{\"count\":200,\"total_ns\":600000,\"self_ns\":600000,"
    "\"min_ns\":500,\"max_ns\":9000}},"
    "\"alloc\":{\"count\":42,\"bytes\":4096},"
    "\"phases\":[{\"name\":\"setup\",\"start_ns\":0,\"end_ns\":1000000,"
    "\"alloc_count\":40,\"alloc_bytes\":4000},"
    "{\"name\":\"run\",\"start_ns\":1000000,\"end_ns\":2000000,"
    "\"alloc_count\":2,\"alloc_bytes\":96}]}}";

TEST(InspectPerf, RendersTopSelfTimeAndRatios) {
  const std::string path = write_file("perf.json", kPerfDoc);
  std::ostringstream out, err;
  ASSERT_EQ(run_inspect({"perf", path}, out, err), 0) << err.str();
  const std::string text = out.str();
  EXPECT_NE(text.find("events/sec"), std::string::npos);
  EXPECT_NE(text.find("500000"), std::string::npos);
  // host/sim: 2 ms over 4 sim units.
  EXPECT_NE(text.find("0.5000"), std::string::npos);
  // dispatch leads the self-time table (0.9 ms self vs 0.6 ms).
  const auto dispatch_at = text.find("dispatch");
  const auto link_at = text.find("link_tx");
  ASSERT_NE(dispatch_at, std::string::npos);
  ASSERT_NE(link_at, std::string::npos);
  EXPECT_LT(dispatch_at, link_at);
  // 1.5e6 of 2e6 ns accounted.
  EXPECT_NE(text.find("75.0% of host time"), std::string::npos);
  EXPECT_NE(text.find("allocations   42 (4096 bytes)"), std::string::npos);
  // Phases ranked by allocation: setup before run.
  EXPECT_LT(text.find("setup"), text.find("run"));
}

TEST(InspectPerf, TopLimitsTableAndJsonEmitsRow) {
  const std::string path = write_file("perf.json", kPerfDoc);
  const std::string json_path = unique_path("perf_row.json");
  std::ostringstream out, err;
  ASSERT_EQ(
      run_inspect({"perf", path, "--top", "1", "--json", json_path}, out, err),
      0)
      << err.str();
  // With --top 1 only the heaviest category is tabulated.
  EXPECT_EQ(out.str().find("link_tx"), std::string::npos);
  std::ifstream in(json_path);
  std::string row;
  std::getline(in, row);
  const JsonValue parsed = parse_json(row);
  EXPECT_EQ(parsed.find("bench")->string(), "perf");
  EXPECT_DOUBLE_EQ(parsed.find("host_ms")->number(), 2.0);
  EXPECT_DOUBLE_EQ(parsed.find("dispatch_self_ns")->number(), 900000.0);
  EXPECT_DOUBLE_EQ(parsed.find("events_per_sec")->number(), 500000.0);
}

TEST(InspectPerf, MalformedInputIsUsageError) {
  std::ostringstream out, err;
  EXPECT_EQ(run_inspect({"perf", write_file("bad.json", "{nope")}, out, err),
            2);
  EXPECT_NE(err.str().find("perf"), std::string::npos);

  // Valid JSON but not a perf snapshot.
  EXPECT_EQ(run_inspect({"perf", write_file("np.json", "{\"x\":1}")}, out,
                        err),
            2);
  EXPECT_EQ(run_inspect({"perf", "/nonexistent/p.json"}, out, err), 2);
}

}  // namespace
