// Virtual architecture core: grid topology, Morton labeling, cost model,
// hierarchical groups, virtual network, collective primitives.
#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/grid_topology.h"
#include "core/groups.h"
#include "core/primitives.h"
#include "core/virtual_network.h"

namespace wsn::core {
namespace {

TEST(GridTopology, IndexRoundTrip) {
  GridTopology g(5);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    EXPECT_EQ(g.index_of(g.coord_of(i)), i);
  }
  EXPECT_EQ(g.node_count(), 25u);
}

TEST(GridTopology, NeighborsAndBoundaries) {
  GridTopology g(3);
  EXPECT_FALSE(g.neighbor({0, 0}, Direction::kNorth).has_value());
  EXPECT_FALSE(g.neighbor({0, 0}, Direction::kWest).has_value());
  EXPECT_EQ(g.neighbor({0, 0}, Direction::kSouth), (GridCoord{1, 0}));
  EXPECT_EQ(g.neighbor({0, 0}, Direction::kEast), (GridCoord{0, 1}));
  EXPECT_FALSE(g.neighbor({2, 2}, Direction::kSouth).has_value());
}

TEST(GridTopology, OppositeDirections) {
  for (Direction d : kAllDirections) {
    EXPECT_EQ(opposite(opposite(d)), d);
  }
  EXPECT_EQ(opposite(Direction::kNorth), Direction::kSouth);
  EXPECT_EQ(opposite(Direction::kEast), Direction::kWest);
}

TEST(GridTopology, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7u);
  EXPECT_EQ(manhattan({2, 2}, {2, 2}), 0u);
  EXPECT_EQ(manhattan({5, 1}, {1, 5}), 8u);
}

TEST(GridTopology, RouteIsShortestAndDimensionOrder) {
  GridTopology g(8);
  const auto path = g.route({1, 1}, {3, 4});
  ASSERT_EQ(path.size(), manhattan({1, 1}, {3, 4}) + 1);
  EXPECT_EQ(path.front(), (GridCoord{1, 1}));
  EXPECT_EQ(path.back(), (GridCoord{3, 4}));
  // Column-first: the second element moves east.
  EXPECT_EQ(path[1], (GridCoord{1, 2}));
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(manhattan(path[i - 1], path[i]), 1u);
  }
}

TEST(GridTopology, RouteOffGridThrows) {
  GridTopology g(4);
  EXPECT_THROW(g.route({0, 0}, {4, 0}), std::invalid_argument);
}

TEST(Morton, Figure3Labeling) {
  // The 4x4 grid of Figure 3:
  //   0  1 |  4  5
  //   2  3 |  6  7
  //   -----+------
  //   8  9 | 12 13
  //  10 11 | 14 15
  const std::vector<std::uint64_t> expected{0, 1, 4,  5,  2,  3,  6,  7,
                                            8, 9, 12, 13, 10, 11, 14, 15};
  std::size_t i = 0;
  for (std::int32_t r = 0; r < 4; ++r) {
    for (std::int32_t c = 0; c < 4; ++c) {
      EXPECT_EQ(morton_index({r, c}), expected[i++]) << "(" << r << "," << c << ")";
    }
  }
}

TEST(Morton, RoundTrip) {
  for (std::uint64_t k = 0; k < 1024; ++k) {
    EXPECT_EQ(morton_index(morton_coord(k)), k);
  }
}

TEST(CostModel, UniformDefaults) {
  const CostModel cost = uniform_cost_model();
  EXPECT_DOUBLE_EQ(cost.hop_latency(1.0), 1.0);
  EXPECT_DOUBLE_EQ(cost.tx_energy(1.0), 1.0);
  EXPECT_DOUBLE_EQ(cost.rx_energy(1.0), 1.0);
  EXPECT_DOUBLE_EQ(cost.compute_energy(1.0), 1.0);
  EXPECT_DOUBLE_EQ(cost.message_latency({0, 0}, {2, 3}, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(cost.message_energy({0, 0}, {2, 3}, 1.0), 10.0);
}

TEST(CostModel, ScalesWithBandwidthAndSpeed) {
  CostModel cost;
  cost.bandwidth = 4.0;
  cost.processing_speed = 2.0;
  EXPECT_DOUBLE_EQ(cost.hop_latency(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cost.compute_latency(3.0), 1.5);
  cost.validate();
  cost.bandwidth = 0.0;
  EXPECT_THROW(cost.validate(), std::invalid_argument);
}

TEST(Groups, PaperHierarchyOn4x4) {
  GridTopology grid(4);
  GroupHierarchy groups(grid);
  EXPECT_EQ(groups.max_level(), 2u);
  // Level 0: everyone leads themselves.
  EXPECT_TRUE(groups.is_leader({3, 2}, 0));
  // Level 1: NW corners of 2x2 blocks.
  EXPECT_EQ(groups.leader_of({1, 1}, 1), (GridCoord{0, 0}));
  EXPECT_EQ(groups.leader_of({2, 3}, 1), (GridCoord{2, 2}));
  EXPECT_TRUE(groups.is_leader({0, 2}, 1));
  EXPECT_FALSE(groups.is_leader({1, 2}, 1));
  // Level 2: the whole grid, led by (0,0).
  EXPECT_EQ(groups.leader_of({3, 3}, 2), (GridCoord{0, 0}));
  const auto leaders1 = groups.leaders(1);
  ASSERT_EQ(leaders1.size(), 4u);
  EXPECT_EQ(leaders1[0], (GridCoord{0, 0}));
  EXPECT_EQ(leaders1[3], (GridCoord{2, 2}));
}

TEST(Groups, EveryNodeKnowsItsRoleLocally) {
  GridTopology grid(8);
  GroupHierarchy groups(grid);
  for (const GridCoord& c : grid.all_coords()) {
    for (std::uint32_t level = 0; level <= groups.max_level(); ++level) {
      const GridCoord leader = groups.leader_of(c, level);
      EXPECT_TRUE(groups.is_leader(leader, level));
      // The leader's block contains c.
      const auto members = groups.members(c, level);
      EXPECT_EQ(members.size(), static_cast<std::size_t>(1)
                                    << (2 * level));
      EXPECT_NE(std::ranges::find(members, c), members.end());
    }
  }
}

TEST(Groups, HighestLeaderLevel) {
  GridTopology grid(8);
  GroupHierarchy groups(grid);
  EXPECT_EQ(groups.highest_leader_level({0, 0}), 3u);
  EXPECT_EQ(groups.highest_leader_level({4, 4}), 2u);
  EXPECT_EQ(groups.highest_leader_level({0, 2}), 1u);
  EXPECT_EQ(groups.highest_leader_level({1, 1}), 0u);
}

TEST(Groups, NonPowerOfTwoGridRejected) {
  GridTopology grid(6);
  EXPECT_THROW(GroupHierarchy{grid}, std::invalid_argument);
}

TEST(Groups, AlternativePlacements) {
  GridTopology grid(4);
  GroupHierarchy center(grid, LeaderPlacement::kBlockCenter);
  EXPECT_EQ(center.leader_of({0, 0}, 1), (GridCoord{1, 1}));
  EXPECT_EQ(center.leader_of({0, 0}, 2), (GridCoord{2, 2}));
  GroupHierarchy se(grid, LeaderPlacement::kSouthEast);
  EXPECT_EQ(se.leader_of({0, 0}, 1), (GridCoord{1, 1}));
  EXPECT_EQ(se.leader_of({0, 0}, 2), (GridCoord{3, 3}));
}

TEST(Groups, HopsToLeaderMatchesPrediction) {
  GridTopology grid(8);
  GroupHierarchy groups(grid);
  // Max over a level-2 block: the SE member, 2*(4-1) hops away.
  std::uint32_t max_hops = 0;
  for (const GridCoord& m : groups.members({0, 0}, 2)) {
    max_hops = std::max(max_hops, groups.hops_to_leader(m, 2));
  }
  EXPECT_EQ(max_hops, 6u);
}

class VirtualNetworkTest : public ::testing::Test {
 protected:
  VirtualNetworkTest() : vnet_(sim_, GridTopology(4), uniform_cost_model()) {}

  sim::Simulator sim_{1};
  VirtualNetwork vnet_;
};

TEST_F(VirtualNetworkTest, DeliveryAfterManhattanLatency) {
  sim::Time arrival = -1;
  GridCoord sender{-1, -1};
  vnet_.set_receiver({2, 3}, [&](const VirtualMessage& m) {
    arrival = sim_.now();
    sender = m.sender;
  });
  vnet_.send({0, 0}, {2, 3}, 42, 1.0);
  sim_.run();
  EXPECT_DOUBLE_EQ(arrival, 5.0);
  EXPECT_EQ(sender, (GridCoord{0, 0}));
}

TEST_F(VirtualNetworkTest, EnergyChargedAlongRoute) {
  vnet_.set_receiver({0, 3}, [](const VirtualMessage&) {});
  vnet_.send({0, 0}, {0, 3}, 0, 2.0);  // 3 hops of 2 units
  sim_.run();
  const auto& grid = vnet_.grid();
  // Sender: tx only. Relays (0,1),(0,2): rx+tx. Receiver: rx.
  EXPECT_DOUBLE_EQ(vnet_.ledger().spent(grid.index_of({0, 0})), 2.0);
  EXPECT_DOUBLE_EQ(vnet_.ledger().spent(grid.index_of({0, 1})), 4.0);
  EXPECT_DOUBLE_EQ(vnet_.ledger().spent(grid.index_of({0, 2})), 4.0);
  EXPECT_DOUBLE_EQ(vnet_.ledger().spent(grid.index_of({0, 3})), 2.0);
  // Total = path_energy(3 hops, 2 units) = 3 * (2+2).
  EXPECT_DOUBLE_EQ(vnet_.ledger().total(), 12.0);
  EXPECT_EQ(vnet_.total_hops(), 3u);
}

TEST_F(VirtualNetworkTest, SelfSendIsFreeAndImmediate) {
  int got = 0;
  vnet_.set_receiver({1, 1}, [&](const VirtualMessage&) { ++got; });
  vnet_.send({1, 1}, {1, 1}, 0, 1.0);
  sim_.run();
  EXPECT_EQ(got, 1);
  EXPECT_DOUBLE_EQ(vnet_.ledger().total(), 0.0);
  EXPECT_DOUBLE_EQ(sim_.now(), 0.0);
}

TEST_F(VirtualNetworkTest, SendToLeaderUsesGroupService) {
  sim::Time arrival = -1;
  vnet_.set_receiver({0, 0}, [&](const VirtualMessage&) { arrival = sim_.now(); });
  vnet_.send_to_leader({1, 1}, 1, 0, 1.0);
  sim_.run();
  EXPECT_DOUBLE_EQ(arrival, 2.0);  // manhattan((1,1),(0,0)) = 2
}

TEST_F(VirtualNetworkTest, ComputeChargesLedger) {
  const sim::Time lat = vnet_.compute({2, 2}, 5.0);
  EXPECT_DOUBLE_EQ(lat, 5.0);
  EXPECT_DOUBLE_EQ(
      vnet_.ledger().spent(vnet_.grid().index_of({2, 2}),
                           net::EnergyUse::kCompute),
      5.0);
}

TEST(Primitives, GroupReduceSum) {
  sim::Simulator sim(1);
  VirtualNetwork vnet(sim, GridTopology(4), uniform_cost_model());
  GroupHierarchy groups(GridTopology(4));
  const auto members = groups.members({0, 0}, 1);
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  double result = -1;
  std::uint32_t messages = 0;
  group_reduce(vnet, members, {0, 0}, values, ReduceOp::kSum, 1.0,
               [&](const CollectiveResult& r) {
                 result = r.value;
                 messages = r.messages;
               });
  sim.run();
  EXPECT_DOUBLE_EQ(result, 10.0);
  EXPECT_EQ(messages, 3u);  // leader's own value is local
}

TEST(Primitives, GroupReduceMaxMinCount) {
  sim::Simulator sim(2);
  VirtualNetwork vnet(sim, GridTopology(4), uniform_cost_model());
  GroupHierarchy groups(GridTopology(4));
  const auto members = groups.members({2, 2}, 1);
  const std::vector<double> values{7.0, -2.0, 9.0, 4.0};
  double max_v = 0;
  double min_v = 0;
  double count_v = 0;
  group_reduce(vnet, members, {2, 2}, values, ReduceOp::kMax, 1.0,
               [&](const CollectiveResult& r) { max_v = r.value; });
  sim.run();
  group_reduce(vnet, members, {2, 2}, values, ReduceOp::kMin, 1.0,
               [&](const CollectiveResult& r) { min_v = r.value; });
  sim.run();
  group_reduce(vnet, members, {2, 2}, values, ReduceOp::kCount, 1.0,
               [&](const CollectiveResult& r) { count_v = r.value; });
  sim.run();
  EXPECT_DOUBLE_EQ(max_v, 9.0);
  EXPECT_DOUBLE_EQ(min_v, -2.0);
  EXPECT_DOUBLE_EQ(count_v, 4.0);
}

TEST(Primitives, GroupBroadcastReachesAllFollowers) {
  sim::Simulator sim(3);
  VirtualNetwork vnet(sim, GridTopology(4), uniform_cost_model());
  GroupHierarchy groups(GridTopology(4));
  const auto members = groups.members({0, 0}, 2);  // whole grid
  double value = 0;
  std::uint32_t messages = 0;
  group_broadcast(vnet, {0, 0}, members, 3.25, 1.0,
                  [&](const CollectiveResult& r) {
                    value = r.value;
                    messages = r.messages;
                  });
  sim.run();
  EXPECT_DOUBLE_EQ(value, 3.25);
  EXPECT_EQ(messages, 15u);
}

TEST(Primitives, GroupSortReturnsSortedValues) {
  sim::Simulator sim(4);
  VirtualNetwork vnet(sim, GridTopology(4), uniform_cost_model());
  GroupHierarchy groups(GridTopology(4));
  const auto members = groups.members({0, 0}, 1);
  const std::vector<double> values{3.0, 1.0, 4.0, 1.5};
  std::vector<double> sorted;
  group_sort(vnet, members, {0, 0}, values, 1.0,
             [&](std::vector<double> v, CollectiveResult) { sorted = std::move(v); });
  sim.run();
  EXPECT_EQ(sorted, (std::vector<double>{1.0, 1.5, 3.0, 4.0}));
}

TEST(Primitives, GroupRankAssignsDenseRanks) {
  sim::Simulator sim(5);
  VirtualNetwork vnet(sim, GridTopology(4), uniform_cost_model());
  GroupHierarchy groups(GridTopology(4));
  const auto members = groups.members({0, 0}, 1);
  const std::vector<double> values{3.0, 1.0, 4.0, 1.0};
  std::vector<std::uint32_t> ranks;
  group_rank(vnet, members, {0, 0}, values, 1.0,
             [&](std::vector<std::uint32_t> r, CollectiveResult) {
               ranks = std::move(r);
             });
  sim.run();
  // Values 3,1,4,1 -> ranks 2,0,3,1 (ties by member order).
  EXPECT_EQ(ranks, (std::vector<std::uint32_t>{2, 0, 3, 1}));
}

TEST(Primitives, GroupBarrierReleasesEveryone) {
  sim::Simulator sim(8);
  VirtualNetwork vnet(sim, GridTopology(4), uniform_cost_model());
  GroupHierarchy groups(GridTopology(4));
  const auto members = groups.members({0, 0}, 2);  // whole grid
  bool done = false;
  sim::Time finished = 0;
  std::uint32_t messages = 0;
  group_barrier(vnet, members, {0, 0}, 1.0, [&](const CollectiveResult& r) {
    done = true;
    finished = r.finished;
    messages = r.messages;
  });
  sim.run();
  EXPECT_TRUE(done);
  // Arrive + release: two messages per non-leader member.
  EXPECT_EQ(messages, 2u * 15u);
  // Two traversals of the farthest member's distance (6 hops each way).
  EXPECT_DOUBLE_EQ(finished, 12.0);
}

TEST(Primitives, GroupBarrierSingletonIsImmediate) {
  sim::Simulator sim(9);
  VirtualNetwork vnet(sim, GridTopology(2), uniform_cost_model());
  const std::vector<GridCoord> members{{0, 0}};
  bool done = false;
  group_barrier(vnet, members, {0, 0}, 1.0,
                [&](const CollectiveResult&) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(vnet.ledger().total(), 0.0);
}

TEST(Primitives, ReduceSizeMismatchThrows) {
  sim::Simulator sim(6);
  VirtualNetwork vnet(sim, GridTopology(2), uniform_cost_model());
  const std::vector<GridCoord> members{{0, 0}, {0, 1}};
  const std::vector<double> values{1.0};
  EXPECT_THROW(group_reduce(vnet, members, {0, 0}, values, ReduceOp::kSum, 1.0,
                            [](const CollectiveResult&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace wsn::core
