// Geographic regions, logical naming, and the tree virtual topology for
// non-uniform deployments.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/primitives.h"
#include "core/regions.h"
#include "core/virtual_network.h"
#include "emulation/tree_overlay.h"
#include "net/deployment.h"
#include "bench/bench_common.h"

namespace wsn {
namespace {

TEST(Regions, RectangleMembership) {
  const auto region = core::GeographicRegion::rectangle(1, 2, 3, 4);
  EXPECT_TRUE(region.contains({1, 2}));
  EXPECT_TRUE(region.contains({3, 4}));
  EXPECT_TRUE(region.contains({2, 3}));
  EXPECT_FALSE(region.contains({0, 2}));
  EXPECT_FALSE(region.contains({1, 5}));
  core::GridTopology grid(8);
  EXPECT_EQ(region.members(grid).size(), 3u * 3u);
}

TEST(Regions, DiskMembership) {
  const auto region = core::GeographicRegion::disk({4, 4}, 2);
  core::GridTopology grid(9);
  const auto members = region.members(grid);
  // Manhattan ball of radius 2: 1 + 4 + 8 = 13 cells.
  EXPECT_EQ(members.size(), 13u);
  for (const auto& m : members) {
    EXPECT_LE(core::manhattan(m, {4, 4}), 2u);
  }
}

TEST(Regions, BlockMatchesGroupHierarchy) {
  core::GridTopology grid(8);
  core::GroupHierarchy groups(grid);
  const auto region = core::GeographicRegion::block({5, 6}, 2);
  const auto expected = groups.members({5, 6}, 2);
  const auto got = region.members(grid);
  EXPECT_EQ(got, expected);
}

TEST(Regions, SetAlgebra) {
  core::GridTopology grid(8);
  const auto a = core::GeographicRegion::rectangle(0, 0, 3, 3);
  const auto b = core::GeographicRegion::rectangle(2, 2, 5, 5);
  EXPECT_EQ(a.unite(b).members(grid).size(), 16u + 16u - 4u);
  EXPECT_EQ(a.intersect(b).members(grid).size(), 4u);
  EXPECT_EQ(a.subtract(b).members(grid).size(), 12u);
}

TEST(Regions, CollectiveOverRegion) {
  // Sum readings over a disk using the generic group primitives - the
  // "all operations take place on regions" pattern of the UW-API the paper
  // relates to.
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  const auto region = core::GeographicRegion::disk({4, 4}, 2);
  const auto members = region.members(vnet.grid());
  std::vector<double> values(members.size(), 2.0);
  double sum = 0;
  core::group_reduce(vnet, members, {4, 4}, values, core::ReduceOp::kSum, 1.0,
                     [&](const core::CollectiveResult& r) { sum = r.value; });
  sim.run();
  EXPECT_DOUBLE_EQ(sum, 2.0 * static_cast<double>(members.size()));
}

TEST(Naming, BindResolveUnbind) {
  core::NamingService names(core::GridTopology(8));
  EXPECT_FALSE(names.resolve("fire-watch").has_value());
  names.bind("fire-watch", std::vector<core::GridCoord>{{0, 0}, {0, 1}});
  const auto resolved = names.resolve("fire-watch");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->size(), 2u);
  EXPECT_TRUE(names.unbind("fire-watch"));
  EXPECT_FALSE(names.unbind("fire-watch"));
  EXPECT_FALSE(names.resolve("fire-watch").has_value());
}

TEST(Naming, DynamicRegionBindingFollowsPredicate) {
  core::NamingService names(core::GridTopology(8));
  // Membership determined at run time through a mutable threshold.
  auto threshold = std::make_shared<std::int32_t>(2);
  names.bind("hot-rows",
             core::GeographicRegion([threshold](const core::GridCoord& c) {
               return c.row < *threshold;
             }));
  EXPECT_EQ(names.resolve("hot-rows")->size(), 16u);
  *threshold = 4;
  EXPECT_EQ(names.resolve("hot-rows")->size(), 32u);
}

TEST(Naming, RebindReplaces) {
  core::NamingService names(core::GridTopology(4));
  names.bind("a", std::vector<core::GridCoord>{{0, 0}});
  names.bind("a", std::vector<core::GridCoord>{{1, 1}, {2, 2}});
  EXPECT_EQ(names.resolve("a")->size(), 2u);
  EXPECT_EQ(names.names(), std::vector<std::string>{"a"});
}

// ---------------------------------------------------------------------------
// Tree overlay on clustered (non-uniform) deployments.
// ---------------------------------------------------------------------------

struct ClusteredStack {
  ClusteredStack(std::size_t grid_side, std::size_t nodes, std::uint64_t seed)
      : sim(seed) {
    const net::Rect terrain =
        net::square_terrain(static_cast<double>(grid_side));
    net::DeploymentConfig cfg;
    cfg.kind = net::DeploymentKind::kClustered;
    cfg.node_count = nodes;
    cfg.terrain = terrain;
    cfg.cluster_count = 3;
    cfg.cluster_spread = 0.10;
    auto positions = net::deploy(cfg, sim.rng());
    graph = std::make_unique<net::NetworkGraph>(std::move(positions), 2.2);
    mapper = std::make_unique<emulation::CellMapper>(*graph, terrain, grid_side);
    ledger = std::make_unique<net::EnergyLedger>(graph->node_count());
    link = std::make_unique<net::LinkLayer>(
        sim, *graph, net::RadioModel{2.2, 1.0, 1.0, 1.0}, net::CpuModel{},
        *ledger);
  }

  sim::Simulator sim;
  std::unique_ptr<net::NetworkGraph> graph;
  std::unique_ptr<emulation::CellMapper> mapper;
  std::unique_ptr<net::EnergyLedger> ledger;
  std::unique_ptr<net::LinkLayer> link;
};

TEST(TreeOverlay, ClusteredDeploymentLeavesCellsEmptyButTreeSpans) {
  ClusteredStack stack(8, 200, 5);
  ASSERT_TRUE(stack.graph->connected());
  // The very premise: clustered deployments break the grid precondition.
  EXPECT_FALSE(stack.mapper->all_cells_occupied());

  const auto binding = emulation::run_leader_binding(*stack.link, *stack.mapper);
  const auto tree = emulation::build_tree_overlay(*stack.mapper, binding);
  // Every occupied cell is in the tree exactly once.
  std::size_t occupied = 0;
  core::GridTopology grid(8);
  for (const auto& cell : grid.all_coords()) {
    if (!stack.mapper->members(cell).empty()) ++occupied;
  }
  EXPECT_EQ(tree.size(), occupied);
  // Parent links converge to the root.
  for (std::size_t i = 0; i < tree.size(); ++i) {
    std::size_t cur = i;
    std::size_t steps = 0;
    while (cur != 0) {
      cur = tree.parent[cur];
      ASSERT_LT(++steps, tree.size() + 1);
    }
  }
  EXPECT_EQ(tree.depth[0], 0u);
}

TEST(TreeOverlay, TreeSumMatchesDirectSum) {
  ClusteredStack stack(8, 200, 7);
  ASSERT_TRUE(stack.graph->connected());
  const auto binding = emulation::run_leader_binding(*stack.link, *stack.mapper);
  const auto tree = emulation::build_tree_overlay(*stack.mapper, binding);

  std::vector<double> values;
  double expected = 0;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const double v = static_cast<double>(i % 7) + 0.5;
    values.push_back(v);
    expected += v;
  }
  const auto result = emulation::run_tree_sum(*stack.link, tree, values);
  EXPECT_DOUBLE_EQ(result.value, expected);
  EXPECT_EQ(result.messages, tree.size() - 1);
  EXPECT_GE(result.physical_hops, result.messages);
  EXPECT_GT(result.finished, 0.0);
}

TEST(TreeOverlay, SingleOccupiedCellDegenerates) {
  // All nodes in one corner cell.
  sim::Simulator sim(1);
  std::vector<net::Point> positions{{0.2, 0.2}, {0.4, 0.4}, {0.3, 0.2}};
  net::NetworkGraph graph(positions, 1.0);
  emulation::CellMapper mapper(graph, net::square_terrain(4.0), 4);
  net::EnergyLedger ledger(graph.node_count());
  net::LinkLayer link(sim, graph, net::RadioModel{1.0, 1.0, 1.0, 1.0},
                      net::CpuModel{}, ledger);
  const auto binding = emulation::run_leader_binding(link, mapper);
  const auto tree = emulation::build_tree_overlay(mapper, binding);
  EXPECT_EQ(tree.size(), 1u);
  const std::vector<double> values{42.0};
  const auto result = emulation::run_tree_sum(link, tree, values);
  EXPECT_DOUBLE_EQ(result.value, 42.0);
  EXPECT_EQ(result.messages, 0u);
}

TEST(TreeOverlay, RootHintSelectsNearestOccupiedCell) {
  ClusteredStack stack(8, 150, 11);
  const auto binding = emulation::run_leader_binding(*stack.link, *stack.mapper);
  const auto tree =
      emulation::build_tree_overlay(*stack.mapper, binding, {7, 7});
  // The root is the occupied cell closest to (7,7).
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  core::GridTopology grid(8);
  for (const auto& cell : grid.all_coords()) {
    if (!stack.mapper->members(cell).empty()) {
      best = std::min(best, core::manhattan(cell, {7, 7}));
    }
  }
  EXPECT_EQ(core::manhattan(tree.cells[0], {7, 7}), best);
}

}  // namespace
}  // namespace wsn
