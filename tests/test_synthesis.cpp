// Program synthesis: the Figure 4 interpreter semantics (on simple scalar
// aggregation, where results are easy to predict) and the synthesizer's
// middleware-selection decisions.
#include <gtest/gtest.h>

#include "core/virtual_network.h"
#include "synthesis/program.h"
#include "synthesis/spec.h"
#include "synthesis/synthesizer.h"
#include "taskgraph/mapping.h"

namespace wsn::synthesis {
namespace {

/// Hooks computing a plain sum of one reading per node - the simplest
/// aggregate, making message/merge accounting transparent.
ProgramHooks sum_hooks(double* result,
                       std::function<double(const core::GridCoord&)> reading) {
  ProgramHooks hooks;
  hooks.sense = [reading](const core::GridCoord& c) -> std::any {
    return reading(c);
  };
  hooks.merge = [](std::any& acc, const std::any& incoming) {
    const double v = std::any_cast<double>(incoming);
    if (!acc.has_value()) {
      acc = v;
    } else {
      acc = std::any_cast<double>(acc) + v;
    }
  };
  hooks.seal = [](std::any& acc, const core::GridCoord&, std::uint32_t) {
    return acc;
  };
  hooks.payload_units = [](const std::any&) { return 1.0; };
  hooks.exfiltrate = [result](const core::GridCoord&, std::any payload) {
    *result = std::any_cast<double>(payload);
  };
  return hooks;
}

TEST(AggregationProgram, SumsWholeGrid) {
  sim::Simulator sim(1);
  core::VirtualNetwork vnet(sim, core::GridTopology(4),
                            core::uniform_cost_model());
  double result = -1;
  AggregationProgram prog(
      vnet, sum_hooks(&result, [](const core::GridCoord&) { return 1.0; }));
  prog.start_round();
  sim.run();
  ASSERT_TRUE(prog.finished());
  EXPECT_DOUBLE_EQ(result, 16.0);
  EXPECT_EQ(prog.stats().exfiltration_node, (core::GridCoord{0, 0}));
}

TEST(AggregationProgram, WeightedSumIsExact) {
  sim::Simulator sim(2);
  core::VirtualNetwork vnet(sim, core::GridTopology(8),
                            core::uniform_cost_model());
  double result = -1;
  AggregationProgram prog(vnet, sum_hooks(&result, [](const core::GridCoord& c) {
                            return static_cast<double>(c.row * 8 + c.col);
                          }));
  prog.start_round();
  sim.run();
  ASSERT_TRUE(prog.finished());
  EXPECT_DOUBLE_EQ(result, 63.0 * 64.0 / 2.0);
}

TEST(AggregationProgram, MessageCountMatchesQuadTreeEdges) {
  // m^2 - 1 network messages: every task sends to its parent except the
  // self-edges of leaders (one per interior node) and the root.
  for (std::size_t side : {2u, 4u, 8u, 16u}) {
    sim::Simulator sim(3);
    core::VirtualNetwork vnet(sim, core::GridTopology(side),
                              core::uniform_cost_model());
    double result = 0;
    AggregationProgram prog(
        vnet, sum_hooks(&result, [](const core::GridCoord&) { return 1.0; }));
    prog.start_round();
    sim.run();
    // The quad tree has (4m^2-4)/3 edges; one per interior node is a
    // leader self-edge, leaving m^2-1 network messages.
    const std::uint64_t interior = (side * side - 1) / 3;
    EXPECT_EQ(prog.stats().messages_sent, side * side - 1);
    EXPECT_EQ(prog.stats().self_merges, interior);
    EXPECT_EQ(prog.stats().remote_merges, side * side - 1);
  }
}

TEST(AggregationProgram, LatencyMatchesClosedForm) {
  // Unit costs: latency = sense(1) + sum over levels (2^l + merge(1)).
  for (std::size_t side : {2u, 4u, 8u, 16u, 32u}) {
    sim::Simulator sim(4);
    core::VirtualNetwork vnet(sim, core::GridTopology(side),
                              core::uniform_cost_model());
    double result = 0;
    AggregationProgram prog(
        vnet, sum_hooks(&result, [](const core::GridCoord&) { return 1.0; }));
    prog.start_round();
    sim.run();
    std::uint32_t levels = 0;
    for (std::size_t s = side; s > 1; s >>= 1) ++levels;
    const double expected =
        1.0 + static_cast<double>(2 * side - 2) + static_cast<double>(levels);
    EXPECT_DOUBLE_EQ(prog.stats().finished_at, expected) << "side " << side;
  }
}

TEST(AggregationProgram, SingleNodeGridExfiltratesImmediately) {
  sim::Simulator sim(5);
  core::VirtualNetwork vnet(sim, core::GridTopology(1),
                            core::uniform_cost_model());
  double result = -1;
  AggregationProgram prog(
      vnet, sum_hooks(&result, [](const core::GridCoord&) { return 7.0; }));
  prog.start_round();
  sim.run();
  ASSERT_TRUE(prog.finished());
  EXPECT_DOUBLE_EQ(result, 7.0);
  EXPECT_EQ(prog.stats().messages_sent, 0u);
}

TEST(AggregationProgram, SecondRoundRunsCleanly) {
  sim::Simulator sim(6);
  core::VirtualNetwork vnet(sim, core::GridTopology(4),
                            core::uniform_cost_model());
  double result = -1;
  AggregationProgram prog(
      vnet, sum_hooks(&result, [](const core::GridCoord&) { return 2.0; }));
  prog.start_round();
  sim.run();
  EXPECT_DOUBLE_EQ(result, 32.0);
  result = -1;
  prog.start_round();
  sim.run();
  EXPECT_DOUBLE_EQ(result, 32.0);  // identical second round
}

TEST(AggregationProgram, MissingHooksRejected) {
  sim::Simulator sim(7);
  core::VirtualNetwork vnet(sim, core::GridTopology(2),
                            core::uniform_cost_model());
  ProgramHooks empty;
  EXPECT_THROW(AggregationProgram(vnet, empty), std::invalid_argument);
}

TEST(RenderFigure4, ContainsAllClauses) {
  const std::string text = render_figure4();
  EXPECT_NE(text.find("start(= false), recLevel(= 0), maxrecLevel"),
            std::string::npos);
  EXPECT_NE(text.find("mGraph = {senderCoord, msubGraph, mrecLevel}"),
            std::string::npos);
  EXPECT_NE(text.find("Condition : start = true"), std::string::npos);
  EXPECT_NE(text.find("Condition : received mGraph"), std::string::npos);
  EXPECT_NE(text.find("Condition : transmit = true"), std::string::npos);
  EXPECT_NE(text.find("Condition : msgsReceived[recLevel] = 3"),
            std::string::npos);
  EXPECT_NE(text.find("exfiltrate message"), std::string::npos);
  EXPECT_NE(text.find("send message to Leader(recLevel+1)"),
            std::string::npos);
}

TEST(Synthesizer, SelectsGroupCommunicationForPaperMapping) {
  const taskgraph::QuadTree tree = taskgraph::build_quad_tree(4);
  core::GridTopology grid(4);
  core::GroupHierarchy groups(grid);
  const auto mapping = taskgraph::paper_mapping(tree, groups);
  const SynthesisReport report = synthesize(tree, mapping, groups);
  EXPECT_TRUE(report.regular_kary_tree);
  EXPECT_EQ(report.arity, 4u);
  EXPECT_EQ(report.levels, 2u);
  EXPECT_TRUE(report.leaders_aligned);
  EXPECT_TRUE(report.coverage_ok);
  EXPECT_TRUE(report.spatial_correlation_ok);
  EXPECT_TRUE(report.use_group_communication);
  EXPECT_NE(report.describe().find("group communication middleware"),
            std::string::npos);
}

TEST(Synthesizer, FallsBackWhenLeadersMisaligned) {
  const taskgraph::QuadTree tree = taskgraph::build_quad_tree(4);
  core::GridTopology grid(4);
  core::GroupHierarchy groups(grid);
  auto mapping = taskgraph::paper_mapping(tree, groups);
  // Move the root off its leader position.
  mapping[tree.graph.root()] = {1, 1};
  const SynthesisReport report = synthesize(tree, mapping, groups);
  EXPECT_FALSE(report.leaders_aligned);
  EXPECT_FALSE(report.use_group_communication);
}

TEST(Synthesizer, ReportsConstraintViolations) {
  const taskgraph::QuadTree tree = taskgraph::build_quad_tree(4);
  core::GridTopology grid(4);
  core::GroupHierarchy groups(grid);
  sim::Rng rng(5);
  const auto mapping = taskgraph::scrambled_leaf_mapping(tree, rng);
  const SynthesisReport report = synthesize(tree, mapping, groups);
  EXPECT_TRUE(report.coverage_ok);
  EXPECT_FALSE(report.spatial_correlation_ok);
}

TEST(ProgramSpec, Figure4StructureAndRender) {
  const ProgramSpec spec = figure4_spec(16);
  EXPECT_EQ(spec.max_rec_level, 4u);
  EXPECT_EQ(spec.expected_messages, 3u);
  ASSERT_EQ(spec.clauses.size(), 4u);
  EXPECT_EQ(spec.clauses[0].condition, "start = true");
  EXPECT_EQ(spec.clauses[1].condition, "received mGraph");
  EXPECT_EQ(spec.clauses[2].condition, "transmit = true");
  EXPECT_EQ(spec.clauses[3].condition, "msgsReceived[recLevel] = 3");
  const std::string text = spec.render();
  EXPECT_NE(text.find("mGraph = {senderCoord, msubGraph, mrecLevel}"),
            std::string::npos);
  EXPECT_NE(text.find("send message to Leader(recLevel+1)"),
            std::string::npos);
  EXPECT_NE(text.find("maxrecLevel(= 4)"), std::string::npos);
}

TEST(ProgramSpec, RejectsNonPowerOfTwo) {
  EXPECT_THROW(figure4_spec(6), std::invalid_argument);
}

TEST(ProgramSpec, ParameterizesWithGridSize) {
  EXPECT_EQ(figure4_spec(2).max_rec_level, 1u);
  EXPECT_EQ(figure4_spec(64).max_rec_level, 6u);
}

}  // namespace
}  // namespace wsn::synthesis
