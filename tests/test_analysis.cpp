// Analysis library: closed forms cross-checked against brute-force
// enumeration, metrics, and table rendering.
#include <gtest/gtest.h>

#include "analysis/analytical.h"
#include "analysis/metrics.h"
#include "analysis/table.h"
#include "core/groups.h"
#include "taskgraph/mapping.h"

namespace wsn::analysis {
namespace {

TEST(Analytical, QuadtreeHopsMatchBruteForce) {
  // Brute force: sum manhattan(child leader, parent leader) over the whole
  // mapped quad-tree.
  for (std::size_t side : {2u, 4u, 8u, 16u}) {
    const taskgraph::QuadTree tree = taskgraph::build_quad_tree(side);
    core::GridTopology grid(side);
    core::GroupHierarchy groups(grid);
    const auto mapping = taskgraph::paper_mapping(tree, groups);
    std::uint64_t brute = 0;
    for (const auto& task : tree.graph.tasks()) {
      if (task.parent == taskgraph::kNoTask) continue;
      brute += core::manhattan(mapping[task.id], mapping[task.parent]);
    }
    const auto predicted = predict_quadtree(side, core::uniform_cost_model());
    EXPECT_EQ(predicted.total_hops, brute) << "side " << side;
    // Closed form 2m^2 - 2m.
    EXPECT_EQ(predicted.total_hops, 2 * side * side - 2 * side);
  }
}

TEST(Analytical, QuadtreeMessagesMatchEdgeCount) {
  for (std::size_t side : {2u, 4u, 8u, 16u, 32u}) {
    const auto predicted = predict_quadtree(side, core::uniform_cost_model());
    EXPECT_EQ(predicted.messages, side * side - 1);
    // steps = (m - 1) + log2 m.
    std::uint32_t levels = 0;
    for (std::size_t s = side; s > 1; s >>= 1) ++levels;
    EXPECT_EQ(predicted.steps, side - 1 + levels);
  }
}

TEST(Analytical, QuadtreeScalesWithCostKnobs) {
  core::CostModel cost;
  cost.bandwidth = 2.0;  // halve per-hop latency
  const auto base = predict_quadtree(8, core::uniform_cost_model());
  const auto fast = predict_quadtree(8, cost);
  // Communication part of latency halves; compute part unchanged.
  const double base_comm = base.latency - 1.0 - 3.0;  // sense + 3 merges
  const double fast_comm = fast.latency - 1.0 - 3.0;
  EXPECT_DOUBLE_EQ(fast_comm, base_comm / 2.0);
  // Energy is latency-independent.
  EXPECT_DOUBLE_EQ(fast.total_energy, base.total_energy);
}

TEST(Analytical, CentralizedHopsMatchBruteForce) {
  for (std::size_t side : {2u, 4u, 8u, 16u}) {
    std::uint64_t brute = 0;
    core::GridTopology grid(side);
    for (const core::GridCoord& c : grid.all_coords()) {
      brute += core::manhattan(c, {0, 0});
    }
    const auto predicted =
        predict_centralized(side, core::uniform_cost_model());
    EXPECT_EQ(predicted.total_hops, brute) << "side " << side;
  }
}

TEST(Analytical, GroupCommMatchesBruteForce) {
  core::GridTopology grid(32);
  core::GroupHierarchy groups(grid);
  for (std::uint32_t level = 1; level <= 5; ++level) {
    std::uint32_t max_hops = 0;
    double sum = 0;
    const auto members = groups.members({0, 0}, level);
    for (const core::GridCoord& m : members) {
      const std::uint32_t h = groups.hops_to_leader(m, level);
      max_hops = std::max(max_hops, h);
      sum += h;
    }
    const auto predicted = predict_group_comm(level);
    EXPECT_EQ(predicted.max_hops, max_hops);
    EXPECT_DOUBLE_EQ(predicted.mean_hops,
                     sum / static_cast<double>(members.size()));
  }
}

TEST(Analytical, FanoutJ1EqualsQuadtree) {
  for (std::size_t side : {4u, 16u, 64u}) {
    const auto quad = predict_quadtree(side, core::uniform_cost_model());
    const auto f4 = predict_fanout(side, 1, core::uniform_cost_model());
    EXPECT_EQ(quad.messages, f4.messages);
    EXPECT_EQ(quad.total_hops, f4.total_hops);
    EXPECT_DOUBLE_EQ(quad.total_energy, f4.total_energy);
    EXPECT_DOUBLE_EQ(quad.latency, f4.latency);
  }
}

TEST(Analytical, FanoutCommLatencyIsInvariant) {
  // The diagonal transfers telescope to 2(m-1) hops at every fan-out.
  const core::CostModel cost = core::uniform_cost_model();
  for (std::uint32_t j : {1u, 2u, 3u, 6u}) {
    const auto pred = predict_fanout(64, j, cost);
    const double comm = pred.latency - 1.0 -
                        static_cast<double>(6 / j);  // sense + merges
    EXPECT_DOUBLE_EQ(comm, 2.0 * 63.0) << "j=" << j;
  }
}

TEST(Analytical, FanoutSingleLevelIsCentralizedGather) {
  // j = log2(m): one level, every node sends straight to the root.
  const auto pred = predict_fanout(16, 4, core::uniform_cost_model());
  EXPECT_EQ(pred.messages, 255u);
  // Hops = sum of manhattan distances to (0,0).
  EXPECT_EQ(pred.total_hops, 16u * 16u * 15u);
}

TEST(Analytical, FanoutRejectsBadExponent) {
  EXPECT_THROW(predict_fanout(16, 3, core::uniform_cost_model()),
               std::invalid_argument);
  EXPECT_THROW(predict_fanout(16, 0, core::uniform_cost_model()),
               std::invalid_argument);
}

TEST(Analytical, NonPowerOfTwoRejected) {
  EXPECT_THROW(predict_quadtree(6, core::uniform_cost_model()),
               std::invalid_argument);
}

TEST(Metrics, EnergyReportAggregates) {
  net::EnergyLedger ledger(4);
  ledger.charge(0, net::EnergyUse::kTx, 4.0);
  ledger.charge(1, net::EnergyUse::kRx, 2.0);
  ledger.charge(2, net::EnergyUse::kCompute, 2.0);
  const EnergyReport r = energy_report(ledger);
  EXPECT_DOUBLE_EQ(r.total, 8.0);
  EXPECT_DOUBLE_EQ(r.mean, 2.0);
  EXPECT_DOUBLE_EQ(r.max, 4.0);
  EXPECT_DOUBLE_EQ(r.min, 0.0);
  EXPECT_DOUBLE_EQ(r.tx, 4.0);
  EXPECT_DOUBLE_EQ(r.rx, 2.0);
  EXPECT_DOUBLE_EQ(r.compute, 2.0);
  EXPECT_GT(r.cv, 0.0);
}

TEST(Metrics, ProjectedLifetime) {
  net::EnergyLedger ledger(2);
  ledger.charge(0, net::EnergyUse::kTx, 5.0);
  ledger.charge(1, net::EnergyUse::kTx, 2.0);
  EXPECT_DOUBLE_EQ(projected_lifetime_rounds(ledger, 100.0), 20.0);
  net::EnergyLedger idle(2);
  EXPECT_DOUBLE_EQ(projected_lifetime_rounds(idle, 100.0), 0.0);
}

TEST(Table, AlignsColumnsAndFormats) {
  Table t({"a", "long-header"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  const std::string s = t.str();
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(-7), "-7");
}

TEST(Table, PercentError) {
  EXPECT_EQ(Table::pct_err(110.0, 100.0), "10.0%");
  EXPECT_EQ(Table::pct_err(90.0, 100.0), "-10.0%");
  EXPECT_EQ(Table::pct_err(0.0, 0.0), "0.0%");
  EXPECT_EQ(Table::pct_err(1.0, 0.0), "inf");
}

TEST(Table, ShortRowsPadded) {
  Table t({"x", "y", "z"});
  t.row({"only-x"});
  EXPECT_NE(t.str().find("only-x"), std::string::npos);
}

}  // namespace
}  // namespace wsn::analysis
